//! Criterion microbenchmarks for wire translation (paper Figure 4,
//! statistical edition). Uses 64 KiB workloads so Criterion can iterate;
//! `fig4_translation` runs the full 1 MB versions.

use criterion::{criterion_group, criterion_main, Criterion};
use iw_bench::{dirty_all, figure4_workloads, setup};
use iw_core::{Session, TrackMode};
use iw_proto::Loopback;
use iw_rpc::{marshal, MemSource, XdrType};
use iw_types::MachineArch;

struct HeapMem<'a>(&'a Session);

impl MemSource for HeapMem<'_> {
    fn bytes(&self, va: u64, len: usize) -> Option<&[u8]> {
        self.0.heap().read_bytes(va, len).ok()
    }
}

fn bench_translation(c: &mut Criterion) {
    let scale = 1.0 / 16.0; // 64 KiB
    for w in figure4_workloads(scale) {
        if !matches!(w.name, "int_array" | "mix" | "pointer") {
            continue; // keep the bench suite fast; the binary covers all 9
        }
        let mut bed = setup(&w, MachineArch::x86());
        let mut reader = Session::new(
            MachineArch::x86(),
            Box::new(Loopback::new(bed.server.clone())),
        )
        .unwrap();
        reader.fetch_segment("bench/data").unwrap();
        let rh = reader.open_segment("bench/data").unwrap();

        bed.session.wl_acquire(&bed.handle).unwrap();
        let block = bed.block.clone();
        dirty_all(&mut bed.session, &block, &w, 1);

        let mut group = c.benchmark_group(format!("translate/{}", w.name));
        group.bench_function("collect_diff", |b| {
            bed.session
                .set_tracking_mode(&bed.handle, TrackMode::Diff)
                .unwrap();
            b.iter(|| bed.session.collect_segment_diff(&bed.handle).unwrap())
        });
        group.bench_function("collect_block", |b| {
            bed.session
                .set_tracking_mode(
                    &bed.handle,
                    TrackMode::NoDiff {
                        remaining: u32::MAX,
                    },
                )
                .unwrap();
            b.iter(|| bed.session.collect_segment_diff(&bed.handle).unwrap())
        });
        let (diff, _, _) = bed.session.collect_segment_diff(&bed.handle).unwrap();
        group.bench_function("apply", |b| {
            b.iter(|| reader.apply_segment_diff(&rh, &diff).unwrap())
        });
        let elem = iw_types::layout::layout_of(&w.ty, &MachineArch::x86()).size as usize;
        let local = bed
            .session
            .read_bytes_raw(&block, w.count as usize * elem)
            .unwrap()
            .to_vec();
        let xdr_ty = XdrType::array(w.xdr.clone(), w.count);
        group.bench_function("rpc_xdr_marshal", |b| {
            b.iter(|| marshal(&xdr_ty, &local, bed.session.arch(), &HeapMem(&bed.session)).unwrap())
        });
        group.finish();
        bed.session
            .set_tracking_mode(&bed.handle, TrackMode::Diff)
            .unwrap();
        bed.session.wl_release(&bed.handle).unwrap();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_translation
}
criterion_main!(benches);
