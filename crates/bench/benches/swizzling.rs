//! Criterion microbenchmarks for pointer swizzling (paper Figure 6,
//! statistical edition): `ptr_to_mip` / `mip_to_ptr` for an int target
//! and a cross-segment target among 1024 blocks.

use criterion::{criterion_group, criterion_main, Criterion};
use iw_core::Session;
use iw_proto::{Handler, Loopback};
use iw_server::Server;
use iw_types::desc::TypeDesc;
use iw_types::MachineArch;
use std::sync::Arc;

fn bench_swizzling(c: &mut Criterion) {
    let srv: Arc<dyn Handler> = Arc::new(Server::new());
    let mut s = Session::new(MachineArch::x86(), Box::new(Loopback::new(srv))).unwrap();

    let h = s.open_segment("sw/bench").unwrap();
    s.wl_acquire(&h).unwrap();
    let int1 = s.malloc(&h, &TypeDesc::int32(), 8, Some("ints")).unwrap();
    s.wl_release(&h).unwrap();

    let hx = s.open_segment("sw/cross").unwrap();
    s.wl_acquire(&hx).unwrap();
    let mut mid = None;
    for b in 0..1024 {
        let p = s.malloc(&hx, &TypeDesc::int32(), 4, None).unwrap();
        if b == 512 {
            mid = Some(p);
        }
    }
    s.wl_release(&hx).unwrap();
    let cross = mid.unwrap();

    s.rl_acquire(&h).unwrap();
    s.rl_acquire(&hx).unwrap();

    let mut group = c.benchmark_group("swizzle");
    for (name, target) in [("int1", &int1), ("cross1024", &cross)] {
        let mip = s.ptr_to_mip(target).unwrap();
        group.bench_function(format!("collect/{name}"), |b| {
            b.iter(|| s.ptr_to_mip(target).unwrap())
        });
        group.bench_function(format!("apply/{name}"), |b| {
            b.iter(|| s.mip_to_ptr(&mip).unwrap())
        });
    }
    group.finish();
    s.rl_release(&hx).unwrap();
    s.rl_release(&h).unwrap();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = bench_swizzling
}
criterion_main!(benches);
