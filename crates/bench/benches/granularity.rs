//! Criterion microbenchmarks for modification granularity (paper
//! Figure 5, statistical edition): client diff collection on a 256 KiB
//! int array at three change ratios. `fig5_granularity` runs the full
//! sweep with the server-side curves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use iw_core::diffing::find_byte_runs;
use iw_core::Session;
use iw_proto::{Handler, Loopback};
use iw_server::Server;
use iw_types::desc::TypeDesc;
use iw_types::MachineArch;
use std::sync::Arc;

const N_INTS: u32 = 1 << 16;

fn bench_granularity(c: &mut Criterion) {
    let mut group = c.benchmark_group("granularity");
    for ratio in [1u32, 16, 1024] {
        let srv: Arc<dyn Handler> = Arc::new(Server::new());
        let mut w = Session::new(MachineArch::x86(), Box::new(Loopback::new(srv))).unwrap();
        let h = w.open_segment("g/bench").unwrap();
        w.wl_acquire(&h).unwrap();
        let arr = w
            .malloc(&h, &TypeDesc::int32(), N_INTS, Some("arr"))
            .unwrap();
        w.wl_release(&h).unwrap();

        w.wl_acquire(&h).unwrap();
        let mut i = 0;
        while i < N_INTS {
            let cell = w.index(&arr, i).unwrap();
            w.write_i32(&cell, -(i as i32) - 1).unwrap();
            i += ratio;
        }

        group.bench_with_input(BenchmarkId::new("collect_diff", ratio), &ratio, |b, _| {
            b.iter(|| w.collect_segment_diff(&h).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("word_diffing", ratio), &ratio, |b, _| {
            b.iter(|| {
                let heap = w.heap();
                let seg = heap.segment_id("g/bench").unwrap();
                let mut n = 0usize;
                for &idx in heap.segment(seg).subseg_indices() {
                    for (_, twin, cur) in heap.subseg(idx).modified_pages() {
                        n += find_byte_runs(twin, cur, 4, true).len();
                    }
                }
                n
            })
        });
        w.wl_release(&h).unwrap();
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_granularity
}
criterion_main!(benches);
