//! # iw-bench — workloads and helpers for the paper's experiments
//!
//! Shared machinery for the figure-regeneration binaries
//! (`fig4_translation`, `fig5_granularity`, `fig6_swizzling`,
//! `fig7_datamining`, `ablations`) and the Criterion benches. The nine
//! Figure 4 data mixes are defined here exactly as the paper describes
//! them (§4.1), each sized so the local x86 image totals 1 MB.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Arc;
use std::time::{Duration, Instant};

use iw_core::{Ptr, SegHandle, Session, SessionOptions};
use iw_proto::{Handler, Loopback};
use iw_rpc::XdrType;
use iw_server::Server;
use iw_types::desc::TypeDesc;
use iw_types::MachineArch;

/// One of the paper's Figure 4 data mixes.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Paper name (`int_array`, `mix`, …).
    pub name: &'static str,
    /// Element type allocated in the shared block.
    pub ty: TypeDesc,
    /// Element count (sized for a 1 MB local image on x86).
    pub count: u32,
    /// The matching XDR descriptor for the RPC baseline.
    pub xdr: XdrType,
    /// Whether elements contain pointers (targets get allocated too).
    pub has_pointers: bool,
}

/// Total local-format bytes targeted per workload (1 MB, as in §4.1).
pub const WORKLOAD_BYTES: u32 = 1 << 20;

fn int_struct_ty() -> TypeDesc {
    TypeDesc::structure(
        "int_struct",
        vec![("f", TypeDesc::array(TypeDesc::int32(), 32))],
    )
}

fn double_struct_ty() -> TypeDesc {
    TypeDesc::structure(
        "double_struct",
        vec![("f", TypeDesc::array(TypeDesc::float64(), 32))],
    )
}

fn int_double_ty() -> TypeDesc {
    TypeDesc::structure(
        "int_double",
        vec![("i", TypeDesc::int32()), ("d", TypeDesc::float64())],
    )
}

fn mix_ty() -> TypeDesc {
    TypeDesc::structure(
        "mix",
        vec![
            ("i", TypeDesc::int32()),
            ("d", TypeDesc::float64()),
            ("s", TypeDesc::string(256)),
            ("t", TypeDesc::string(4)),
            ("p", TypeDesc::pointer()),
        ],
    )
}

/// Builds the nine Figure 4 workloads, scaled by `scale` (1.0 = the
/// paper's 1 MB; benches use smaller scales for iteration speed).
pub fn figure4_workloads(scale: f64) -> Vec<Workload> {
    let arch = MachineArch::x86();
    let sized = |ty: &TypeDesc| -> u32 {
        let elem = iw_types::layout::layout_of(ty, &arch).size.max(1);
        (((WORKLOAD_BYTES as f64 * scale) / elem as f64).round() as u32).max(1)
    };
    let xdr_int_struct = XdrType::Struct {
        fields: vec![XdrType::array(XdrType::Int, 32)],
    };
    let xdr_double_struct = XdrType::Struct {
        fields: vec![XdrType::array(XdrType::Double, 32)],
    };
    let xdr_int_double = XdrType::Struct {
        fields: vec![XdrType::Int, XdrType::Double],
    };
    let xdr_mix = XdrType::Struct {
        fields: vec![
            XdrType::Int,
            XdrType::Double,
            XdrType::String { cap: 256 },
            XdrType::String { cap: 4 },
            XdrType::pointer(XdrType::Int),
        ],
    };
    vec![
        Workload {
            name: "int_array",
            count: sized(&TypeDesc::int32()),
            ty: TypeDesc::int32(),
            xdr: XdrType::Int,
            has_pointers: false,
        },
        Workload {
            name: "double_array",
            count: sized(&TypeDesc::float64()),
            ty: TypeDesc::float64(),
            xdr: XdrType::Double,
            has_pointers: false,
        },
        Workload {
            name: "int_struct",
            count: sized(&int_struct_ty()),
            ty: int_struct_ty(),
            xdr: xdr_int_struct,
            has_pointers: false,
        },
        Workload {
            name: "double_struct",
            count: sized(&double_struct_ty()),
            ty: double_struct_ty(),
            xdr: xdr_double_struct,
            has_pointers: false,
        },
        Workload {
            name: "string",
            count: sized(&TypeDesc::string(256)),
            ty: TypeDesc::string(256),
            xdr: XdrType::String { cap: 256 },
            has_pointers: false,
        },
        Workload {
            name: "small_string",
            count: sized(&TypeDesc::string(4)),
            ty: TypeDesc::string(4),
            xdr: XdrType::String { cap: 4 },
            has_pointers: false,
        },
        Workload {
            name: "pointer",
            count: sized(&TypeDesc::pointer()),
            ty: TypeDesc::pointer(),
            xdr: XdrType::pointer(XdrType::Int),
            has_pointers: true,
        },
        Workload {
            name: "int_double",
            count: sized(&int_double_ty()),
            ty: int_double_ty(),
            xdr: xdr_int_double,
            has_pointers: false,
        },
        Workload {
            name: "mix",
            count: sized(&mix_ty()),
            ty: mix_ty(),
            xdr: xdr_mix,
            has_pointers: true,
        },
    ]
}

/// A ready-to-measure shared segment: a writer session holding one block
/// of the workload type (plus pointer targets when applicable).
pub struct Bed {
    /// Writer session.
    pub session: Session,
    /// The workload segment.
    pub handle: SegHandle,
    /// Pointer to the workload block.
    pub block: Ptr,
    /// The shared server (for attaching more clients or scraping metrics).
    pub server: Arc<Server>,
    /// The workload.
    pub workload: Workload,
}

/// Creates a fresh server + session and allocates the workload block,
/// with pointer fields (if any) aimed at an int-array target block.
pub fn setup(workload: &Workload, arch: MachineArch) -> Bed {
    setup_with_options(workload, arch, SessionOptions::default())
}

/// As [`setup`], with explicit [`SessionOptions`] — used by the parallel
/// translation benchmarks and determinism tests to pin
/// `translate_threads`.
pub fn setup_with_options(workload: &Workload, arch: MachineArch, opts: SessionOptions) -> Bed {
    let server = Arc::new(Server::new());
    let mut session = Session::with_options(
        arch,
        Box::new(Loopback::new(server.clone() as Arc<dyn Handler>)),
        opts,
    )
    .expect("hello");
    let handle = session.open_segment("bench/data").expect("open");
    session.wl_acquire(&handle).expect("wl");
    let block = session
        .malloc(&handle, &workload.ty, workload.count, Some("blk"))
        .expect("malloc");
    if workload.has_pointers {
        let targets = session
            .malloc(
                &handle,
                &TypeDesc::int32(),
                workload.count.max(1),
                Some("targets"),
            )
            .expect("targets");
        aim_pointers(&mut session, workload, &block, &targets);
    }
    session.wl_release(&handle).expect("release");
    Bed {
        session,
        handle,
        block,
        server,
        workload: workload.clone(),
    }
}

/// Points every pointer field of the workload block at successive target
/// ints.
pub fn aim_pointers(session: &mut Session, workload: &Workload, block: &Ptr, targets: &Ptr) {
    for i in 0..workload.count {
        let elem = if workload.count == 1 {
            block.clone()
        } else {
            session.index(block, i).expect("index")
        };
        let ptr_field = match workload.name {
            "pointer" => elem,
            "mix" => session.field(&elem, "p").expect("field p"),
            other => unreachable!("workload {other} has no pointers"),
        };
        let target = session
            .index(targets, i % workload.count.max(1))
            .expect("target");
        session
            .write_ptr(&ptr_field, Some(&target))
            .expect("write ptr");
    }
}

/// Overwrites every primitive of the workload block with round-dependent
/// values (dirtying all pages through modification tracking).
pub fn dirty_all(session: &mut Session, bed_block: &Ptr, workload: &Workload, round: u32) {
    let arch = session.arch().clone();
    match workload.name {
        "int_array" => {
            let mut bytes = Vec::with_capacity(workload.count as usize * 4);
            for i in 0..workload.count {
                let v = (i ^ round) as i32;
                bytes.extend_from_slice(&if arch.endian.is_little() {
                    v.to_le_bytes()
                } else {
                    v.to_be_bytes()
                });
            }
            session
                .write_bytes_raw(bed_block, &bytes)
                .expect("raw write");
        }
        "double_array" => {
            let mut bytes = Vec::with_capacity(workload.count as usize * 8);
            for i in 0..workload.count {
                let v = f64::from(i) + f64::from(round) * 0.5;
                bytes.extend_from_slice(&if arch.endian.is_little() {
                    v.to_le_bytes()
                } else {
                    v.to_be_bytes()
                });
            }
            session
                .write_bytes_raw(bed_block, &bytes)
                .expect("raw write");
        }
        "int_struct" | "double_struct" | "int_double" | "string" | "small_string" | "pointer"
        | "mix" => {
            dirty_elementwise(session, bed_block, workload, round);
        }
        other => unreachable!("unknown workload {other}"),
    }
}

fn dirty_elementwise(session: &mut Session, block: &Ptr, workload: &Workload, round: u32) {
    for i in 0..workload.count {
        let elem = if workload.count == 1 {
            block.clone()
        } else {
            session.index(block, i).expect("index")
        };
        match workload.name {
            "int_struct" => {
                let f = session.field(&elem, "f").expect("f");
                for k in 0..32 {
                    let cell = session.index(&f, k).expect("cell");
                    session.write_i32(&cell, (i ^ k ^ round) as i32).expect("w");
                }
            }
            "double_struct" => {
                let f = session.field(&elem, "f").expect("f");
                for k in 0..32 {
                    let cell = session.index(&f, k).expect("cell");
                    session
                        .write_f64(&cell, f64::from(i * 32 + k) + f64::from(round))
                        .expect("w");
                }
            }
            "int_double" => {
                session
                    .write_i32(&session.field(&elem, "i").expect("i"), (i ^ round) as i32)
                    .expect("w");
                session
                    .write_f64(
                        &session.field(&elem, "d").expect("d"),
                        f64::from(i) + f64::from(round),
                    )
                    .expect("w");
            }
            "string" => {
                let text = format!("payload-{round}-{i:06}-{}", "x".repeat(200));
                session.write_str(&elem, &text).expect("w");
            }
            "small_string" => {
                let text = format!("{}", (i + round) % 1000)
                    .chars()
                    .take(3)
                    .collect::<String>();
                session.write_str(&elem, &text).expect("w");
            }
            "pointer" => {
                // Re-aim at a different target to genuinely change the word.
                let targets = session.mip_to_ptr("bench/data#targets").expect("targets");
                let t = session
                    .index(&targets, (i + round) % workload.count)
                    .expect("t");
                session.write_ptr(&elem, Some(&t)).expect("w");
            }
            "mix" => {
                session
                    .write_i32(&session.field(&elem, "i").expect("i"), (i ^ round) as i32)
                    .expect("w");
                session
                    .write_f64(
                        &session.field(&elem, "d").expect("d"),
                        f64::from(i) * 1.5 + f64::from(round),
                    )
                    .expect("w");
                session
                    .write_str(
                        &session.field(&elem, "s").expect("s"),
                        &format!("calendar-entry-{round}-{i:05}-{}", "y".repeat(180)),
                    )
                    .expect("w");
                session
                    .write_str(&session.field(&elem, "t").expect("t"), "ab")
                    .expect("w");
            }
            other => unreachable!("{other}"),
        }
    }
}

/// Times `f`, returning its result and the wall-clock duration.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed())
}

/// Runs `f` `n` times and returns the minimum duration (the standard
/// "best of n" for microbenchmarks).
pub fn best_of(n: usize, mut f: impl FnMut() -> Duration) -> Duration {
    (0..n.max(1)).map(|_| f()).min().expect("n >= 1")
}

/// Formats a duration in seconds with sub-millisecond precision.
pub fn secs(d: Duration) -> String {
    format!("{:.4}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_one_megabyte_on_x86() {
        let arch = MachineArch::x86();
        for w in figure4_workloads(1.0) {
            let elem = iw_types::layout::layout_of(&w.ty, &arch).size;
            let total = elem as u64 * u64::from(w.count);
            let mb = WORKLOAD_BYTES as u64;
            assert!(
                (total as i64 - mb as i64).unsigned_abs() <= elem as u64,
                "{}: {total} bytes vs 1MB target",
                w.name
            );
        }
    }

    #[test]
    fn setup_and_dirty_every_workload_small() {
        for w in figure4_workloads(0.01) {
            let mut bed = setup(&w, MachineArch::x86());
            bed.session.wl_acquire(&bed.handle).unwrap();
            dirty_all(&mut bed.session, &bed.block.clone(), &w, 1);
            let (diff, changed, _) = bed.session.collect_segment_diff(&bed.handle).unwrap();
            assert!(changed > 0, "{}: nothing changed", w.name);
            assert!(!diff.block_diffs.is_empty(), "{}", w.name);
            bed.session.wl_release(&bed.handle).unwrap();
        }
    }

    #[test]
    fn timing_helpers() {
        let (v, d) = time(|| 21 * 2);
        assert_eq!(v, 42);
        let m = best_of(3, || d);
        assert_eq!(m, d);
        assert!(secs(Duration::from_millis(1500)).starts_with("1.5"));
    }
}
