//! Release-path overhead of the durable diff store (`iw-durable`):
//! the same acquire-write-release loop against an in-memory server, a
//! WAL-only server, and a WAL+checkpoint server, each release carrying
//! a fixed 1 KiB diff. Reports per-release latency and the relative
//! overhead of making every ack durable (fsync included).
//!
//! Usage: `cargo run --release -p iw-bench --bin bench_durable [ROUNDS]`

use std::path::PathBuf;

use bytes::Bytes;
use iw_bench::{secs, time};
use iw_proto::msg::{LockMode, Reply, Request};
use iw_proto::Coherence;
use iw_server::{DurabilityMode, DurableOptions, Server};
use iw_types::desc::TypeDesc;
use iw_wire::diff::{BlockDiff, DiffRun, NewBlock, SegmentDiff};

const SEGMENT: &str = "bench/durable";
const WORDS: u32 = 256; // 1 KiB of int32 payload per release

/// Version `r` → `r+1`: round 0 allocates the block, later rounds
/// rewrite all of it — a steady 1 KiB diff per release.
fn round_diff(r: u64) -> SegmentDiff {
    let payload = Bytes::from((r as u32).to_be_bytes().repeat(WORDS as usize));
    let mut d = SegmentDiff {
        from_version: r,
        to_version: r + 1,
        ..Default::default()
    };
    if r == 0 {
        d.new_types = vec![(0, TypeDesc::int32())];
        d.new_blocks = vec![NewBlock {
            serial: 0,
            name: None,
            type_serial: 0,
            count: WORDS,
            data: payload,
        }];
    } else {
        d.block_diffs = vec![BlockDiff {
            serial: 0,
            runs: vec![DiffRun {
                start: 0,
                count: u64::from(WORDS),
                data: payload,
            }],
        }];
    }
    d
}

/// Runs `rounds` releases against `server`; returns mean µs/release.
fn drive(server: &Server, rounds: u64) -> f64 {
    let c = server.hello("bench");
    server.open(SEGMENT);
    let (_, elapsed) = time(|| {
        for r in 0..rounds {
            let acq = server.handle_request(&Request::Acquire {
                client: c,
                segment: SEGMENT.into(),
                mode: LockMode::Write,
                have_version: r,
                coherence: Coherence::Full,
            });
            assert!(matches!(acq, Reply::Granted { .. }));
            let rel = server.handle_request(&Request::Release {
                client: c,
                segment: SEGMENT.into(),
                diff: Some(round_diff(r)),
            });
            assert!(matches!(rel, Reply::Released { .. }));
        }
    });
    println!(
        "  {rounds} releases in {} ({:.1} µs/release)",
        secs(elapsed),
        elapsed.as_secs_f64() * 1e6 / rounds as f64
    );
    elapsed.as_secs_f64() * 1e6 / rounds as f64
}

fn durable(mode: DurabilityMode, dir: &PathBuf) -> Server {
    let _ = std::fs::remove_dir_all(dir);
    let opts = DurableOptions {
        mode,
        ..DurableOptions::default()
    };
    let (s, _) = Server::with_durability(dir.clone(), opts).expect("open durable store");
    s
}

fn main() {
    let rounds: u64 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000);
    let scratch = std::env::temp_dir().join(format!("iw-bench-durable-{}", std::process::id()));

    println!("durability off (in-memory server):");
    let base = drive(&Server::new(), rounds);

    println!("durability wal (fsync before every ack, group commit):");
    let wal_dir = scratch.join("wal");
    let wal = drive(&durable(DurabilityMode::Wal, &wal_dir), rounds);

    println!("durability wal+checkpoint (default interval):");
    let full_dir = scratch.join("full");
    let full = drive(&durable(DurabilityMode::WalCheckpoint, &full_dir), rounds);

    println!(
        "overhead vs off: wal {:+.0}% ({:.1} µs/release added), wal+checkpoint {:+.0}%",
        (wal / base - 1.0) * 100.0,
        wal - base,
        (full / base - 1.0) * 100.0,
    );
    let _ = std::fs::remove_dir_all(&scratch);
}
