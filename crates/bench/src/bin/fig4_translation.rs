//! Figure 4: client cost to translate 1 MB of data.
//!
//! For each of the paper's nine data mixes, measures
//!
//! - `rpc_xdr`        — rpcgen-style XDR marshaling of the whole structure
//!   (the paper plots one RPC bar; unmarshaling "costs were roughly
//!   identical" and is reported here for completeness);
//! - `collect_block`  — InterWeave translation to wire format with diffing
//!   disabled (no-diff mode);
//! - `collect_diff`   — the same with full twin diffing (all data
//!   modified);
//! - `apply_block`    — installing a whole-block wire image;
//! - `apply_diff`     — installing the equivalent wire diff.
//!
//! Usage: `cargo run --release -p iw-bench --bin fig4_translation [scale]`
//! where `scale` shrinks the 1 MB workloads (default 1.0).

use iw_bench::{dirty_all, figure4_workloads, secs, setup, time};
use iw_core::{Session, TrackMode};
use iw_proto::Loopback;
use iw_rpc::{marshal, rmi_serialize, unmarshal, MemSource, XdrArena, XdrType};
use iw_types::MachineArch;

/// Pointer resolution against a session's heap for the XDR deep-copy
/// baseline.
struct HeapMem<'a>(&'a Session);

impl MemSource for HeapMem<'_> {
    fn bytes(&self, va: u64, len: usize) -> Option<&[u8]> {
        self.0.heap().read_bytes(va, len).ok()
    }
}

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let iters = 3;
    println!(
        "# Figure 4 — client cost to translate {}MB of data (seconds)",
        scale
    );
    println!(
        "{:<14} {:>9} {:>14} {:>13} {:>12} {:>11} {:>9}",
        "workload",
        "rpc_xdr",
        "collect_block",
        "collect_diff",
        "apply_block",
        "apply_diff",
        "rmi_ser"
    );

    let mut sums = [0.0f64; 5];
    let mut sum_rmi = 0.0f64;
    let mut sums_no_ptr_small = [0.0f64; 5];
    let mut metric_dumps: Vec<(&'static str, String)> = Vec::new();
    for w in figure4_workloads(scale)
        .into_iter()
        .filter(|w| std::env::var("IW_FIG4_ONLY").map_or(true, |o| o == w.name))
    {
        let mut bed = setup(&w, MachineArch::x86());
        let block_xdr = XdrType::array(w.xdr.clone(), w.count);

        // A reader, synced to the initial state, for the apply side.
        let mut reader = Session::new(
            MachineArch::x86(),
            Box::new(Loopback::new(bed.server.clone())),
        )
        .expect("reader");
        reader.fetch_segment("bench/data").expect("sync");
        let rh = reader.open_segment("bench/data").expect("open");

        bed.session.wl_acquire(&bed.handle).expect("wl");
        let block = bed.block.clone();

        let mut best = [f64::MAX; 5];
        let mut best_rmi = f64::MAX;
        for round in 1..=iters {
            dirty_all(&mut bed.session, &block, &w, round);

            // RPC XDR marshal + unmarshal of the full structure.
            let local = bed
                .session
                .read_bytes_raw(&block, (w.count as usize) * elem_size(&w))
                .expect("local image")
                .to_vec();
            let (wire_rpc, d_marshal) = time(|| {
                marshal(
                    &block_xdr,
                    &local,
                    bed.session.arch(),
                    &HeapMem(&bed.session),
                )
                .expect("marshal")
            });
            let mut out = vec![0u8; local.len()];
            let mut arena = XdrArena::new(0x4000_0000, local.len() + (1 << 16));
            let (_, d_unmarshal) = time(|| {
                unmarshal(
                    &block_xdr,
                    &wire_rpc,
                    &mut out,
                    &MachineArch::x86(),
                    &mut arena,
                )
                .expect("unmarshal")
            });
            let d_rpc = (d_marshal + d_unmarshal) / 2;

            // Java-RMI-style serialization (for the paper's §1 "20×"
            // comparison point).
            let (_, d_rmi) = time(|| {
                rmi_serialize(
                    &block_xdr,
                    &local,
                    bed.session.arch(),
                    &HeapMem(&bed.session),
                )
                .expect("rmi")
            });

            // InterWeave collect with diffing.
            bed.session
                .set_tracking_mode(&bed.handle, TrackMode::Diff)
                .expect("mode");
            let ((diff, _, _), d_collect_diff) = time(|| {
                bed.session
                    .collect_segment_diff(&bed.handle)
                    .expect("collect")
            });

            // InterWeave collect in no-diff (block) mode.
            bed.session
                .set_tracking_mode(
                    &bed.handle,
                    TrackMode::NoDiff {
                        remaining: u32::MAX,
                    },
                )
                .expect("mode");
            let ((block_diff, _, _), d_collect_block) = time(|| {
                bed.session
                    .collect_segment_diff(&bed.handle)
                    .expect("collect")
            });
            bed.session
                .set_tracking_mode(&bed.handle, TrackMode::Diff)
                .expect("mode");

            // Apply sides on the reader.
            let (_, d_apply_diff) = time(|| reader.apply_segment_diff(&rh, &diff).expect("apply"));
            let (_, d_apply_block) =
                time(|| reader.apply_segment_diff(&rh, &block_diff).expect("apply"));

            for (slot, d) in [
                d_rpc,
                d_collect_block,
                d_collect_diff,
                d_apply_block,
                d_apply_diff,
            ]
            .iter()
            .enumerate()
            {
                best[slot] = best[slot].min(d.as_secs_f64());
            }
            best_rmi = best_rmi.min(d_rmi.as_secs_f64());
        }
        bed.session.wl_release(&bed.handle).expect("release");

        // Registry snapshot for this workload: writer-side client metrics
        // merged with the loopback server's own registry.
        let mut snap = bed.session.metrics_snapshot();
        snap.merge_prefixed("", bed.server.metrics_snapshot());
        metric_dumps.push((w.name, snap.to_json()));

        println!(
            "{:<14} {:>9} {:>14} {:>13} {:>12} {:>11} {:>9}",
            w.name,
            secs(std::time::Duration::from_secs_f64(best[0])),
            secs(std::time::Duration::from_secs_f64(best[1])),
            secs(std::time::Duration::from_secs_f64(best[2])),
            secs(std::time::Duration::from_secs_f64(best[3])),
            secs(std::time::Duration::from_secs_f64(best[4])),
            secs(std::time::Duration::from_secs_f64(best_rmi)),
        );
        for i in 0..5 {
            sums[i] += best[i];
            if w.name != "pointer" && w.name != "small_string" {
                sums_no_ptr_small[i] += best[i];
            }
        }
        sum_rmi += best_rmi;
    }

    println!("\n# Paper §4.1 comparison points (averaged over the 9 mixes):");
    println!(
        "  collect/apply block vs RPC: {:+.0}%  (paper: block 25% faster)",
        ((sums[1] + sums[3]) / 2.0 / sums[0] - 1.0) * 100.0
    );
    println!(
        "  collect/apply diff  vs RPC: {:+.0}%  (paper: diff 8% faster)",
        ((sums[2] + sums[4]) / 2.0 / sums[0] - 1.0) * 100.0
    );
    println!(
        "  collect block vs collect diff: {:+.0}%  (paper: block 39% faster)",
        (sums[1] / sums[2] - 1.0) * 100.0
    );
    println!(
        "  apply block vs apply diff: {:+.0}%  (paper: block 4% faster)",
        (sums[3] / sums[4] - 1.0) * 100.0
    );
    println!(
        "  RMI-style serialization vs collect block: {:.1}x slower  (paper [4]: ~20x)",
        sum_rmi / sums[1]
    );
    println!(
        "  excl. pointer & small_string, block vs RPC: {:+.0}%  (paper: 18% faster)",
        ((sums_no_ptr_small[1] + sums_no_ptr_small[3]) / 2.0 / sums_no_ptr_small[0] - 1.0) * 100.0
    );

    println!("\n# Metrics snapshots (iw-telemetry JSON, one object per workload):");
    for (name, json) in metric_dumps {
        println!("{name} {json}");
    }
}

fn elem_size(w: &iw_bench::Workload) -> usize {
    iw_types::layout::layout_of(&w.ty, &MachineArch::x86()).size as usize
}
