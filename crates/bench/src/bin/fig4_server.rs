//! Server-side data-management costs for the Figure 4 workloads.
//!
//! "The data management costs for the InterWeave server are much lower
//! than that on the client in all cases other than pointer and
//! small_string because the server maintains data in wire format. The
//! high costs for pointer and small_string stem from the fact that
//! strings and MIPs are of variable length, and are stored separately
//! from their wire format blocks." (§4.1, referring to the TR for full
//! numbers)
//!
//! For each workload this harness measures, on the server:
//!
//! - `srv_apply`   — applying a fully-changed client diff to wire storage;
//! - `srv_collect` — building the update diff for a stale client (cache
//!   cleared);
//!
//! and prints them next to the client's collect cost for the ratio check.
//!
//! Usage: `cargo run --release -p iw-bench --bin fig4_server [scale]`

use std::sync::Arc;

use iw_bench::{dirty_all, figure4_workloads, secs, setup, time};
use iw_core::Session;
use iw_proto::{Handler, Loopback};
use iw_server::Server;
use iw_types::MachineArch;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    println!("# Figure 4 (server side) — data management costs, {scale} MB (seconds)");
    println!(
        "{:<14} {:>12} {:>11} {:>12} {:>16}",
        "workload", "cli_collect", "srv_apply", "srv_collect", "srv/cli ratio"
    );

    let mut ratios: Vec<(&str, f64)> = Vec::new();
    for w in figure4_workloads(scale) {
        // Build our own server so we can reach inside it.
        let server = Arc::new(Server::new());
        let handler: Arc<dyn Handler> = server.clone();
        let mut writer =
            Session::new(MachineArch::x86(), Box::new(Loopback::new(handler))).expect("writer");
        // Recreate the bed manually against this server.
        let bed_template = setup(&w, MachineArch::x86());
        drop(bed_template); // only needed the workload definition path
        let h = writer.open_segment("bench/data").expect("open");
        writer.wl_acquire(&h).expect("wl");
        let block = writer
            .malloc(&h, &w.ty, w.count, Some("blk"))
            .expect("malloc");
        if w.has_pointers {
            let targets = writer
                .malloc(
                    &h,
                    &iw_types::desc::TypeDesc::int32(),
                    w.count,
                    Some("targets"),
                )
                .expect("targets");
            iw_bench::aim_pointers(&mut writer, &w, &block, &targets);
        }
        writer.wl_release(&h).expect("rel");

        // Dirty everything; collect the full diff client-side.
        writer.wl_acquire(&h).expect("wl");
        dirty_all(&mut writer, &block, &w, 1);
        let ((diff, _, _), d_cli) = time(|| writer.collect_segment_diff(&h).expect("collect"));

        let (d_apply, d_collect) = server
            .with_segment_mut("bench/data", |seg| {
                let (_, d_apply) = time(|| seg.apply_diff(&diff).expect("apply"));
                seg.clear_diff_cache();
                let (_, d_collect) = time(|| seg.collect_update(901, 1).expect("update"));
                (d_apply, d_collect)
            })
            .expect("segment");
        // The diff was applied to the server out of band (for timing), so
        // a normal release would double-apply; just drop the session —
        // each workload gets a fresh server.
        drop(writer);

        let srv_cost = (d_apply + d_collect).as_secs_f64() / 2.0;
        let ratio = srv_cost / d_cli.as_secs_f64().max(1e-9);
        ratios.push((w.name, ratio));
        println!(
            "{:<14} {:>12} {:>11} {:>12} {:>15.2}x",
            w.name,
            secs(d_cli),
            secs(d_apply),
            secs(d_collect),
            ratio
        );
    }

    println!("\n# paper §4.1: server cost ≪ client cost except for pointer and");
    println!("# small_string (variable-length items live out of line).");
    let worst: Vec<&str> = {
        let mut r = ratios.clone();
        r.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
        r.iter().take(2).map(|(n, _)| *n).collect()
    };
    println!("# measured worst two ratios: {worst:?}");
}
