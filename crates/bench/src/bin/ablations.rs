//! Ablations for the §3.3 optimizations.
//!
//! "All of them provided measurable improvements in performance and/or
//! bandwidth; space constraints preclude a separate presentation" — this
//! harness provides that separate presentation:
//!
//! 1. **diff-run splicing** — translation time and diff size on the
//!    ratio-2 pattern (every other word modified), spliced vs not;
//! 2. **isomorphic type descriptors** — flattened-layout iteration cost
//!    for a 32-int struct array, merged vs unmerged descriptors;
//! 3. **no-diff mode** — repeated whole-segment overwrites with
//!    adaptation on vs off (release time);
//! 4. **last-block prediction** — diff application hit rate and time with
//!    prediction on vs off;
//! 5. **diff caching** — server update construction, cache warm vs cold.
//!
//! Usage: `cargo run --release -p iw-bench --bin ablations`

use std::sync::Arc;

use iw_bench::{secs, time};
use iw_core::{Session, SessionOptions, TrackMode};
use iw_proto::{Handler, Loopback};
use iw_server::Server;
use iw_types::desc::TypeDesc;
use iw_types::flat::FlatLayout;
use iw_types::MachineArch;

const N_INTS: u32 = 1 << 18; // 1 MB of ints

fn session_pair(opts: SessionOptions) -> (Session, Session, Arc<Server>) {
    let server = Arc::new(Server::new());
    let handler: Arc<dyn Handler> = server.clone();
    let w = Session::with_options(
        MachineArch::x86(),
        Box::new(Loopback::new(handler.clone())),
        opts.clone(),
    )
    .expect("writer");
    let r = Session::with_options(MachineArch::x86(), Box::new(Loopback::new(handler)), opts)
        .expect("reader");
    (w, r, server)
}

fn main() {
    splicing();
    isomorphic();
    no_diff_mode();
    prediction();
    diff_caching();
}

/// 1. Diff-run splicing on the paper's worst case: every other word.
fn splicing() {
    println!("# ablation 1 — diff-run splicing (ratio-2 pattern, {N_INTS} ints)");
    for (label, splice) in [("spliced", true), ("unspliced", false)] {
        let opts = SessionOptions {
            splice,
            ..Default::default()
        };
        let (mut w, _, _) = session_pair(opts);
        let h = w.open_segment("ab/splice").expect("open");
        w.wl_acquire(&h).expect("wl");
        let arr = w
            .malloc(&h, &TypeDesc::int32(), N_INTS, Some("arr"))
            .expect("m");
        w.wl_release(&h).expect("rel");

        w.wl_acquire(&h).expect("wl");
        let mut i = 0;
        while i < N_INTS {
            let c = w.index(&arr, i).expect("c");
            w.write_i32(&c, -1 - i as i32).expect("w");
            i += 2;
        }
        let ((diff, _, _), d) = time(|| w.collect_segment_diff(&h).expect("collect"));
        let runs: usize = diff.block_diffs.iter().map(|b| b.runs.len()).sum();
        println!(
            "  {label:<10} collect {} s, {} runs, {} B wire",
            secs(d),
            runs,
            diff.payload_len()
        );
        w.wl_release(&h).expect("rel");
    }
    println!();
}

/// 2. Isomorphic type descriptors: merged vs per-field layouts.
fn isomorphic() {
    println!("# ablation 2 — isomorphic type descriptors (struct of 32 ints × 8192)");
    let fields: Vec<(String, TypeDesc)> = (0..32)
        .map(|i| (format!("f{i}"), TypeDesc::int32()))
        .collect();
    let ty = TypeDesc::new(iw_types::desc::TypeKind::Struct {
        name: "int_struct".into(),
        fields: fields
            .into_iter()
            .map(|(name, ty)| iw_types::desc::Field { name, ty })
            .collect(),
    });
    let arr = TypeDesc::array(ty, 8192);
    let arch = MachineArch::x86();
    for (label, fl) in [
        ("merged", FlatLayout::new(&arr, &arch)),
        ("unmerged", FlatLayout::new_unoptimized(&arr, &arch)),
    ] {
        let runs = fl.runs().count();
        let (n, d) = time(|| {
            let mut n = 0u64;
            for _ in 0..8 {
                for r in fl.runs() {
                    n += u64::from(r.count);
                }
            }
            n
        });
        println!(
            "  {label:<10} {} run nodes, walk of {} prims ×8: {} s",
            runs,
            n / 8,
            secs(d)
        );
    }
    println!();
}

/// 3. No-diff mode adaptation under whole-segment overwrites.
fn no_diff_mode() {
    println!("# ablation 3 — no-diff mode (8 whole-array overwrites)");
    for (label, adapt) in [("adaptive", true), ("always-diff", false)] {
        let opts = SessionOptions {
            no_diff_adaptation: adapt,
            ..Default::default()
        };
        let (mut w, _, _) = session_pair(opts);
        let h = w.open_segment("ab/nodiff").expect("open");
        w.wl_acquire(&h).expect("wl");
        let arr = w
            .malloc(&h, &TypeDesc::int32(), N_INTS, Some("arr"))
            .expect("m");
        w.wl_release(&h).expect("rel");

        let mut total = std::time::Duration::ZERO;
        for round in 0..8u32 {
            w.wl_acquire(&h).expect("wl");
            let bytes: Vec<u8> = (0..N_INTS)
                .flat_map(|i| (i ^ round).to_le_bytes())
                .collect();
            w.write_bytes_raw(&arr, &bytes).expect("w");
            let (_, d) = time(|| w.wl_release(&h).expect("rel"));
            total += d;
        }
        let mode = {
            w.wl_acquire(&h).expect("wl");
            let m = w.tracking_mode(&h).expect("mode");
            w.wl_release(&h).expect("rel");
            m
        };
        println!(
            "  {label:<12} 8 releases in {} s, {} write faults (final mode: {})",
            secs(total),
            w.twin_faults(),
            match mode {
                TrackMode::Diff => "diff",
                TrackMode::NoDiff { .. } => "no-diff",
            }
        );
    }
    println!();
}

/// 4. Last-block prediction during diff application.
fn prediction() {
    println!("# ablation 4 — last-block prediction (512 small blocks, 8 update rounds)");
    for (label, pred) in [("predicted", true), ("tree-only", false)] {
        let opts = SessionOptions {
            prediction: pred,
            ..Default::default()
        };
        let (mut w, mut r, _) = session_pair(opts.clone());
        let h = w.open_segment("ab/pred").expect("open");
        w.wl_acquire(&h).expect("wl");
        let blocks: Vec<_> = (0..512)
            .map(|_| w.malloc(&h, &TypeDesc::int32(), 16, None).expect("m"))
            .collect();
        w.wl_release(&h).expect("rel");
        r.fetch_segment("ab/pred").expect("sync");
        let rh = r.open_segment("ab/pred").expect("open");

        let mut total = std::time::Duration::ZERO;
        for round in 0..8 {
            w.wl_acquire(&h).expect("wl");
            for b in &blocks {
                w.write_i32(b, round).expect("w");
            }
            let (diff, _, _) = w.collect_segment_diff(&h).expect("collect");
            w.wl_release(&h).expect("rel");
            let (_, d) = time(|| r.apply_segment_diff(&rh, &diff).expect("apply"));
            total += d;
        }
        let st = r.stats();
        println!(
            "  {label:<10} apply {} s, predictor {}/{} lookups",
            secs(total),
            st.apply_pred_hits,
            st.apply_block_lookups
        );
    }
    println!();
}

/// 5. Server diff caching.
fn diff_caching() {
    println!("# ablation 5 — server diff caching (1 MB array, 1% modified)");
    let (mut w, _, server) = session_pair(SessionOptions::default());
    let h = w.open_segment("ab/cache").expect("open");
    w.wl_acquire(&h).expect("wl");
    let arr = w
        .malloc(&h, &TypeDesc::int32(), N_INTS, Some("arr"))
        .expect("m");
    w.wl_release(&h).expect("rel");
    w.wl_acquire(&h).expect("wl");
    let mut i = 0;
    while i < N_INTS {
        let c = w.index(&arr, i).expect("c");
        w.write_i32(&c, 7).expect("w");
        i += 100;
    }
    w.wl_release(&h).expect("rel");

    let (warm, hits, cold) = server
        .with_segment_mut("ab/cache", |seg| {
            // Warm: the client's own diff is in the cache.
            let (_, warm) = time(|| seg.collect_update(1001, 1).expect("upd"));
            let hits = seg.diff_cache_hits;
            seg.clear_diff_cache();
            let (_, cold) = time(|| seg.collect_update(1002, 1).expect("upd"));
            (warm, hits, cold)
        })
        .expect("segment");
    println!(
        "  warm cache: {} s (hits {}), cold rebuild: {} s",
        secs(warm),
        hits,
        secs(cold)
    );
    println!();
}
