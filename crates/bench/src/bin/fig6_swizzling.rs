//! Figure 6: pointer swizzling cost as a function of pointed-to object
//! type.
//!
//! Measures `collect pointer` (local pointer → MIP, via `ptr_to_mip`) and
//! `apply pointer` (MIP → local pointer, via `mip_to_ptr`) for:
//!
//! - `int1`     — an intra-segment pointer to the start of an integer
//!   block;
//! - `struct1`  — an intra-segment pointer into the middle of a 32-field
//!   structure;
//! - `cross#n`  — cross-segment pointers into a segment with n blocks,
//!   n ∈ {1, 16, 64, 256, 1024, 4096, 16384, 65536} (the paper's modest
//!   rise with n reflects metadata-tree search depth).
//!
//! Usage: `cargo run --release -p iw-bench --bin fig6_swizzling [reps]`

use std::sync::Arc;

use iw_bench::{best_of, time};
use iw_core::Session;
use iw_proto::{Handler, Loopback};
use iw_server::Server;
use iw_types::desc::TypeDesc;
use iw_types::MachineArch;

fn main() {
    let reps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    let server: Arc<dyn Handler> = Arc::new(Server::new());
    let mut s =
        Session::new(MachineArch::x86(), Box::new(Loopback::new(server.clone()))).expect("session");

    println!("# Figure 6 — pointer swizzling cost (µs per pointer, best of 5 × {reps} reps)");
    println!("{:<12} {:>15} {:>14}", "case", "collect_ptr", "apply_ptr");

    // int1: pointer to the start of an int block.
    let h = s.open_segment("sw/main").expect("open");
    s.wl_acquire(&h).expect("wl");
    let int_block = s
        .malloc(&h, &TypeDesc::int32(), 8, Some("ints"))
        .expect("m");
    let struct_ty =
        TypeDesc::structure("s32", vec![("f", TypeDesc::array(TypeDesc::float64(), 32))]);
    let st = s.malloc(&h, &struct_ty, 1, Some("st")).expect("m");
    s.wl_release(&h).expect("rel");
    s.rl_acquire(&h).expect("rl");

    let struct_mid = s.index(&s.field(&st, "f").expect("f"), 17).expect("mid");
    report(&mut s, "int1", &int_block, reps);
    report(&mut s, "struct1", &struct_mid, reps);
    s.rl_release(&h).expect("rl");

    for n in [1u32, 16, 64, 256, 1024, 4096, 16384, 65536] {
        // A separate segment with n blocks; the pointer crosses segments.
        let name = format!("sw/cross{n}");
        let hx = s.open_segment(&name).expect("open");
        s.wl_acquire(&hx).expect("wl");
        let mut mid = None;
        for b in 0..n {
            let p = s.malloc(&hx, &TypeDesc::int32(), 4, None).expect("m");
            if b == n / 2 {
                mid = Some(p);
            }
        }
        s.wl_release(&hx).expect("rel");
        s.rl_acquire(&hx).expect("rl");
        let target = mid.expect("mid block");
        report(&mut s, &format!("cross{n}"), &target, reps);
        s.rl_release(&hx).expect("rl");
    }
}

fn report(s: &mut Session, case: &str, target: &iw_core::Ptr, reps: usize) {
    // collect: local pointer -> MIP string.
    let d_collect = best_of(5, || {
        let (_, d) = time(|| {
            let mut sink = 0usize;
            for _ in 0..reps {
                let mip = s.ptr_to_mip(target).expect("swizzle");
                sink = sink.wrapping_add(mip.len());
            }
            sink
        });
        d
    });
    let mip = s.ptr_to_mip(target).expect("swizzle");
    // apply: MIP string -> local pointer.
    let d_apply = best_of(5, || {
        let (_, d) = time(|| {
            let mut sink = 0u64;
            for _ in 0..reps {
                let p = s.mip_to_ptr(&mip).expect("unswizzle");
                sink = sink.wrapping_add(p.va());
            }
            sink
        });
        d
    });
    println!(
        "{:<12} {:>15.3} {:>14.3}",
        case,
        d_collect.as_secs_f64() * 1e6 / reps as f64,
        d_apply.as_secs_f64() * 1e6 / reps as f64,
    );
}
