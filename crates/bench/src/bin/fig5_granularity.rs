//! Figure 5: diff management cost as a function of modification
//! granularity (1 MB total data).
//!
//! A 1 MB integer array is modified at every `ratio`-th word, for ratio ∈
//! {1, 2, 4, …, 16384}; the table reports
//!
//! - `word_diff`  — client word-by-word twin comparison only;
//! - `translate`  — client wire translation (collect − word diffing);
//! - `collect`    — full client diff collection;
//! - `srv_apply`  — server applying the client diff to wire storage;
//! - `srv_collect`— server building the update diff for a stale client
//!   (constant for ratios ≤ 16: subblock granularity loses fine detail);
//! - `cli_apply`  — client applying the server's update diff.
//!
//! Usage: `cargo run --release -p iw-bench --bin fig5_granularity [scale]`

use std::sync::Arc;

use iw_bench::{secs, time};
use iw_core::diffing::find_byte_runs;
use iw_core::Session;
use iw_proto::{Handler, Loopback};
use iw_server::Server;
use iw_types::desc::TypeDesc;
use iw_types::MachineArch;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let n_ints: u32 = ((1u32 << 20) as f64 * scale / 4.0) as u32;
    println!(
        "# Figure 5 — diff management cost vs modification granularity ({n_ints} ints, seconds)"
    );
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>10} {:>11} {:>10}",
        "ratio", "word_diff", "translate", "collect", "srv_apply", "srv_collect", "cli_apply"
    );

    let mut ratio = 1u32;
    let mut last_metrics: Option<String> = None;
    while ratio <= 16384 {
        let server = Arc::new(Server::new());
        let handler: Arc<dyn Handler> = server.clone();
        let mut writer = Session::new(MachineArch::x86(), Box::new(Loopback::new(handler.clone())))
            .expect("writer");
        let mut reader =
            Session::new(MachineArch::x86(), Box::new(Loopback::new(handler))).expect("reader");

        // Version 1: the full array.
        let h = writer.open_segment("g/seg").expect("open");
        writer.wl_acquire(&h).expect("wl");
        let arr = writer
            .malloc(&h, &TypeDesc::int32(), n_ints, Some("arr"))
            .expect("malloc");
        let zeros: Vec<u8> = (0..n_ints).flat_map(|i| i.to_le_bytes()).collect();
        writer.write_bytes_raw(&arr, &zeros).expect("fill");
        writer.wl_release(&h).expect("release");
        reader.fetch_segment("g/seg").expect("sync");
        let rh = reader.open_segment("g/seg").expect("open");

        // Touch every `ratio`-th word.
        writer.wl_acquire(&h).expect("wl");
        let mut i = 0;
        while i < n_ints {
            let cell = writer.index(&arr, i).expect("cell");
            writer.write_i32(&cell, -(i as i32) - 1).expect("touch");
            i += ratio;
        }

        // (a) Pure word diffing over the dirty pages.
        let word = MachineArch::x86().word_size as usize;
        let (n_runs, d_word) = time(|| {
            let heap = writer.heap();
            let seg = heap.segment_id("g/seg").expect("seg");
            let mut runs = 0usize;
            for &idx in heap.segment(seg).subseg_indices() {
                for (_, twin, cur) in heap.subseg(idx).modified_pages() {
                    runs += find_byte_runs(twin, cur, word, true).len();
                }
            }
            runs
        });

        // (b) Full client collection (word diffing + translation).
        let ((diff, _, _), d_collect) = time(|| writer.collect_segment_diff(&h).expect("collect"));
        let d_translate = d_collect.saturating_sub(d_word);

        // (c) Server applies the client's diff, then (d) builds the
        // update for a stale (v1) client, cache bypassed so construction
        // cost is visible.
        let (d_srv_apply, upd, d_srv_collect) = server
            .with_segment_mut("g/seg", |seg| {
                let (_, d_srv_apply) = time(|| seg.apply_diff(&diff).expect("apply"));
                seg.clear_diff_cache();
                let (upd, d_srv_collect) = time(|| seg.collect_update(999, 1).expect("update"));
                (d_srv_apply, upd, d_srv_collect)
            })
            .expect("server segment");

        // (e) Client applies the server's update.
        let (_, d_cli_apply) = time(|| reader.apply_segment_diff(&rh, &upd).expect("apply"));

        println!(
            "{:>6} {:>10} {:>10} {:>10} {:>10} {:>11} {:>10}   ({} page runs, {} B wire)",
            ratio,
            secs(d_word),
            secs(d_translate),
            secs(d_collect),
            secs(d_srv_apply),
            secs(d_srv_collect),
            secs(d_cli_apply),
            n_runs,
            upd.payload_len(),
        );

        // Registry snapshot for the finest granularity (ratio 1): writer
        // client metrics merged with the server's own registry.
        if ratio == 1 {
            let mut snap = writer.metrics_snapshot();
            snap.merge_prefixed("", server.metrics_snapshot());
            last_metrics = Some(snap.to_json());
        }
        ratio *= 2;
    }
    println!("\n# expected artifacts (paper §4.2):");
    println!("#  - srv_collect / cli_apply constant for ratios 1..16 (16-prim subblocks)");
    println!("#  - word_diff knee at ratio 1024 (4 KB pages / 4 B words)");
    println!("#  - translate jump between ratios 2 and 4 (run splicing loses effect)");
    if let Some(json) = last_metrics {
        println!("\n# Metrics snapshot (iw-telemetry JSON, ratio=1 run):");
        println!("{json}");
    }
}
