//! Figure 7: total bandwidth requirement of the datamining application.
//!
//! The database server seeds the shared sequence lattice with half the
//! database, then publishes increments of 1% at a time (each increment is
//! one segment version). The mining client synchronizes under five
//! configurations and the harness reports total bytes received:
//!
//! - `full_transfer` — the whole summary structure is fetched at every
//!   new version (the RPC-without-caching strawman);
//! - `diff_only`     — wire-format diffs at every version (Full
//!   coherence with caching);
//! - `delta_2/3/4`   — the client lets its copy go 2/3/4 versions stale
//!   before updating (relaxed Delta coherence).
//!
//! Usage:
//! `cargo run --release -p iw-bench --bin fig7_datamining [--paper]`
//! (`--paper` runs the full 100 000-customer configuration; the default
//! is a 20 000-customer run with identical shape.)

use std::sync::Arc;

use iw_core::Session;
use iw_mining::{generate, GenConfig, Lattice, LatticePublisher};
use iw_proto::{Coherence, Handler, Loopback};
use iw_server::Server;
use iw_types::MachineArch;

const SEGMENT: &str = "mine/lattice";
const INCREMENTS: usize = 50;

fn main() {
    let paper = std::env::args().any(|a| a == "--paper");
    let cfg = if paper {
        GenConfig::paper()
    } else {
        GenConfig {
            customers: 20_000,
            items: 1000,
            avg_transactions: 1.25,
            avg_items_per_txn: 8.0,
            patterns: 1000,
            avg_pattern_len: 4.0,
            seed: 0x1CDC2003,
        }
    };
    println!(
        "# Figure 7 — datamining bandwidth ({} customers, {} items, {} patterns)",
        cfg.customers, cfg.items, cfg.patterns
    );
    let db = generate(&cfg);
    // Support floor scaled to the database: the frequent set is sizeable
    // and stable, and every increment nudges the supports of the popular
    // core — the paper's "summary structure changes slowly over time".
    let min_support = (cfg.customers / 2000).max(2);

    // The publisher drives the lattice through `INCREMENTS` versions; each
    // reader configuration replays the same version stream.
    let configs: [(&str, Option<Coherence>); 5] = [
        ("full_transfer", None),
        ("diff_only", Some(Coherence::Full)),
        ("delta_2", Some(Coherence::Delta(1))),
        ("delta_3", Some(Coherence::Delta(2))),
        ("delta_4", Some(Coherence::Delta(3))),
    ];

    println!(
        "{:<14} {:>12} {:>10} {:>8}",
        "configuration", "bytes_recv", "MB", "fetches"
    );
    let mut diff_only_bytes = None;
    let mut full_bytes = None;
    let mut diff_only_metrics = None;
    for (name, coherence) in configs {
        let (bytes, fetches, metrics) = run_config(&db, min_support, coherence);
        println!(
            "{:<14} {:>12} {:>10.2} {:>8}",
            name,
            bytes,
            bytes as f64 / (1024.0 * 1024.0),
            fetches
        );
        if name == "diff_only" {
            diff_only_bytes = Some(bytes);
            diff_only_metrics = Some(metrics);
        }
        if name == "full_transfer" {
            full_bytes = Some(bytes);
        }
    }
    if let (Some(full), Some(diff)) = (full_bytes, diff_only_bytes) {
        println!(
            "\n# diffs cut bandwidth by {:.0}% vs full transfer (paper: ≈80%)",
            (1.0 - diff as f64 / full as f64) * 100.0
        );
    }
    if let Some(json) = diff_only_metrics {
        println!("\n# Metrics snapshot (iw-telemetry JSON, diff_only reader + server):");
        println!("{json}");
    }
}

/// Runs the full increment schedule with one reader under `coherence`
/// (`None` = re-fetch the whole structure each version). Returns
/// (reader bytes received, update fetch count, metrics snapshot JSON).
fn run_config(
    db: &iw_mining::Database,
    min_support: u32,
    coherence: Option<Coherence>,
) -> (u64, u64, String) {
    let server = Arc::new(Server::new());
    let handler: Arc<dyn Handler> = server.clone();
    let mut publisher_session = Session::new(
        MachineArch::alpha(),
        Box::new(Loopback::new(handler.clone())),
    )
    .expect("publisher");

    // Seed with half the database ("initially generated using half the
    // database").
    let mut lattice = Lattice::new(4, min_support);
    let half = db.customers.len() / 2;
    lattice.update(db.slice(0, half));
    let mut publisher = LatticePublisher::create(&mut publisher_session, SEGMENT).expect("create");
    publisher
        .publish(&mut publisher_session, &lattice)
        .expect("seed");

    // The mining client appears after the seed.
    let mut reader =
        Session::new(MachineArch::x86(), Box::new(Loopback::new(handler))).expect("reader");
    let h = reader.open_segment(SEGMENT).expect("open");
    if let Some(c) = coherence {
        reader.set_coherence(&h, c).expect("coherence");
        reader.rl_acquire(&h).expect("initial sync");
        reader.rl_release(&h).expect("release");
    }
    reader.reset_transport_stats();

    // 50 increments of 1% each ("an additional 1% of the database each
    // time"), the reader querying after every increment.
    let step = db.customers.len() / 100;
    let mut fetches = 0u64;
    for round in 0..INCREMENTS {
        lattice.update(db.slice(half + round * step, step));
        publisher
            .publish(&mut publisher_session, &lattice)
            .expect("publish");
        match coherence {
            Some(_) => {
                let before = reader.stats().diffs_applied;
                reader.rl_acquire(&h).expect("rl");
                reader.rl_release(&h).expect("rl");
                if reader.stats().diffs_applied > before {
                    fetches += 1;
                }
            }
            None => {
                // Full transfer: a cache-less client fetches everything.
                let mut fresh = Session::new(
                    MachineArch::x86(),
                    Box::new(Loopback::new(server.clone() as Arc<dyn Handler>)),
                )
                .expect("fresh");
                fresh.fetch_segment(SEGMENT).expect("full fetch");
                let got = fresh.transport_stats().bytes_received;
                fetches += 1;
                // Accumulate into the reader's tally via a side counter.
                FULL_BYTES.with(|b| *b.borrow_mut() += got);
            }
        }
    }
    let bytes = match coherence {
        Some(_) => reader.transport_stats().bytes_received,
        None => FULL_BYTES.with(|b| {
            let v = *b.borrow();
            *b.borrow_mut() = 0;
            v
        }),
    };
    let mut snap = reader.metrics_snapshot();
    snap.merge_prefixed("", server.metrics_snapshot());
    (bytes, fetches, snap.to_json())
}

thread_local! {
    static FULL_BYTES: std::cell::RefCell<u64> = const { std::cell::RefCell::new(0) };
}
