//! Trajectory benchmark for the translation hot path: measures Figure 4
//! collect/apply across thread counts and across the layout-identity
//! dimension (isomorphic fast path on vs off), and emits `BENCH_9.json`.
//!
//! Two dimensions per mix:
//!
//! - **thread count** (on x86, where translation always walks the
//!   descriptor): `collect_segment_diff` and `apply_segment_diff` with
//!   translation pinned to 1 thread, 2 threads, and auto;
//! - **layout identity** (on big-endian sparc_v9, where packed
//!   pointer-free mixes are wire-identical): the same pair with the
//!   isomorphic fast path enabled vs disabled, plus a raw `memcpy`
//!   bandwidth reference over the same image size.
//!
//! A third dimension measures the wire itself: every mix's full-dirty
//! diff encoded as v1, v2 (varint/delta), and v2 with adaptive LZ
//! compression — bytes on the wire plus encode/decode wall time — and
//! emits `BENCH_10.json`. Bytes are deterministic (same diff → same
//! encoding), so the byte gate is far tighter than any timing gate.
//!
//! The JSON doubles as a CI regression gate: pass `--baseline <path>` to
//! compare both the auto-thread total and the iso-mix total against a
//! committed run and exit non-zero on a regression beyond `--tolerance`
//! percent; pass `--wire-baseline <path>` to gate the v2/v2+lz byte
//! totals against a committed `BENCH_10.json` the same way.
//!
//! Usage:
//! ```console
//! cargo run --release -p iw-bench --bin bench_trajectory -- \
//!   [scale] [--out BENCH_9.json] [--wire-out BENCH_10.json] \
//!   [--baseline path] [--wire-baseline path] [--tolerance 25]
//! ```

use std::io::Write as _;

use iw_bench::{dirty_all, figure4_workloads, setup_with_options, time, Workload};
use iw_core::{Session, SessionOptions, TrackMode};
use iw_proto::Loopback;
use iw_types::{FlatLayout, MachineArch};
use iw_wire::codec::WireReader;
use iw_wire::diff::{DiffWire, SegmentDiff};

const ITERS: u32 = 3;

/// Ignore regressions when the baseline total is below this many seconds:
/// sub-50 ms totals are dominated by scheduler noise, not translation.
const ABS_FLOOR_SECS: f64 = 0.05;

struct Row {
    name: &'static str,
    /// Best-of collect/apply seconds at 1, 2, and auto threads.
    collect: [f64; 3],
    apply: [f64; 3],
}

fn opts(threads: Option<usize>) -> SessionOptions {
    SessionOptions {
        translate_threads: threads,
        ..SessionOptions::default()
    }
}

/// Best-of-`ITERS` collect and apply seconds for one workload under the
/// given architecture and session options.
fn measure_cfg(w: &Workload, arch: &MachineArch, o: SessionOptions) -> (f64, f64) {
    let mut bed = setup_with_options(w, arch.clone(), o.clone());
    let mut reader =
        Session::with_options(arch.clone(), Box::new(Loopback::new(bed.server.clone())), o)
            .expect("reader");
    reader.fetch_segment("bench/data").expect("sync");
    let rh = reader.open_segment("bench/data").expect("open");

    bed.session.wl_acquire(&bed.handle).expect("wl");
    bed.session
        .set_tracking_mode(&bed.handle, TrackMode::Diff)
        .expect("mode");
    let block = bed.block.clone();
    let (mut best_collect, mut best_apply) = (f64::MAX, f64::MAX);
    for round in 1..=ITERS {
        dirty_all(&mut bed.session, &block, w, round);
        let ((diff, _, _), d_collect) = time(|| {
            bed.session
                .collect_segment_diff(&bed.handle)
                .expect("collect")
        });
        let (_, d_apply) = time(|| reader.apply_segment_diff(&rh, &diff).expect("apply"));
        best_collect = best_collect.min(d_collect.as_secs_f64());
        best_apply = best_apply.min(d_apply.as_secs_f64());
    }
    bed.session.wl_release(&bed.handle).expect("release");
    (best_collect, best_apply)
}

fn measure(w: &Workload, threads: Option<usize>) -> (f64, f64) {
    measure_cfg(w, &MachineArch::x86(), opts(threads))
}

/// Best-of-`ITERS` seconds to memcpy a buffer of the workload's local
/// image size — the floor any translation scheme can aspire to. Returns
/// `(hot, cold)` seconds: hot reuses a warmed destination (pure copy
/// bandwidth), cold allocates a fresh destination per copy (first-touch
/// page faults included — what applying a network payload into newly
/// mapped segment memory actually pays).
fn measure_memcpy(bytes: usize) -> (f64, f64) {
    let src = vec![0xA5u8; bytes.max(1)];
    let mut dst = vec![0u8; bytes.max(1)];
    let (mut hot, mut cold) = (f64::MAX, f64::MAX);
    for _ in 0..ITERS {
        let (_, d) = time(|| {
            dst.copy_from_slice(&src);
            std::hint::black_box(&mut dst);
        });
        hot = hot.min(d.as_secs_f64());
        let (_, d) = time(|| {
            let mut fresh = vec![0u8; bytes.max(1)];
            fresh.copy_from_slice(&src);
            std::hint::black_box(&mut fresh);
        });
        cold = cold.min(d.as_secs_f64());
    }
    (hot, cold)
}

struct IsoRow {
    name: &'static str,
    eligible: bool,
    /// Best-of collect/apply seconds with the fast path on and off.
    collect: [f64; 2],
    apply: [f64; 2],
    /// Local image bytes and the raw memcpy floors over them.
    bytes: usize,
    memcpy_hot_secs: f64,
    memcpy_cold_secs: f64,
}

/// Per-mix wire measurements: encoded bytes and best-of encode/decode
/// seconds for each diff wire revision (v1, v2, v2+lz, in that order).
struct WireRow {
    name: &'static str,
    bytes: [usize; 3],
    enc_secs: [f64; 3],
    dec_secs: [f64; 3],
}

const WIRE_FORMATS: [DiffWire; 3] = [
    DiffWire::V1,
    DiffWire::V2 { compress: false },
    DiffWire::V2 { compress: true },
];

/// Collects one full-dirty diff for the workload and measures each wire
/// revision over it. The diff's encode cache stays unarmed, so every
/// `encode_as` really encodes (no serve-many shortcut in the timing).
fn measure_wire(w: &Workload) -> WireRow {
    let mut bed = setup_with_options(w, MachineArch::x86(), SessionOptions::default());
    bed.session.wl_acquire(&bed.handle).expect("wl");
    bed.session
        .set_tracking_mode(&bed.handle, TrackMode::Diff)
        .expect("mode");
    let block = bed.block.clone();
    dirty_all(&mut bed.session, &block, w, 1);
    let (diff, _, _) = bed
        .session
        .collect_segment_diff(&bed.handle)
        .expect("collect");
    bed.session.wl_release(&bed.handle).expect("release");
    measure_formats(w.name, &diff)
}

/// The steady-state traffic shape the full-dirty mixes can't show: many
/// tiny runs, where v1's fixed 20-byte run header dominates the 4-byte
/// payloads and the v2 delta-varint header is the whole win.
fn measure_wire_sparse(scale: f64) -> WireRow {
    let runs = ((1024.0 * scale) as u64).max(16);
    let mut block_runs = Vec::with_capacity(runs as usize);
    for i in 0..runs {
        block_runs.push(iw_wire::diff::DiffRun {
            start: i * 16,
            count: 1,
            data: bytes::Bytes::from((i as i32).to_be_bytes().to_vec()),
        });
    }
    let diff = SegmentDiff {
        from_version: 7,
        to_version: 8,
        block_diffs: vec![iw_wire::diff::BlockDiff {
            serial: 0,
            runs: block_runs,
        }],
        ..Default::default()
    };
    measure_formats("sparse_stride", &diff)
}

fn measure_formats(name: &'static str, diff: &SegmentDiff) -> WireRow {
    let mut row = WireRow {
        name,
        bytes: [0; 3],
        enc_secs: [f64::MAX; 3],
        dec_secs: [f64::MAX; 3],
    };
    for (slot, fmt) in WIRE_FORMATS.iter().enumerate() {
        let mut encoded = diff.encode_as(*fmt);
        row.bytes[slot] = encoded.len();
        for _ in 0..ITERS {
            let (enc, d_enc) = time(|| std::hint::black_box(diff.encode_as(*fmt)));
            encoded = enc;
            let (decoded, d_dec) = time(|| {
                let mut r = WireReader::new(encoded.clone());
                SegmentDiff::decode(&mut r).expect("decode")
            });
            assert_eq!(&decoded, diff, "{fmt:?} must decode losslessly");
            row.enc_secs[slot] = row.enc_secs[slot].min(d_enc.as_secs_f64());
            row.dec_secs[slot] = row.dec_secs[slot].min(d_dec.as_secs_f64());
        }
    }
    row
}

/// Extracts the number following `"key":` in a hand-rolled JSON document.
fn json_number(doc: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = doc.find(&pat)? + pat.len();
    let tail = doc[at..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 1.0f64;
    let mut out_path = String::from("BENCH_9.json");
    let mut wire_out_path = String::from("BENCH_10.json");
    let mut baseline: Option<String> = None;
    let mut wire_baseline: Option<String> = None;
    let mut tolerance = 25.0f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                out_path = args[i + 1].clone();
                i += 2;
            }
            "--wire-out" => {
                wire_out_path = args[i + 1].clone();
                i += 2;
            }
            "--baseline" => {
                baseline = Some(args[i + 1].clone());
                i += 2;
            }
            "--wire-baseline" => {
                wire_baseline = Some(args[i + 1].clone());
                i += 2;
            }
            "--tolerance" => {
                tolerance = args[i + 1].parse().expect("tolerance percent");
                i += 2;
            }
            s => {
                scale = s.parse().expect("scale");
                i += 1;
            }
        }
    }

    let auto = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!("# BENCH_9 — translation trajectory (scale {scale}, auto = {auto} threads)");
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>8} {:>8}",
        "workload",
        "collect_1t",
        "collect_2t",
        "collect_at",
        "apply_1t",
        "apply_2t",
        "apply_at",
        "c_spdup",
        "a_spdup"
    );

    let settings = [Some(1), Some(2), None];
    let mut rows: Vec<Row> = Vec::new();
    for w in figure4_workloads(scale) {
        let mut collect = [0.0; 3];
        let mut apply = [0.0; 3];
        for (slot, threads) in settings.iter().enumerate() {
            let (c, a) = measure(&w, *threads);
            collect[slot] = c;
            apply[slot] = a;
        }
        println!(
            "{:<14} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>7.2}x {:>7.2}x",
            w.name,
            collect[0],
            collect[1],
            collect[2],
            apply[0],
            apply[1],
            apply[2],
            collect[0] / collect[2].max(1e-9),
            apply[0] / apply[2].max(1e-9),
        );
        rows.push(Row {
            name: w.name,
            collect,
            apply,
        });
    }

    let total = |f: fn(&Row) -> f64| rows.iter().map(f).sum::<f64>();
    let total_1 = total(|r| r.collect[0] + r.apply[0]);
    let total_2 = total(|r| r.collect[1] + r.apply[1]);
    let total_auto = total(|r| r.collect[2] + r.apply[2]);
    println!("\n# totals (collect+apply, nine mixes): 1t {total_1:.4}s  2t {total_2:.4}s  auto {total_auto:.4}s");
    println!(
        "# combined speedup vs serial: 2t {:.2}x, auto {:.2}x",
        total_1 / total_2.max(1e-9),
        total_1 / total_auto.max(1e-9)
    );

    // Layout-identity dimension: the same mixes on a big-endian machine,
    // fast path on vs off, against a raw memcpy floor.
    let be = MachineArch::sparc_v9();
    println!(
        "\n# layout identity on {} (iso fast path on vs off)",
        be.name
    );
    println!(
        "{:<14} {:>4} {:>11} {:>11} {:>10} {:>10} {:>8} {:>11} {:>11}",
        "workload",
        "iso",
        "collect_iso",
        "collect_wlk",
        "apply_iso",
        "apply_wlk",
        "c_spdup",
        "iso_bw_mbs",
        "mcpy_bw_mbs"
    );
    let mut iso_rows: Vec<IsoRow> = Vec::new();
    for w in figure4_workloads(scale) {
        let eligible = FlatLayout::new(&w.ty, &be).wire_identity().is_iso();
        let bytes = iw_types::layout::layout_of(&w.ty, &be).size as usize * w.count as usize;
        let (c_iso, a_iso) = measure_cfg(
            &w,
            &be,
            SessionOptions {
                iso_fast_path: true,
                ..SessionOptions::default()
            },
        );
        let (c_walk, a_walk) = measure_cfg(
            &w,
            &be,
            SessionOptions {
                iso_fast_path: false,
                ..SessionOptions::default()
            },
        );
        let (memcpy_hot_secs, memcpy_cold_secs) = measure_memcpy(bytes);
        let mb = bytes as f64 / 1e6;
        println!(
            "{:<14} {:>4} {:>11.4} {:>11.4} {:>10.4} {:>10.4} {:>7.2}x {:>11.1} {:>11.1}",
            w.name,
            if eligible { "yes" } else { "no" },
            c_iso,
            c_walk,
            a_iso,
            a_walk,
            c_walk / c_iso.max(1e-9),
            mb / c_iso.max(1e-9),
            mb / memcpy_hot_secs.max(1e-9),
        );
        iso_rows.push(IsoRow {
            name: w.name,
            eligible,
            collect: [c_iso, c_walk],
            apply: [a_iso, a_walk],
            bytes,
            memcpy_hot_secs,
            memcpy_cold_secs,
        });
    }
    let total_iso: f64 = iso_rows
        .iter()
        .filter(|r| r.eligible)
        .map(|r| r.collect[0] + r.apply[0])
        .sum();
    let total_walk: f64 = iso_rows
        .iter()
        .filter(|r| r.eligible)
        .map(|r| r.collect[1] + r.apply[1])
        .sum();
    println!(
        "# iso-eligible totals (collect+apply): fast path {total_iso:.4}s, walk {total_walk:.4}s ({:.2}x)",
        total_walk / total_iso.max(1e-9)
    );

    // Wire dimension: per-mix encoded bytes and encode/decode time for
    // each diff wire revision.
    println!("\n# wire revisions (full-dirty diff per mix)");
    println!(
        "{:<14} {:>9} {:>9} {:>9} {:>7} {:>7} {:>9} {:>9} {:>9} {:>9}",
        "workload",
        "v1_B",
        "v2_B",
        "v2lz_B",
        "v2_sav",
        "lz_sav",
        "enc_v2_us",
        "enc_lz_us",
        "dec_v2_us",
        "dec_lz_us"
    );
    let mut wire_rows: Vec<WireRow> = Vec::new();
    for w in figure4_workloads(scale) {
        let r = measure_wire(&w);
        println!(
            "{:<14} {:>9} {:>9} {:>9} {:>6.1}% {:>6.1}% {:>9.1} {:>9.1} {:>9.1} {:>9.1}",
            r.name,
            r.bytes[0],
            r.bytes[1],
            r.bytes[2],
            100.0 * (1.0 - r.bytes[1] as f64 / r.bytes[0].max(1) as f64),
            100.0 * (1.0 - r.bytes[2] as f64 / r.bytes[0].max(1) as f64),
            r.enc_secs[1] * 1e6,
            r.enc_secs[2] * 1e6,
            r.dec_secs[1] * 1e6,
            r.dec_secs[2] * 1e6,
        );
        wire_rows.push(r);
    }
    {
        let r = measure_wire_sparse(scale);
        println!(
            "{:<14} {:>9} {:>9} {:>9} {:>6.1}% {:>6.1}% {:>9.1} {:>9.1} {:>9.1} {:>9.1}",
            r.name,
            r.bytes[0],
            r.bytes[1],
            r.bytes[2],
            100.0 * (1.0 - r.bytes[1] as f64 / r.bytes[0].max(1) as f64),
            100.0 * (1.0 - r.bytes[2] as f64 / r.bytes[0].max(1) as f64),
            r.enc_secs[1] * 1e6,
            r.enc_secs[2] * 1e6,
            r.dec_secs[1] * 1e6,
            r.dec_secs[2] * 1e6,
        );
        wire_rows.push(r);
    }
    let wire_total = |slot: usize| wire_rows.iter().map(|r| r.bytes[slot]).sum::<usize>();
    let (total_v1_b, total_v2_b, total_v2lz_b) = (wire_total(0), wire_total(1), wire_total(2));
    println!(
        "# wire totals: v1 {} B, v2 {} B (-{:.1}%), v2+lz {} B (-{:.1}%)",
        total_v1_b,
        total_v2_b,
        100.0 * (1.0 - total_v2_b as f64 / total_v1_b.max(1) as f64),
        total_v2lz_b,
        100.0 * (1.0 - total_v2lz_b as f64 / total_v1_b.max(1) as f64),
    );

    // Hand-rolled JSON (no serde in the tree).
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str(&format!(
        "  \"bench\": \"BENCH_9\",\n  \"scale\": {scale},\n  \"auto_threads\": {auto},\n"
    ));
    j.push_str(&format!(
        "  \"total_serial_secs\": {total_1:.6},\n  \"total_two_secs\": {total_2:.6},\n  \"total_auto_secs\": {total_auto:.6},\n"
    ));
    j.push_str(&format!(
        "  \"total_iso_secs\": {total_iso:.6},\n  \"total_walk_secs\": {total_walk:.6},\n"
    ));
    j.push_str(&format!(
        "  \"combined_speedup_auto\": {:.4},\n  \"workloads\": [\n",
        total_1 / total_auto.max(1e-9)
    ));
    for (k, r) in rows.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"name\": \"{}\", \"collect_1t\": {:.6}, \"collect_2t\": {:.6}, \"collect_auto\": {:.6}, \"apply_1t\": {:.6}, \"apply_2t\": {:.6}, \"apply_auto\": {:.6}, \"collect_speedup\": {:.4}, \"apply_speedup\": {:.4}}}{}\n",
            r.name,
            r.collect[0],
            r.collect[1],
            r.collect[2],
            r.apply[0],
            r.apply[1],
            r.apply[2],
            r.collect[0] / r.collect[2].max(1e-9),
            r.apply[0] / r.apply[2].max(1e-9),
            if k + 1 < rows.len() { "," } else { "" }
        ));
    }
    j.push_str("  ],\n  \"iso\": [\n");
    for (k, r) in iso_rows.iter().enumerate() {
        let mb = r.bytes as f64 / 1e6;
        j.push_str(&format!(
            "    {{\"name\": \"{}\", \"eligible\": {}, \"collect_iso\": {:.6}, \"collect_walk\": {:.6}, \"apply_iso\": {:.6}, \"apply_walk\": {:.6}, \"collect_speedup\": {:.4}, \"image_bytes\": {}, \"iso_apply_mb_per_s\": {:.1}, \"iso_collect_mb_per_s\": {:.1}, \"memcpy_hot_mb_per_s\": {:.1}, \"memcpy_cold_mb_per_s\": {:.1}}}{}\n",
            r.name,
            r.eligible,
            r.collect[0],
            r.collect[1],
            r.apply[0],
            r.apply[1],
            r.collect[1] / r.collect[0].max(1e-9),
            r.bytes,
            mb / r.apply[0].max(1e-9),
            mb / r.collect[0].max(1e-9),
            mb / r.memcpy_hot_secs.max(1e-9),
            mb / r.memcpy_cold_secs.max(1e-9),
            if k + 1 < iso_rows.len() { "," } else { "" }
        ));
    }
    j.push_str("  ]\n}\n");
    let mut f = std::fs::File::create(&out_path).expect("create output");
    f.write_all(j.as_bytes()).expect("write output");
    println!("# wrote {out_path}");

    // The wire dimension's own JSON (BENCH_10): byte totals are exact,
    // so a committed baseline catches any encoding regression at all.
    let mut jw = String::new();
    jw.push_str("{\n");
    jw.push_str(&format!(
        "  \"bench\": \"BENCH_10\",\n  \"scale\": {scale},\n"
    ));
    jw.push_str(&format!(
        "  \"total_v1_bytes\": {total_v1_b},\n  \"total_v2_bytes\": {total_v2_b},\n  \"total_v2lz_bytes\": {total_v2lz_b},\n"
    ));
    jw.push_str(&format!(
        "  \"v2_reduction_pct\": {:.2},\n  \"v2lz_reduction_pct\": {:.2},\n  \"mixes\": [\n",
        100.0 * (1.0 - total_v2_b as f64 / total_v1_b.max(1) as f64),
        100.0 * (1.0 - total_v2lz_b as f64 / total_v1_b.max(1) as f64),
    ));
    for (k, r) in wire_rows.iter().enumerate() {
        jw.push_str(&format!(
            "    {{\"name\": \"{}\", \"v1_bytes\": {}, \"v2_bytes\": {}, \"v2lz_bytes\": {}, \"enc_v1_us\": {:.1}, \"enc_v2_us\": {:.1}, \"enc_v2lz_us\": {:.1}, \"dec_v1_us\": {:.1}, \"dec_v2_us\": {:.1}, \"dec_v2lz_us\": {:.1}}}{}\n",
            r.name,
            r.bytes[0],
            r.bytes[1],
            r.bytes[2],
            r.enc_secs[0] * 1e6,
            r.enc_secs[1] * 1e6,
            r.enc_secs[2] * 1e6,
            r.dec_secs[0] * 1e6,
            r.dec_secs[1] * 1e6,
            r.dec_secs[2] * 1e6,
            if k + 1 < wire_rows.len() { "," } else { "" }
        ));
    }
    jw.push_str("  ]\n}\n");
    let mut f = std::fs::File::create(&wire_out_path).expect("create wire output");
    f.write_all(jw.as_bytes()).expect("write wire output");
    println!("# wrote {wire_out_path}");

    // Regression gate against a committed baseline: both the auto-thread
    // total and the iso-mix fast-path total must stay within tolerance.
    if let Some(path) = baseline {
        let doc = std::fs::read_to_string(&path).expect("read baseline");
        let mut failed = false;
        let mut gate = |key: &str, current: f64| {
            let Some(base) = json_number(&doc, key) else {
                println!("# baseline lacks {key}; skipping that gate");
                return;
            };
            let limit = base * (1.0 + tolerance / 100.0);
            println!(
                "# baseline {key} {base:.4}s, current {current:.4}s, limit {limit:.4}s (+{tolerance}%)"
            );
            if base >= ABS_FLOOR_SECS && current > limit {
                eprintln!(
                    "BENCH REGRESSION: {key} {current:.4}s exceeds {limit:.4}s \
                     ({tolerance}% over the committed baseline {base:.4}s)"
                );
                failed = true;
            }
        };
        gate("total_auto_secs", total_auto);
        gate("total_iso_secs", total_iso);
        if failed {
            std::process::exit(1);
        }
        println!("# bench-smoke: within tolerance");
    }

    // Byte gate against a committed BENCH_10: encodings are
    // deterministic, so growth beyond tolerance means the wire format
    // (or the diff collector) regressed, not the machine.
    if let Some(path) = wire_baseline {
        let doc = std::fs::read_to_string(&path).expect("read wire baseline");
        let mut failed = false;
        let mut gate = |key: &str, current: usize| {
            let Some(base) = json_number(&doc, key) else {
                println!("# wire baseline lacks {key}; skipping that gate");
                return;
            };
            let limit = base * (1.0 + tolerance / 100.0);
            println!("# wire baseline {key} {base:.0} B, current {current} B, limit {limit:.0} B (+{tolerance}%)");
            if current as f64 > limit {
                eprintln!(
                    "BENCH REGRESSION: {key} {current} B exceeds {limit:.0} B \
                     ({tolerance}% over the committed baseline {base:.0} B)"
                );
                failed = true;
            }
        };
        gate("total_v2_bytes", total_v2_b);
        gate("total_v2lz_bytes", total_v2lz_b);
        if failed {
            std::process::exit(1);
        }
        println!("# wire gate: within tolerance");
    }
}
