//! Trajectory benchmark for the parallel hot path: measures Figure 4
//! collect/apply across thread counts and emits `BENCH_5.json`.
//!
//! For each of the nine Figure 4 mixes, times `collect_segment_diff` and
//! `apply_segment_diff` with translation pinned to 1 thread, 2 threads,
//! and the auto thread count, then reports per-workload seconds and
//! speedups. The JSON doubles as a CI regression gate: pass `--baseline
//! <path>` to compare the auto-thread totals against a committed run and
//! exit non-zero on a regression beyond `--tolerance` percent.
//!
//! Usage:
//! ```console
//! cargo run --release -p iw-bench --bin bench_trajectory -- \
//!   [scale] [--out BENCH_5.json] [--baseline path] [--tolerance 25]
//! ```

use std::io::Write as _;

use iw_bench::{dirty_all, figure4_workloads, setup_with_options, time, Workload};
use iw_core::{Session, SessionOptions, TrackMode};
use iw_proto::Loopback;
use iw_types::MachineArch;

const ITERS: u32 = 3;

/// Ignore regressions when the baseline total is below this many seconds:
/// sub-50 ms totals are dominated by scheduler noise, not translation.
const ABS_FLOOR_SECS: f64 = 0.05;

struct Row {
    name: &'static str,
    /// Best-of collect/apply seconds at 1, 2, and auto threads.
    collect: [f64; 3],
    apply: [f64; 3],
}

fn opts(threads: Option<usize>) -> SessionOptions {
    SessionOptions {
        translate_threads: threads,
        ..SessionOptions::default()
    }
}

/// Best-of-`ITERS` collect and apply seconds for one workload at one
/// thread setting.
fn measure(w: &Workload, threads: Option<usize>) -> (f64, f64) {
    let mut bed = setup_with_options(w, MachineArch::x86(), opts(threads));
    let mut reader = Session::with_options(
        MachineArch::x86(),
        Box::new(Loopback::new(bed.server.clone())),
        opts(threads),
    )
    .expect("reader");
    reader.fetch_segment("bench/data").expect("sync");
    let rh = reader.open_segment("bench/data").expect("open");

    bed.session.wl_acquire(&bed.handle).expect("wl");
    bed.session
        .set_tracking_mode(&bed.handle, TrackMode::Diff)
        .expect("mode");
    let block = bed.block.clone();
    let (mut best_collect, mut best_apply) = (f64::MAX, f64::MAX);
    for round in 1..=ITERS {
        dirty_all(&mut bed.session, &block, w, round);
        let ((diff, _, _), d_collect) = time(|| {
            bed.session
                .collect_segment_diff(&bed.handle)
                .expect("collect")
        });
        let (_, d_apply) = time(|| reader.apply_segment_diff(&rh, &diff).expect("apply"));
        best_collect = best_collect.min(d_collect.as_secs_f64());
        best_apply = best_apply.min(d_apply.as_secs_f64());
    }
    bed.session.wl_release(&bed.handle).expect("release");
    (best_collect, best_apply)
}

/// Extracts the number following `"key":` in a hand-rolled JSON document.
fn json_number(doc: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = doc.find(&pat)? + pat.len();
    let tail = doc[at..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 1.0f64;
    let mut out_path = String::from("BENCH_5.json");
    let mut baseline: Option<String> = None;
    let mut tolerance = 25.0f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                out_path = args[i + 1].clone();
                i += 2;
            }
            "--baseline" => {
                baseline = Some(args[i + 1].clone());
                i += 2;
            }
            "--tolerance" => {
                tolerance = args[i + 1].parse().expect("tolerance percent");
                i += 2;
            }
            s => {
                scale = s.parse().expect("scale");
                i += 1;
            }
        }
    }

    let auto = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!("# BENCH_5 — parallel translation trajectory (scale {scale}, auto = {auto} threads)");
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>8} {:>8}",
        "workload",
        "collect_1t",
        "collect_2t",
        "collect_at",
        "apply_1t",
        "apply_2t",
        "apply_at",
        "c_spdup",
        "a_spdup"
    );

    let settings = [Some(1), Some(2), None];
    let mut rows: Vec<Row> = Vec::new();
    for w in figure4_workloads(scale) {
        let mut collect = [0.0; 3];
        let mut apply = [0.0; 3];
        for (slot, threads) in settings.iter().enumerate() {
            let (c, a) = measure(&w, *threads);
            collect[slot] = c;
            apply[slot] = a;
        }
        println!(
            "{:<14} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>7.2}x {:>7.2}x",
            w.name,
            collect[0],
            collect[1],
            collect[2],
            apply[0],
            apply[1],
            apply[2],
            collect[0] / collect[2].max(1e-9),
            apply[0] / apply[2].max(1e-9),
        );
        rows.push(Row {
            name: w.name,
            collect,
            apply,
        });
    }

    let total = |f: fn(&Row) -> f64| rows.iter().map(f).sum::<f64>();
    let total_1 = total(|r| r.collect[0] + r.apply[0]);
    let total_2 = total(|r| r.collect[1] + r.apply[1]);
    let total_auto = total(|r| r.collect[2] + r.apply[2]);
    println!("\n# totals (collect+apply, nine mixes): 1t {total_1:.4}s  2t {total_2:.4}s  auto {total_auto:.4}s");
    println!(
        "# combined speedup vs serial: 2t {:.2}x, auto {:.2}x",
        total_1 / total_2.max(1e-9),
        total_1 / total_auto.max(1e-9)
    );

    // Hand-rolled JSON (no serde in the tree).
    let mut j = String::new();
    j.push_str("{\n");
    j.push_str(&format!(
        "  \"bench\": \"BENCH_5\",\n  \"scale\": {scale},\n  \"auto_threads\": {auto},\n"
    ));
    j.push_str(&format!(
        "  \"total_serial_secs\": {total_1:.6},\n  \"total_two_secs\": {total_2:.6},\n  \"total_auto_secs\": {total_auto:.6},\n"
    ));
    j.push_str(&format!(
        "  \"combined_speedup_auto\": {:.4},\n  \"workloads\": [\n",
        total_1 / total_auto.max(1e-9)
    ));
    for (k, r) in rows.iter().enumerate() {
        j.push_str(&format!(
            "    {{\"name\": \"{}\", \"collect_1t\": {:.6}, \"collect_2t\": {:.6}, \"collect_auto\": {:.6}, \"apply_1t\": {:.6}, \"apply_2t\": {:.6}, \"apply_auto\": {:.6}, \"collect_speedup\": {:.4}, \"apply_speedup\": {:.4}}}{}\n",
            r.name,
            r.collect[0],
            r.collect[1],
            r.collect[2],
            r.apply[0],
            r.apply[1],
            r.apply[2],
            r.collect[0] / r.collect[2].max(1e-9),
            r.apply[0] / r.apply[2].max(1e-9),
            if k + 1 < rows.len() { "," } else { "" }
        ));
    }
    j.push_str("  ]\n}\n");
    let mut f = std::fs::File::create(&out_path).expect("create output");
    f.write_all(j.as_bytes()).expect("write output");
    println!("# wrote {out_path}");

    // Regression gate against a committed baseline.
    if let Some(path) = baseline {
        let doc = std::fs::read_to_string(&path).expect("read baseline");
        let base = json_number(&doc, "total_auto_secs").expect("baseline total_auto_secs");
        let limit = base * (1.0 + tolerance / 100.0);
        println!(
            "# baseline auto total {base:.4}s, current {total_auto:.4}s, limit {limit:.4}s (+{tolerance}%)"
        );
        if base >= ABS_FLOOR_SECS && total_auto > limit {
            eprintln!(
                "BENCH REGRESSION: auto-thread total {total_auto:.4}s exceeds {limit:.4}s \
                 ({tolerance}% over the committed baseline {base:.4}s)"
            );
            std::process::exit(1);
        }
        println!("# bench-smoke: within tolerance");
    }
}
