//! Parallel-translation determinism: for every Figure 4 mix, the wire
//! diff produced with `translate_threads = 1` is byte-identical to the
//! one produced with the auto thread count, and applying a diff with
//! either setting leaves identical block images. FIFO replication, the
//! server's diff cache, and the chaos oracle all rely on this.

use std::sync::Arc;

use iw_bench::{dirty_all, figure4_workloads, setup_with_options};
use iw_core::{Session, SessionOptions};
use iw_proto::{Handler, Loopback};
use iw_types::MachineArch;

/// Large enough that every workload's dirty data crosses the parallel
/// threshold (64 KiB) by a wide margin.
const SCALE: f64 = 0.25;

fn opts(threads: Option<usize>) -> SessionOptions {
    SessionOptions {
        translate_threads: threads,
        ..SessionOptions::default()
    }
}

#[test]
fn serial_and_parallel_collect_wire_identical() {
    for w in figure4_workloads(SCALE) {
        let mut encs = Vec::new();
        for threads in [Some(1), None] {
            let mut bed = setup_with_options(&w, MachineArch::x86_64(), opts(threads));
            bed.session.wl_acquire(&bed.handle).unwrap();
            dirty_all(&mut bed.session, &bed.block.clone(), &w, 3);
            let (diff, changed, _) = bed.session.collect_segment_diff(&bed.handle).unwrap();
            assert!(changed > 0, "{}: nothing changed", w.name);
            encs.push(diff.encode());
            bed.session.wl_release(&bed.handle).unwrap();
        }
        assert_eq!(
            encs[0], encs[1],
            "{}: serial vs parallel wire diffs differ",
            w.name
        );
    }
}

#[test]
fn serial_and_parallel_apply_state_identical() {
    for w in figure4_workloads(SCALE) {
        let mut images = Vec::new();
        for threads in [Some(1), None] {
            // Writer always collects serially; only the reader's apply
            // path varies.
            let mut bed = setup_with_options(&w, MachineArch::x86_64(), opts(Some(1)));
            let mut reader = Session::with_options(
                MachineArch::x86_64(),
                Box::new(Loopback::new(bed.server.clone() as Arc<dyn Handler>)),
                opts(threads),
            )
            .unwrap();
            let rh = reader.open_segment("bench/data").unwrap();
            // Cache the initial version, then pick up one update diff.
            reader.rl_acquire(&rh).unwrap();
            reader.rl_release(&rh).unwrap();
            bed.session.wl_acquire(&bed.handle).unwrap();
            dirty_all(&mut bed.session, &bed.block.clone(), &w, 7);
            bed.session.wl_release(&bed.handle).unwrap();
            reader.rl_acquire(&rh).unwrap();
            let blk = reader.mip_to_ptr("bench/data#blk").unwrap();
            let size =
                iw_types::layout::layout_of(&w.ty, reader.arch()).size as usize * w.count as usize;
            images.push(reader.read_bytes_raw(&blk, size).unwrap().to_vec());
            reader.rl_release(&rh).unwrap();
        }
        assert_eq!(
            images[0], images[1],
            "{}: serial vs parallel apply images differ",
            w.name
        );
    }
}
