//! Isomorphic fast-path differential across the paper's Figure 4 data
//! mixes: for every mix, on a little-endian and a big-endian machine,
//! the wire diff collected with the fast path enabled is byte-identical
//! to the one collected with it disabled, and a reader applying updates
//! through either path ends with the identical block image.
//!
//! The pointer- and string-bearing mixes never take the fast path (the
//! identity predicate blocks them) but run here anyway: they prove the
//! per-block gate leaves them byte-for-byte untouched.

use std::sync::Arc;

use iw_bench::{dirty_all, figure4_workloads, setup_with_options};
use iw_core::{Session, SessionOptions};
use iw_proto::{Handler, Loopback};
use iw_types::MachineArch;

/// Same scale the parallel-determinism suite uses: large enough that the
/// dirty data crosses the parallel-translation threshold.
const SCALE: f64 = 0.25;

fn opts(iso: bool) -> SessionOptions {
    SessionOptions {
        iso_fast_path: iso,
        ..SessionOptions::default()
    }
}

fn arches() -> [MachineArch; 2] {
    // One side where the fast path engages (big-endian sparc_v9), one
    // where the endianness blocker keeps it off (x86_64).
    [MachineArch::x86_64(), MachineArch::sparc_v9()]
}

#[test]
fn fast_path_collect_wire_identical_across_fig4_mixes() {
    for arch in arches() {
        for w in figure4_workloads(SCALE) {
            let mut encs = Vec::new();
            for iso in [true, false] {
                let mut bed = setup_with_options(&w, arch.clone(), opts(iso));
                bed.session.wl_acquire(&bed.handle).unwrap();
                dirty_all(&mut bed.session, &bed.block.clone(), &w, 3);
                let (diff, _, _) = bed.session.collect_segment_diff(&bed.handle).unwrap();
                encs.push(diff.encode());
                bed.session.wl_release(&bed.handle).unwrap();
            }
            assert_eq!(
                encs[0], encs[1],
                "{} on {}: fast-path vs descriptor-walk wire diffs differ",
                w.name, arch.name
            );
        }
    }
}

#[test]
fn fast_path_apply_state_identical_across_fig4_mixes() {
    for arch in arches() {
        for w in figure4_workloads(SCALE) {
            let mut images = Vec::new();
            for iso in [true, false] {
                // The writer always uses the fast path (its output is
                // proven identical above); only the reader's apply path
                // varies here.
                let mut bed = setup_with_options(&w, arch.clone(), opts(true));
                let mut reader = Session::with_options(
                    arch.clone(),
                    Box::new(Loopback::new(bed.server.clone() as Arc<dyn Handler>)),
                    opts(iso),
                )
                .unwrap();
                let rh = reader.open_segment("bench/data").unwrap();
                // Cache the initial version, then pick up one update.
                reader.rl_acquire(&rh).unwrap();
                reader.rl_release(&rh).unwrap();
                bed.session.wl_acquire(&bed.handle).unwrap();
                dirty_all(&mut bed.session, &bed.block.clone(), &w, 7);
                bed.session.wl_release(&bed.handle).unwrap();
                reader.rl_acquire(&rh).unwrap();
                let blk = reader.mip_to_ptr("bench/data#blk").unwrap();
                let size = iw_types::layout::layout_of(&w.ty, reader.arch()).size as usize
                    * w.count as usize;
                images.push(reader.read_bytes_raw(&blk, size).unwrap().to_vec());
                reader.rl_release(&rh).unwrap();
            }
            assert_eq!(
                images[0], images[1],
                "{} on {}: fast-path vs descriptor-walk applied images differ",
                w.name, arch.name
            );
        }
    }
}

/// The fast path actually fires where it should: the packed pointer-free
/// mixes on the big-endian machine tick the iso counters, and every mix
/// on the little-endian machine leaves them at zero.
#[test]
fn fast_path_engages_exactly_on_iso_mixes() {
    for arch in arches() {
        for w in figure4_workloads(0.02) {
            let mut bed = setup_with_options(&w, arch.clone(), opts(true));
            bed.session.wl_acquire(&bed.handle).unwrap();
            dirty_all(&mut bed.session, &bed.block.clone(), &w, 5);
            bed.session.wl_release(&bed.handle).unwrap();
            let collects = bed
                .session
                .metrics_snapshot()
                .counter("client.translate.iso_collects_total")
                .unwrap_or(0);
            let ty_iso = !w.ty.contains_pointer()
                && !w.ty.contains_variable()
                && iw_types::FlatLayout::new(&w.ty, &arch).is_packed();
            // Pointer-bearing beds also hold an int-array target block,
            // which is itself isomorphic on a big-endian machine.
            let expect_iso = !arch.endian.is_little() && (ty_iso || w.has_pointers);
            assert_eq!(
                collects > 0,
                expect_iso,
                "{} on {}: iso_collects={collects}, expected engagement={expect_iso}",
                w.name,
                arch.name
            );
        }
    }
}
