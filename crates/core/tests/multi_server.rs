//! Multi-server routing: "Every segment is managed by an InterWeave
//! server at the IP address corresponding to the segment's URL.
//! Different segments may be managed by different servers." (§2.1)

use std::sync::Arc;

use iw_core::Session;
use iw_proto::{Handler, Loopback};
use iw_server::Server;
use iw_types::desc::TypeDesc;
use iw_types::MachineArch;

fn handler() -> Arc<dyn Handler> {
    Arc::new(Server::new())
}

/// Builds a session whose default server hosts `main.org/*` and with a
/// second server registered for `other.net/*`.
fn dual_session_on(
    main_srv: &Arc<dyn Handler>,
    other_srv: &Arc<dyn Handler>,
    arch: MachineArch,
) -> Session {
    let mut s = Session::new(arch, Box::new(Loopback::new(main_srv.clone()))).unwrap();
    s.add_server("other.net", Box::new(Loopback::new(other_srv.clone())))
        .unwrap();
    s
}

type SharedHandler = Arc<dyn Handler>;

fn dual_session() -> (Session, SharedHandler, SharedHandler) {
    let main_srv = handler();
    let other_srv = handler();
    let s = dual_session_on(&main_srv, &other_srv, MachineArch::x86());
    (s, main_srv, other_srv)
}

#[test]
fn segments_route_to_their_hosts_server() {
    let (mut s, main_srv, other_srv) = dual_session();
    let hm = s.open_segment("main.org/data").unwrap();
    let ho = s.open_segment("other.net/data").unwrap();
    for (h, v) in [(&hm, 1), (&ho, 2)] {
        s.wl_acquire(h).unwrap();
        let p = s.malloc(h, &TypeDesc::int32(), 1, Some("x")).unwrap();
        s.write_i32(&p, v).unwrap();
        s.wl_release(h).unwrap();
    }

    // Each server hosts exactly its own segment.
    let m = main_srv.clone();
    let o = other_srv.clone();
    {
        // Peek through fresh clients bound to a single server each.
        let mut cm = Session::new(MachineArch::alpha(), Box::new(Loopback::new(m))).unwrap();
        let hm2 = cm.open_segment("main.org/data").unwrap();
        cm.rl_acquire(&hm2).unwrap();
        let p = cm.mip_to_ptr("main.org/data#x").unwrap();
        assert_eq!(cm.read_i32(&p).unwrap(), 1);
        cm.rl_release(&hm2).unwrap();
        // The main server never saw other.net/data: opening it there
        // creates a fresh empty segment.
        let h_missing = cm.open_segment("other.net/data").unwrap();
        cm.rl_acquire(&h_missing).unwrap();
        assert!(cm.mip_to_ptr("other.net/data#x").is_err());
        cm.rl_release(&h_missing).unwrap();
    }
    {
        let mut co = Session::new(MachineArch::sparc_v9(), Box::new(Loopback::new(o))).unwrap();
        let ho2 = co.open_segment("other.net/data").unwrap();
        co.rl_acquire(&ho2).unwrap();
        let p = co.mip_to_ptr("other.net/data#x").unwrap();
        assert_eq!(co.read_i32(&p).unwrap(), 2);
        co.rl_release(&ho2).unwrap();
    }
}

#[test]
fn cross_server_pointers_resolve() {
    let (mut s, main_srv, other_srv) = dual_session();
    // An int on the "other" server; a pointer to it on the main server.
    let ho = s.open_segment("other.net/values").unwrap();
    s.wl_acquire(&ho).unwrap();
    let target = s.malloc(&ho, &TypeDesc::int32(), 1, Some("v")).unwrap();
    s.write_i32(&target, 777).unwrap();
    s.wl_release(&ho).unwrap();

    let hm = s.open_segment("main.org/dir").unwrap();
    s.wl_acquire(&hm).unwrap();
    let slot = s
        .malloc(&hm, &TypeDesc::pointer(), 1, Some("slot"))
        .unwrap();
    s.write_ptr(&slot, Some(&target)).unwrap();
    s.wl_release(&hm).unwrap();

    // A second client, also connected to both servers, opens only the
    // directory; following the pointer fetches other.net/values through
    // the *other* server's link on demand.
    let mut c = dual_session_on(&main_srv, &other_srv, MachineArch::alpha());
    let hd = c.open_segment("main.org/dir").unwrap();
    c.rl_acquire(&hd).unwrap();
    let slot_c = c.mip_to_ptr("main.org/dir#slot").unwrap();
    let target_c = c.read_ptr(&slot_c).unwrap().expect("non-null");
    let hv = c.open_segment("other.net/values").unwrap();
    c.rl_acquire(&hv).unwrap();
    assert_eq!(c.read_i32(&target_c).unwrap(), 777);
    c.rl_release(&hv).unwrap();
    c.rl_release(&hd).unwrap();
}

#[test]
fn cross_server_transactions_commit_per_server() {
    let (mut s, _m, _o) = dual_session();
    for seg in ["main.org/acct", "other.net/acct"] {
        let h = s.open_segment(seg).unwrap();
        s.wl_acquire(&h).unwrap();
        let p = s.malloc(&h, &TypeDesc::int64(), 1, Some("bal")).unwrap();
        s.write_i64(&p, 500).unwrap();
        s.wl_release(&h).unwrap();
    }
    let hm = s.open_segment("main.org/acct").unwrap();
    let ho = s.open_segment("other.net/acct").unwrap();
    s.tx_begin().unwrap();
    s.wl_acquire(&hm).unwrap();
    s.wl_acquire(&ho).unwrap();
    let a = s.mip_to_ptr("main.org/acct#bal").unwrap();
    let b = s.mip_to_ptr("other.net/acct#bal").unwrap();
    s.write_i64(&a, 400).unwrap();
    s.write_i64(&b, 600).unwrap();
    s.tx_commit().unwrap();

    s.rl_acquire(&hm).unwrap();
    s.rl_acquire(&ho).unwrap();
    let a = s.mip_to_ptr("main.org/acct#bal").unwrap();
    let b = s.mip_to_ptr("other.net/acct#bal").unwrap();
    assert_eq!(s.read_i64(&a).unwrap(), 400);
    assert_eq!(s.read_i64(&b).unwrap(), 600);
    s.rl_release(&ho).unwrap();
    s.rl_release(&hm).unwrap();
}

#[test]
fn traffic_counters_aggregate_and_reset() {
    let (mut s, _m, _o) = dual_session();
    let hm = s.open_segment("main.org/a").unwrap();
    let ho = s.open_segment("other.net/b").unwrap();
    s.wl_acquire(&hm).unwrap();
    s.wl_release(&hm).unwrap();
    s.wl_acquire(&ho).unwrap();
    s.wl_release(&ho).unwrap();
    // Default-link stats exist; extra-link stats reset with the session.
    s.reset_transport_stats();
    assert_eq!(s.transport_stats().requests, 0);
}
