//! Transaction semantics: atomic multi-segment commits, twin-based
//! rollback on abort, deferred frees, and failure handling.

use std::sync::Arc;

use iw_core::{CoreError, Session};
use iw_proto::{Handler, Loopback};
use iw_server::Server;
use iw_types::desc::TypeDesc;
use iw_types::{idl, MachineArch};

fn server() -> Arc<dyn Handler> {
    Arc::new(Server::new())
}

fn session(srv: &Arc<dyn Handler>) -> Session {
    Session::new(MachineArch::x86(), Box::new(Loopback::new(srv.clone()))).unwrap()
}

#[test]
fn commit_applies_updates_across_segments_atomically() {
    let srv = server();
    let mut s = session(&srv);
    let ha = s.open_segment("tx/a").unwrap();
    let hb = s.open_segment("tx/b").unwrap();
    for h in [&ha, &hb] {
        s.wl_acquire(h).unwrap();
        let x = s.malloc(h, &TypeDesc::int64(), 1, Some("bal")).unwrap();
        s.write_i64(&x, 100).unwrap();
        s.wl_release(h).unwrap();
    }

    s.tx_begin().unwrap();
    s.wl_acquire(&ha).unwrap();
    s.wl_acquire(&hb).unwrap();
    let a = s.mip_to_ptr("tx/a#bal").unwrap();
    let b = s.mip_to_ptr("tx/b#bal").unwrap();
    s.write_i64(&a, 70).unwrap();
    s.write_i64(&b, 130).unwrap();
    s.tx_commit().unwrap();
    assert!(!s.in_tx());

    // Another client observes the committed state everywhere.
    let mut r = session(&srv);
    for (seg, want) in [("tx/a", 70), ("tx/b", 130)] {
        let h = r.open_segment(seg).unwrap();
        r.rl_acquire(&h).unwrap();
        let p = r.mip_to_ptr(&format!("{seg}#bal")).unwrap();
        assert_eq!(r.read_i64(&p).unwrap(), want);
        r.rl_release(&h).unwrap();
    }
}

#[test]
fn abort_rolls_back_scalar_writes() {
    let srv = server();
    let mut s = session(&srv);
    let h = s.open_segment("tx/rb").unwrap();
    s.wl_acquire(&h).unwrap();
    let arr = s.malloc(&h, &TypeDesc::int32(), 100, Some("arr")).unwrap();
    for i in 0..100 {
        s.write_i32(&s.index(&arr, i).unwrap(), i as i32).unwrap();
    }
    s.wl_release(&h).unwrap();

    s.tx_begin().unwrap();
    s.wl_acquire(&h).unwrap();
    for i in 0..100 {
        s.write_i32(&s.index(&arr, i).unwrap(), -1).unwrap();
    }
    s.tx_abort().unwrap();
    assert!(!s.in_tx());

    // Local copy is pristine again.
    s.rl_acquire(&h).unwrap();
    for i in 0..100 {
        assert_eq!(s.read_i32(&s.index(&arr, i).unwrap()).unwrap(), i as i32);
    }
    s.rl_release(&h).unwrap();

    // And the server never saw the writes.
    let mut r = session(&srv);
    let hr = r.open_segment("tx/rb").unwrap();
    r.rl_acquire(&hr).unwrap();
    let p = r.mip_to_ptr("tx/rb#arr").unwrap();
    assert_eq!(r.read_i32(&r.index(&p, 50).unwrap()).unwrap(), 50);
    r.rl_release(&hr).unwrap();
}

#[test]
fn abort_discards_tx_allocated_blocks_and_pointer_links() {
    let srv = server();
    let mut s = session(&srv);
    let node_t = idl::compile("struct node { int key; struct node *next; };")
        .unwrap()
        .get("node")
        .unwrap()
        .clone();
    let h = s.open_segment("tx/list").unwrap();
    s.wl_acquire(&h).unwrap();
    let head = s.malloc(&h, &node_t, 1, Some("head")).unwrap();
    s.wl_release(&h).unwrap();

    s.tx_begin().unwrap();
    s.wl_acquire(&h).unwrap();
    let n = s.malloc(&h, &node_t, 1, None).unwrap();
    s.write_i32(&s.field(&n, "key").unwrap(), 9).unwrap();
    s.write_ptr(&s.field(&head, "next").unwrap(), Some(&n))
        .unwrap();
    s.tx_abort().unwrap();

    s.rl_acquire(&h).unwrap();
    // The link rolled back to null; the node is gone.
    assert!(s
        .read_ptr(&s.field(&head, "next").unwrap())
        .unwrap()
        .is_none());
    s.rl_release(&h).unwrap();

    // Allocation works normally afterwards (serials not burned locally).
    s.wl_acquire(&h).unwrap();
    let again = s.malloc(&h, &node_t, 1, None).unwrap();
    s.write_i32(&s.field(&again, "key").unwrap(), 1).unwrap();
    s.wl_release(&h).unwrap();
}

#[test]
fn tx_free_is_deferred_and_abortable() {
    let srv = server();
    let mut s = session(&srv);
    let h = s.open_segment("tx/free").unwrap();
    s.wl_acquire(&h).unwrap();
    let victim = s.malloc(&h, &TypeDesc::int32(), 4, Some("victim")).unwrap();
    s.write_i32(&s.index(&victim, 0).unwrap(), 5).unwrap();
    s.wl_release(&h).unwrap();

    // Abort: the block survives.
    s.tx_begin().unwrap();
    s.wl_acquire(&h).unwrap();
    let v = s.mip_to_ptr("tx/free#victim").unwrap();
    s.free(&h, &v).unwrap();
    s.tx_abort().unwrap();
    s.rl_acquire(&h).unwrap();
    let victim2 = s.mip_to_ptr("tx/free#victim").unwrap();
    assert_eq!(s.read_i32(&s.index(&victim2, 0).unwrap()).unwrap(), 5);
    s.rl_release(&h).unwrap();

    // Commit: the block is gone, here and remotely.
    s.tx_begin().unwrap();
    s.wl_acquire(&h).unwrap();
    let v = s.mip_to_ptr("tx/free#victim").unwrap();
    s.free(&h, &v).unwrap();
    s.tx_commit().unwrap();
    assert!(s.mip_to_ptr("tx/free#victim").is_err());
    let mut r = session(&srv);
    r.open_segment("tx/free").unwrap();
    assert!(r.mip_to_ptr("tx/free#victim").is_err());
}

#[test]
fn tx_protocol_violations_are_rejected() {
    let srv = server();
    let mut s = session(&srv);
    let h = s.open_segment("tx/viol").unwrap();

    // Nested transactions.
    s.tx_begin().unwrap();
    assert!(matches!(s.tx_begin(), Err(CoreError::BadPath(_))));
    // wl_release inside a transaction.
    s.wl_acquire(&h).unwrap();
    assert!(matches!(s.wl_release(&h), Err(CoreError::BadPath(_))));
    s.tx_abort().unwrap();

    // Commit/abort without a transaction.
    assert!(matches!(s.tx_commit(), Err(CoreError::BadPath(_))));
    assert!(matches!(s.tx_abort(), Err(CoreError::BadPath(_))));

    // tx_begin while already holding a write lock.
    s.wl_acquire(&h).unwrap();
    assert!(matches!(s.tx_begin(), Err(CoreError::BadPath(_))));
    s.wl_release(&h).unwrap();
}

#[test]
fn empty_transaction_commits_cleanly() {
    let srv = server();
    let mut s = session(&srv);
    s.tx_begin().unwrap();
    s.tx_commit().unwrap();
    assert!(!s.in_tx());
}

#[test]
fn concurrent_transfer_transactions_preserve_total() {
    // The classic bank-transfer test across two segments, four threads.
    let srv = server();
    let mut init = session(&srv);
    for seg in ["bank/a", "bank/b"] {
        let h = init.open_segment(seg).unwrap();
        init.wl_acquire(&h).unwrap();
        let x = init.malloc(&h, &TypeDesc::int64(), 1, Some("bal")).unwrap();
        init.write_i64(&x, 1000).unwrap();
        init.wl_release(&h).unwrap();
    }
    let threads: Vec<_> = (0..4)
        .map(|t| {
            let srv = srv.clone();
            std::thread::spawn(move || {
                let mut s = session(&srv);
                let ha = s.open_segment("bank/a").unwrap();
                let hb = s.open_segment("bank/b").unwrap();
                for i in 0..10 {
                    let amount = ((t * 10 + i) % 7) as i64 - 3;
                    s.tx_begin().unwrap();
                    s.wl_acquire(&ha).unwrap();
                    s.wl_acquire(&hb).unwrap();
                    let a = s.mip_to_ptr("bank/a#bal").unwrap();
                    let b = s.mip_to_ptr("bank/b#bal").unwrap();
                    let av = s.read_i64(&a).unwrap();
                    let bv = s.read_i64(&b).unwrap();
                    s.write_i64(&a, av - amount).unwrap();
                    s.write_i64(&b, bv + amount).unwrap();
                    if i % 3 == 0 {
                        s.tx_abort().unwrap();
                    } else {
                        s.tx_commit().unwrap();
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let mut s = session(&srv);
    let mut total = 0i64;
    for seg in ["bank/a", "bank/b"] {
        let h = s.open_segment(seg).unwrap();
        s.rl_acquire(&h).unwrap();
        let bal = s.mip_to_ptr(&format!("{seg}#bal")).unwrap();
        total += s.read_i64(&bal).unwrap();
        s.rl_release(&h).unwrap();
    }
    assert_eq!(total, 2000, "transfers must conserve the total");
}
