//! Property test: the chunked twin scanner produces exactly the same
//! changed-run list as the scalar reference scanner, for every word size,
//! splice setting, buffer length (including partial trailing words and
//! lengths straddling the chunk size), and change pattern — including
//! runs touching the very first and very last word.

use iw_core::diffing::{find_byte_runs, find_byte_runs_scalar};
use proptest::prelude::*;

/// Buffer lengths that stress the interesting seams: sub-word, sub-chunk,
/// exact chunk multiples, chunk ± 1, and a partial trailing word.
fn arb_len() -> impl Strategy<Value = usize> {
    prop_oneof![
        1usize..17,
        120usize..137,
        250usize..261,
        Just(128),
        Just(256),
        Just(1024),
        Just(1023),
        1000usize..1101,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn chunked_scan_matches_scalar(
        len in arb_len(),
        word in prop_oneof![Just(4usize), Just(8usize)],
        splice in any::<bool>(),
        // Byte positions to flip, as fractions of the length so every
        // length gets starts/middles/ends covered.
        flips in prop::collection::vec(0.0f64..1.0, 0..20),
        force_first in any::<bool>(),
        force_last in any::<bool>(),
    ) {
        let twin = vec![0xA5u8; len];
        let mut cur = twin.clone();
        for f in &flips {
            let i = ((*f * len as f64) as usize).min(len - 1);
            cur[i] ^= 0xFF;
        }
        if force_first {
            cur[0] ^= 0x01;
        }
        if force_last {
            cur[len - 1] ^= 0x80;
        }
        let fast = find_byte_runs(&twin, &cur, word, splice);
        let slow = find_byte_runs_scalar(&twin, &cur, word, splice);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn chunked_scan_matches_scalar_on_dense_noise(
        len in arb_len(),
        word in prop_oneof![Just(4usize), Just(8usize)],
        splice in any::<bool>(),
        seed in any::<u64>(),
    ) {
        // Dense pseudo-random difference patterns: roughly half the bytes
        // change, exercising run starts/ends inside every chunk.
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u8
        };
        let twin: Vec<u8> = (0..len).map(|_| next()).collect();
        let cur: Vec<u8> = twin
            .iter()
            .map(|&b| if next() & 1 == 0 { b } else { b ^ next().max(1) })
            .collect();
        let fast = find_byte_runs(&twin, &cur, word, splice);
        let slow = find_byte_runs_scalar(&twin, &cur, word, splice);
        prop_assert_eq!(fast, slow);
    }
}
