//! Differential proptest battery for the isomorphic-layout fast path.
//!
//! The fast path replaces the descriptor walk with a memcpy whenever a
//! block's local layout is byte-identical to the wire format. Its
//! correctness contract is blunt: with `iso_fast_path` on or off, a
//! session must produce *byte-identical* wire diffs and *byte-identical*
//! applied images — for random type descriptors, random dirty patterns,
//! every architecture, both translate-thread settings, and the coherence
//! models. These properties drive the same workload through both
//! configurations and compare the bytes.

use std::sync::Arc;

use iw_core::{Session, SessionOptions};
use iw_proto::{Coherence, Handler, Loopback};
use iw_server::Server;
use iw_types::desc::TypeDesc;
use iw_types::layout::layout_of;
use iw_types::testgen::{arb_arch, arb_fixed_type};
use iw_types::MachineArch;
use proptest::prelude::*;

fn server() -> Arc<dyn Handler> {
    Arc::new(Server::new())
}

fn session(
    srv: &Arc<dyn Handler>,
    arch: &MachineArch,
    iso: bool,
    threads: Option<usize>,
) -> Session {
    Session::with_options(
        arch.clone(),
        Box::new(Loopback::new(srv.clone())),
        SessionOptions {
            iso_fast_path: iso,
            translate_threads: threads,
            ..SessionOptions::default()
        },
    )
    .unwrap()
}

/// Deterministic byte noise.
fn noise(seed: u64) -> impl FnMut() -> u8 {
    let mut state = seed | 1;
    move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as u8
    }
}

/// Overwrite the chosen elements of `blk` with deterministic noise,
/// leaving the rest of the block's image untouched. Raw byte writes are
/// only safe on fixed (pointer- and string-free) types;
/// `arb_fixed_type` guarantees that.
fn dirty_elements(
    s: &mut Session,
    blk: &iw_core::Ptr,
    elem_size: usize,
    count: usize,
    picks: &[usize],
    seed: u64,
) {
    let mut next = noise(seed);
    let mut img = s.read_bytes_raw(blk, elem_size * count).unwrap().to_vec();
    for &i in picks {
        let span = &mut img[i * elem_size..(i + 1) * elem_size];
        let old0 = span[0];
        for b in span.iter_mut() {
            *b = next();
        }
        // Guarantee the element really changes (an unlucky noise byte
        // could reproduce the old value for single-byte elements).
        span[0] = old0 ^ (next() | 1);
    }
    s.write_bytes_raw(blk, &img).unwrap();
}

/// Element indices to dirty, as fractions so every count gets starts,
/// middles, and ends covered.
fn arb_picks() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..1.0, 1..8)
}

fn resolve_picks(fracs: &[f64], count: usize) -> Vec<usize> {
    fracs
        .iter()
        .map(|f| ((*f * count as f64) as usize).min(count - 1))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Writer side: the encoded wire diff is byte-identical with the
    /// fast path on and off, both for the initial new-block diff and for
    /// an incremental dirty-range diff.
    #[test]
    fn collect_wire_identical_with_and_without_fast_path(
        ty in arb_fixed_type(),
        arch in arb_arch(),
        count in 2u32..6,
        picks in arb_picks(),
        seed in any::<u64>(),
        threads in prop_oneof![Just(Some(1)), Just(None)],
    ) {
        let elem = layout_of(&ty, &arch).size as usize;
        let picks = resolve_picks(&picks, count as usize);
        let mut rounds: Vec<[Vec<u8>; 2]> = Vec::new();
        for iso in [true, false] {
            let srv = server();
            let mut w = session(&srv, &arch, iso, threads);
            let h = w.open_segment("p/iso").unwrap();

            // Round 1: fresh allocation — NewBlock translation jobs.
            w.wl_acquire(&h).unwrap();
            let blk = w.malloc(&h, &ty, count, Some("blk")).unwrap();
            dirty_elements(&mut w, &blk, elem, count as usize, &picks, seed);
            // New blocks travel whole, not as changed prims.
            let (d1, _, _) = w.collect_segment_diff(&h).unwrap();
            prop_assert!(!d1.new_blocks.is_empty());
            w.wl_release(&h).unwrap();

            // Round 2: partial overwrite — dirty-range translation jobs.
            w.wl_acquire(&h).unwrap();
            dirty_elements(&mut w, &blk, elem, count as usize, &picks, seed ^ 0x5DEECE66D);
            let (d2, changed, _) = w.collect_segment_diff(&h).unwrap();
            prop_assert!(changed > 0);
            w.wl_release(&h).unwrap();

            rounds.push([d1.encode().to_vec(), d2.encode().to_vec()]);
        }
        prop_assert_eq!(&rounds[0][0], &rounds[1][0], "new-block diffs differ on {}", arch.name);
        prop_assert_eq!(&rounds[0][1], &rounds[1][1], "incremental diffs differ on {}", arch.name);
    }

    /// Reader side: the applied in-memory image is byte-identical with
    /// the fast path on and off, across coherence models, after both the
    /// initial full fetch and an incremental update.
    #[test]
    fn apply_image_identical_with_and_without_fast_path(
        ty in arb_fixed_type(),
        arch in arb_arch(),
        count in 2u32..6,
        picks in arb_picks(),
        seed in any::<u64>(),
        mode in (
            prop_oneof![
                Just(Coherence::Full),
                Just(Coherence::Delta(1)),
                Just(Coherence::Diff(500)),
            ],
            prop_oneof![Just(Some(1usize)), Just(None)],
        ),
    ) {
        let (coherence, threads) = mode;
        let elem = layout_of(&ty, &arch).size as usize;
        let total = elem * count as usize;
        let picks = resolve_picks(&picks, count as usize);
        let mut images: Vec<[Vec<u8>; 2]> = Vec::new();
        for iso in [true, false] {
            let srv = server();
            // The writer keeps the fast path at its default; only the
            // reader's apply path is under test here.
            let mut w = session(&srv, &arch, true, Some(1));
            let h = w.open_segment("p/iso").unwrap();
            w.wl_acquire(&h).unwrap();
            let blk = w.malloc(&h, &ty, count, Some("blk")).unwrap();
            dirty_elements(&mut w, &blk, elem, count as usize, &picks, seed);
            w.wl_release(&h).unwrap();

            let mut r = session(&srv, &arch, iso, threads);
            let rh = r.open_segment("p/iso").unwrap();
            r.set_coherence(&rh, coherence).unwrap();
            r.rl_acquire(&rh).unwrap();
            let q = r.mip_to_ptr("p/iso#blk").unwrap();
            let first = r.read_bytes_raw(&q, total).unwrap().to_vec();
            r.rl_release(&rh).unwrap();

            w.wl_acquire(&h).unwrap();
            dirty_elements(&mut w, &blk, elem, count as usize, &picks, seed ^ 0xB5297A4D);
            w.wl_release(&h).unwrap();

            r.rl_acquire(&rh).unwrap();
            let second = r.read_bytes_raw(&q, total).unwrap().to_vec();
            r.rl_release(&rh).unwrap();
            images.push([first, second]);
        }
        prop_assert_eq!(&images[0][0], &images[1][0], "initial images differ on {}", arch.name);
        prop_assert_eq!(&images[0][1], &images[1][1], "updated images differ on {}", arch.name);
    }
}

// ====================================================================
// Mixed segments: isomorphic and non-isomorphic blocks side by side.
// ====================================================================

/// A segment holding an iso-eligible int array, a padded struct, and a
/// pointer block must stay correct when the fast path handles only the
/// eligible block, and the segment-level stamp must reflect the mix.
#[test]
fn mixed_segment_applies_correctly_and_stamps_iso() {
    let padded = TypeDesc::structure(
        "p",
        vec![("c", TypeDesc::char8()), ("i", TypeDesc::int32())],
    );
    for iso in [true, false] {
        let srv = server();
        let arch = MachineArch::sparc_v9();
        let mut w = session(&srv, &arch, true, None);
        let h = w.open_segment("m/x").unwrap();
        w.wl_acquire(&h).unwrap();
        let ints = w.malloc(&h, &TypeDesc::int32(), 256, Some("ints")).unwrap();
        // After the first block the segment is all-iso…
        assert!(w.segment_iso(&h).unwrap());
        let pad = w.malloc(&h, &padded, 4, Some("pad")).unwrap();
        // …and the padded block makes the stamp stick to false.
        assert!(!w.segment_iso(&h).unwrap());
        let slot = w.malloc(&h, &TypeDesc::pointer(), 1, Some("slot")).unwrap();
        for i in 0..256 {
            w.write_i32(&w.index(&ints, i).unwrap(), i as i32 * 3)
                .unwrap();
        }
        for i in 0..4 {
            let e = w.index(&pad, i).unwrap();
            w.write_char(&w.field(&e, "c").unwrap(), i as u8 + 1)
                .unwrap();
            w.write_i32(&w.field(&e, "i").unwrap(), -(i as i32))
                .unwrap();
        }
        let target = w.index(&ints, 42).unwrap();
        w.write_ptr(&slot, Some(&target)).unwrap();
        w.wl_release(&h).unwrap();

        let mut r = session(&srv, &arch, iso, None);
        let rh = r.open_segment("m/x").unwrap();
        r.rl_acquire(&rh).unwrap();
        let q = r.mip_to_ptr("m/x#ints").unwrap();
        for i in [0u32, 42, 255] {
            assert_eq!(r.read_i32(&r.index(&q, i).unwrap()).unwrap(), i as i32 * 3);
        }
        let qp = r.mip_to_ptr("m/x#pad").unwrap();
        for i in 0..4 {
            let e = r.index(&qp, i).unwrap();
            assert_eq!(
                r.read_char(&r.field(&e, "c").unwrap()).unwrap(),
                i as u8 + 1
            );
            assert_eq!(r.read_i32(&r.field(&e, "i").unwrap()).unwrap(), -(i as i32));
        }
        // The swizzled pointer lands on element 42 of the iso block.
        let qs = r.mip_to_ptr("m/x#slot").unwrap();
        let t = r.read_ptr(&qs).unwrap().expect("non-null");
        assert_eq!(r.read_i32(&t).unwrap(), 42 * 3);
        // Reader-side stamp agrees: the mix is not all-iso.
        assert!(!r.segment_iso(&rh).unwrap());
        r.rl_release(&rh).unwrap();
    }
}

// ====================================================================
// Session-level negative paths: the fast path must not engage across
// any mismatch axis. Observed through the translation counters.
// ====================================================================

fn iso_collects(s: &mut Session) -> u64 {
    s.metrics_snapshot()
        .counter("client.translate.iso_collects_total")
        .unwrap_or(0)
}

fn run_writer(arch: MachineArch, ty: TypeDesc, count: u32) -> u64 {
    let srv = server();
    let mut w = session(&srv, &arch, true, None);
    let h = w.open_segment("n/axis").unwrap();
    w.wl_acquire(&h).unwrap();
    let _blk = w.malloc(&h, &ty, count, Some("blk")).unwrap();
    w.wl_release(&h).unwrap();
    iso_collects(&mut w)
}

/// Endianness axis: a little-endian writer never takes the fast path
/// for multi-byte primitives; the same workload on a big-endian writer
/// does (positive control).
#[test]
fn fast_path_never_engages_on_little_endian_multibyte() {
    assert_eq!(run_writer(MachineArch::x86_64(), TypeDesc::int32(), 512), 0);
    assert!(run_writer(MachineArch::sparc_v9(), TypeDesc::int32(), 512) > 0);
}

/// Pointer axis: pointer blocks stay on the descriptor walk even on a
/// big-endian machine, at both pointer widths.
#[test]
fn fast_path_never_engages_on_pointer_blocks() {
    assert_eq!(
        run_writer(MachineArch::sparc_v9(), TypeDesc::pointer(), 64),
        0
    );
    assert_eq!(
        run_writer(MachineArch::mips32(), TypeDesc::pointer(), 64),
        0
    );
}

/// Padding axis: a padded struct stays on the descriptor walk even on a
/// big-endian machine.
#[test]
fn fast_path_never_engages_on_padded_layouts() {
    let padded = TypeDesc::structure(
        "p",
        vec![("c", TypeDesc::char8()), ("i", TypeDesc::int32())],
    );
    assert_eq!(run_writer(MachineArch::sparc_v9(), padded, 64), 0);
}

/// Reader side of the positive control: a big-endian reader applying an
/// int-array update takes the memcpy apply path and says so in the
/// telemetry.
#[test]
fn fast_path_apply_counters_tick_on_big_endian_reader() {
    let srv = server();
    let arch = MachineArch::sparc_v9();
    let mut w = session(&srv, &arch, true, None);
    let h = w.open_segment("n/pos").unwrap();
    w.wl_acquire(&h).unwrap();
    let blk = w.malloc(&h, &TypeDesc::int32(), 1024, Some("blk")).unwrap();
    for i in 0..1024 {
        w.write_i32(&w.index(&blk, i).unwrap(), i as i32).unwrap();
    }
    w.wl_release(&h).unwrap();

    let mut r = session(&srv, &arch, true, None);
    let rh = r.open_segment("n/pos").unwrap();
    r.rl_acquire(&rh).unwrap();
    let q = r.mip_to_ptr("n/pos#blk").unwrap();
    assert_eq!(r.read_i32(&r.index(&q, 1023).unwrap()).unwrap(), 1023);
    r.rl_release(&rh).unwrap();

    let snap = r.metrics_snapshot();
    assert!(
        snap.counter("client.translate.iso_applies_total")
            .unwrap_or(0)
            > 0
    );
    assert!(
        snap.counter("client.translate.iso_memcpy_bytes_total")
            .unwrap_or(0)
            >= 4096
    );
    // The segment is a single packed int array: the sticky stamp holds.
    assert!(r.segment_iso(&rh).unwrap());

    // Ablation: the same workload with the fast path disabled reports
    // zero fast-path activity.
    let mut r2 = session(&srv, &arch, false, None);
    let rh2 = r2.open_segment("n/pos").unwrap();
    r2.rl_acquire(&rh2).unwrap();
    r2.rl_release(&rh2).unwrap();
    let snap2 = r2.metrics_snapshot();
    assert_eq!(
        snap2
            .counter("client.translate.iso_applies_total")
            .unwrap_or(0),
        0
    );
}
