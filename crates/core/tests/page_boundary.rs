//! Page-boundary corners of diff collection: primitives that straddle two
//! pages must be translated exactly once even when both pages are dirty,
//! and runs that meet at page boundaries must merge.

use std::sync::Arc;

use iw_core::{Session, SessionOptions};
use iw_proto::{Handler, Loopback};
use iw_server::Server;
use iw_types::{idl, MachineArch};

fn tiny_page_session(srv: &Arc<dyn Handler>) -> Session {
    Session::with_options(
        MachineArch::x86(),
        Box::new(Loopback::new(srv.clone())),
        SessionOptions {
            page_size: Some(256),
            ..Default::default()
        },
    )
    .unwrap()
}

#[test]
fn straddling_primitive_emitted_once() {
    let srv: Arc<dyn Handler> = Arc::new(Server::new());
    let mut w = tiny_page_session(&srv);
    // struct { char c[4]; double d[64]; } on x86 puts doubles at offsets
    // 4, 12, …, 508 — several straddle the 256-byte page boundary.
    let ty = idl::compile("struct s { char c[4]; double d[64]; };")
        .unwrap()
        .get("s")
        .unwrap()
        .clone();
    let h = w.open_segment("pb/seg").unwrap();
    w.wl_acquire(&h).unwrap();
    let p = w.malloc(&h, &ty, 1, Some("s")).unwrap();
    w.wl_release(&h).unwrap();

    w.wl_acquire(&h).unwrap();
    let d = w.field(&p, "d").unwrap();
    for i in 0..64 {
        let cell = w.index(&d, i).unwrap();
        w.write_f64(&cell, i as f64 + 0.5).unwrap();
    }
    let (diff, changed, _) = w.collect_segment_diff(&h).unwrap();
    // 64 doubles + maybe chars spliced in: every primitive once.
    let total_runs_prims: u64 = diff
        .block_diffs
        .iter()
        .flat_map(|b| &b.runs)
        .map(|r| r.count)
        .sum();
    assert_eq!(changed, total_runs_prims);
    assert!(
        total_runs_prims <= 68,
        "no primitive may be double-counted: {total_runs_prims}"
    );
    // Runs within one block must never overlap.
    for b in &diff.block_diffs {
        let mut prev_end = 0u64;
        for r in &b.runs {
            assert!(r.start >= prev_end, "overlapping runs at {}", r.start);
            prev_end = r.start + r.count;
        }
    }
    w.wl_release(&h).unwrap();

    // And a standard-page reader decodes it all correctly.
    let mut r = Session::new(MachineArch::sparc_v9(), Box::new(Loopback::new(srv))).unwrap();
    let hr = r.open_segment("pb/seg").unwrap();
    r.rl_acquire(&hr).unwrap();
    let q = r.mip_to_ptr("pb/seg#s").unwrap();
    let dq = r.field(&q, "d").unwrap();
    for i in 0..64 {
        assert_eq!(
            r.read_f64(&r.index(&dq, i).unwrap()).unwrap(),
            i as f64 + 0.5
        );
    }
    r.rl_release(&hr).unwrap();
}

#[test]
fn sparse_writes_in_distinct_pages_stay_distinct_runs() {
    let srv: Arc<dyn Handler> = Arc::new(Server::new());
    let mut w = tiny_page_session(&srv);
    let h = w.open_segment("pb/sparse").unwrap();
    w.wl_acquire(&h).unwrap();
    let ty = iw_types::desc::TypeDesc::int32();
    let p = w.malloc(&h, &ty, 1024, Some("a")).unwrap(); // 4 KiB = 16 pages
    w.wl_release(&h).unwrap();

    w.wl_acquire(&h).unwrap();
    // One int in page 0, one in page 8.
    w.write_i32(&w.index(&p, 1).unwrap(), -1).unwrap();
    w.write_i32(&w.index(&p, 8 * 64 + 3).unwrap(), -2).unwrap();
    let (diff, changed, _) = w.collect_segment_diff(&h).unwrap();
    assert_eq!(changed, 2);
    let runs: Vec<(u64, u64)> = diff
        .block_diffs
        .iter()
        .flat_map(|b| &b.runs)
        .map(|r| (r.start, r.count))
        .collect();
    assert_eq!(runs, vec![(1, 1), (515, 1)]);
    w.wl_release(&h).unwrap();
}

#[test]
fn adjacent_page_runs_merge_into_one_wire_run() {
    let srv: Arc<dyn Handler> = Arc::new(Server::new());
    let mut w = tiny_page_session(&srv);
    let h = w.open_segment("pb/merge").unwrap();
    w.wl_acquire(&h).unwrap();
    let ty = iw_types::desc::TypeDesc::int32();
    let p = w.malloc(&h, &ty, 256, Some("a")).unwrap(); // 1 KiB = 4 pages
    w.wl_release(&h).unwrap();

    w.wl_acquire(&h).unwrap();
    // Contiguous write spanning all four pages.
    for i in 0..256 {
        w.write_i32(&w.index(&p, i).unwrap(), i as i32 + 1000)
            .unwrap();
    }
    let (diff, _, _) = w.collect_segment_diff(&h).unwrap();
    let runs: Vec<(u64, u64)> = diff
        .block_diffs
        .iter()
        .flat_map(|b| &b.runs)
        .map(|r| (r.start, r.count))
        .collect();
    assert_eq!(runs, vec![(0, 256)], "page-boundary runs must merge");
    w.wl_release(&h).unwrap();
}
