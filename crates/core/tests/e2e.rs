//! End-to-end tests: sessions on (simulated) heterogeneous machines
//! sharing segments through a real server over the loopback transport.

use std::sync::Arc;

use iw_core::{Session, SessionOptions};
use iw_proto::{Coherence, Handler, Loopback};
use iw_server::Server;
use iw_types::desc::TypeDesc;
use iw_types::idl;
use iw_types::MachineArch;

fn server() -> Arc<dyn Handler> {
    Arc::new(Server::new())
}

fn session_on(srv: &Arc<dyn Handler>, arch: MachineArch) -> Session {
    Session::new(arch, Box::new(Loopback::new(srv.clone()))).unwrap()
}

#[test]
fn scalar_sharing_across_all_architecture_pairs() {
    for writer_arch in MachineArch::all() {
        for reader_arch in MachineArch::all() {
            let srv = server();
            let mut w = session_on(&srv, writer_arch.clone());
            let mut r = session_on(&srv, reader_arch.clone());

            let ty =
                idl::compile("struct rec { char c; short s; int i; hyper h; float f; double d; };")
                    .unwrap()
                    .get("rec")
                    .unwrap()
                    .clone();

            let h = w.open_segment("x/scalars").unwrap();
            w.wl_acquire(&h).unwrap();
            let p = w.malloc(&h, &ty, 1, Some("rec")).unwrap();
            w.write_char(&w.field(&p, "c").unwrap(), 0x7A).unwrap();
            w.write_i16(&w.field(&p, "s").unwrap(), -1234).unwrap();
            w.write_i32(&w.field(&p, "i").unwrap(), -56789).unwrap();
            w.write_i64(&w.field(&p, "h").unwrap(), -987654321012345)
                .unwrap();
            w.write_f32(&w.field(&p, "f").unwrap(), 1.5e-3).unwrap();
            w.write_f64(&w.field(&p, "d").unwrap(), -2.25e8).unwrap();
            w.wl_release(&h).unwrap();

            let h2 = r.open_segment("x/scalars").unwrap();
            r.rl_acquire(&h2).unwrap();
            let q = r.mip_to_ptr("x/scalars#rec").unwrap();
            assert_eq!(r.read_char(&r.field(&q, "c").unwrap()).unwrap(), 0x7A);
            assert_eq!(r.read_i16(&r.field(&q, "s").unwrap()).unwrap(), -1234);
            assert_eq!(r.read_i32(&r.field(&q, "i").unwrap()).unwrap(), -56789);
            assert_eq!(
                r.read_i64(&r.field(&q, "h").unwrap()).unwrap(),
                -987654321012345
            );
            assert_eq!(r.read_f32(&r.field(&q, "f").unwrap()).unwrap(), 1.5e-3);
            assert_eq!(r.read_f64(&r.field(&q, "d").unwrap()).unwrap(), -2.25e8);
            r.rl_release(&h2).unwrap();
        }
    }
}

#[test]
fn linked_list_shared_between_le_and_be_machines() {
    let srv = server();
    let mut x86 = session_on(&srv, MachineArch::x86());
    let mut sparc = session_on(&srv, MachineArch::sparc_v9());

    let node_t = idl::compile("struct node { int key; struct node *next; };")
        .unwrap()
        .get("node")
        .unwrap()
        .clone();

    // x86 builds the paper's list: head -> 3 -> 2 -> 1.
    let h = x86.open_segment("host/list").unwrap();
    x86.wl_acquire(&h).unwrap();
    let head = x86.malloc(&h, &node_t, 1, Some("head")).unwrap();
    for key in [1, 2, 3] {
        let n = x86.malloc(&h, &node_t, 1, None).unwrap();
        x86.write_i32(&x86.field(&n, "key").unwrap(), key).unwrap();
        let old_first = x86.read_ptr(&x86.field(&head, "next").unwrap()).unwrap();
        x86.write_ptr(&x86.field(&n, "next").unwrap(), old_first.as_ref())
            .unwrap();
        x86.write_ptr(&x86.field(&head, "next").unwrap(), Some(&n))
            .unwrap();
    }
    x86.wl_release(&h).unwrap();

    // SPARC walks it.
    let h2 = sparc.open_segment("host/list").unwrap();
    sparc.rl_acquire(&h2).unwrap();
    let head2 = sparc.mip_to_ptr("host/list#head").unwrap();
    let mut keys = Vec::new();
    let mut p = sparc
        .read_ptr(&sparc.field(&head2, "next").unwrap())
        .unwrap();
    while let Some(node) = p {
        keys.push(sparc.read_i32(&sparc.field(&node, "key").unwrap()).unwrap());
        p = sparc
            .read_ptr(&sparc.field(&node, "next").unwrap())
            .unwrap();
    }
    assert_eq!(keys, vec![3, 2, 1]);
    sparc.rl_release(&h2).unwrap();

    // SPARC inserts 4 at the front; x86 sees it.
    sparc.wl_acquire(&h2).unwrap();
    let n = sparc.malloc(&h2, &node_t, 1, None).unwrap();
    sparc
        .write_i32(&sparc.field(&n, "key").unwrap(), 4)
        .unwrap();
    let old = sparc
        .read_ptr(&sparc.field(&head2, "next").unwrap())
        .unwrap();
    sparc
        .write_ptr(&sparc.field(&n, "next").unwrap(), old.as_ref())
        .unwrap();
    sparc
        .write_ptr(&sparc.field(&head2, "next").unwrap(), Some(&n))
        .unwrap();
    sparc.wl_release(&h2).unwrap();

    x86.rl_acquire(&h).unwrap();
    let mut keys = Vec::new();
    let mut p = x86.read_ptr(&x86.field(&head, "next").unwrap()).unwrap();
    while let Some(node) = p {
        keys.push(x86.read_i32(&x86.field(&node, "key").unwrap()).unwrap());
        p = x86.read_ptr(&x86.field(&node, "next").unwrap()).unwrap();
    }
    assert_eq!(keys, vec![4, 3, 2, 1]);
    x86.rl_release(&h).unwrap();
}

#[test]
fn strings_cross_architecture() {
    let srv = server();
    let mut a = session_on(&srv, MachineArch::alpha());
    let mut b = session_on(&srv, MachineArch::mips32());

    let ty = idl::compile("struct msg { string text<64>; string tag<4>; };")
        .unwrap()
        .get("msg")
        .unwrap()
        .clone();
    let h = a.open_segment("m/s").unwrap();
    a.wl_acquire(&h).unwrap();
    let p = a.malloc(&h, &ty, 1, Some("the_msg")).unwrap();
    a.write_str(&a.field(&p, "text").unwrap(), "hello, heterogeneous world")
        .unwrap();
    a.write_str(&a.field(&p, "tag").unwrap(), "xyz").unwrap();
    a.wl_release(&h).unwrap();

    let h2 = b.open_segment("m/s").unwrap();
    b.rl_acquire(&h2).unwrap();
    let q = b.mip_to_ptr("m/s#the_msg").unwrap();
    assert_eq!(
        b.read_str(&b.field(&q, "text").unwrap()).unwrap(),
        "hello, heterogeneous world"
    );
    assert_eq!(b.read_str(&b.field(&q, "tag").unwrap()).unwrap(), "xyz");
    // Over-capacity writes are rejected.
    b.rl_release(&h2).unwrap();
    b.wl_acquire(&h2).unwrap();
    assert!(b
        .write_str(&b.field(&q, "tag").unwrap(), "toolong")
        .is_err());
    b.wl_release(&h2).unwrap();
}

#[test]
fn incremental_diffs_transfer_less_than_full_segment() {
    let srv = server();
    let mut w = session_on(&srv, MachineArch::x86());
    let mut r = session_on(&srv, MachineArch::x86());

    let h = w.open_segment("d/inc").unwrap();
    w.wl_acquire(&h).unwrap();
    let arr = w
        .malloc(&h, &TypeDesc::int32(), 10_000, Some("arr"))
        .unwrap();
    for i in 0..10_000 {
        let e = w.index(&arr, i).unwrap();
        w.write_i32(&e, i as i32).unwrap();
    }
    w.wl_release(&h).unwrap();

    // Reader caches the whole thing.
    let h2 = r.open_segment("d/inc").unwrap();
    r.rl_acquire(&h2).unwrap();
    r.rl_release(&h2).unwrap();
    let full = r.transport_stats().bytes_received;

    // One element changes.
    w.wl_acquire(&h).unwrap();
    let e = w.index(&arr, 777).unwrap();
    w.write_i32(&e, -1).unwrap();
    w.wl_release(&h).unwrap();

    r.reset_transport_stats();
    r.rl_acquire(&h2).unwrap();
    let q = r.mip_to_ptr("d/inc#arr").unwrap();
    assert_eq!(r.read_i32(&r.index(&q, 777).unwrap()).unwrap(), -1);
    assert_eq!(r.read_i32(&r.index(&q, 776).unwrap()).unwrap(), 776);
    r.rl_release(&h2).unwrap();
    let incremental = r.transport_stats().bytes_received;
    assert!(
        incremental * 20 < full,
        "incremental update ({incremental} B) should be far below full transfer ({full} B)"
    );
}

#[test]
fn delta_coherence_skips_updates() {
    let srv = server();
    let mut w = session_on(&srv, MachineArch::x86());
    let mut r = session_on(&srv, MachineArch::x86());

    let h = w.open_segment("c/delta").unwrap();
    w.wl_acquire(&h).unwrap();
    let x = w.malloc(&h, &TypeDesc::int32(), 1, Some("x")).unwrap();
    w.write_i32(&x, 0).unwrap();
    w.wl_release(&h).unwrap();

    let h2 = r.open_segment("c/delta").unwrap();
    r.set_coherence(&h2, Coherence::Delta(2)).unwrap();
    r.rl_acquire(&h2).unwrap();
    let q = r.mip_to_ptr("c/delta#x").unwrap();
    assert_eq!(r.read_i32(&q).unwrap(), 0);
    r.rl_release(&h2).unwrap();

    // One more version: within delta-2, reader may stay stale.
    w.wl_acquire(&h).unwrap();
    w.write_i32(&x, 1).unwrap();
    w.wl_release(&h).unwrap();
    r.rl_acquire(&h2).unwrap();
    assert_eq!(r.read_i32(&q).unwrap(), 0, "delta(2) tolerates 1 version");
    r.rl_release(&h2).unwrap();

    // Two more versions: now 3 behind, must update.
    for v in 2..=3 {
        w.wl_acquire(&h).unwrap();
        w.write_i32(&x, v).unwrap();
        w.wl_release(&h).unwrap();
    }
    r.rl_acquire(&h2).unwrap();
    assert_eq!(
        r.read_i32(&q).unwrap(),
        3,
        "delta(2) must refresh at 3 stale"
    );
    r.rl_release(&h2).unwrap();
}

#[test]
fn diff_coherence_tracks_modified_fraction() {
    let srv = server();
    let mut w = session_on(&srv, MachineArch::x86());
    let mut r = session_on(&srv, MachineArch::x86());

    let h = w.open_segment("c/diffco").unwrap();
    w.wl_acquire(&h).unwrap();
    let arr = w.malloc(&h, &TypeDesc::int32(), 1600, Some("arr")).unwrap();
    w.wl_release(&h).unwrap();

    let h2 = r.open_segment("c/diffco").unwrap();
    // Allow up to 5% stale data.
    r.set_coherence(&h2, Coherence::diff_percent(5.0)).unwrap();
    r.rl_acquire(&h2).unwrap();
    r.rl_release(&h2).unwrap();

    // Modify one subblock (16 prims of 1600 = 1%): under the bound.
    w.wl_acquire(&h).unwrap();
    w.write_i32(&w.index(&arr, 0).unwrap(), 9).unwrap();
    w.wl_release(&h).unwrap();
    r.rl_acquire(&h2).unwrap();
    let q = r.mip_to_ptr("c/diffco#arr").unwrap();
    assert_eq!(
        r.read_i32(&r.index(&q, 0).unwrap()).unwrap(),
        0,
        "1% stale is within a 5% bound"
    );
    r.rl_release(&h2).unwrap();

    // Modify 10% of elements: bound exceeded, refresh required.
    w.wl_acquire(&h).unwrap();
    for i in 0..160 {
        w.write_i32(&w.index(&arr, i * 10).unwrap(), 7).unwrap();
    }
    w.wl_release(&h).unwrap();
    r.rl_acquire(&h2).unwrap();
    assert_eq!(r.read_i32(&r.index(&q, 0).unwrap()).unwrap(), 7);
    r.rl_release(&h2).unwrap();
}

#[test]
fn temporal_coherence_avoids_server_traffic_while_fresh() {
    let srv = server();
    let mut w = session_on(&srv, MachineArch::x86());
    let mut r = session_on(&srv, MachineArch::x86());

    let h = w.open_segment("c/temp").unwrap();
    w.wl_acquire(&h).unwrap();
    w.malloc(&h, &TypeDesc::int32(), 4, Some("arr")).unwrap();
    w.wl_release(&h).unwrap();

    let h2 = r.open_segment("c/temp").unwrap();
    r.set_coherence(&h2, Coherence::Temporal(60_000)).unwrap();
    r.rl_acquire(&h2).unwrap();
    r.rl_release(&h2).unwrap();
    let after_first = r.transport_stats().requests;

    // Within the 60 s window: no server round trips at all.
    for _ in 0..10 {
        r.rl_acquire(&h2).unwrap();
        r.rl_release(&h2).unwrap();
    }
    assert_eq!(
        r.transport_stats().requests,
        after_first,
        "fresh temporal reads must be communication-free"
    );
}

#[test]
fn writer_exclusion_reports_busy_to_second_writer() {
    let srv = server();
    let mut a = session_on(&srv, MachineArch::x86());
    let mut b = Session::with_options(
        MachineArch::x86(),
        Box::new(Loopback::new(srv.clone())),
        SessionOptions {
            lock_retries: 2,
            lock_backoff_us: 1,
            ..Default::default()
        },
    )
    .unwrap();

    let ha = a.open_segment("l/x").unwrap();
    let hb = b.open_segment("l/x").unwrap();
    a.wl_acquire(&ha).unwrap();
    let err = b.wl_acquire(&hb).unwrap_err();
    assert!(matches!(err, iw_core::CoreError::LockTimeout(_)), "{err}");
    a.wl_release(&ha).unwrap();
    b.wl_acquire(&hb).unwrap();
    b.wl_release(&hb).unwrap();
}

#[test]
fn free_propagates_to_other_clients() {
    let srv = server();
    let mut a = session_on(&srv, MachineArch::x86());
    let mut b = session_on(&srv, MachineArch::x86());

    let ty = TypeDesc::int32();
    let ha = a.open_segment("f/p").unwrap();
    a.wl_acquire(&ha).unwrap();
    let keep = a.malloc(&ha, &ty, 4, Some("keep")).unwrap();
    let _goner = a.malloc(&ha, &ty, 4, Some("goner")).unwrap();
    a.wl_release(&ha).unwrap();

    let hb = b.open_segment("f/p").unwrap();
    b.rl_acquire(&hb).unwrap();
    assert!(b.mip_to_ptr("f/p#goner").is_ok());
    b.rl_release(&hb).unwrap();

    a.wl_acquire(&ha).unwrap();
    let goner = a.mip_to_ptr("f/p#goner").unwrap();
    a.free(&ha, &goner).unwrap();
    a.wl_release(&ha).unwrap();

    b.rl_acquire(&hb).unwrap();
    assert!(
        b.mip_to_ptr("f/p#goner").is_err(),
        "freed block must vanish"
    );
    assert!(b.mip_to_ptr("f/p#keep").is_ok());
    b.rl_release(&hb).unwrap();
    let _ = keep;
}

#[test]
fn cross_segment_pointers_resolve_lazily() {
    let srv = server();
    let mut a = session_on(&srv, MachineArch::x86());
    let mut b = session_on(&srv, MachineArch::alpha());

    // Segment "data" holds an int; segment "dir" holds a pointer to it.
    let ha = a.open_segment("x/data").unwrap();
    a.wl_acquire(&ha).unwrap();
    let value = a.malloc(&ha, &TypeDesc::int32(), 1, Some("value")).unwrap();
    a.write_i32(&value, 424242).unwrap();
    a.wl_release(&ha).unwrap();

    let hd = a.open_segment("x/dir").unwrap();
    a.wl_acquire(&hd).unwrap();
    let slot = a
        .malloc(&hd, &TypeDesc::pointer(), 1, Some("slot"))
        .unwrap();
    a.write_ptr(&slot, Some(&value)).unwrap();
    a.wl_release(&hd).unwrap();

    // b opens only the directory; following the pointer faults in the
    // data segment on demand.
    let hb = b.open_segment("x/dir").unwrap();
    b.rl_acquire(&hb).unwrap();
    let slot_b = b.mip_to_ptr("x/dir#slot").unwrap();
    let target = b.read_ptr(&slot_b).unwrap().expect("non-null");
    // Target segment must require a lock for data access.
    let hdata = b.open_segment("x/data").unwrap();
    b.rl_acquire(&hdata).unwrap();
    assert_eq!(b.read_i32(&target).unwrap(), 424242);
    b.rl_release(&hdata).unwrap();
    b.rl_release(&hb).unwrap();
}

#[test]
fn no_diff_mode_engages_under_heavy_writes() {
    let srv = server();
    let mut w = session_on(&srv, MachineArch::x86());
    let h = w.open_segment("nd/seg").unwrap();
    w.wl_acquire(&h).unwrap();
    let arr = w.malloc(&h, &TypeDesc::int32(), 1024, Some("arr")).unwrap();
    w.wl_release(&h).unwrap();

    // Rewrite the whole array repeatedly.
    for round in 0..4 {
        w.wl_acquire(&h).unwrap();
        for i in 0..1024 {
            w.write_i32(&w.index(&arr, i).unwrap(), round * 10_000 + i as i32)
                .unwrap();
        }
        w.wl_release(&h).unwrap();
    }
    // Whether or not mode internals are visible, correctness holds: a
    // reader sees the last round.
    let mut r = session_on(&srv, MachineArch::x86());
    let h2 = r.open_segment("nd/seg").unwrap();
    r.rl_acquire(&h2).unwrap();
    let q = r.mip_to_ptr("nd/seg#arr").unwrap();
    assert_eq!(
        r.read_i32(&r.index(&q, 1023).unwrap()).unwrap(),
        3 * 10_000 + 1023
    );
    r.rl_release(&h2).unwrap();
}

#[test]
fn type_mismatch_and_lock_violations_are_caught() {
    let srv = server();
    let mut s = session_on(&srv, MachineArch::x86());
    let h = s.open_segment("err/seg").unwrap();
    s.wl_acquire(&h).unwrap();
    let p = s.malloc(&h, &TypeDesc::int32(), 1, Some("x")).unwrap();
    // Wrong type.
    assert!(matches!(
        s.read_f64(&p),
        Err(iw_core::CoreError::TypeMismatch { .. })
    ));
    s.wl_release(&h).unwrap();
    // Write without lock.
    assert!(matches!(
        s.write_i32(&p, 5),
        Err(iw_core::CoreError::NotLocked { .. })
    ));
    // Read without lock.
    assert!(matches!(
        s.read_i32(&p),
        Err(iw_core::CoreError::NotLocked { .. })
    ));
    // Read lock does not allow writes.
    s.rl_acquire(&h).unwrap();
    assert!(matches!(
        s.write_i32(&p, 5),
        Err(iw_core::CoreError::NotLocked { write: true, .. })
    ));
    assert_eq!(s.read_i32(&p).unwrap(), 0);
    s.rl_release(&h).unwrap();
}

#[test]
fn mips_roundtrip_through_ptr_to_mip() {
    let srv = server();
    let mut s = session_on(&srv, MachineArch::x86());
    let ty = idl::compile("struct pair { int a; int b; };")
        .unwrap()
        .get("pair")
        .unwrap()
        .clone();
    let h = s.open_segment("mips/seg").unwrap();
    s.wl_acquire(&h).unwrap();
    let p = s.malloc(&h, &ty, 8, Some("pairs")).unwrap();
    let third_b = s.field(&s.index(&p, 3).unwrap(), "b").unwrap();
    let mip = s.ptr_to_mip(&third_b).unwrap();
    assert_eq!(mip, "mips/seg#pairs#7"); // element 3, field b = prim 7
    let back = s.mip_to_ptr(&mip).unwrap();
    assert_eq!(back.va(), third_b.va());
    s.wl_release(&h).unwrap();
}

#[test]
fn concurrent_writers_over_threads() {
    let srv = server();
    let mut init = session_on(&srv, MachineArch::x86());
    let h = init.open_segment("mt/ctr").unwrap();
    init.wl_acquire(&h).unwrap();
    init.malloc(&h, &TypeDesc::int32(), 1, Some("ctr")).unwrap();
    init.wl_release(&h).unwrap();

    let threads: Vec<_> = (0..4)
        .map(|_| {
            let srv = srv.clone();
            std::thread::spawn(move || {
                let mut s = session_on(&srv, MachineArch::x86());
                let h = s.open_segment("mt/ctr").unwrap();
                for _ in 0..25 {
                    s.wl_acquire(&h).unwrap();
                    let p = s.mip_to_ptr("mt/ctr#ctr").unwrap();
                    let v = s.read_i32(&p).unwrap();
                    s.write_i32(&p, v + 1).unwrap();
                    s.wl_release(&h).unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    init.rl_acquire(&h).unwrap();
    let p = init.mip_to_ptr("mt/ctr#ctr").unwrap();
    assert_eq!(init.read_i32(&p).unwrap(), 100, "lost update detected");
    init.rl_release(&h).unwrap();
}
