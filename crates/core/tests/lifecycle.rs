//! Segment lifecycle: close/reopen, cross-segment pointer demotion on
//! close, temporal coherence expiry, and introspection.

use std::sync::Arc;

use iw_core::{CoreError, Session};
use iw_proto::{Coherence, Handler, Loopback};
use iw_server::Server;
use iw_types::desc::TypeDesc;
use iw_types::MachineArch;

fn server() -> Arc<dyn Handler> {
    Arc::new(Server::new())
}

fn session(srv: &Arc<dyn Handler>) -> Session {
    Session::new(MachineArch::x86(), Box::new(Loopback::new(srv.clone()))).unwrap()
}

#[test]
fn close_and_reopen_resyncs() {
    let srv = server();
    let mut s = session(&srv);
    let h = s.open_segment("lc/a").unwrap();
    s.wl_acquire(&h).unwrap();
    let p = s.malloc(&h, &TypeDesc::int32(), 4, Some("x")).unwrap();
    s.write_i32(&s.index(&p, 0).unwrap(), 7).unwrap();
    s.wl_release(&h).unwrap();

    s.close_segment(&h).unwrap();
    assert!(s.segments().is_empty());
    // Accessing the old pointer now fails cleanly.
    assert!(s.rl_acquire(&h).is_err(), "closed handle must not re-lock");

    // Reopen: fresh fetch brings the data back.
    let h2 = s.open_segment("lc/a").unwrap();
    s.rl_acquire(&h2).unwrap();
    let p2 = s.mip_to_ptr("lc/a#x").unwrap();
    assert_eq!(s.read_i32(&s.index(&p2, 0).unwrap()).unwrap(), 7);
    s.rl_release(&h2).unwrap();
}

#[test]
fn close_demotes_cross_segment_pointers() {
    let srv = server();
    let mut s = session(&srv);
    // data segment with a target; dir segment pointing at it.
    let hd = s.open_segment("lc/data").unwrap();
    s.wl_acquire(&hd).unwrap();
    let target = s.malloc(&hd, &TypeDesc::int32(), 1, Some("t")).unwrap();
    s.write_i32(&target, 5).unwrap();
    s.wl_release(&hd).unwrap();

    let hr = s.open_segment("lc/dir").unwrap();
    s.wl_acquire(&hr).unwrap();
    let slot = s
        .malloc(&hr, &TypeDesc::pointer(), 1, Some("slot"))
        .unwrap();
    s.write_ptr(&slot, Some(&target)).unwrap();
    s.wl_release(&hr).unwrap();

    // Close the *target* segment: the dir's pointer must survive as an
    // unresolved MIP and re-resolve on next dereference.
    s.close_segment(&hd).unwrap();
    s.rl_acquire(&hr).unwrap();
    let slot2 = s.mip_to_ptr("lc/dir#slot").unwrap();
    let back = s.read_ptr(&slot2).unwrap().expect("refetches on demand");
    let hd2 = s.open_segment("lc/data").unwrap();
    s.rl_acquire(&hd2).unwrap();
    assert_eq!(s.read_i32(&back).unwrap(), 5);
    s.rl_release(&hd2).unwrap();
    s.rl_release(&hr).unwrap();
}

#[test]
fn close_is_refused_inside_transactions() {
    let srv = server();
    let mut s = session(&srv);
    let h = s.open_segment("lc/tx").unwrap();
    s.tx_begin().unwrap();
    s.wl_acquire(&h).unwrap();
    assert!(matches!(s.close_segment(&h), Err(CoreError::BadPath(_))));
    s.tx_abort().unwrap();
    s.close_segment(&h).unwrap();
}

#[test]
fn temporal_expiry_triggers_refetch() {
    let srv = server();
    let mut w = session(&srv);
    let mut r = session(&srv);
    let h = w.open_segment("lc/temp").unwrap();
    w.wl_acquire(&h).unwrap();
    let x = w.malloc(&h, &TypeDesc::int32(), 1, Some("x")).unwrap();
    w.write_i32(&x, 1).unwrap();
    w.wl_release(&h).unwrap();

    let hr = r.open_segment("lc/temp").unwrap();
    // Phase 1: a generous bound so scheduler jitter cannot expire it.
    r.set_coherence(&hr, Coherence::Temporal(600_000)).unwrap();
    r.rl_acquire(&hr).unwrap();
    let p = r.mip_to_ptr("lc/temp#x").unwrap();
    assert_eq!(r.read_i32(&p).unwrap(), 1);
    r.rl_release(&hr).unwrap();

    w.wl_acquire(&h).unwrap();
    w.write_i32(&x, 2).unwrap();
    w.wl_release(&h).unwrap();

    // Within the (10-minute) bound: stale value acceptable.
    r.rl_acquire(&hr).unwrap();
    assert_eq!(r.read_i32(&p).unwrap(), 1);
    r.rl_release(&hr).unwrap();

    // Phase 2: shrink the bound below the elapsed time: must refetch.
    r.set_coherence(&hr, Coherence::Temporal(1)).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(5));
    r.rl_acquire(&hr).unwrap();
    assert_eq!(r.read_i32(&p).unwrap(), 2, "temporal bound expired");
    r.rl_release(&hr).unwrap();
}

#[test]
fn introspection_reports_versions() {
    let srv = server();
    let mut s = session(&srv);
    let ha = s.open_segment("lc/v/a").unwrap();
    let hb = s.open_segment("lc/v/b").unwrap();
    assert_eq!(s.segment_version(&ha).unwrap(), 0);
    s.wl_acquire(&ha).unwrap();
    s.malloc(&ha, &TypeDesc::int32(), 1, None).unwrap();
    s.wl_release(&ha).unwrap();
    assert_eq!(s.segment_version(&ha).unwrap(), 1);
    assert_eq!(s.segment_version(&hb).unwrap(), 0);
    let listed = s.segments();
    assert_eq!(
        listed,
        vec![("lc/v/a".to_string(), 1), ("lc/v/b".to_string(), 0)]
    );
}

#[test]
fn locks_do_not_nest() {
    let srv = server();
    let mut s = session(&srv);
    let h = s.open_segment("lc/nest").unwrap();
    s.wl_acquire(&h).unwrap();
    // Re-acquiring in either mode is a usage error, and must not disturb
    // block tracking for the open critical section.
    assert!(matches!(s.wl_acquire(&h), Err(CoreError::BadPath(_))));
    assert!(matches!(s.rl_acquire(&h), Err(CoreError::BadPath(_))));
    let p = s.malloc(&h, &TypeDesc::int32(), 1, Some("x")).unwrap();
    s.write_i32(&p, 3).unwrap();
    s.wl_release(&h).unwrap();

    s.rl_acquire(&h).unwrap();
    assert!(matches!(s.rl_acquire(&h), Err(CoreError::BadPath(_))));
    assert_eq!(s.read_i32(&p).unwrap(), 3);
    s.rl_release(&h).unwrap();
}
