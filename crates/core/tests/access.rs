//! Typed-accessor and navigation edge cases: the full kind-mismatch
//! matrix, padding/alignment traps, raw bulk access bounds, string
//! behaviour, and `kind_at`.

use std::sync::Arc;

use iw_core::{CoreError, Ptr, SegHandle, Session};
use iw_proto::{Handler, Loopback};
use iw_server::Server;
use iw_types::desc::{PrimKind, TypeDesc};
use iw_types::{idl, MachineArch};

fn session() -> Session {
    let srv: Arc<dyn Handler> = Arc::new(Server::new());
    Session::new(MachineArch::x86(), Box::new(Loopback::new(srv))).unwrap()
}

const KITCHEN_SINK: &str = "\
struct sink {\n\
    char c;\n\
    short s16;\n\
    int i32;\n\
    hyper i64;\n\
    float f32;\n\
    double f64;\n\
    string txt<12>;\n\
    struct sink *link;\n\
    int arr[3];\n\
};\n";

fn sink(s: &mut Session) -> (SegHandle, Ptr) {
    let ty = idl::compile(KITCHEN_SINK)
        .unwrap()
        .get("sink")
        .unwrap()
        .clone();
    let h = s.open_segment("acc/seg").unwrap();
    s.wl_acquire(&h).unwrap();
    let p = s.malloc(&h, &ty, 1, Some("sink")).unwrap();
    (h, p)
}

#[test]
fn every_accessor_roundtrips_its_own_kind() {
    let mut s = session();
    let (h, p) = sink(&mut s);
    s.write_char(&s.field(&p, "c").unwrap(), 0xAB).unwrap();
    s.write_i16(&s.field(&p, "s16").unwrap(), -3000).unwrap();
    s.write_i32(&s.field(&p, "i32").unwrap(), 123456).unwrap();
    s.write_i64(&s.field(&p, "i64").unwrap(), -9e15 as i64)
        .unwrap();
    s.write_f32(&s.field(&p, "f32").unwrap(), 0.5).unwrap();
    s.write_f64(&s.field(&p, "f64").unwrap(), -0.25).unwrap();
    s.write_str(&s.field(&p, "txt").unwrap(), "hi there!")
        .unwrap();
    assert_eq!(s.read_char(&s.field(&p, "c").unwrap()).unwrap(), 0xAB);
    assert_eq!(s.read_i16(&s.field(&p, "s16").unwrap()).unwrap(), -3000);
    assert_eq!(s.read_i32(&s.field(&p, "i32").unwrap()).unwrap(), 123456);
    assert_eq!(
        s.read_i64(&s.field(&p, "i64").unwrap()).unwrap(),
        -9e15 as i64
    );
    assert_eq!(s.read_f32(&s.field(&p, "f32").unwrap()).unwrap(), 0.5);
    assert_eq!(s.read_f64(&s.field(&p, "f64").unwrap()).unwrap(), -0.25);
    assert_eq!(
        s.read_str(&s.field(&p, "txt").unwrap()).unwrap(),
        "hi there!"
    );
    s.wl_release(&h).unwrap();
}

#[test]
fn kind_mismatch_matrix_rejects_cleanly() {
    let mut s = session();
    let (_h, p) = sink(&mut s);
    let i32f = s.field(&p, "i32").unwrap();
    // Reading an int as anything else fails.
    assert!(matches!(
        s.read_char(&i32f),
        Err(CoreError::TypeMismatch { .. })
    ));
    assert!(matches!(
        s.read_i16(&i32f),
        Err(CoreError::TypeMismatch { .. })
    ));
    assert!(matches!(
        s.read_i64(&i32f),
        Err(CoreError::TypeMismatch { .. })
    ));
    assert!(matches!(
        s.read_f32(&i32f),
        Err(CoreError::TypeMismatch { .. })
    ));
    assert!(matches!(
        s.read_f64(&i32f),
        Err(CoreError::TypeMismatch { .. })
    ));
    assert!(matches!(
        s.read_str(&i32f),
        Err(CoreError::TypeMismatch { .. })
    ));
    assert!(matches!(
        s.read_ptr(&i32f),
        Err(CoreError::TypeMismatch { .. })
    ));
    // Same on the write side.
    assert!(matches!(
        s.write_f64(&i32f, 1.0),
        Err(CoreError::TypeMismatch { .. })
    ));
    assert!(matches!(
        s.write_str(&i32f, "x"),
        Err(CoreError::TypeMismatch { .. })
    ));
    assert!(matches!(
        s.write_ptr(&i32f, None),
        Err(CoreError::TypeMismatch { .. })
    ));
    // And float32 vs float64 are distinct.
    let f32f = s.field(&p, "f32").unwrap();
    assert!(matches!(
        s.read_f64(&f32f),
        Err(CoreError::TypeMismatch { .. })
    ));
}

#[test]
fn kind_at_reports_true_kinds() {
    let mut s = session();
    let (_h, p) = sink(&mut s);
    assert_eq!(
        s.kind_at(&s.field(&p, "c").unwrap()).unwrap(),
        PrimKind::Char
    );
    assert_eq!(
        s.kind_at(&s.field(&p, "txt").unwrap()).unwrap(),
        PrimKind::Str { cap: 12 }
    );
    assert_eq!(
        s.kind_at(&s.field(&p, "link").unwrap()).unwrap(),
        PrimKind::Ptr
    );
    // At the struct start, the first primitive's kind is reported.
    assert_eq!(s.kind_at(&p).unwrap(), PrimKind::Char);
}

#[test]
fn navigation_errors() {
    let mut s = session();
    let (_h, p) = sink(&mut s);
    // No such field.
    assert!(matches!(s.field(&p, "nope"), Err(CoreError::BadPath(_))));
    // field() on a non-struct.
    let i = s.field(&p, "i32").unwrap();
    assert!(matches!(s.field(&i, "x"), Err(CoreError::BadPath(_))));
    // index out of range on a typed array.
    let arr = s.field(&p, "arr").unwrap();
    assert!(s.index(&arr, 2).is_ok());
    assert!(matches!(s.index(&arr, 3), Err(CoreError::BadPath(_))));
    // index on a scalar field that is not a block start.
    assert!(matches!(s.index(&i, 0), Err(CoreError::BadPath(_))));
}

#[test]
fn block_element_indexing_and_nested_navigation() {
    let mut s = session();
    let ty = idl::compile("struct cell { int v; struct cell *next; };")
        .unwrap()
        .get("cell")
        .unwrap()
        .clone();
    let h = s.open_segment("acc/grid").unwrap();
    s.wl_acquire(&h).unwrap();
    let grid = s.malloc(&h, &ty, 8, Some("grid")).unwrap();
    for i in 0..8 {
        let e = s.index(&grid, i).unwrap();
        s.write_i32(&s.field(&e, "v").unwrap(), i as i32 * 11)
            .unwrap();
        // Chain each element to the next.
        if i > 0 {
            let prev = s.index(&grid, i - 1).unwrap();
            s.write_ptr(&s.field(&prev, "next").unwrap(), Some(&e))
                .unwrap();
        }
    }
    // Walk the chain.
    let mut cur = s.index(&grid, 0).unwrap();
    let mut seen = vec![s.read_i32(&s.field(&cur, "v").unwrap()).unwrap()];
    while let Some(nxt) = s.read_ptr(&s.field(&cur, "next").unwrap()).unwrap() {
        seen.push(s.read_i32(&s.field(&nxt, "v").unwrap()).unwrap());
        cur = nxt;
    }
    assert_eq!(seen, (0..8).map(|i| i * 11).collect::<Vec<_>>());
    s.wl_release(&h).unwrap();
}

#[test]
fn raw_bulk_access_checks_bounds_and_locks() {
    let mut s = session();
    let h = s.open_segment("acc/raw").unwrap();
    s.wl_acquire(&h).unwrap();
    let p = s.malloc(&h, &TypeDesc::int32(), 8, Some("a")).unwrap();
    // In-bounds bulk write/read.
    let bytes: Vec<u8> = (0..32).collect();
    s.write_bytes_raw(&p, &bytes).unwrap();
    assert_eq!(s.read_bytes_raw(&p, 32).unwrap(), &bytes[..]);
    // Overrun rejected.
    assert!(matches!(
        s.write_bytes_raw(&p, &[0u8; 33]),
        Err(CoreError::BadPath(_))
    ));
    assert!(matches!(
        s.read_bytes_raw(&p, 33),
        Err(CoreError::BadPath(_))
    ));
    s.wl_release(&h).unwrap();
    // Raw write without the lock rejected.
    assert!(matches!(
        s.write_bytes_raw(&p, &[0u8; 4]),
        Err(CoreError::NotLocked { .. })
    ));
}

#[test]
fn string_overflow_and_empty() {
    let mut s = session();
    let (_h, p) = sink(&mut s);
    let txt = s.field(&p, "txt").unwrap();
    // Exactly cap-1 bytes fit.
    s.write_str(&txt, "0123456789a").unwrap();
    assert_eq!(s.read_str(&txt).unwrap(), "0123456789a");
    // cap bytes do not (room for the NUL).
    assert!(s.write_str(&txt, "0123456789ab").is_err());
    // Empty strings round-trip.
    s.write_str(&txt, "").unwrap();
    assert_eq!(s.read_str(&txt).unwrap(), "");
}

#[test]
fn write_ptr_validates_target() {
    let mut s = session();
    let (_h, p) = sink(&mut s);
    let link = s.field(&p, "link").unwrap();
    // A Ptr forged at a wild address is rejected at write time, not
    // at diff time.
    let wild = Ptr::clone(&p); // same type, but we can't forge the VA
    let _ = wild;
    s.write_ptr(&link, Some(&p)).unwrap();
    let back = s.read_ptr(&link).unwrap().unwrap();
    assert_eq!(back.va(), p.va());
    // Null round-trip.
    s.write_ptr(&link, None).unwrap();
    assert!(s.read_ptr(&link).unwrap().is_none());
}

#[test]
fn ptr_to_mip_rejects_padding_and_interior_bytes() {
    let mut s = session();
    let (_h, p) = sink(&mut s);
    // A pointer into the middle of the i32 field is not a primitive
    // boundary.
    let i32f = s.field(&p, "i32").unwrap();
    let ok = s.ptr_to_mip(&i32f).unwrap();
    assert!(ok.contains("#sink#"));
    // ptr_to_mip of named blocks uses the symbolic name.
    assert_eq!(s.ptr_to_mip(&p).unwrap(), "acc/seg#sink");
}
