//! Transparent client failover across a replica group.
//!
//! Two in-process `Server`s stand in for a primary/backup pair; the
//! backup is brought up to date with the same `SyncFull` images the
//! `iw-cluster` ship thread uses, so its state is bit-identical to the
//! primary's. A shared "dead" flag on the transports simulates the
//! primary crashing mid-session.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use iw_core::{Connector, CoreError, Session, SessionOptions};
use iw_proto::msg::{Reply, Request};
use iw_proto::{Handler, Loopback, ProtoError, Transport, TransportStats};
use iw_server::Server;
use iw_types::desc::TypeDesc;
use iw_types::MachineArch;

/// A loopback connection that starts failing like a dead TCP peer as
/// soon as its shared `dead` flag is raised.
struct Killable {
    inner: Loopback,
    dead: Arc<AtomicBool>,
}

impl Transport for Killable {
    fn request(&mut self, req: &Request) -> Result<Reply, ProtoError> {
        if self.dead.load(Ordering::SeqCst) {
            return Err(ProtoError::Channel("replica is down".into()));
        }
        self.inner.request(req)
    }

    fn stats(&self) -> TransportStats {
        self.inner.stats()
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats();
    }
}

fn connector(server: &Arc<Server>, dead: &Arc<AtomicBool>) -> Connector {
    let handler: Arc<dyn Handler> = server.clone();
    let dead = dead.clone();
    Box::new(move || {
        if dead.load(Ordering::SeqCst) {
            return Err(CoreError::Proto(ProtoError::Channel(
                "replica is down".into(),
            )));
        }
        Ok(Box::new(Killable {
            inner: Loopback::new(handler.clone()),
            dead: dead.clone(),
        }) as Box<dyn Transport>)
    })
}

struct Cluster {
    primary: Arc<Server>,
    backup: Arc<Server>,
    primary_dead: Arc<AtomicBool>,
    #[allow(dead_code)]
    backup_dead: Arc<AtomicBool>,
}

impl Cluster {
    /// Copies `segment` from the primary to the backup with the same
    /// full-image message the cluster ship thread uses.
    fn sync_backup(&self, segment: &str) {
        let image = self
            .primary
            .with_segment_mut(segment, |seg| {
                iw_server::checkpoint::encode_segment(seg).expect("image encodes")
            })
            .expect("segment exists on primary");
        let reply = self.backup.handle_request(&Request::SyncFull {
            segment: segment.to_string(),
            image,
        });
        assert!(
            matches!(reply, Reply::Replicated { .. }),
            "sync rejected: {reply:?}"
        );
    }

    fn kill_primary(&self) {
        self.primary_dead.store(true, Ordering::SeqCst);
    }
}

/// A session whose `clu/*` segments are served by a replica group of
/// two, plus the cluster handles to drive replication and failures.
fn cluster_session() -> (Session, Cluster) {
    let cluster = Cluster {
        primary: Arc::new(Server::new()),
        backup: Arc::new(Server::new()),
        primary_dead: Arc::new(AtomicBool::new(false)),
        backup_dead: Arc::new(AtomicBool::new(false)),
    };
    // The default transport points at an unrelated scratch server; every
    // segment in these tests lives under the grouped host `clu`.
    let scratch: Arc<dyn Handler> = Arc::new(Server::new());
    let opts = SessionOptions {
        failover_backoff_ms: 1,
        lock_backoff_us: 1,
        ..SessionOptions::default()
    };
    let mut s =
        Session::with_options(MachineArch::x86(), Box::new(Loopback::new(scratch)), opts).unwrap();
    s.add_server_group(
        "clu",
        vec![
            connector(&cluster.primary, &cluster.primary_dead),
            connector(&cluster.backup, &cluster.backup_dead),
        ],
    )
    .unwrap();
    (s, cluster)
}

/// Seeds `clu/data#x = 7` through the session (version 1 on the
/// primary) and returns the handle.
fn seed(s: &mut Session) -> iw_core::SegHandle {
    let h = s.open_segment("clu/data").unwrap();
    s.wl_acquire(&h).unwrap();
    let p = s.malloc(&h, &TypeDesc::int64(), 1, Some("x")).unwrap();
    s.write_i64(&p, 7).unwrap();
    s.wl_release(&h).unwrap();
    h
}

fn failovers(s: &Session) -> u64 {
    s.metrics_snapshot()
        .counter("client.failovers_total")
        .unwrap_or(0)
}

#[test]
fn reads_fail_over_transparently_to_backup() {
    let (mut s, cluster) = cluster_session();
    let h = seed(&mut s);
    cluster.sync_backup("clu/data");
    cluster.kill_primary();

    // The read lock round trip hits the dead primary, reconnects to the
    // backup, and retries — the caller never sees an error.
    s.rl_acquire(&h).unwrap();
    let p = s.mip_to_ptr("clu/data#x").unwrap();
    assert_eq!(s.read_i64(&p).unwrap(), 7);
    s.rl_release(&h).unwrap();
    assert_eq!(failovers(&s), 1);

    // Later traffic sticks to the backup without another failover.
    s.rl_acquire(&h).unwrap();
    s.rl_release(&h).unwrap();
    assert_eq!(failovers(&s), 1);
}

#[test]
fn lost_write_lock_rolls_back_then_recovers() {
    let (mut s, cluster) = cluster_session();
    let h = seed(&mut s);
    cluster.sync_backup("clu/data");

    s.wl_acquire(&h).unwrap();
    let p = s.mip_to_ptr("clu/data#x").unwrap();
    s.write_i64(&p, 42).unwrap();
    cluster.kill_primary();
    // The release's diff relied on a lock that died with the primary.
    match s.wl_release(&h) {
        Err(CoreError::LockLost { segment }) => assert_eq!(segment, "clu/data"),
        other => panic!("expected LockLost, got {other:?}"),
    }
    assert_eq!(failovers(&s), 1);

    // The uncommitted write was rolled back to the acquisition state.
    s.rl_acquire(&h).unwrap();
    assert_eq!(s.read_i64(&p).unwrap(), 7);
    s.rl_release(&h).unwrap();

    // Re-acquire against the backup and redo the write.
    s.wl_acquire(&h).unwrap();
    s.write_i64(&p, 42).unwrap();
    s.wl_release(&h).unwrap();

    // A fresh client bound to the backup alone sees the redone write.
    let b: Arc<dyn Handler> = cluster.backup.clone();
    let mut r = Session::new(MachineArch::alpha(), Box::new(Loopback::new(b))).unwrap();
    let hr = r.open_segment("clu/data").unwrap();
    r.rl_acquire(&hr).unwrap();
    let pr = r.mip_to_ptr("clu/data#x").unwrap();
    assert_eq!(r.read_i64(&pr).unwrap(), 42);
    r.rl_release(&hr).unwrap();
}

#[test]
fn cache_ahead_of_backup_is_invalidated() {
    let (mut s, cluster) = cluster_session();
    let h = seed(&mut s);
    cluster.sync_backup("clu/data"); // backup stops at version 1
    let p = s.mip_to_ptr("clu/data#x").unwrap();
    s.wl_acquire(&h).unwrap();
    s.write_i64(&p, 42).unwrap();
    s.wl_release(&h).unwrap(); // version 2, never replicated
    cluster.kill_primary();

    // The cached version (2) names an update the backup never received;
    // failover must invalidate the cache and refetch, not trust it. The
    // refetch re-creates the blocks, so pointers are re-resolved.
    s.rl_acquire(&h).unwrap();
    let p = s.mip_to_ptr("clu/data#x").unwrap();
    assert_eq!(s.read_i64(&p).unwrap(), 7);
    s.rl_release(&h).unwrap();
    assert_eq!(failovers(&s), 1);
}

#[test]
fn no_reachable_replica_fails_then_recovers_when_one_returns() {
    let (mut s, cluster) = cluster_session();
    let h = seed(&mut s);
    cluster.sync_backup("clu/data");
    cluster.kill_primary();
    cluster.backup_dead.store(true, Ordering::SeqCst);

    match s.rl_acquire(&h) {
        Err(CoreError::Server(m)) => assert!(m.contains("no replica"), "{m}"),
        other => panic!("expected Server error, got {other:?}"),
    }
    assert_eq!(failovers(&s), 0);

    // The group stays registered: once a replica is back, the same
    // session fails over to it and continues.
    cluster.backup_dead.store(false, Ordering::SeqCst);
    s.rl_acquire(&h).unwrap();
    let p = s.mip_to_ptr("clu/data#x").unwrap();
    assert_eq!(s.read_i64(&p).unwrap(), 7);
    s.rl_release(&h).unwrap();
    assert_eq!(failovers(&s), 1);
}

#[test]
fn plain_links_and_default_transport_never_fail_over() {
    // A single-member "group" behaves like add_server: channel errors
    // surface to the caller instead of spinning on the only replica.
    let primary = Arc::new(Server::new());
    let dead = Arc::new(AtomicBool::new(false));
    let scratch: Arc<dyn Handler> = Arc::new(Server::new());
    let mut s = Session::new(MachineArch::x86(), Box::new(Loopback::new(scratch))).unwrap();
    s.add_server_group("solo", vec![connector(&primary, &dead)])
        .unwrap();
    let h = s.open_segment("solo/data").unwrap();
    dead.store(true, Ordering::SeqCst);
    match s.rl_acquire(&h) {
        Err(CoreError::Proto(ProtoError::Channel(_))) => {}
        other => panic!("expected channel error, got {other:?}"),
    }
}

#[test]
fn exhausted_lock_retries_are_counted() {
    let srv: Arc<dyn Handler> = Arc::new(Server::new());
    let holder_transport = Loopback::new(srv.clone());
    let mut holder =
        Session::new(MachineArch::x86(), Box::new(holder_transport.another())).unwrap();
    let opts = SessionOptions {
        lock_retries: 3,
        lock_backoff_us: 1,
        lock_backoff_cap_us: 4,
        ..SessionOptions::default()
    };
    let mut waiter =
        Session::with_options(MachineArch::x86(), Box::new(holder_transport), opts).unwrap();

    let hh = holder.open_segment("host/contended").unwrap();
    holder.wl_acquire(&hh).unwrap();
    let hw = waiter.open_segment("host/contended").unwrap();
    match waiter.wl_acquire(&hw) {
        Err(CoreError::LockTimeout(seg)) => assert_eq!(seg, "host/contended"),
        other => panic!("expected LockTimeout, got {other:?}"),
    }
    let snap = waiter.metrics_snapshot();
    assert_eq!(
        snap.counter("client.lock.retries_exhausted_total"),
        Some(1),
        "one exhausted acquisition"
    );
    assert_eq!(
        snap.counter("client.lock.busy_retries_total"),
        Some(4),
        "initial attempt plus lock_retries retries, all Busy"
    );

    // Once the holder lets go, the same acquisition succeeds and the
    // exhausted counter does not move again.
    holder.wl_release(&hh).unwrap();
    waiter.wl_acquire(&hw).unwrap();
    waiter.wl_release(&hw).unwrap();
    assert_eq!(
        waiter
            .metrics_snapshot()
            .counter("client.lock.retries_exhausted_total"),
        Some(1)
    );
}
