//! Property test: arbitrary typed data, mutated arbitrarily, survives the
//! full collect-diff → server → apply-diff cycle between arbitrary
//! architecture pairs.

use std::sync::Arc;

use iw_core::{Ptr, Session};
use iw_proto::{Handler, Loopback};
use iw_server::Server;
use iw_types::desc::{PrimKind, TypeDesc};
use iw_types::MachineArch;
use proptest::prelude::*;

fn arb_arch() -> impl Strategy<Value = MachineArch> {
    prop_oneof![
        Just(MachineArch::x86()),
        Just(MachineArch::x86_64()),
        Just(MachineArch::alpha()),
        Just(MachineArch::sparc_v9()),
        Just(MachineArch::mips32()),
    ]
}

/// Small leaf-only struct types (pointers are tested separately — their
/// values are addresses, not arbitrary data).
fn arb_block_type() -> impl Strategy<Value = TypeDesc> {
    let leaf = prop_oneof![
        Just(TypeDesc::char8()),
        Just(TypeDesc::int16()),
        Just(TypeDesc::int32()),
        Just(TypeDesc::int64()),
        Just(TypeDesc::float32()),
        Just(TypeDesc::float64()),
        (2u32..10).prop_map(TypeDesc::string),
    ];
    prop::collection::vec(leaf, 1..6).prop_map(|tys| {
        TypeDesc::structure(
            "t",
            tys.iter()
                .enumerate()
                .map(|(i, t)| -> (&str, TypeDesc) {
                    (Box::leak(format!("f{i}").into_boxed_str()), t.clone())
                })
                .collect(),
        )
    })
}

/// Deterministic value for primitive `i` in round `round`.
fn write_prim(s: &mut Session, p: &Ptr, i: u64, round: u64) {
    let kind = s.kind_at(p).unwrap();
    let seed = (i * 31 + round * 1009) as i64;
    match kind {
        PrimKind::Char => s.write_char(p, (seed % 251) as u8).unwrap(),
        PrimKind::Int16 => s.write_i16(p, (seed % 30000) as i16).unwrap(),
        PrimKind::Int32 => s.write_i32(p, (seed % 2_000_000_000) as i32).unwrap(),
        PrimKind::Int64 => s.write_i64(p, seed * 1_000_003).unwrap(),
        PrimKind::Float32 => s.write_f32(p, seed as f32 * 0.5).unwrap(),
        PrimKind::Float64 => s.write_f64(p, seed as f64 * 0.25).unwrap(),
        PrimKind::Str { cap } => {
            let len = (seed.unsigned_abs() % u64::from(cap.min(9))) as usize;
            let txt: String = (0..len)
                .map(|k| char::from(b'a' + ((seed as usize + k) % 26) as u8))
                .collect();
            s.write_str(p, &txt).unwrap();
        }
        PrimKind::Ptr => unreachable!("no pointers in this property"),
    }
}

fn check_prim(s: &mut Session, p: &Ptr, i: u64, round: u64) {
    let kind = s.kind_at(p).unwrap();
    let seed = (i * 31 + round * 1009) as i64;
    match kind {
        PrimKind::Char => assert_eq!(s.read_char(p).unwrap(), (seed % 251) as u8),
        PrimKind::Int16 => assert_eq!(s.read_i16(p).unwrap(), (seed % 30000) as i16),
        PrimKind::Int32 => {
            assert_eq!(s.read_i32(p).unwrap(), (seed % 2_000_000_000) as i32)
        }
        PrimKind::Int64 => assert_eq!(s.read_i64(p).unwrap(), seed * 1_000_003),
        PrimKind::Float32 => assert_eq!(s.read_f32(p).unwrap(), seed as f32 * 0.5),
        PrimKind::Float64 => assert_eq!(s.read_f64(p).unwrap(), seed as f64 * 0.25),
        PrimKind::Str { cap } => {
            let len = (seed.unsigned_abs() % u64::from(cap.min(9))) as usize;
            let txt: String = (0..len)
                .map(|k| char::from(b'a' + ((seed as usize + k) % 26) as u8))
                .collect();
            assert_eq!(s.read_str(p).unwrap(), txt);
        }
        PrimKind::Ptr => unreachable!(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_mutations_roundtrip_across_archs(
        ty in arb_block_type(),
        count in 1u32..20,
        writer_arch in arb_arch(),
        reader_arch in arb_arch(),
        mutations in prop::collection::vec((0u64..1000, 1u64..4), 0..12),
    ) {
        let srv: Arc<dyn Handler> = Arc::new(Server::new());
        let mut w = Session::new(writer_arch, Box::new(Loopback::new(srv.clone()))).unwrap();
        let mut r = Session::new(reader_arch, Box::new(Loopback::new(srv.clone()))).unwrap();

        let hw = w.open_segment("prop/seg").unwrap();
        w.wl_acquire(&hw).unwrap();
        let base = w.malloc(&hw, &ty, count, Some("blk")).unwrap();
        let nprims = ty.prim_count() * u64::from(count);
        // Round 0: write every primitive.
        for i in 0..nprims {
            let p = w.mip_to_ptr(&format!("prop/seg#blk#{i}")).unwrap();
            write_prim(&mut w, &p, i, 0);
        }
        w.wl_release(&hw).unwrap();
        let _ = base;

        // Reader caches round 0.
        let hr = r.open_segment("prop/seg").unwrap();
        r.rl_acquire(&hr).unwrap();
        for i in 0..nprims {
            let p = r.mip_to_ptr(&format!("prop/seg#blk#{i}")).unwrap();
            check_prim(&mut r, &p, i, 0);
        }
        r.rl_release(&hr).unwrap();

        // Apply random mutations in later rounds.
        let mut latest: std::collections::HashMap<u64, u64> = Default::default();
        for &(slot, round) in &mutations {
            let i = slot % nprims;
            w.wl_acquire(&hw).unwrap();
            let p = w.mip_to_ptr(&format!("prop/seg#blk#{i}")).unwrap();
            write_prim(&mut w, &p, i, round);
            w.wl_release(&hw).unwrap();
            latest.insert(i, round);
        }

        // Reader must observe exactly the latest value of every prim.
        r.rl_acquire(&hr).unwrap();
        for i in 0..nprims {
            let round = latest.get(&i).copied().unwrap_or(0);
            let p = r.mip_to_ptr(&format!("prop/seg#blk#{i}")).unwrap();
            check_prim(&mut r, &p, i, round);
        }
        r.rl_release(&hr).unwrap();
    }
}
