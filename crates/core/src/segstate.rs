//! Per-segment client state: versions, locks, coherence, and the no-diff
//! adaptation machinery.

use std::collections::{HashMap, HashSet};
use std::time::Instant;

use iw_heap::SegId;
use iw_proto::{Coherence, LockMode};

/// How modifications are being tracked for a segment (§3.3 "No-diff
/// mode").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrackMode {
    /// Normal operation: pages write-protected, twins created, diffs
    /// collected word by word.
    Diff,
    /// The client "simply transmits the whole segment … to the server at
    /// every write lock release", skipping protection, twins, and
    /// comparisons. Reverts to [`TrackMode::Diff`] after `remaining` more
    /// releases, "to capture changes in application behavior".
    NoDiff {
        /// Write-lock releases left before re-probing with diffing.
        remaining: u32,
    },
}

/// Fraction of a segment's primitives that must change to count a release
/// as "mostly modified" for no-diff adaptation.
pub const NO_DIFF_ENTER_FRACTION: f64 = 0.75;

/// Consecutive mostly-modified releases before switching to no-diff mode.
pub const NO_DIFF_ENTER_STREAK: u32 = 2;

/// Write-lock releases spent in no-diff mode before re-probing.
pub const NO_DIFF_PROBE_PERIOD: u32 = 8;

/// Client-side state for one open segment.
#[derive(Debug)]
pub(crate) struct SegState {
    /// Heap-side id.
    pub id: SegId,
    /// Version of the cached copy (0 = nothing cached yet).
    pub version: u64,
    /// Currently held lock, if any.
    pub lock: Option<LockMode>,
    /// Whether the current lock is registered at the server (write locks
    /// and Full-coherence read locks are; relaxed read locks are local).
    pub server_locked: bool,
    /// Coherence model for read-lock acquisitions.
    pub coherence: Coherence,
    /// When the cached copy was last brought up to date (Temporal
    /// coherence).
    pub last_update: Instant,
    /// Newest version of this segment confirmed at the *primary* (or
    /// learned from a replica, whose chains are prefixes of the
    /// primary's). Drives the replica-read eligibility floor
    /// ([`iw_proto::Coherence::replica_floor`]).
    pub best_known: u64,
    /// When `best_known` was last confirmed *at the primary*. Temporal
    /// replica reads anchor their staleness bound to this instant: data
    /// at or above the frontier confirmed then is at most that old.
    /// `None` until the first primary round trip.
    pub primary_confirm: Option<Instant>,
    /// Next block serial to allocate (granted by the server with the
    /// write lock).
    pub next_serial: u32,
    /// Number of type descriptors the server already knows; locally
    /// registered descriptors at or past this serial travel in the next
    /// diff.
    pub types_synced: u32,
    /// Blocks created under the current write lock (transmitted whole).
    pub new_blocks: Vec<u32>,
    /// Blocks freed under the current write lock.
    pub freed: Vec<u32>,
    /// Frees deferred by an open transaction (applied at commit,
    /// forgotten on abort).
    pub pending_free: Vec<u32>,
    /// Segment-level tracking mode.
    pub mode: TrackMode,
    /// Consecutive mostly-modified releases (for no-diff entry).
    pub high_streak: u32,
    /// Blocks individually in no-diff mode (sent whole when touched).
    pub block_nodiff: HashSet<u32>,
    /// Per-block consecutive mostly-modified release counts.
    pub block_streak: HashMap<u32, u32>,
    /// Set when a held write lock was lost in a failover; the next
    /// `wl_release` surfaces it as [`crate::CoreError::LockLost`] and
    /// clears it.
    pub lock_lost: bool,
    /// Isomorphic-layout stamp: true while every block allocated into
    /// this cached copy (locally or from an applied diff) has a layout
    /// byte-identical to its wire encoding, so the whole segment
    /// translates by memcpy. Stamped at open (vacuously true) and
    /// ANDed at every allocation; sticky — freeing the one offending
    /// block does not restore it. The translation paths check per block,
    /// so a mixed segment still fast-paths its isomorphic blocks; this
    /// summary is what [`crate::Session::segment_iso`] reports.
    pub iso: bool,
}

impl SegState {
    pub fn new(id: SegId) -> Self {
        SegState {
            id,
            version: 0,
            lock: None,
            server_locked: false,
            coherence: Coherence::Full,
            last_update: Instant::now(),
            best_known: 0,
            primary_confirm: None,
            next_serial: 0,
            types_synced: 0,
            new_blocks: Vec::new(),
            freed: Vec::new(),
            pending_free: Vec::new(),
            mode: TrackMode::Diff,
            high_streak: 0,
            block_nodiff: HashSet::new(),
            block_streak: HashMap::new(),
            lock_lost: false,
            iso: true,
        }
    }

    /// Advances the no-diff adaptation state after a write-lock release
    /// where `changed` of `total` primitives were transmitted and the
    /// per-block fractions were `block_fractions`.
    pub fn adapt_after_release(
        &mut self,
        changed: u64,
        total: u64,
        block_fractions: &[(u32, f64)],
    ) {
        match self.mode {
            TrackMode::NoDiff { remaining } => {
                if remaining <= 1 {
                    // Re-probe with diffing ("periodically switch back").
                    self.mode = TrackMode::Diff;
                    self.high_streak = 0;
                } else {
                    self.mode = TrackMode::NoDiff {
                        remaining: remaining - 1,
                    };
                }
            }
            TrackMode::Diff => {
                let frac = if total == 0 {
                    0.0
                } else {
                    changed as f64 / total as f64
                };
                if frac >= NO_DIFF_ENTER_FRACTION {
                    self.high_streak += 1;
                    if self.high_streak >= NO_DIFF_ENTER_STREAK {
                        self.mode = TrackMode::NoDiff {
                            remaining: NO_DIFF_PROBE_PERIOD,
                        };
                        self.high_streak = 0;
                        return; // block-level adaptation moot
                    }
                } else {
                    self.high_streak = 0;
                }
                // Block-level adaptation.
                for &(serial, bfrac) in block_fractions {
                    if bfrac >= NO_DIFF_ENTER_FRACTION {
                        let streak = self.block_streak.entry(serial).or_insert(0);
                        *streak += 1;
                        if *streak >= NO_DIFF_ENTER_STREAK {
                            self.block_nodiff.insert(serial);
                        }
                    } else {
                        self.block_streak.remove(&serial);
                        self.block_nodiff.remove(&serial);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> SegState {
        let mut h = iw_heap::Heap::new(iw_types::MachineArch::x86());
        let id = h.create_segment("h/s").unwrap();
        SegState::new(id)
    }

    #[test]
    fn two_heavy_releases_enter_no_diff() {
        let mut s = state();
        s.adapt_after_release(80, 100, &[]);
        assert_eq!(s.mode, TrackMode::Diff);
        s.adapt_after_release(90, 100, &[]);
        assert_eq!(
            s.mode,
            TrackMode::NoDiff {
                remaining: NO_DIFF_PROBE_PERIOD
            }
        );
    }

    #[test]
    fn light_release_resets_streak() {
        let mut s = state();
        s.adapt_after_release(80, 100, &[]);
        s.adapt_after_release(5, 100, &[]);
        s.adapt_after_release(80, 100, &[]);
        assert_eq!(s.mode, TrackMode::Diff);
    }

    #[test]
    fn no_diff_counts_down_then_reprobes() {
        let mut s = state();
        s.mode = TrackMode::NoDiff { remaining: 2 };
        s.adapt_after_release(100, 100, &[]);
        assert_eq!(s.mode, TrackMode::NoDiff { remaining: 1 });
        s.adapt_after_release(100, 100, &[]);
        assert_eq!(s.mode, TrackMode::Diff, "must re-probe");
    }

    #[test]
    fn per_block_no_diff() {
        let mut s = state();
        s.adapt_after_release(10, 100, &[(3, 0.9), (4, 0.1)]);
        s.adapt_after_release(10, 100, &[(3, 0.8), (4, 0.9)]);
        assert!(s.block_nodiff.contains(&3));
        assert!(!s.block_nodiff.contains(&4));
        // Block 3 calms down: leaves no-diff.
        s.adapt_after_release(10, 100, &[(3, 0.05)]);
        assert!(!s.block_nodiff.contains(&3));
    }

    #[test]
    fn empty_segment_is_not_heavy() {
        let mut s = state();
        s.adapt_after_release(0, 0, &[]);
        s.adapt_after_release(0, 0, &[]);
        assert_eq!(s.mode, TrackMode::Diff);
    }
}
