//! Client-side metrics: a per-session [`Registry`] with pre-resolved
//! handles for every hot-path counter.
//!
//! The handles are resolved once at session construction; hot paths touch
//! only the atomics behind the cached `Arc`s, never the registry's name
//! map. Per-pointer swizzle/unswizzle cache hits are batched in the cache
//! structs themselves (plain integer increments) and flushed into the
//! counters once per translation call, so pointer-dense workloads pay no
//! per-element atomic traffic.

use std::sync::Arc;

use iw_telemetry::{Counter, Gauge, Histogram, Registry};

/// Pre-resolved metric handles for one [`crate::Session`].
pub(crate) struct SessionMetrics {
    registry: Arc<Registry>,
    /// `client.diff.collected_total` — diffs collected for write releases.
    pub diffs_collected: Arc<Counter>,
    /// `client.diff.applied_total` — update diffs installed locally.
    pub diffs_applied: Arc<Counter>,
    /// `client.diff.prims_sent_total` — primitive units in collected diffs.
    pub prims_sent: Arc<Counter>,
    /// `client.diff.prims_received_total` — primitive units installed.
    pub prims_received: Arc<Counter>,
    /// `client.diff.collect_us` — wall time of one diff collection.
    pub collect_us: Arc<Histogram>,
    /// `client.diff.apply_us` — wall time of one diff application.
    pub apply_us: Arc<Histogram>,
    /// `client.diff.collected_bytes` — wire payload size per collected diff.
    pub collected_bytes: Arc<Histogram>,
    /// `client.apply.block_lookups_total` — serial→block lookups on apply.
    pub apply_block_lookups: Arc<Counter>,
    /// `client.apply.pred_hits_total` — lookups the predictor answered.
    pub apply_pred_hits: Arc<Counter>,
    /// `client.swizzle.cache_hits_total` — pointer swizzles served by the
    /// one-entry block cache.
    pub swizzle_cache_hits: Arc<Counter>,
    /// `client.swizzle.cache_misses_total` — swizzles that searched the
    /// metadata trees.
    pub swizzle_cache_misses: Arc<Counter>,
    /// `client.unswizzle.cache_hits_total` — MIP resolutions served by the
    /// one-entry prefix cache.
    pub unswizzle_cache_hits: Arc<Counter>,
    /// `client.unswizzle.cache_misses_total` — resolutions that searched.
    pub unswizzle_cache_misses: Arc<Counter>,
    /// `client.lock.acquires_total` — lock acquisitions attempted.
    pub lock_acquires: Arc<Counter>,
    /// `client.lock.busy_retries_total` — `Busy` replies retried.
    pub lock_busy_retries: Arc<Counter>,
    /// `client.lock.retries_exhausted_total` — acquisitions that gave up
    /// after the full retry budget (distinct from individual busy
    /// retries).
    pub lock_retries_exhausted: Arc<Counter>,
    /// `client.failovers_total` — successful fail-overs to a backup
    /// replica.
    pub failovers: Arc<Counter>,
    /// `client.reconnects_total` — successful reconnects after a channel
    /// fault, whichever replica answered (the same server after a
    /// transient fault, or a backup). Under chaos testing this counts
    /// recoveries from injected faults.
    pub reconnects: Arc<Counter>,
    /// `client.lock.wait_us` — wall time from first request to grant.
    pub lock_wait_us: Arc<Histogram>,
    /// `client.update.piggyback_bytes` — payload of updates piggybacked on
    /// lock grants and polls.
    pub update_bytes: Arc<Histogram>,
    /// `client.no_diff.transitions_total` — tracking-mode flips either way.
    pub no_diff_transitions: Arc<Counter>,
    /// `client.twin_faults` — cumulative simulated write faults (refreshed
    /// from the heap at snapshot time).
    pub twin_faults: Arc<Gauge>,
    /// `client.translate.threads` — resolved translation worker count.
    pub translate_threads: Arc<Gauge>,
    /// `client.translate.par_collects_total` — collects whose translation
    /// actually fanned out over the worker pool.
    pub par_collects: Arc<Counter>,
    /// `client.translate.par_applies_total` — applies whose decode fanned
    /// out over the worker pool.
    pub par_applies: Arc<Counter>,
    /// `client.translate.iso_collects_total` — collects where at least one
    /// block took the isomorphic memcpy fast path.
    pub iso_collects: Arc<Counter>,
    /// `client.translate.iso_applies_total` — applies where at least one
    /// run took the isomorphic memcpy fast path.
    pub iso_applies: Arc<Counter>,
    /// `client.translate.iso_memcpy_bytes_total` — wire bytes moved by
    /// the isomorphic fast path instead of the descriptor walk, both
    /// directions.
    pub iso_memcpy_bytes: Arc<Counter>,
    /// `client.scan.pages_total` — modified pages word-diffed.
    pub scan_pages: Arc<Counter>,
    /// `client.scan.bytes_total` — bytes covered by twin scans.
    pub scan_bytes: Arc<Counter>,
    /// `client.diff.scan_us` — wall time of one collect's twin-scan phase.
    pub scan_us: Arc<Histogram>,
    /// `client.pool.reuses_total` — scratch buffers served from the pool.
    pub pool_reuses: Arc<Counter>,
    /// `client.pool.allocs_total` — scratch buffers freshly allocated.
    pub pool_allocs: Arc<Counter>,
    /// `client.pool.buffers` — buffers currently held by the pool.
    pub pool_buffers: Arc<Gauge>,
    /// `cluster.replica_reads_total` — relaxed reads served by a read
    /// replica instead of the primary.
    pub replica_reads: Arc<Counter>,
    /// `cluster.replica_read_fallbacks_total` — relaxed reads that fell
    /// back to the primary because no replica satisfied the coherence
    /// predicate (or none answered).
    pub replica_fallbacks: Arc<Counter>,
    /// `cluster.replica_not_fresh_total` — replica polls refused with
    /// `NotFresh` (the replica's version was below the requested floor).
    pub replica_not_fresh: Arc<Counter>,
    /// `cluster.replica_read_violations_total` — replica-served reads
    /// whose final cached version landed below the coherence floor.
    /// The server-side floor check makes this impossible; a non-zero
    /// count is a protocol bug.
    pub replica_violations: Arc<Counter>,
    /// `cluster.frontier_probes_total` — version-frontier probes sent to
    /// the primary to refresh the replica-read anchor.
    pub frontier_probes: Arc<Counter>,
}

impl SessionMetrics {
    /// Resolves every handle against `registry`.
    pub fn new(registry: Arc<Registry>) -> Self {
        SessionMetrics {
            diffs_collected: registry.counter("client.diff.collected_total"),
            diffs_applied: registry.counter("client.diff.applied_total"),
            prims_sent: registry.counter("client.diff.prims_sent_total"),
            prims_received: registry.counter("client.diff.prims_received_total"),
            collect_us: registry.histogram_us("client.diff.collect_us"),
            apply_us: registry.histogram_us("client.diff.apply_us"),
            collected_bytes: registry.histogram_bytes("client.diff.collected_bytes"),
            apply_block_lookups: registry.counter("client.apply.block_lookups_total"),
            apply_pred_hits: registry.counter("client.apply.pred_hits_total"),
            swizzle_cache_hits: registry.counter("client.swizzle.cache_hits_total"),
            swizzle_cache_misses: registry.counter("client.swizzle.cache_misses_total"),
            unswizzle_cache_hits: registry.counter("client.unswizzle.cache_hits_total"),
            unswizzle_cache_misses: registry.counter("client.unswizzle.cache_misses_total"),
            lock_acquires: registry.counter("client.lock.acquires_total"),
            lock_busy_retries: registry.counter("client.lock.busy_retries_total"),
            lock_retries_exhausted: registry.counter("client.lock.retries_exhausted_total"),
            failovers: registry.counter("client.failovers_total"),
            reconnects: registry.counter("client.reconnects_total"),
            lock_wait_us: registry.histogram_us("client.lock.wait_us"),
            update_bytes: registry.histogram_bytes("client.update.piggyback_bytes"),
            no_diff_transitions: registry.counter("client.no_diff.transitions_total"),
            twin_faults: registry.gauge("client.twin_faults"),
            translate_threads: registry.gauge("client.translate.threads"),
            par_collects: registry.counter("client.translate.par_collects_total"),
            par_applies: registry.counter("client.translate.par_applies_total"),
            iso_collects: registry.counter("client.translate.iso_collects_total"),
            iso_applies: registry.counter("client.translate.iso_applies_total"),
            iso_memcpy_bytes: registry.counter("client.translate.iso_memcpy_bytes_total"),
            scan_pages: registry.counter("client.scan.pages_total"),
            scan_bytes: registry.counter("client.scan.bytes_total"),
            scan_us: registry.histogram_us("client.diff.scan_us"),
            pool_reuses: registry.counter("client.pool.reuses_total"),
            pool_allocs: registry.counter("client.pool.allocs_total"),
            pool_buffers: registry.gauge("client.pool.buffers"),
            replica_reads: registry.counter("cluster.replica_reads_total"),
            replica_fallbacks: registry.counter("cluster.replica_read_fallbacks_total"),
            replica_not_fresh: registry.counter("cluster.replica_not_fresh_total"),
            replica_violations: registry.counter("cluster.replica_read_violations_total"),
            frontier_probes: registry.counter("cluster.frontier_probes_total"),
            registry,
        }
    }

    /// The registry behind the handles.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }
}
