//! Client-library error type.

use std::error::Error;
use std::fmt;

use iw_heap::HeapError;
use iw_proto::ProtoError;
use iw_types::desc::PrimKind;
use iw_wire::codec::WireError;

/// Errors raised by the InterWeave client library.
#[derive(Debug)]
pub enum CoreError {
    /// A heap operation failed.
    Heap(HeapError),
    /// A wire translation failed.
    Wire(WireError),
    /// A protocol round trip failed.
    Proto(ProtoError),
    /// The segment is not open in this session.
    NotOpen(String),
    /// The operation requires a lock that is not held.
    NotLocked {
        /// The segment in question.
        segment: String,
        /// `true` when a *write* lock specifically was required.
        write: bool,
    },
    /// A lock acquisition gave up after too many busy retries.
    LockTimeout(String),
    /// A write lock was lost when the session failed over to a backup
    /// replica. Local modifications were rolled back to the state at
    /// acquisition; the caller can re-acquire and redo them.
    LockLost {
        /// The segment whose write lock was lost.
        segment: String,
    },
    /// A typed access did not match the declared type.
    TypeMismatch {
        /// What the accessor expected.
        expected: &'static str,
        /// The primitive actually at that address.
        found: PrimKind,
    },
    /// A structure navigation failed (no such field / not a struct /
    /// index out of range).
    BadPath(String),
    /// A pointer was dereferenced whose target cannot be resolved.
    DanglingPointer(String),
    /// The server reported an error.
    Server(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Heap(e) => write!(f, "heap error: {e}"),
            CoreError::Wire(e) => write!(f, "wire error: {e}"),
            CoreError::Proto(e) => write!(f, "protocol error: {e}"),
            CoreError::NotOpen(s) => write!(f, "segment `{s}` is not open"),
            CoreError::NotLocked { segment, write } => write!(
                f,
                "segment `{segment}` requires a {} lock for this operation",
                if *write { "write" } else { "read" }
            ),
            CoreError::LockTimeout(s) => {
                write!(f, "gave up acquiring lock on `{s}` (still busy)")
            }
            CoreError::LockLost { segment } => write!(
                f,
                "write lock on `{segment}` lost in failover; modifications rolled back"
            ),
            CoreError::TypeMismatch { expected, found } => {
                write!(f, "typed access expected {expected}, found {found}")
            }
            CoreError::BadPath(m) => write!(f, "bad navigation: {m}"),
            CoreError::DanglingPointer(m) => write!(f, "dangling pointer: {m}"),
            CoreError::Server(m) => write!(f, "server error: {m}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Heap(e) => Some(e),
            CoreError::Wire(e) => Some(e),
            CoreError::Proto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HeapError> for CoreError {
    fn from(e: HeapError) -> Self {
        CoreError::Heap(e)
    }
}

impl From<WireError> for CoreError {
    fn from(e: WireError) -> Self {
        CoreError::Wire(e)
    }
}

impl From<ProtoError> for CoreError {
    fn from(e: ProtoError) -> Self {
        CoreError::Proto(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e = CoreError::NotLocked {
            segment: "a/b".into(),
            write: true,
        };
        assert!(e.to_string().contains("write"));
        let e = CoreError::TypeMismatch {
            expected: "int",
            found: PrimKind::Float64,
        };
        assert!(e.to_string().contains("double"));
        let e: CoreError = HeapError::UnknownBlockSerial(3).into();
        assert!(e.source().is_some());
        let e: CoreError = WireError::InvalidUtf8.into();
        assert!(e.source().is_some());
    }
}
