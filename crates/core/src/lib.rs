//! # iw-core — the InterWeave client library
//!
//! The primary contribution of *"Efficient Distributed Shared State for
//! Heterogeneous Machine Architectures"* (ICDCS 2003): a client library
//! that lets processes on heterogeneous machines map shared segments and
//! access strongly typed, pointer-rich data, with
//!
//! - **modification tracking** via page twins ([`diffing`]),
//! - **wire-format diffs** translated through type descriptors,
//! - **pointer swizzling** between machine-independent pointers (MIPs)
//!   and local addresses,
//! - relaxed **coherence models** (Full / Delta / Temporal / Diff),
//! - and the §3.3 optimizations (no-diff mode, diff-run splicing,
//!   isomorphic descriptors, last-block prediction, locality layout).
//!
//! # Examples
//!
//! The paper's Figure 1 linked list, in this API:
//!
//! ```
//! use std::sync::Arc;
//! use iw_core::{Session, SessionOptions};
//! use iw_proto::{Handler, Loopback};
//! use iw_server::Server;
//! use iw_types::{idl, MachineArch};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let server: Arc<dyn Handler> = Arc::new(Server::new());
//! let mut s = Session::new(
//!     MachineArch::x86(),
//!     Box::new(Loopback::new(server)),
//! )?;
//!
//! let module = idl::compile("struct node { int key; struct node *next; };")?;
//! let node_t = module.get("node").unwrap();
//!
//! let h = s.open_segment("host/list")?;
//! s.wl_acquire(&h)?;
//! let head = s.malloc(&h, node_t, 1, Some("head"))?;
//! let first = s.malloc(&h, node_t, 1, None)?;
//! s.write_i32(&s.field(&first, "key")?, 42)?;
//! s.write_ptr(&s.field(&head, "next")?, Some(&first))?;
//! s.wl_release(&h)?;
//!
//! s.rl_acquire(&h)?;
//! let p = s.read_ptr(&s.field(&head, "next")?)?.unwrap();
//! assert_eq!(s.read_i32(&s.field(&p, "key")?)?, 42);
//! s.rl_release(&h)?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod access;
pub mod diffing;
mod error;
mod metrics;
mod parallel;
mod segstate;
mod session;
pub mod tx;

pub use error::CoreError;
pub use segstate::{TrackMode, NO_DIFF_ENTER_FRACTION, NO_DIFF_ENTER_STREAK, NO_DIFF_PROBE_PERIOD};
pub use session::{Connector, Ptr, SegHandle, Session, SessionOptions, SessionStats};
