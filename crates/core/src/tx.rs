//! Transactions over shared segments.
//!
//! The paper's §6 announces this as ongoing work: "We are incorporating
//! transaction support into InterWeave and studying the interplay of
//! transactions, RPC, and global shared state." This module implements
//! that extension on top of the mechanisms the paper already provides:
//!
//! - **Write sets** are exactly the page twins: every tracked write under
//!   a write lock has a pristine copy, so *abort* is "copy the twins
//!   back" — no extra logging.
//! - **Commit** collects the per-segment wire diffs and ships them in a
//!   single [`iw_proto::Request::Commit`], which the server validates
//!   (locks held, versions current) before applying any entry.
//! - Blocks allocated inside the transaction are discarded on abort;
//!   `free` inside a transaction is deferred until commit so the data can
//!   be resurrected by an abort.
//!
//! # Examples
//!
//! ```
//! # use std::sync::Arc;
//! # use iw_core::Session;
//! # use iw_proto::{Handler, Loopback};
//! # use iw_server::Server;
//! # use iw_types::{MachineArch, desc::TypeDesc};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let srv: Arc<dyn Handler> = Arc::new(Server::new());
//! # let mut s = Session::new(MachineArch::x86(), Box::new(Loopback::new(srv)))?;
//! let h = s.open_segment("bank/accounts")?;
//! s.wl_acquire(&h)?;
//! let a = s.malloc(&h, &TypeDesc::int64(), 1, Some("alice"))?;
//! let b = s.malloc(&h, &TypeDesc::int64(), 1, Some("bob"))?;
//! s.write_i64(&a, 100)?;
//! s.wl_release(&h)?;
//!
//! s.tx_begin()?;
//! s.wl_acquire(&h)?;
//! s.write_i64(&a, s.read_i64(&a)? - 30)?;
//! s.write_i64(&b, s.read_i64(&b)? + 30)?;
//! s.tx_commit()?;                      // both updates, atomically
//! # Ok(()) }
//! ```

use iw_proto::msg::{Reply, Request};
use iw_proto::LockMode;
use iw_wire::diff::SegmentDiff;

use crate::error::CoreError;
use crate::session::Session;

/// One commit entry: a segment name and its (possibly empty) diff.
type CommitEntry = (String, Option<SegmentDiff>);

/// Post-release adaptation inputs per segment: `(name, changed prims,
/// per-block change fractions)`.
type AdaptEntry = (String, u64, Vec<(u32, f64)>);

/// State of an open transaction.
#[derive(Debug, Default)]
pub(crate) struct TxState {
    /// Segments write-locked during the transaction, in acquisition
    /// order.
    pub segments: Vec<String>,
}

impl Session {
    /// `true` while a transaction is open.
    pub fn in_tx(&self) -> bool {
        self.tx.is_some()
    }

    /// Opens a transaction. Until [`Session::tx_commit`] or
    /// [`Session::tx_abort`], every segment write-locked by this session
    /// joins the transaction: its `wl_release` is deferred to the commit,
    /// and frees are buffered.
    ///
    /// # Errors
    ///
    /// [`CoreError::BadPath`] when a transaction is already open or a
    /// write lock is currently held (locks must be acquired *inside* the
    /// transaction so their twins cover the whole write set).
    pub fn tx_begin(&mut self) -> Result<(), CoreError> {
        if self.tx.is_some() {
            return Err(CoreError::BadPath("transaction already open".into()));
        }
        if self
            .segs
            .values()
            .any(|st| st.lock == Some(LockMode::Write))
        {
            return Err(CoreError::BadPath(
                "tx_begin with a write lock already held".into(),
            ));
        }
        self.tx = Some(TxState::default());
        Ok(())
    }

    /// Commits the transaction: collects the wire diff of every joined
    /// segment and applies them at the server in one atomic request,
    /// then releases the locks.
    ///
    /// # Errors
    ///
    /// [`CoreError::BadPath`] without an open transaction; translation
    /// and protocol errors. On a server-side rejection the transaction
    /// is aborted locally (twins restored) and the server error
    /// returned.
    pub fn tx_commit(&mut self) -> Result<(), CoreError> {
        let tx = self
            .tx
            .take()
            .ok_or_else(|| CoreError::BadPath("no open transaction".into()))?;
        // Apply deferred frees, then collect per-segment diffs.
        let mut entries: Vec<CommitEntry> = Vec::new();
        let mut adapt: Vec<AdaptEntry> = Vec::new();
        for name in &tx.segments {
            let (id, pending) = {
                let st = self.state(name)?;
                (st.id, st.pending_free.clone())
            };
            for serial in pending {
                let (bva, bend) = {
                    let meta = self.heap.segment(id).block_by_serial(serial)?;
                    (meta.va, meta.end())
                };
                self.heap.free_block(id, serial)?;
                self.unresolved.retain(|&va, _| !(bva..bend).contains(&va));
                self.state_mut(name)?.freed.push(serial);
            }
            self.state_mut(name)?.pending_free.clear();
            let h = crate::session::SegHandle::for_name(name);
            let (diff, changed, fractions) = self.collect_segment_diff(&h)?;
            let is_empty = diff.new_types.is_empty()
                && diff.new_blocks.is_empty()
                && diff.block_diffs.is_empty()
                && diff.freed.is_empty();
            entries.push((name.clone(), (!is_empty).then_some(diff)));
            adapt.push((name.clone(), changed, fractions));
        }
        if entries.is_empty() {
            return Ok(()); // empty transaction
        }
        // Group entries by server: each server commits its own segments
        // atomically. (Cross-server atomicity would need two-phase
        // commit; this prototype documents per-server atomicity.)
        let mut by_host: Vec<(String, Vec<CommitEntry>)> = Vec::new();
        for (name, diff) in &entries {
            let host = name.split('/').next().unwrap_or("").to_string();
            match by_host.iter_mut().find(|(h, _)| *h == host) {
                Some((_, v)) => v.push((name.clone(), diff.clone())),
                None => by_host.push((host, vec![(name.clone(), diff.clone())])),
            }
        }
        let mut versions: Vec<(String, u64)> = Vec::new();
        for (_, group) in &by_host {
            let first_segment = group[0].0.clone();
            let group_clone = group.clone();
            let reply = self.request_for(&first_segment, |client| Request::Commit {
                client,
                entries: group_clone.clone(),
            })?;
            match reply {
                Reply::Committed { versions: vs } => {
                    for ((name, _), v) in group.iter().zip(vs) {
                        versions.push((name.clone(), v));
                    }
                }
                Reply::Error { message } => {
                    // Roll back locally; locks are still ours, so release
                    // them everywhere.
                    self.rollback_segments(&tx.segments)?;
                    for name in &tx.segments {
                        let n = name.clone();
                        let _ = self.request_for(&n, |client| Request::Release {
                            client,
                            segment: n.clone(),
                            diff: None,
                        });
                        let st = self.state_mut(name)?;
                        st.lock = None;
                        st.server_locked = false;
                    }
                    return Err(CoreError::Server(message));
                }
                other => return Err(CoreError::Server(format!("unexpected reply: {other:?}"))),
            }
        }
        let versions: Vec<u64> = entries
            .iter()
            .map(|(n, _)| {
                versions
                    .iter()
                    .find(|(vn, _)| vn == n)
                    .map(|(_, v)| *v)
                    .expect("every entry committed")
            })
            .collect();
        for ((name, version), (_, changed, fractions)) in
            entries.iter().map(|(n, _)| n).zip(versions).zip(adapt)
        {
            let id = self.state(name)?.id;
            self.heap.clear_tracking(id);
            let total: u64 = self
                .heap
                .segment(id)
                .blocks()
                .map(iw_heap::BlockMeta::prim_count)
                .sum();
            let adapt_on = self.opts.no_diff_adaptation;
            let st = self.state_mut(name)?;
            st.version = version;
            st.lock = None;
            st.server_locked = false;
            st.new_blocks.clear();
            st.freed.clear();
            st.last_update = std::time::Instant::now();
            if adapt_on {
                st.adapt_after_release(changed, total, &fractions);
            }
        }
        Ok(())
    }

    /// Aborts the transaction: every tracked write is rolled back from
    /// its page twin, blocks allocated inside the transaction are
    /// discarded, deferred frees are forgotten, and the write locks are
    /// released with no diff.
    ///
    /// # Errors
    ///
    /// [`CoreError::BadPath`] without an open transaction; heap errors on
    /// internal inconsistency.
    pub fn tx_abort(&mut self) -> Result<(), CoreError> {
        let tx = self
            .tx
            .take()
            .ok_or_else(|| CoreError::BadPath("no open transaction".into()))?;
        self.rollback_segments(&tx.segments)?;
        for name in &tx.segments {
            let n = name.clone();
            let reply = self.request_for(&n, |client| Request::Release {
                client,
                segment: n.clone(),
                diff: None,
            })?;
            if !matches!(reply, Reply::Released { .. }) {
                return Err(CoreError::Server(format!("unexpected reply: {reply:?}")));
            }
            let st = self.state_mut(name)?;
            st.lock = None;
            st.server_locked = false;
        }
        Ok(())
    }

    /// Restores local state of the given segments to their
    /// pre-transaction content.
    pub(crate) fn rollback_segments(&mut self, segments: &[String]) -> Result<(), CoreError> {
        for name in segments {
            let (id, new_blocks) = {
                let st = self.state(name)?;
                (st.id, st.new_blocks.clone())
            };
            // Undo tracked writes from twins, then discard tx-allocated
            // blocks (their contents are gone with them).
            self.heap.restore_segment_twins(id);
            for serial in new_blocks {
                let (bva, bend) = {
                    let meta = self.heap.segment(id).block_by_serial(serial)?;
                    (meta.va, meta.end())
                };
                self.heap.free_block(id, serial)?;
                self.unresolved.retain(|&va, _| !(bva..bend).contains(&va));
            }
            let st = self.state_mut(name)?;
            st.new_blocks.clear();
            st.freed.clear();
            st.pending_free.clear();
        }
        Ok(())
    }
}
