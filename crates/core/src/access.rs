//! Typed access to shared data, and the public swizzling API.
//!
//! The paper's clients use ordinary reads and writes on swizzled C
//! pointers. Safe Rust cannot hand out raw interior pointers into
//! library-owned buffers, so access goes through typed accessors on
//! [`Session`]: each read checks the primitive kind declared in the IDL,
//! decodes per the session's architecture, and each write routes through
//! modification tracking (so twins appear exactly where a hardware write
//! fault would create them). Navigation (`field`, `index`, `deref`)
//! reproduces pointer arithmetic with the layout engine.
//!
//! `mip_to_ptr`/`ptr_to_mip` are the paper's `IW_mip_to_ptr` and
//! `IW_ptr_to_mip`.

use iw_proto::msg::{Reply, Request};
use iw_proto::Coherence;
use iw_types::desc::{PrimKind, TypeDesc, TypeKind};
use iw_types::layout::layout_of;
use iw_wire::mip::{BlockRef, Mip};
use iw_wire::prim::local_str_bytes;

use crate::error::CoreError;
use crate::session::{read_va, write_va, Ptr, ResolvedPtr, Session};

impl Session {
    /// Locates the primitive at `p` and checks it has kind `expect`.
    fn prim_window(
        &self,
        p: &Ptr,
        expect: &'static str,
    ) -> Result<(u64, PrimKind, u32), CoreError> {
        let (seg, meta) = self.heap().block_at(p.va)?;
        self.require_lock(seg, false)?;
        let rel = (p.va - meta.va) as u32;
        let prim = meta
            .flat
            .prim_containing_byte(rel)
            .ok_or_else(|| CoreError::BadPath(format!("{:#x} is in padding", p.va)))?;
        if prim.local_off != rel {
            return Err(CoreError::BadPath(format!(
                "{:#x} is not aligned to a primitive",
                p.va
            )));
        }
        let _ = expect;
        Ok((p.va, prim.kind, prim.local_size(self.arch())))
    }

    fn check_kind(&self, found: PrimKind, expect: &'static str, ok: bool) -> Result<(), CoreError> {
        if ok {
            Ok(())
        } else {
            Err(CoreError::TypeMismatch {
                expected: expect,
                found,
            })
        }
    }

    fn read_fixed<const N: usize>(
        &self,
        p: &Ptr,
        expect: &'static str,
        want: PrimKind,
    ) -> Result<[u8; N], CoreError> {
        let (va, kind, size) = self.prim_window(p, expect)?;
        self.check_kind(kind, expect, kind == want)?;
        debug_assert_eq!(size as usize, N);
        let bytes = self.heap().read_bytes(va, N)?;
        Ok(bytes.try_into().expect("size checked"))
    }

    fn write_fixed<const N: usize>(
        &mut self,
        p: &Ptr,
        expect: &'static str,
        want: PrimKind,
        bytes: [u8; N],
    ) -> Result<(), CoreError> {
        let (va, kind, _) = self.prim_window(p, expect)?;
        let (seg, _) = self.heap().block_at(p.va)?;
        self.require_lock(seg, true)?;
        self.check_kind(kind, expect, kind == want)?;
        self.heap_mut().write_bytes(va, &bytes)?;
        Ok(())
    }

    pub(crate) fn heap_mut(&mut self) -> &mut iw_heap::Heap {
        &mut self.heap
    }

    // ------------------------------------------------------------------
    // Scalar accessors
    // ------------------------------------------------------------------

    /// The kind of the primitive stored at `p` (regardless of the
    /// pointer's view type — a pointer at a struct boundary reports the
    /// struct's first primitive).
    ///
    /// # Errors
    ///
    /// [`CoreError::BadPath`] for padding or unaligned addresses.
    pub fn kind_at(&self, p: &Ptr) -> Result<PrimKind, CoreError> {
        let (_, kind, _) = self.prim_window(p, "any")?;
        Ok(kind)
    }

    /// Reads a `char` (byte).
    ///
    /// # Errors
    ///
    /// [`CoreError::TypeMismatch`], [`CoreError::NotLocked`], heap errors.
    pub fn read_char(&self, p: &Ptr) -> Result<u8, CoreError> {
        Ok(self.read_fixed::<1>(p, "char", PrimKind::Char)?[0])
    }

    /// Writes a `char` (byte).
    ///
    /// # Errors
    ///
    /// As [`Session::read_char`], plus requires the write lock.
    pub fn write_char(&mut self, p: &Ptr, v: u8) -> Result<(), CoreError> {
        self.write_fixed::<1>(p, "char", PrimKind::Char, [v])
    }

    /// Reads a 16-bit integer.
    ///
    /// # Errors
    ///
    /// [`CoreError::TypeMismatch`], [`CoreError::NotLocked`], heap errors.
    pub fn read_i16(&self, p: &Ptr) -> Result<i16, CoreError> {
        let b = self.read_fixed::<2>(p, "short", PrimKind::Int16)?;
        Ok(if self.arch().endian.is_little() {
            i16::from_le_bytes(b)
        } else {
            i16::from_be_bytes(b)
        })
    }

    /// Writes a 16-bit integer.
    ///
    /// # Errors
    ///
    /// As [`Session::read_i16`], plus requires the write lock.
    pub fn write_i16(&mut self, p: &Ptr, v: i16) -> Result<(), CoreError> {
        let b = if self.arch().endian.is_little() {
            v.to_le_bytes()
        } else {
            v.to_be_bytes()
        };
        self.write_fixed::<2>(p, "short", PrimKind::Int16, b)
    }

    /// Reads a 32-bit integer.
    ///
    /// # Errors
    ///
    /// [`CoreError::TypeMismatch`], [`CoreError::NotLocked`], heap errors.
    pub fn read_i32(&self, p: &Ptr) -> Result<i32, CoreError> {
        let b = self.read_fixed::<4>(p, "int", PrimKind::Int32)?;
        Ok(if self.arch().endian.is_little() {
            i32::from_le_bytes(b)
        } else {
            i32::from_be_bytes(b)
        })
    }

    /// Writes a 32-bit integer.
    ///
    /// # Errors
    ///
    /// As [`Session::read_i32`], plus requires the write lock.
    pub fn write_i32(&mut self, p: &Ptr, v: i32) -> Result<(), CoreError> {
        let b = if self.arch().endian.is_little() {
            v.to_le_bytes()
        } else {
            v.to_be_bytes()
        };
        self.write_fixed::<4>(p, "int", PrimKind::Int32, b)
    }

    /// Reads a 64-bit integer.
    ///
    /// # Errors
    ///
    /// [`CoreError::TypeMismatch`], [`CoreError::NotLocked`], heap errors.
    pub fn read_i64(&self, p: &Ptr) -> Result<i64, CoreError> {
        let b = self.read_fixed::<8>(p, "hyper", PrimKind::Int64)?;
        Ok(if self.arch().endian.is_little() {
            i64::from_le_bytes(b)
        } else {
            i64::from_be_bytes(b)
        })
    }

    /// Writes a 64-bit integer.
    ///
    /// # Errors
    ///
    /// As [`Session::read_i64`], plus requires the write lock.
    pub fn write_i64(&mut self, p: &Ptr, v: i64) -> Result<(), CoreError> {
        let b = if self.arch().endian.is_little() {
            v.to_le_bytes()
        } else {
            v.to_be_bytes()
        };
        self.write_fixed::<8>(p, "hyper", PrimKind::Int64, b)
    }

    /// Reads a 32-bit float.
    ///
    /// # Errors
    ///
    /// [`CoreError::TypeMismatch`], [`CoreError::NotLocked`], heap errors.
    pub fn read_f32(&self, p: &Ptr) -> Result<f32, CoreError> {
        let b = self.read_fixed::<4>(p, "float", PrimKind::Float32)?;
        Ok(if self.arch().endian.is_little() {
            f32::from_le_bytes(b)
        } else {
            f32::from_be_bytes(b)
        })
    }

    /// Writes a 32-bit float.
    ///
    /// # Errors
    ///
    /// As [`Session::read_f32`], plus requires the write lock.
    pub fn write_f32(&mut self, p: &Ptr, v: f32) -> Result<(), CoreError> {
        let b = if self.arch().endian.is_little() {
            v.to_le_bytes()
        } else {
            v.to_be_bytes()
        };
        self.write_fixed::<4>(p, "float", PrimKind::Float32, b)
    }

    /// Reads a 64-bit float.
    ///
    /// # Errors
    ///
    /// [`CoreError::TypeMismatch`], [`CoreError::NotLocked`], heap errors.
    pub fn read_f64(&self, p: &Ptr) -> Result<f64, CoreError> {
        let b = self.read_fixed::<8>(p, "double", PrimKind::Float64)?;
        Ok(if self.arch().endian.is_little() {
            f64::from_le_bytes(b)
        } else {
            f64::from_be_bytes(b)
        })
    }

    /// Writes a 64-bit float.
    ///
    /// # Errors
    ///
    /// As [`Session::read_f64`], plus requires the write lock.
    pub fn write_f64(&mut self, p: &Ptr, v: f64) -> Result<(), CoreError> {
        let b = if self.arch().endian.is_little() {
            v.to_le_bytes()
        } else {
            v.to_be_bytes()
        };
        self.write_fixed::<8>(p, "double", PrimKind::Float64, b)
    }

    /// Reads a string field.
    ///
    /// # Errors
    ///
    /// [`CoreError::TypeMismatch`] unless the field is a string.
    pub fn read_str(&self, p: &Ptr) -> Result<String, CoreError> {
        let (va, kind, size) = self.prim_window(p, "string")?;
        let PrimKind::Str { .. } = kind else {
            return Err(CoreError::TypeMismatch {
                expected: "string",
                found: kind,
            });
        };
        let window = self.heap().read_bytes(va, size as usize)?;
        Ok(String::from_utf8_lossy(local_str_bytes(window)).into_owned())
    }

    /// Writes a string field (NUL-terminated, zero-padded).
    ///
    /// # Errors
    ///
    /// [`CoreError::BadPath`] when the string exceeds the declared
    /// capacity; requires the write lock.
    pub fn write_str(&mut self, p: &Ptr, v: &str) -> Result<(), CoreError> {
        let (va, kind, size) = self.prim_window(p, "string")?;
        let PrimKind::Str { cap } = kind else {
            return Err(CoreError::TypeMismatch {
                expected: "string",
                found: kind,
            });
        };
        if v.len() + 1 > cap as usize {
            return Err(CoreError::BadPath(format!(
                "string of {} bytes exceeds capacity {}",
                v.len(),
                cap
            )));
        }
        let (seg, _) = self.heap().block_at(p.va)?;
        self.require_lock(seg, true)?;
        let mut buf = vec![0u8; size as usize];
        buf[..v.len()].copy_from_slice(v.as_bytes());
        self.heap_mut().write_bytes(va, &buf)?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Pointers
    // ------------------------------------------------------------------

    /// Reads a pointer field, resolving it to a [`Ptr`] (or `None` for
    /// null). If the target segment is not yet cached, it is fetched on
    /// demand — the moral equivalent of the paper's lazy "reserve space
    /// now, copy data at lock time".
    ///
    /// # Errors
    ///
    /// [`CoreError::TypeMismatch`]; [`CoreError::DanglingPointer`] when
    /// an unresolved target cannot be fetched or no longer exists.
    pub fn read_ptr(&mut self, p: &Ptr) -> Result<Option<Ptr>, CoreError> {
        let (va, kind, size) = self.prim_window(p, "pointer")?;
        self.check_kind(kind, "pointer", kind == PrimKind::Ptr)?;
        let window = self.heap().read_bytes(va, size as usize)?.to_vec();
        let target = read_va(&window, self.arch());
        if target != 0 {
            return Ok(Some(self.ptr_at(target)?));
        }
        let Some(mip) = self.unresolved.get(&va).cloned() else {
            return Ok(None);
        };
        // Try to resolve; fetch the target segment if needed.
        match self.resolve_mip_to_va(&mip.to_string())? {
            ResolvedPtr::Local(tva) => {
                self.patch_ptr_word(va, size, tva)?;
                Ok(Some(self.ptr_at(tva)?))
            }
            ResolvedPtr::Unresolved(mip) => {
                self.fetch_segment(&mip.segment)?;
                match self.resolve_mip_to_va(&mip.to_string())? {
                    ResolvedPtr::Local(tva) => {
                        self.patch_ptr_word(va, size, tva)?;
                        Ok(Some(self.ptr_at(tva)?))
                    }
                    _ => Err(CoreError::DanglingPointer(format!(
                        "target `{mip}` does not exist"
                    ))),
                }
            }
            ResolvedPtr::Null => Ok(None),
        }
    }

    /// Writes a pointer field (`None` = null). The target must be shared
    /// data in this session.
    ///
    /// # Errors
    ///
    /// [`CoreError::TypeMismatch`]; requires the write lock.
    pub fn write_ptr(&mut self, p: &Ptr, target: Option<&Ptr>) -> Result<(), CoreError> {
        let (va, kind, size) = self.prim_window(p, "pointer")?;
        self.check_kind(kind, "pointer", kind == PrimKind::Ptr)?;
        let (seg, _) = self.heap().block_at(p.va)?;
        self.require_lock(seg, true)?;
        let tva = match target {
            Some(t) => {
                // Validate the target is shared data now, not at diff time.
                let _ = self.heap().block_at(t.va)?;
                t.va
            }
            None => 0,
        };
        let mut window = vec![0u8; size as usize];
        write_va(&mut window, &self.arch().clone(), tva);
        self.heap_mut().write_bytes(va, &window)?;
        self.unresolved.remove(&va);
        Ok(())
    }

    fn patch_ptr_word(&mut self, field_va: u64, size: u32, target: u64) -> Result<(), CoreError> {
        let arch = self.arch().clone();
        let mut window = vec![0u8; size as usize];
        write_va(&mut window, &arch, target);
        // Library bookkeeping write: must not register as a user
        // modification (the logical value — the MIP — is unchanged).
        self.heap_mut()
            .bytes_mut_unprotected(field_va, size as usize)?
            .copy_from_slice(&window);
        self.unresolved.remove(&field_va);
        Ok(())
    }

    /// Builds a typed [`Ptr`] for an arbitrary shared address.
    ///
    /// # Errors
    ///
    /// Heap errors when `va` is not in a block;
    /// [`CoreError::DanglingPointer`] for padding addresses.
    pub(crate) fn ptr_at(&self, va: u64) -> Result<Ptr, CoreError> {
        let (_, meta) = self.heap().block_at(va)?;
        let rel = (va - meta.va) as u32;
        // At an element boundary the view is the element type; otherwise
        // it is the primitive at that offset.
        let elem_size = layout_of(&meta.ty, self.arch()).size;
        if elem_size > 0 && rel.is_multiple_of(elem_size) {
            return Ok(Ptr {
                va,
                ty: meta.ty.clone(),
            });
        }
        let prim = meta
            .flat
            .prim_containing_byte(rel)
            .ok_or_else(|| CoreError::DanglingPointer(format!("{va:#x} points into padding")))?;
        if prim.local_off != rel {
            return Err(CoreError::DanglingPointer(format!(
                "{va:#x} is not a primitive boundary"
            )));
        }
        Ok(Ptr {
            va,
            ty: TypeDesc::new(TypeKind::Prim(prim.kind)),
        })
    }

    // ------------------------------------------------------------------
    // Navigation
    // ------------------------------------------------------------------

    /// Navigates to a named field of the struct `p` points at.
    ///
    /// # Errors
    ///
    /// [`CoreError::BadPath`] when `p` is not a struct or has no such
    /// field.
    pub fn field(&self, p: &Ptr, name: &str) -> Result<Ptr, CoreError> {
        let TypeKind::Struct { fields, .. } = p.ty.kind() else {
            return Err(CoreError::BadPath(format!("`{}` is not a struct", p.ty)));
        };
        let (idx, f) =
            p.ty.field(name)
                .ok_or_else(|| CoreError::BadPath(format!("no field `{name}` in {}", p.ty)))?;
        let offs = iw_types::layout::field_offsets(&p.ty, self.arch());
        let _ = fields;
        Ok(Ptr {
            va: p.va + u64::from(offs[idx]),
            ty: f.ty.clone(),
        })
    }

    /// Navigates to element `i` of the array (or multi-element block
    /// region) `p` points at.
    ///
    /// # Errors
    ///
    /// [`CoreError::BadPath`] on non-arrays or out-of-range indices.
    pub fn index(&self, p: &Ptr, i: u32) -> Result<Ptr, CoreError> {
        // Arrays by type, or block elements when p is at a block start
        // with count > 1.
        if let TypeKind::Array { elem, len } = p.ty.kind() {
            if i >= *len {
                return Err(CoreError::BadPath(format!(
                    "index {i} out of range for {}",
                    p.ty
                )));
            }
            let stride = layout_of(elem, self.arch()).size;
            return Ok(Ptr {
                va: p.va + u64::from(i) * u64::from(stride),
                ty: elem.clone(),
            });
        }
        let (_, meta) = self.heap().block_at(p.va)?;
        if p.va == meta.va {
            if i >= meta.count {
                return Err(CoreError::BadPath(format!(
                    "index {i} out of range for block of {} elements",
                    meta.count
                )));
            }
            let stride = layout_of(&meta.ty, self.arch()).size;
            return Ok(Ptr {
                va: p.va + u64::from(i) * u64::from(stride),
                ty: meta.ty.clone(),
            });
        }
        Err(CoreError::BadPath(format!("`{}` is not indexable", p.ty)))
    }

    // ------------------------------------------------------------------
    // MIP conversion (the paper's bootstrap mechanism)
    // ------------------------------------------------------------------

    /// Converts a local pointer to a machine-independent pointer string:
    /// `IW_ptr_to_mip`.
    ///
    /// # Errors
    ///
    /// [`CoreError::DanglingPointer`] when `p` does not reference shared
    /// data at a primitive boundary.
    pub fn ptr_to_mip(&self, p: &Ptr) -> Result<String, CoreError> {
        Ok(self.mip_for_va(p.va)?.to_string())
    }

    /// Converts a machine-independent pointer to a local pointer:
    /// `IW_mip_to_ptr`. If the segment is not cached, space is reserved
    /// and its current contents fetched.
    ///
    /// # Errors
    ///
    /// [`CoreError::DanglingPointer`] when the target does not exist.
    pub fn mip_to_ptr(&mut self, mip_str: &str) -> Result<Ptr, CoreError> {
        let mip: Mip = mip_str.parse().map_err(CoreError::Wire)?;
        if self.heap().segment_id(&mip.segment).is_none() {
            self.fetch_segment(&mip.segment)?;
        }
        // Target may also be missing because our cached copy predates it.
        match self.lookup_mip(&mip) {
            Ok(p) => Ok(p),
            Err(_) => {
                self.fetch_segment(&mip.segment)?;
                self.lookup_mip(&mip)
            }
        }
    }

    fn lookup_mip(&self, mip: &Mip) -> Result<Ptr, CoreError> {
        let seg_id = self
            .heap()
            .segment_id(&mip.segment)
            .ok_or_else(|| CoreError::NotOpen(mip.segment.clone()))?;
        let seg = self.heap().segment(seg_id);
        let meta = match &mip.block {
            BlockRef::Serial(n) => seg.block_by_serial(*n)?,
            BlockRef::Name(n) => seg.block_by_name(n)?,
        };
        let prim = meta.flat.prim_at(mip.offset).ok_or_else(|| {
            CoreError::DanglingPointer(format!("offset {} outside block", mip.offset))
        })?;
        self.ptr_at(meta.va + u64::from(prim.local_off))
    }

    /// Opens `segment` if needed and brings the cached copy up to the
    /// server's current version (without holding any lock).
    ///
    /// # Errors
    ///
    /// Protocol errors.
    pub fn fetch_segment(&mut self, segment: &str) -> Result<(), CoreError> {
        let h = self.open_segment(segment)?;
        let have = self.segs.get(segment).map(|st| st.version).unwrap_or(0);
        let reply = self.request_for(segment, |client| Request::Poll {
            client,
            segment: segment.to_string(),
            have_version: have,
            coherence: Coherence::Full,
            floor: 0,
        })?;
        match reply {
            Reply::UpToDate => Ok(()),
            Reply::Update { diff } => {
                self.apply_segment_diff(&h, &diff)?;
                Ok(())
            }
            Reply::Error { message } => Err(CoreError::Server(message)),
            other => Err(CoreError::Server(format!("unexpected reply: {other:?}"))),
        }
    }
}
