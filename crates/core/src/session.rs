//! The InterWeave client session: segments, locks, diff collection and
//! application, and pointer swizzling.
//!
//! A [`Session`] corresponds to one InterWeave client process: it owns the
//! process's heap (in the paper, the InterWeave-managed heap area mapped
//! into the address space), a cached connection to servers, and the
//! per-segment coherence state. The API mirrors the paper's Figure 1:
//! `open_segment`, `wl_acquire`/`wl_release`, `rl_acquire`/`rl_release`,
//! `malloc`, `mip_to_ptr`, `ptr_to_mip`.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;

use iw_heap::{BlockMeta, Heap, SegId};
use iw_proto::msg::{Reply, Request};
use iw_proto::{Coherence, LockMode, Transport, TransportStats};
use iw_telemetry::{Registry, Snapshot};
use iw_types::arch::MachineArch;
use iw_types::desc::{PrimKind, TypeDesc};
use iw_types::flat::FlatNode;
use iw_wire::codec::{WireReader, WireWriter};
use iw_wire::diff::{BlockDiff, DiffRun, NewBlock, SegmentDiff};
use iw_wire::mip::{BlockRef, Mip};
use iw_wire::prim::{no_pointers_in, prim_from_wire};

use crate::diffing::find_byte_runs;
use crate::error::CoreError;
use crate::metrics::SessionMetrics;
use crate::parallel::{self, PAR_MIN_BYTES};
use crate::segstate::{SegState, TrackMode};

/// A handle to an open segment (the paper's `IW_handle_t`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SegHandle {
    name: std::sync::Arc<str>,
}

impl SegHandle {
    /// The segment's name (`host/path`).
    pub fn name(&self) -> &str {
        &self.name
    }

    pub(crate) fn for_name(name: &str) -> SegHandle {
        SegHandle { name: name.into() }
    }
}

/// A typed pointer into shared memory: a simulated virtual address plus
/// the type of the value it points at (used for field/index navigation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ptr {
    pub(crate) va: u64,
    pub(crate) ty: TypeDesc,
}

impl Ptr {
    /// The simulated virtual address.
    pub fn va(&self) -> u64 {
        self.va
    }

    /// The type of the pointed-at value.
    pub fn ty(&self) -> &TypeDesc {
        &self.ty
    }
}

/// Tunables and ablation switches for a session.
#[derive(Debug, Clone)]
pub struct SessionOptions {
    /// Apply diff-run splicing (§3.3). Disable for ablation.
    pub splice: bool,
    /// Enable no-diff mode adaptation (§3.3). Disable for ablation.
    pub no_diff_adaptation: bool,
    /// Enable last-block prediction during diff application (§3.3).
    pub prediction: bool,
    /// How many times to retry a busy lock before giving up.
    pub lock_retries: u32,
    /// Microseconds to sleep after the first busy-lock retry; each
    /// further retry doubles the sleep (plus deterministic jitter) up to
    /// [`SessionOptions::lock_backoff_cap_us`].
    pub lock_backoff_us: u64,
    /// Upper bound on the exponential busy-lock backoff.
    pub lock_backoff_cap_us: u64,
    /// Rounds through the replica list before a failover gives up.
    pub failover_rounds: u32,
    /// Milliseconds to sleep between failover rounds (with the same
    /// doubling-plus-jitter schedule as lock backoff).
    pub failover_backoff_ms: u64,
    /// Page size for modification tracking (`None` = the platform
    /// default of 4096). Small pages let tests exercise page-boundary
    /// logic cheaply.
    pub page_size: Option<u32>,
    /// Worker threads for diff translation (collect and apply). `None`
    /// consults `IW_TRANSLATE_THREADS`, then
    /// [`std::thread::available_parallelism`]; `Some(1)` forces the
    /// serial path. The wire diffs produced are byte-identical at every
    /// setting — this is purely a throughput knob.
    pub translate_threads: Option<usize>,
    /// Collapse translation to `memcpy` for blocks whose layout is
    /// byte-identical to the wire encoding
    /// ([`iw_types::flat::WireIdentity::Iso`]). The wire diffs and
    /// applied images are byte-identical either way; disable for
    /// ablation benchmarks and differential tests of the general
    /// descriptor walk.
    pub iso_fast_path: bool,
}

impl Default for SessionOptions {
    fn default() -> Self {
        SessionOptions {
            splice: true,
            no_diff_adaptation: true,
            prediction: true,
            lock_retries: 10_000,
            lock_backoff_us: 100,
            lock_backoff_cap_us: 10_000,
            failover_rounds: 3,
            failover_backoff_ms: 100,
            page_size: None,
            translate_threads: None,
            iso_fast_path: true,
        }
    }
}

/// Counters for the optimization experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Serial→block lookups during diff application.
    pub apply_block_lookups: u64,
    /// …of which the last-block predictor answered without a tree search.
    pub apply_pred_hits: u64,
    /// Diffs collected.
    pub diffs_collected: u64,
    /// Diffs applied.
    pub diffs_applied: u64,
    /// Primitive units transmitted in collected diffs.
    pub prims_sent: u64,
    /// Primitive units installed from applied diffs.
    pub prims_received: u64,
}

/// An InterWeave client session (the library a client links against).
pub struct Session {
    pub(crate) heap: Heap,
    pub(crate) transport: Box<dyn Transport>,
    pub(crate) client_id: u64,
    pub(crate) segs: HashMap<String, SegState>,
    /// Pointer fields whose target segment is not (yet) cached:
    /// field VA → target MIP. The local word holds 0 until resolved.
    pub(crate) unresolved: HashMap<u64, Mip>,
    pub(crate) opts: SessionOptions,
    pub(crate) metrics: SessionMetrics,
    /// Resolved translation worker count (see
    /// [`SessionOptions::translate_threads`]).
    xlate_threads: usize,
    /// Reusable scratch buffers for the apply-side decode workers.
    scratch_pool: crate::parallel::BufferPool,
    /// Open transaction, if any (see [`crate::tx`]).
    pub(crate) tx: Option<crate::tx::TxState>,
    /// Additional servers, keyed by segment-URL host ("Every segment is
    /// managed by an InterWeave server at the IP address corresponding
    /// to the segment's URL. Different segments may be managed by
    /// different servers.", §2.1). Segments whose host has no entry use
    /// the default transport.
    pub(crate) extra_links: HashMap<String, ServerLink>,
}

/// Reconnects to one replica of a server group (`Ok` = a fresh, unused
/// transport). Called again on every failover attempt.
pub type Connector = Box<dyn FnMut() -> Result<Box<dyn Transport>, CoreError> + Send>;

/// A connection to one InterWeave server plus the client id it assigned.
pub(crate) struct ServerLink {
    pub transport: Box<dyn Transport>,
    pub client_id: u64,
    /// Ordered replica group (primary first). Empty for plain
    /// [`Session::add_server`] links, which never fail over.
    pub connectors: Vec<Connector>,
    /// Index into `connectors` of the replica `transport` talks to.
    pub active: usize,
    /// Read replicas relaxed-coherence reads may be served from.
    pub read_replicas: Vec<ReadReplica>,
    /// Backup addresses the primary advertised in its last
    /// `Welcome`/`Frontier` reply (TCP groups; used to discover — and,
    /// when the primary prunes a dead backup, evict — read replicas).
    pub advertised: Vec<String>,
    /// Deterministic rotation state for replica selection.
    pub rr_seed: u64,
}

/// One read replica of a server group: relaxed-coherence reads may be
/// served from it when its version satisfies the session's coherence
/// predicate (see [`Coherence::replica_floor`]). Connected lazily on
/// first use; a channel error marks it dead until the next failover
/// resets the pool.
pub(crate) struct ReadReplica {
    /// Display label (the dial address for TCP replicas).
    pub label: String,
    pub connector: Connector,
    pub transport: Option<Box<dyn Transport>>,
    pub client_id: u64,
    /// Last version this replica was seen to hold, per segment (from
    /// `NotFresh` refusals and served reads), paired with the client's
    /// `best_known` frontier at the time of the observation. The
    /// observation is *staleness evidence* only while the frontier
    /// hasn't advanced past it — the replica follows the ship stream,
    /// so an older refusal says nothing about where it is now. Missing
    /// or outdated entries are treated optimistically: the server-side
    /// floor check keeps a wrong guess safe, it just costs the round
    /// trip.
    pub known: HashMap<String, (u64, u64)>,
    /// Replicas auto-discovered from the primary's advertised set are
    /// evicted when the primary stops advertising them; explicitly
    /// registered ones are kept.
    pub from_advert: bool,
    pub dead: bool,
    /// `cluster.replica_lag.<label>` — how far this replica trails the
    /// client's confirmed frontier, in versions.
    pub lag: Arc<iw_telemetry::Gauge>,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("client_id", &self.client_id)
            .field("arch", &self.heap.arch().name)
            .field("segments", &self.segs.len())
            .finish()
    }
}

impl Session {
    /// Creates a session for a client on `arch`, speaking through
    /// `transport`. Performs the Hello handshake.
    ///
    /// # Errors
    ///
    /// Transport/protocol errors from the handshake.
    pub fn new(arch: MachineArch, transport: Box<dyn Transport>) -> Result<Self, CoreError> {
        Session::with_options(arch, transport, SessionOptions::default())
    }

    /// As [`Session::new`] with explicit options.
    ///
    /// # Errors
    ///
    /// Transport/protocol errors from the handshake.
    pub fn with_options(
        arch: MachineArch,
        mut transport: Box<dyn Transport>,
        opts: SessionOptions,
    ) -> Result<Self, CoreError> {
        let metrics = SessionMetrics::new(Arc::new(Registry::new()));
        transport.bind_registry(metrics.registry());
        let info = format!("interweave-rs client on {arch}");
        let client_id = match transport.request(&Request::Hello { info })? {
            Reply::Welcome { client, .. } => client,
            other => return Err(unexpected(other)),
        };
        let heap = match opts.page_size {
            Some(ps) => Heap::with_page_size(arch, ps),
            None => Heap::new(arch),
        };
        let xlate_threads = crate::parallel::resolve_threads(opts.translate_threads);
        metrics.translate_threads.set(xlate_threads as i64);
        Ok(Session {
            heap,
            transport,
            client_id,
            segs: HashMap::new(),
            unresolved: HashMap::new(),
            opts,
            metrics,
            xlate_threads,
            scratch_pool: crate::parallel::BufferPool::default(),
            tx: None,
            extra_links: HashMap::new(),
        })
    }

    /// The architecture this client lays data out for.
    pub fn arch(&self) -> &MachineArch {
        self.heap.arch()
    }

    /// The session's heap (read access for tests and tools).
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// Optimization counters (a view over the session's metric registry).
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            apply_block_lookups: self.metrics.apply_block_lookups.get(),
            apply_pred_hits: self.metrics.apply_pred_hits.get(),
            diffs_collected: self.metrics.diffs_collected.get(),
            diffs_applied: self.metrics.diffs_applied.get(),
            prims_sent: self.metrics.prims_sent.get(),
            prims_received: self.metrics.prims_received.get(),
        }
    }

    /// The session's metric registry (transport counters are bound into it
    /// as well, so one scrape sees the whole client).
    pub fn registry(&self) -> &Arc<Registry> {
        self.metrics.registry()
    }

    /// Point-in-time copy of every client metric, with instantaneous
    /// gauges (twin faults) refreshed first.
    pub fn metrics_snapshot(&self) -> Snapshot {
        self.metrics.twin_faults.set(self.heap.fault_count() as i64);
        self.metrics.registry().snapshot()
    }

    /// Cumulative simulated write faults (page-twin creations) — the
    /// overhead no-diff mode eliminates.
    pub fn twin_faults(&self) -> u64 {
        self.heap.fault_count()
    }

    /// Transport traffic counters.
    pub fn transport_stats(&self) -> TransportStats {
        self.transport.stats()
    }

    /// Resets transport traffic counters.
    pub fn reset_transport_stats(&mut self) {
        self.transport.reset_stats();
        for l in self.extra_links.values_mut() {
            l.transport.reset_stats();
        }
    }

    /// Registers a connection to the server responsible for segments
    /// whose URL host is `host` (e.g. `"data.example.org"` for segments
    /// named `data.example.org/…`). Performs the Hello handshake.
    /// Segments with unregistered hosts use the session's default
    /// transport.
    ///
    /// # Errors
    ///
    /// Transport/protocol errors from the handshake.
    pub fn add_server(
        &mut self,
        host: &str,
        mut transport: Box<dyn Transport>,
    ) -> Result<(), CoreError> {
        let info = format!("interweave-rs client on {}", self.heap.arch());
        let client_id = match transport.request(&Request::Hello { info })? {
            Reply::Welcome { client, .. } => client,
            other => return Err(unexpected(other)),
        };
        self.extra_links.insert(
            host.to_string(),
            ServerLink {
                transport,
                client_id,
                connectors: Vec::new(),
                active: 0,
                read_replicas: Vec::new(),
                advertised: Vec::new(),
                rr_seed: 0x9E37_79B9u64 ^ client_id,
            },
        );
        Ok(())
    }

    /// Registers a replica *group* (primary first, then ordered backups)
    /// for segments whose URL host is `host`. The session connects to
    /// the first reachable replica; when a request later fails with a
    /// transport error, it transparently reconnects to the next replica,
    /// re-issues `Hello`/`Open`, reconciles cached versions, and retries
    /// — except for in-flight write releases and commits, which surface
    /// as [`CoreError::LockLost`] (the lock died with the old primary).
    ///
    /// # Errors
    ///
    /// [`CoreError::Server`] when no replica is reachable.
    pub fn add_server_group(
        &mut self,
        host: &str,
        mut connectors: Vec<Connector>,
    ) -> Result<(), CoreError> {
        let info = format!("interweave-rs client on {}", self.heap.arch());
        for idx in 0..connectors.len() {
            let Ok(mut transport) = connectors[idx]() else {
                continue;
            };
            transport.bind_registry(self.metrics.registry());
            let Ok(Reply::Welcome { client, replicas }) =
                transport.request(&Request::Hello { info: info.clone() })
            else {
                continue;
            };
            self.extra_links.insert(
                host.to_string(),
                ServerLink {
                    transport,
                    client_id: client,
                    connectors,
                    active: idx,
                    read_replicas: Vec::new(),
                    advertised: replicas,
                    rr_seed: 0x9E37_79B9u64 ^ client,
                },
            );
            return Ok(());
        }
        Err(CoreError::Server(format!(
            "no replica for `{host}` is reachable"
        )))
    }

    /// As [`Session::add_server_group`] for TCP replicas given by socket
    /// address. Backup addresses the primary advertises in its `Welcome`
    /// reply are automatically registered as read replicas (see
    /// [`Session::add_read_replicas`]).
    ///
    /// # Errors
    ///
    /// [`CoreError::Server`] when no replica is reachable.
    pub fn add_tcp_server_group(
        &mut self,
        host: &str,
        addrs: &[std::net::SocketAddr],
    ) -> Result<(), CoreError> {
        let connectors = addrs
            .iter()
            .map(|&addr| -> Connector { tcp_connector(addr) })
            .collect();
        self.add_server_group(host, connectors)?;
        let advertised = self
            .extra_links
            .get(host)
            .map(|l| l.advertised.clone())
            .unwrap_or_default();
        self.sync_advertised_replicas(host, &advertised);
        Ok(())
    }

    /// Registers read replicas for `host`'s server group: relaxed-
    /// coherence read acquisitions (`rl_acquire` under `Delta`,
    /// `Temporal` or `Diff` coherence with a non-zero bound) may be
    /// served from any of them whose version satisfies the coherence
    /// predicate, falling back to the primary otherwise. The write path
    /// is unaffected. Replicas are dialed lazily on first use.
    ///
    /// # Errors
    ///
    /// [`CoreError::Server`] when `host` has no registered server group.
    pub fn add_read_replicas(
        &mut self,
        host: &str,
        connectors: Vec<Connector>,
    ) -> Result<(), CoreError> {
        let registry = self.metrics.registry().clone();
        let link = self
            .extra_links
            .get_mut(host)
            .ok_or_else(|| CoreError::Server(format!("no server group for `{host}`")))?;
        for connector in connectors {
            let label = format!("{host}.r{}", link.read_replicas.len());
            link.read_replicas
                .push(new_replica(label, connector, false, &registry));
        }
        Ok(())
    }

    /// As [`Session::add_read_replicas`] for TCP replicas given by
    /// socket address.
    ///
    /// # Errors
    ///
    /// [`CoreError::Server`] when `host` has no registered server group.
    pub fn add_tcp_read_replicas(
        &mut self,
        host: &str,
        addrs: &[std::net::SocketAddr],
    ) -> Result<(), CoreError> {
        let registry = self.metrics.registry().clone();
        let link = self
            .extra_links
            .get_mut(host)
            .ok_or_else(|| CoreError::Server(format!("no server group for `{host}`")))?;
        for &addr in addrs {
            if link
                .read_replicas
                .iter()
                .any(|r| r.label == addr.to_string())
            {
                continue;
            }
            link.read_replicas.push(new_replica(
                addr.to_string(),
                tcp_connector(addr),
                false,
                &registry,
            ));
        }
        Ok(())
    }

    /// Labels of the read replicas currently registered for `host`'s
    /// server group, in rotation order (tests and fan-out harnesses).
    pub fn read_replica_labels(&self, host: &str) -> Vec<String> {
        self.extra_links.get(host).map_or_else(Vec::new, |l| {
            l.read_replicas.iter().map(|r| r.label.clone()).collect()
        })
    }

    /// Reconciles the auto-discovered read-replica pool with the
    /// primary's currently advertised backup set: newly advertised
    /// addresses are added, and auto-discovered replicas the primary no
    /// longer advertises (pruned dead backups) are evicted. Explicitly
    /// registered replicas are never evicted.
    fn sync_advertised_replicas(&mut self, host: &str, advertised: &[String]) {
        let registry = self.metrics.registry().clone();
        let Some(link) = self.extra_links.get_mut(host) else {
            return;
        };
        link.advertised = advertised.to_vec();
        link.read_replicas
            .retain(|r| !r.from_advert || advertised.iter().any(|a| a == &r.label));
        for addr in advertised {
            if link.read_replicas.iter().any(|r| &r.label == addr) {
                continue;
            }
            let Ok(sockaddr) = addr.parse::<std::net::SocketAddr>() else {
                continue;
            };
            link.read_replicas.push(new_replica(
                addr.clone(),
                tcp_connector(sockaddr),
                true,
                &registry,
            ));
        }
    }

    /// Probes the primary for `host`'s version frontier: a cheap round
    /// trip that refreshes each open segment's confirmed-version anchor
    /// (`best_known`) without transferring any data, and reconciles the
    /// auto-discovered read-replica pool with the primary's advertised
    /// backup set. Called automatically when a Temporal replica read's
    /// anchor has aged out; public so fan-out harnesses can pre-warm.
    ///
    /// # Errors
    ///
    /// Transport/protocol errors from the probe.
    pub fn refresh_frontier(&mut self, host: &str) -> Result<(), CoreError> {
        self.metrics.frontier_probes.inc();
        let reply = self.request_for(host, |client| Request::Frontier { client })?;
        let Reply::Frontier { segments, replicas } = reply else {
            return Err(unexpected(reply));
        };
        let now = Instant::now();
        for (name, version) in segments {
            if Session::host_of(&name) != host {
                continue;
            }
            if let Some(st) = self.segs.get_mut(&name) {
                st.best_known = st.best_known.max(version);
                st.primary_confirm = Some(now);
            }
        }
        if !replicas.is_empty()
            || self
                .extra_links
                .get(host)
                .is_some_and(|l| !l.advertised.is_empty())
        {
            self.sync_advertised_replicas(host, &replicas);
        }
        Ok(())
    }

    /// Records a version confirmed at `segment`'s primary just now:
    /// advances the replica-read floor anchor and re-arms the Temporal
    /// staleness clock.
    fn note_primary_version(&mut self, segment: &str, version: u64) {
        if let Some(st) = self.segs.get_mut(segment) {
            st.best_known = st.best_known.max(version);
            st.primary_confirm = Some(Instant::now());
        }
    }

    /// The host component of a segment name (everything before the first
    /// slash).
    fn host_of(segment: &str) -> &str {
        segment.split('/').next().unwrap_or("")
    }

    /// Performs one request against the server responsible for `segment`,
    /// substituting that server's client id. `make` receives the id (it
    /// may be called more than once: after a failover the request is
    /// rebuilt with the new server's client id).
    ///
    /// A transport (channel) error against a replica *group* triggers
    /// transparent failover and a single retry — except for requests
    /// that carry a committed diff (`Release`/`Commit`), whose write
    /// locks died with the old server: those surface as
    /// [`CoreError::LockLost`] after the local state has been rolled
    /// back.
    pub(crate) fn request_for(
        &mut self,
        segment: &str,
        make: impl Fn(u64) -> Request,
    ) -> Result<Reply, CoreError> {
        let host = Session::host_of(segment).to_string();
        let Some(link) = self.extra_links.get_mut(&host) else {
            return Ok(self.transport.request(&make(self.client_id))?);
        };
        let req = make(link.client_id);
        match link.transport.request(&req) {
            Ok(reply) => Ok(reply),
            Err(iw_proto::ProtoError::Channel(_)) if link.connectors.len() > 1 => {
                // The lock a Release/Commit relies on died with the old
                // server; retrying against the new one cannot succeed
                // and must not silently drop the diff semantics.
                let lock_bound = matches!(
                    req,
                    Request::Release { diff: Some(_), .. } | Request::Commit { .. }
                );
                self.fail_over(&host)?;
                if lock_bound {
                    if let Ok(st) = self.state_mut(segment) {
                        st.lock_lost = false;
                    }
                    return Err(CoreError::LockLost {
                        segment: segment.to_string(),
                    });
                }
                // The closure captured pre-failover state; version
                // reconciliation may have invalidated the cache, so the
                // rebuilt request must carry the *current* version or
                // the new server would skip the refetch.
                let reconciled = self.state(segment).map(|st| st.version).ok();
                let link = self
                    .extra_links
                    .get_mut(&host)
                    .expect("link survives failover");
                let mut retry = make(link.client_id);
                if let Some(version) = reconciled {
                    match &mut retry {
                        Request::Acquire { have_version, .. }
                        | Request::Poll { have_version, .. } => *have_version = version,
                        _ => {}
                    }
                }
                Ok(link.transport.request(&retry)?)
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Reconnects the `host` replica group to the next healthy replica:
    /// cycles through the group (with capped exponential backoff between
    /// rounds), re-issues `Hello` (marked as a failover) and `Open` for
    /// every cached segment of that host, and reconciles cached
    /// versions. Held write locks are lost: their local modifications
    /// are rolled back from the twins and the segment is flagged so the
    /// next `wl_release` reports [`CoreError::LockLost`].
    ///
    /// Version reconciliation: replicated version chains are
    /// bit-identical prefixes of the primary's, so a cached version at
    /// or below the replica's is still valid and reads resume
    /// incrementally. A cached version *above* the replica's names
    /// updates the replica never received (the asynchronous-replication
    /// window); the cache cannot be reconciled against the replica's
    /// future chain, so it is invalidated (version 0, full refetch on
    /// next acquisition).
    fn fail_over(&mut self, host: &str) -> Result<(), CoreError> {
        let mut link = self
            .extra_links
            .remove(host)
            .ok_or_else(|| CoreError::Server(format!("no server group for `{host}`")))?;
        let info = format!("interweave-rs client on {} (failover)", self.heap.arch());
        let old_client_id = link.client_id;
        let mut jitter_state = 0x9E37_79B9u64 ^ ((link.active as u64) << 32) ^ host.len() as u64;
        let mut backoff_us = self.opts.failover_backoff_ms.saturating_mul(1000).max(1);
        let mut found: Option<(Box<dyn Transport>, u64, usize)> = None;
        'rounds: for round in 0..self.opts.failover_rounds.max(1) {
            if round > 0 {
                let jitter = splitmix64(&mut jitter_state) % (backoff_us / 2 + 1);
                std::thread::sleep(std::time::Duration::from_micros(backoff_us + jitter));
                backoff_us = backoff_us.saturating_mul(2);
            }
            for step in 1..=link.connectors.len() {
                let idx = (link.active + step) % link.connectors.len();
                let Ok(mut t) = (link.connectors[idx])() else {
                    continue;
                };
                t.bind_registry(self.metrics.registry());
                if let Ok(Reply::Welcome { client, .. }) =
                    t.request(&Request::Hello { info: info.clone() })
                {
                    // Retire the old client id before trusting this
                    // replica. The "dead" server may only have been
                    // unreachable for a moment (a transient transport
                    // fault): if this connection landed on the same
                    // still-alive server, locks held under the old id
                    // would stay orphaned forever. A genuinely new
                    // replica never saw the id and replies trivially, so
                    // requiring the round trip costs nothing there but
                    // makes the retirement reliable — a replica that
                    // cannot deliver it is treated as unreachable.
                    if t.request(&Request::Goodbye {
                        client: old_client_id,
                    })
                    .is_ok()
                    {
                        found = Some((t, client, idx));
                        break 'rounds;
                    }
                }
            }
        }
        let Some((transport, client_id, active)) = found else {
            self.extra_links.insert(host.to_string(), link);
            return Err(CoreError::Server(format!(
                "failover: no replica for `{host}` is reachable"
            )));
        };
        link.transport = transport;
        link.client_id = client_id;
        link.active = active;
        // The read-replica pool was built against the old primary's
        // world: drop connections, dead flags and version knowledge so
        // the pool re-proves itself against the new primary's chain
        // (lazy reconnect; the next Frontier probe re-syncs the
        // advertised set).
        for rep in &mut link.read_replicas {
            rep.transport = None;
            rep.client_id = 0;
            rep.known.clear();
            rep.dead = false;
        }
        self.extra_links.insert(host.to_string(), link);
        self.metrics.failovers.inc();
        self.metrics.reconnects.inc();

        // Re-open this host's segments on the new server and reconcile.
        let names: Vec<String> = self
            .segs
            .keys()
            .filter(|n| Session::host_of(n) == host)
            .cloned()
            .collect();
        let mut write_locked: Vec<String> = Vec::new();
        let mut stale: Vec<String> = Vec::new();
        for name in &names {
            let reply = {
                let link = self.extra_links.get_mut(host).expect("just inserted");
                link.transport.request(&Request::Open {
                    client: link.client_id,
                    segment: name.clone(),
                })?
            };
            let Reply::Opened {
                version: replica_version,
            } = reply
            else {
                return Err(unexpected(reply));
            };
            let st = self.state_mut(name)?;
            // The anchor is *reset*, not maxed: versions past the new
            // primary's chain died with the old one, and a stale floor
            // would refuse every replica forever.
            st.best_known = replica_version;
            st.primary_confirm = Some(Instant::now());
            if st.version > replica_version {
                st.version = 0;
                stale.push(name.clone());
            }
            match st.lock {
                Some(LockMode::Write) => write_locked.push(name.clone()),
                Some(LockMode::Read) => {
                    // Server-side read locks died with the server; the
                    // local read continues (coherence permits staleness)
                    // and rl_release against the new server is a no-op.
                    st.server_locked = false;
                }
                None => {}
            }
        }
        // Write locks are gone: undo the uncommitted modifications (from
        // the twins; exact in Diff mode, see DESIGN.md for the NoDiff
        // caveat) and flag the loss for wl_release.
        self.rollback_segments(&write_locked)?;
        for name in &write_locked {
            let st = self.state_mut(name)?;
            st.lock = None;
            st.server_locked = false;
            st.lock_lost = true;
        }
        if let Some(tx) = &mut self.tx {
            tx.segments.retain(|s| !write_locked.contains(s));
        }
        // A version-0 cache must also be *empty*: the refetch arrives as
        // a from-scratch diff whose new_blocks cannot collide with
        // leftover local blocks.
        for name in &stale {
            let id = self.state(name)?.id;
            self.heap.clear_tracking(id);
            let spans: Vec<(u32, u64, u64)> = self
                .heap
                .segment(id)
                .blocks()
                .map(|b| (b.serial, b.va, b.end()))
                .collect();
            for (serial, bva, bend) in spans {
                self.heap.free_block(id, serial)?;
                self.unresolved.retain(|&va, _| !(bva..bend).contains(&va));
            }
            let st = self.state_mut(name)?;
            st.new_blocks.clear();
            st.freed.clear();
            st.pending_free.clear();
            st.block_nodiff.clear();
            st.block_streak.clear();
        }
        Ok(())
    }

    // ==================================================================
    // Segments and locks
    // ==================================================================

    /// Opens (or creates) a segment: the paper's `IW_open_segment`.
    ///
    /// # Errors
    ///
    /// Protocol errors; opening an already-open segment returns the same
    /// handle.
    pub fn open_segment(&mut self, name: &str) -> Result<SegHandle, CoreError> {
        if !self.segs.contains_key(name) {
            let version = match self.request_for(name, |client| Request::Open {
                client,
                segment: name.to_string(),
            })? {
                Reply::Opened { version } => version,
                other => return Err(unexpected(other)),
            };
            let id = self.heap.create_segment(name)?;
            self.segs.insert(name.to_string(), SegState::new(id));
            self.note_primary_version(name, version);
        }
        Ok(SegHandle { name: name.into() })
    }

    /// Sets the coherence model used by subsequent read-lock acquisitions
    /// on this segment (dynamic, per the paper).
    ///
    /// # Errors
    ///
    /// [`CoreError::NotOpen`] when the segment is not open.
    pub fn set_coherence(&mut self, h: &SegHandle, coherence: Coherence) -> Result<(), CoreError> {
        self.state_mut(h.name())?.coherence = coherence;
        Ok(())
    }

    /// Whether this segment's cached copy carries the isomorphic-layout
    /// stamp: every block allocated so far (locally or from an applied
    /// diff) has a layout byte-identical to its wire encoding, so the
    /// whole segment translates by memcpy. An empty segment is vacuously
    /// stamped. The stamp is sticky — freeing the one offending block
    /// does not restore it; the per-block identity check in the
    /// translation paths stays authoritative, so a mixed segment still
    /// fast-paths its isomorphic blocks.
    ///
    /// # Errors
    ///
    /// [`CoreError::NotOpen`] when the segment is not open.
    pub fn segment_iso(&self, h: &SegHandle) -> Result<bool, CoreError> {
        Ok(self.state(h.name())?.iso)
    }

    pub(crate) fn state(&self, name: &str) -> Result<&SegState, CoreError> {
        self.segs
            .get(name)
            .ok_or_else(|| CoreError::NotOpen(name.to_string()))
    }

    pub(crate) fn state_mut(&mut self, name: &str) -> Result<&mut SegState, CoreError> {
        self.segs
            .get_mut(name)
            .ok_or_else(|| CoreError::NotOpen(name.to_string()))
    }

    fn acquire_with_retry(
        &mut self,
        name: &str,
        mode: LockMode,
        have_version: u64,
        coherence: Coherence,
    ) -> Result<Reply, CoreError> {
        self.metrics.lock_acquires.inc();
        let started = Instant::now();
        // Capped exponential backoff with deterministic jitter: the
        // doubling bounds total wait under long contention, the jitter
        // de-synchronizes clients that went Busy on the same release,
        // and determinism (seeded from the client id and segment, no
        // clock or OS entropy) keeps test runs reproducible.
        let mut backoff_us = self.opts.lock_backoff_us.max(1);
        let cap_us = self.opts.lock_backoff_cap_us.max(backoff_us);
        let mut jitter_state = self.client_id ^ ((name.len() as u64) << 32) ^ have_version;
        for _ in 0..=self.opts.lock_retries {
            let reply = self.request_for(name, |client| Request::Acquire {
                client,
                segment: name.to_string(),
                mode,
                have_version,
                coherence,
            })?;
            match reply {
                Reply::Busy => {
                    self.metrics.lock_busy_retries.inc();
                    let jitter = splitmix64(&mut jitter_state) % (backoff_us / 2 + 1);
                    std::thread::sleep(std::time::Duration::from_micros(backoff_us + jitter));
                    backoff_us = backoff_us.saturating_mul(2).min(cap_us);
                }
                Reply::Error { message } => return Err(CoreError::Server(message)),
                other => {
                    self.metrics.lock_wait_us.record_duration(started.elapsed());
                    return Ok(other);
                }
            }
        }
        self.metrics.lock_retries_exhausted.inc();
        Err(CoreError::LockTimeout(name.to_string()))
    }

    /// Acquires the write lock: the paper's `IW_wl_acquire`. Brings the
    /// cached copy fully up to date and write-protects its pages for
    /// modification tracking (unless in no-diff mode).
    ///
    /// # Errors
    ///
    /// [`CoreError::NotOpen`], [`CoreError::LockTimeout`], protocol
    /// errors.
    pub fn wl_acquire(&mut self, h: &SegHandle) -> Result<(), CoreError> {
        let name = h.name().to_string();
        if self.state(&name)?.lock.is_some() {
            return Err(CoreError::BadPath(format!(
                "`{name}` is already locked by this session (locks do not nest)"
            )));
        }
        let have = self.state(&name)?.version;
        let reply = self.acquire_with_retry(&name, LockMode::Write, have, Coherence::Full)?;
        let Reply::Granted {
            version,
            update,
            next_serial,
            next_type_serial,
        } = reply
        else {
            return Err(unexpected(reply));
        };
        if let Some(diff) = update {
            self.metrics.update_bytes.record(diff.payload_len() as u64);
            self.apply_segment_diff(h, &diff)?;
        }
        self.note_primary_version(&name, version);
        let in_tx = self.tx.is_some();
        let protect = {
            let st = self.state_mut(&name)?;
            st.version = version;
            st.lock = Some(LockMode::Write);
            // A fresh grant supersedes a write lock lost in an earlier
            // failover: the rollback already happened then, and a stale
            // flag would fail this tenure's release spuriously.
            st.lock_lost = false;
            st.server_locked = true;
            st.next_serial = st.next_serial.max(next_serial);
            st.types_synced = next_type_serial;
            st.last_update = Instant::now();
            st.new_blocks.clear();
            st.freed.clear();
            st.pending_free.clear();
            // Transactions need twins for rollback, so no-diff mode is
            // suspended while one is open.
            in_tx || matches!(st.mode, TrackMode::Diff)
        };
        let id = self.state(&name)?.id;
        if protect {
            self.heap.protect_segment(id);
        }
        if in_tx {
            if let Some(tx) = &mut self.tx {
                if !tx.segments.contains(&name) {
                    tx.segments.push(name.clone());
                }
            }
        }
        Ok(())
    }

    /// Releases the write lock: the paper's `IW_wl_release`. Collects the
    /// diff of everything modified under the lock, translates it to wire
    /// format, and ships it to the server.
    ///
    /// # Errors
    ///
    /// [`CoreError::NotLocked`] without the write lock; translation and
    /// protocol errors.
    pub fn wl_release(&mut self, h: &SegHandle) -> Result<(), CoreError> {
        let name = h.name().to_string();
        if self.tx.is_some() {
            return Err(CoreError::BadPath(format!(
                "`{name}` is part of an open transaction; use tx_commit/tx_abort"
            )));
        }
        if self.state(&name)?.lock_lost {
            self.state_mut(&name)?.lock_lost = false;
            return Err(CoreError::LockLost { segment: name });
        }
        if self.state(&name)?.lock != Some(LockMode::Write) {
            return Err(CoreError::NotLocked {
                segment: name,
                write: true,
            });
        }
        let (diff, changed, per_block) = self.collect_segment_diff(h)?;
        let is_empty = diff.new_types.is_empty()
            && diff.new_blocks.is_empty()
            && diff.block_diffs.is_empty()
            && diff.freed.is_empty();
        let payload = if is_empty { None } else { Some(diff) };
        let reply = self.request_for(&name, |client| Request::Release {
            client,
            segment: name.clone(),
            diff: payload.clone(),
        })?;
        let Reply::Released { version } = reply else {
            // A failover mid-release: an *empty* release is retried
            // against the new server (unlike diff-carrying ones, which
            // surface as LockLost from request_for directly), and that
            // server never saw our lock. The loss is already flagged —
            // report it as the loss it is, not as an opaque refusal.
            if self.state(&name)?.lock_lost {
                let st = self.state_mut(&name)?;
                st.lock_lost = false;
                return Err(CoreError::LockLost { segment: name });
            }
            return Err(unexpected(reply));
        };
        let id = self.state(&name)?.id;
        self.heap.clear_tracking(id);
        let total: u64 = self
            .heap
            .segment(id)
            .blocks()
            .map(BlockMeta::prim_count)
            .sum();
        let adapt = self.opts.no_diff_adaptation;
        self.note_primary_version(&name, version);
        let st = self.state_mut(&name)?;
        st.version = version;
        st.lock = None;
        st.server_locked = false;
        st.new_blocks.clear();
        st.freed.clear();
        st.last_update = Instant::now();
        if adapt {
            let was_no_diff = matches!(st.mode, TrackMode::NoDiff { .. });
            st.adapt_after_release(changed, total, &per_block);
            if matches!(st.mode, TrackMode::NoDiff { .. }) != was_no_diff {
                self.metrics.no_diff_transitions.inc();
            }
        }
        Ok(())
    }

    /// Acquires a read lock: the paper's `IW_rl_acquire`. Checks whether
    /// the cached copy is "recent enough" under the segment's coherence
    /// model and fetches an update when it is not. Temporal coherence
    /// satisfied by the local real-time stamp never contacts the server;
    /// Delta/Diff coherence poll without taking a server-side lock; Full
    /// coherence takes a genuine shared lock at the server.
    ///
    /// # Errors
    ///
    /// [`CoreError::NotOpen`], [`CoreError::LockTimeout`], protocol
    /// errors.
    pub fn rl_acquire(&mut self, h: &SegHandle) -> Result<(), CoreError> {
        let name = h.name().to_string();
        if self.state(&name)?.lock.is_some() {
            return Err(CoreError::BadPath(format!(
                "`{name}` is already locked by this session (locks do not nest)"
            )));
        }
        let (coherence, have, fresh_enough) = {
            let st = self.state(&name)?;
            let fresh = matches!(st.coherence, Coherence::Temporal(ms)
                if st.version > 0
                    && st.last_update.elapsed().as_millis() <= u128::from(ms));
            (st.coherence, st.version, fresh)
        };
        if fresh_enough {
            let st = self.state_mut(&name)?;
            st.lock = Some(LockMode::Read);
            st.server_locked = false;
            return Ok(());
        }
        match coherence {
            Coherence::Full => {
                let reply = self.acquire_with_retry(&name, LockMode::Read, have, coherence)?;
                let Reply::Granted {
                    version, update, ..
                } = reply
                else {
                    return Err(unexpected(reply));
                };
                if let Some(diff) = update {
                    self.metrics.update_bytes.record(diff.payload_len() as u64);
                    self.apply_segment_diff(h, &diff)?;
                }
                self.note_primary_version(&name, version);
                let st = self.state_mut(&name)?;
                st.version = version;
                st.lock = Some(LockMode::Read);
                st.server_locked = true;
                st.last_update = Instant::now();
            }
            _ => {
                // Relaxed models: poll for an update; no server-side
                // lock. The poll is served by a read replica when one
                // satisfies the coherence predicate, else the primary.
                if !self.try_replica_read(h, coherence, have)? {
                    let reply = self.request_for(&name, |client| Request::Poll {
                        client,
                        segment: name.clone(),
                        have_version: have,
                        coherence,
                        floor: 0,
                    })?;
                    match reply {
                        Reply::UpToDate => {
                            // Under Temporal the primary answers
                            // `UpToDate` only at version parity, so the
                            // cache version *is* the current one and
                            // re-arms the anchor. Delta/Diff tolerate a
                            // distance, so parity is not implied — the
                            // cache version is only a frontier bound.
                            if matches!(coherence, Coherence::Temporal(_)) {
                                self.note_primary_version(&name, have);
                            } else if let Ok(st) = self.state_mut(&name) {
                                st.best_known = st.best_known.max(have);
                            }
                        }
                        Reply::Update { diff } => {
                            self.metrics.update_bytes.record(diff.payload_len() as u64);
                            self.apply_segment_diff(h, &diff)?;
                            let version = self.state(&name)?.version;
                            self.note_primary_version(&name, version);
                            let st = self.state_mut(&name)?;
                            st.last_update = Instant::now();
                        }
                        Reply::Error { message } => return Err(CoreError::Server(message)),
                        other => return Err(unexpected(other)),
                    }
                }
                let st = self.state_mut(&name)?;
                st.lock = Some(LockMode::Read);
                st.server_locked = false;
            }
        }
        Ok(())
    }

    /// Attempts to serve a relaxed read from the segment's read-replica
    /// pool. Returns `Ok(true)` when a replica answered within the
    /// coherence predicate — the cache is then current enough and the
    /// Temporal clock is anchored to the primary confirmation the
    /// predicate was evaluated against — and `Ok(false)` when the read
    /// must go to the primary (no pool, zero-bound model, no eligible
    /// replica, or every candidate refused/failed).
    ///
    /// Safety does not rest on the client-side eligibility guesses: the
    /// request carries a version `floor`, and the server refuses
    /// (`NotFresh`) under the same lock that guards its version, so a
    /// replica can never silently serve data below the floor.
    fn try_replica_read(
        &mut self,
        h: &SegHandle,
        coherence: Coherence,
        have: u64,
    ) -> Result<bool, CoreError> {
        let name = h.name().to_string();
        let host = Session::host_of(&name).to_string();
        if self
            .extra_links
            .get(&host)
            .is_none_or(|l| l.read_replicas.is_empty())
        {
            return Ok(false);
        }
        let anchor = |st: &SegState| {
            let age = st.primary_confirm.map_or(u64::MAX, |t| {
                u64::try_from(t.elapsed().as_millis()).unwrap_or(u64::MAX)
            });
            (st.best_known, age)
        };
        let (mut best_known, mut age_ms) = anchor(self.state(&name)?);
        if coherence.replica_floor(best_known).is_none() {
            // Full or zero-bound: always the primary's to answer.
            return Ok(false);
        }
        // `replica_eligible` with a maximally fresh replica isolates the
        // anchor-age condition: when the Temporal anchor has aged out, a
        // cheap Frontier probe re-arms it so the (potentially heavy)
        // diff fetch can still be offloaded to a replica.
        if !coherence.replica_eligible(u64::MAX, best_known, age_ms)
            && self.refresh_frontier(&host).is_ok()
        {
            (best_known, age_ms) = anchor(self.state(&name)?);
        }
        let floor = match coherence.replica_floor(best_known) {
            Some(f) if coherence.replica_eligible(u64::MAX, best_known, age_ms) => f,
            _ => {
                self.metrics.replica_fallbacks.inc();
                return Ok(false);
            }
        };
        // Never ask a replica for a version below the cache: the floor
        // also forces the *served* version to be >= it (see the server's
        // poll), so a reply can neither regress the cache nor leave it
        // below the coherence floor.
        let wire_floor = floor.max(have);
        let registry = self.metrics.registry().clone();
        let not_fresh = Arc::clone(&self.metrics.replica_not_fresh);
        let info = format!(
            "interweave-rs client on {} (replica-read)",
            self.heap.arch()
        );
        let served = {
            // Re-fetched: the frontier refresh may have failed over or
            // evicted replicas the primary no longer advertises.
            let Some(link) = self.extra_links.get_mut(&host) else {
                self.metrics.replica_fallbacks.inc();
                return Ok(false);
            };
            let n = link.read_replicas.len();
            if n == 0 {
                self.metrics.replica_fallbacks.inc();
                return Ok(false);
            }
            let start = (splitmix64(&mut link.rr_seed) as usize) % n;
            let mut served = None;
            for step in 0..n {
                let idx = (start + step) % n;
                let rep = &mut link.read_replicas[idx];
                if rep.dead {
                    continue;
                }
                if let Some(&(kv, seen_at)) = rep.known.get(&name) {
                    // Known-stale replicas are skipped without a round
                    // trip — but only while the evidence is current
                    // (the frontier hasn't advanced since it was
                    // recorded). Unknown or outdated entries are probed
                    // optimistically.
                    if seen_at >= best_known
                        && !coherence.replica_eligible(kv.max(have), best_known, age_ms)
                    {
                        continue;
                    }
                }
                if rep.transport.is_none() {
                    let Ok(mut t) = (rep.connector)() else {
                        rep.dead = true;
                        continue;
                    };
                    t.bind_registry(&registry);
                    match t.request(&Request::Hello { info: info.clone() }) {
                        Ok(Reply::Welcome { client, .. }) => {
                            rep.client_id = client;
                            rep.transport = Some(t);
                        }
                        _ => {
                            rep.dead = true;
                            continue;
                        }
                    }
                }
                let req = Request::Poll {
                    client: rep.client_id,
                    segment: name.clone(),
                    have_version: have,
                    coherence,
                    floor: wire_floor,
                };
                let reply = match rep.transport.as_mut().expect("connected").request(&req) {
                    Ok(r) => r,
                    Err(_) => {
                        rep.dead = true;
                        rep.transport = None;
                        continue;
                    }
                };
                match reply {
                    Reply::NotFresh { version } => {
                        rep.known.insert(name.clone(), (version, best_known));
                        rep.lag.set(best_known.saturating_sub(version) as i64);
                        not_fresh.inc();
                    }
                    r @ (Reply::UpToDate | Reply::Update { .. }) => {
                        served = Some((idx, r));
                        break;
                    }
                    // NotPrimary, Error, …: this node cannot serve the
                    // read; leave it alone and try the next one.
                    _ => {}
                }
            }
            served
        };
        let Some((idx, reply)) = served else {
            self.metrics.replica_fallbacks.inc();
            return Ok(false);
        };
        // Anchor captured *before* the poll: every version the replica
        // could be missing relative to it was committed after it, so the
        // served data is at most `age_ms` (+ this read's latency) old.
        let confirm = self.state(&name)?.primary_confirm;
        if let Reply::Update { diff } = reply {
            self.metrics.update_bytes.record(diff.payload_len() as u64);
            self.apply_segment_diff(h, &diff)?;
        }
        let version = {
            let st = self.state_mut(&name)?;
            if let Some(t) = confirm {
                st.last_update = t;
            }
            // A replica's chain is a prefix of the primary's, so a
            // version learned from one is a confirmed *version* bound
            // (but not a fresh Temporal time anchor).
            st.best_known = st.best_known.max(st.version);
            st.version
        };
        if version < floor {
            // The server-side floor check makes this unreachable; count
            // it rather than trust it silently.
            self.metrics.replica_violations.inc();
        }
        self.metrics.replica_reads.inc();
        if let Some(link) = self.extra_links.get_mut(&host) {
            let rep = &mut link.read_replicas[idx];
            let known = rep.known.entry(name).or_insert((0, 0));
            known.0 = known.0.max(version);
            known.1 = known.1.max(best_known);
            rep.lag.set(best_known.saturating_sub(version) as i64);
        }
        Ok(true)
    }

    /// Releases a read lock: the paper's `IW_rl_release`.
    ///
    /// # Errors
    ///
    /// [`CoreError::NotLocked`] when no read lock is held.
    pub fn rl_release(&mut self, h: &SegHandle) -> Result<(), CoreError> {
        let name = h.name().to_string();
        let st = self.state(&name)?;
        if st.lock != Some(LockMode::Read) {
            return Err(CoreError::NotLocked {
                segment: name,
                write: false,
            });
        }
        if st.server_locked {
            let reply = self.request_for(&name, |client| Request::Release {
                client,
                segment: name.clone(),
                diff: None,
            })?;
            if !matches!(reply, Reply::Released { .. }) {
                return Err(unexpected(reply));
            }
        }
        let st = self.state_mut(&name)?;
        st.lock = None;
        st.server_locked = false;
        Ok(())
    }

    pub(crate) fn require_lock(&self, seg: SegId, write: bool) -> Result<(), CoreError> {
        let name = &self.heap.segment(seg).name;
        let st = self.state(name)?;
        let ok = matches!(
            (st.lock, write),
            (Some(LockMode::Write), _) | (Some(LockMode::Read), false)
        );
        if ok {
            Ok(())
        } else {
            Err(CoreError::NotLocked {
                segment: name.clone(),
                write,
            })
        }
    }

    /// Closes a segment: releases any held lock and discards the local
    /// cached copy (the inverse of [`Session::open_segment`]). Pointers
    /// into the segment become dangling; pointer *fields* elsewhere that
    /// referenced it revert to unresolved MIPs and re-fetch on next use.
    ///
    /// # Errors
    ///
    /// [`CoreError::NotOpen`]; [`CoreError::BadPath`] while the segment
    /// is part of an open transaction.
    pub fn close_segment(&mut self, h: &SegHandle) -> Result<(), CoreError> {
        let name = h.name().to_string();
        if let Some(tx) = &self.tx {
            if tx.segments.contains(&name) {
                return Err(CoreError::BadPath(format!(
                    "`{name}` is part of an open transaction"
                )));
            }
        }
        let st = self.state(&name)?;
        let id = st.id;
        let locked = st.lock;
        let server_locked = st.server_locked;
        match locked {
            Some(LockMode::Write) => self.wl_release(h)?,
            Some(LockMode::Read) if server_locked => self.rl_release(h)?,
            _ => {}
        }
        // Re-point local pointers into this segment back to MIPs so other
        // segments' caches stay usable.
        let spans: Vec<(u64, u64)> = self
            .heap
            .segment(id)
            .blocks()
            .map(|b| (b.va, b.end()))
            .collect();
        let arch = self.heap.arch().clone();
        // Find pointer fields across all *other* segments that point into
        // this one, and demote them to unresolved MIPs.
        let mut demotions: Vec<(u64, Mip)> = Vec::new();
        let other_ids: Vec<SegId> = self
            .segs
            .values()
            .map(|st| st.id)
            .filter(|&other| other != id)
            .collect();
        for other in other_ids {
            let metas: Vec<BlockMeta> = self.heap.segment(other).blocks().cloned().collect();
            for meta in metas {
                let slice = self.heap.read_bytes(meta.va, meta.size() as usize)?;
                for run in meta.flat.runs() {
                    if run.kind != PrimKind::Ptr {
                        continue;
                    }
                    for k in 0..run.count {
                        let off = (run.local_off + k * run.stride) as usize;
                        let size = arch.pointer_size as usize;
                        let va = read_va(&slice[off..off + size], &arch);
                        if va != 0 && spans.iter().any(|&(lo, hi)| va >= lo && va < hi) {
                            let field_va = meta.va + off as u64;
                            let mip = self.mip_for_va(va)?;
                            demotions.push((field_va, mip));
                        }
                    }
                }
            }
        }
        for (field_va, mip) in demotions {
            let size = arch.pointer_size as usize;
            let mut zero = vec![0u8; size];
            write_va(&mut zero, &arch, 0);
            self.heap
                .bytes_mut_unprotected(field_va, size)?
                .copy_from_slice(&zero);
            self.unresolved.insert(field_va, mip);
        }
        // Drop unresolved entries whose *field* lived in the segment.
        for &(lo, hi) in &spans {
            self.unresolved.retain(|&va, _| !(lo..hi).contains(&va));
        }
        self.heap.remove_segment(id);
        self.segs.remove(&name);
        Ok(())
    }

    /// Names and cached versions of all open segments.
    pub fn segments(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = self
            .segs
            .iter()
            .map(|(n, st)| (n.clone(), st.version))
            .collect();
        out.sort();
        out
    }

    /// The cached version of one open segment.
    ///
    /// # Errors
    ///
    /// [`CoreError::NotOpen`].
    pub fn segment_version(&self, h: &SegHandle) -> Result<u64, CoreError> {
        Ok(self.state(h.name())?.version)
    }

    // ==================================================================
    // Bulk raw access and experiment controls
    // ==================================================================

    /// Bulk write of raw local-format bytes at `p` (through modification
    /// tracking). Intended for large array updates where per-element
    /// accessors would dominate; the caller is responsible for encoding
    /// values in this session's architecture format.
    ///
    /// # Errors
    ///
    /// [`CoreError::NotLocked`] without the write lock; heap bounds
    /// errors.
    pub fn write_bytes_raw(&mut self, p: &Ptr, bytes: &[u8]) -> Result<(), CoreError> {
        let (seg, meta) = self.heap.block_at(p.va)?;
        self.require_lock(seg, true)?;
        if p.va + bytes.len() as u64 > meta.end() {
            return Err(CoreError::BadPath(format!(
                "raw write of {} bytes overruns block {}",
                bytes.len(),
                meta.serial
            )));
        }
        self.heap.write_bytes(p.va, bytes)?;
        Ok(())
    }

    /// Bulk read of raw local-format bytes at `p`.
    ///
    /// # Errors
    ///
    /// [`CoreError::NotLocked`] without a lock; heap bounds errors.
    pub fn read_bytes_raw(&self, p: &Ptr, len: usize) -> Result<&[u8], CoreError> {
        let (seg, meta) = self.heap.block_at(p.va)?;
        self.require_lock(seg, false)?;
        if p.va + len as u64 > meta.end() {
            return Err(CoreError::BadPath(format!(
                "raw read of {len} bytes overruns block {}",
                meta.serial
            )));
        }
        Ok(self.heap.read_bytes(p.va, len)?)
    }

    /// Forces the tracking mode of a segment (benchmarks pin `Diff` or
    /// `NoDiff` to measure "collect diff" vs "collect block"; normal
    /// callers rely on the automatic adaptation).
    ///
    /// # Errors
    ///
    /// [`CoreError::NotOpen`].
    pub fn set_tracking_mode(&mut self, h: &SegHandle, mode: TrackMode) -> Result<(), CoreError> {
        let st = self.state_mut(h.name())?;
        st.mode = mode;
        let id = st.id;
        let locked_for_write = st.lock == Some(LockMode::Write);
        // Mode changes normally take effect at the next write-lock
        // acquire; if we already hold the write lock, align protection
        // with the mode now.
        if locked_for_write {
            match mode {
                TrackMode::Diff => self.heap.protect_segment(id),
                TrackMode::NoDiff { .. } => self.heap.unprotect_segment(id),
            }
        }
        Ok(())
    }

    /// The current tracking mode of a segment.
    ///
    /// # Errors
    ///
    /// [`CoreError::NotOpen`].
    pub fn tracking_mode(&self, h: &SegHandle) -> Result<TrackMode, CoreError> {
        Ok(self.state(h.name())?.mode)
    }

    // ==================================================================
    // Allocation
    // ==================================================================

    /// Allocates a block of `count` elements of `ty`: the paper's
    /// `IW_malloc` (with an optional symbolic name). Requires the write
    /// lock.
    ///
    /// # Errors
    ///
    /// [`CoreError::NotLocked`] without the write lock; heap errors for
    /// bad names or sizes.
    pub fn malloc(
        &mut self,
        h: &SegHandle,
        ty: &TypeDesc,
        count: u32,
        name: Option<&str>,
    ) -> Result<Ptr, CoreError> {
        let seg_name = h.name().to_string();
        let st = self.state(&seg_name)?;
        if st.lock != Some(LockMode::Write) {
            return Err(CoreError::NotLocked {
                segment: seg_name,
                write: true,
            });
        }
        let id = st.id;
        let serial = st.next_serial;
        let va = self.heap.alloc_block(id, serial, name, ty, count)?;
        // Register the type so it travels in the next diff (a no-op when
        // already known).
        self.heap.segment_types_mut(id).register(ty);
        let iso = self
            .heap
            .segment(id)
            .block_by_serial(serial)?
            .flat
            .wire_identity()
            .is_iso();
        let st = self.state_mut(&seg_name)?;
        st.next_serial += 1;
        st.new_blocks.push(serial);
        st.iso &= iso;
        Ok(Ptr { va, ty: ty.clone() })
    }

    /// Frees a block: the paper's `IW_free`. The pointer must reference
    /// the start of a block. Requires the write lock.
    ///
    /// # Errors
    ///
    /// [`CoreError::NotLocked`]; [`CoreError::BadPath`] when `p` is not a
    /// block start.
    pub fn free(&mut self, h: &SegHandle, p: &Ptr) -> Result<(), CoreError> {
        let seg_name = h.name().to_string();
        let st = self.state(&seg_name)?;
        if st.lock != Some(LockMode::Write) {
            return Err(CoreError::NotLocked {
                segment: seg_name,
                write: true,
            });
        }
        let id = st.id;
        let (bseg, serial, bva, bend) = {
            let (bseg, meta) = self.heap.block_at(p.va)?;
            (bseg, meta.serial, meta.va, meta.end())
        };
        if bseg != id || bva != p.va {
            return Err(CoreError::BadPath(format!(
                "free() requires a pointer to the start of a block in `{seg_name}`"
            )));
        }
        let in_tx = self.tx.is_some();
        let created_here = self.state(&seg_name)?.new_blocks.contains(&serial);
        if in_tx && !created_here {
            // Deferred: the block must stay resurrectable until commit.
            let st = self.state_mut(&seg_name)?;
            if !st.pending_free.contains(&serial) {
                st.pending_free.push(serial);
            }
            return Ok(());
        }
        self.heap.free_block(id, serial)?;
        self.unresolved.retain(|&va, _| !(bva..bend).contains(&va));
        let st = self.state_mut(&seg_name)?;
        if let Some(pos) = st.new_blocks.iter().position(|&s| s == serial) {
            // Created and freed in the same critical section: never tell
            // the server.
            st.new_blocks.remove(pos);
        } else {
            st.freed.push(serial);
        }
        Ok(())
    }

    // ==================================================================
    // Diff collection (§3.1 "Diff creation and translation")
    // ==================================================================

    /// Collects the wire-format diff of all modifications made under the
    /// current write lock. Public for the benchmark harness; applications
    /// use [`Session::wl_release`].
    ///
    /// Returns `(diff, changed primitive units, per-block change
    /// fractions)`.
    ///
    /// # Errors
    ///
    /// Translation errors (e.g. a pointer to unmapped memory).
    #[allow(clippy::type_complexity)]
    pub fn collect_segment_diff(
        &mut self,
        h: &SegHandle,
    ) -> Result<(SegmentDiff, u64, Vec<(u32, f64)>), CoreError> {
        let collect_us = Arc::clone(&self.metrics.collect_us);
        let _timer = collect_us.start_timer();
        let name = h.name().to_string();
        let st = self.state(&name)?;
        let id = st.id;
        let from_version = st.version;
        let types_synced = st.types_synced;
        let new_set: HashSet<u32> = st.new_blocks.iter().copied().collect();
        let new_order = st.new_blocks.clone();
        let freed = st.freed.clone();
        let flagged: HashSet<u32> = st.block_nodiff.clone();
        let whole_segment = matches!(st.mode, TrackMode::NoDiff { .. });

        let mut diff = SegmentDiff {
            from_version,
            to_version: from_version + 1,
            ..Default::default()
        };

        // Newly used type descriptors.
        for (serial, ty) in self.heap.segment(id).types.iter() {
            if serial >= types_synced {
                diff.new_types.push((serial, ty.clone()));
            }
        }

        // Phase 1 (serial bookkeeping): build the translation job list.
        // New blocks travel whole; they join the same parallel batch as
        // the modified blocks.
        let mut jobs: Vec<XlateJob> = Vec::new();
        for serial in new_order {
            let meta = self.heap.segment(id).block_by_serial(serial)?.clone();
            let type_serial = self
                .heap
                .segment(id)
                .types
                .serial_of(&meta.ty)
                .expect("type registered at malloc");
            jobs.push(XlateJob {
                serial,
                meta,
                kind: XlateKind::NewBlock { type_serial },
            });
        }

        if whole_segment {
            // No-diff mode: transmit every pre-existing block whole.
            let serials: Vec<u32> = self
                .heap
                .segment(id)
                .blocks()
                .map(|b| b.serial)
                .filter(|s| !new_set.contains(s))
                .collect();
            for serial in serials {
                let meta = self.heap.segment(id).block_by_serial(serial)?.clone();
                jobs.push(XlateJob {
                    serial,
                    meta,
                    kind: XlateKind::Whole,
                });
            }
        } else {
            let word = self.heap.arch().word_size as usize;
            let splice = self.opts.splice;
            let ps = u64::from(self.heap.page_size());
            let scan_us = Arc::clone(&self.metrics.scan_us);
            let scan_guard = scan_us.start_timer();

            // Scan twins for changed byte runs (pure word diffing),
            // page-parallel when there is enough dirty data. Results are
            // keyed by page position, not scheduling, so the run order is
            // exactly the serial walk's.
            let mut pages: Vec<(usize, u64, &[u8], &[u8])> = Vec::new();
            for &ss_idx in self.heap.segment(id).subseg_indices() {
                let ss = self.heap.subseg(ss_idx);
                let base = ss.base();
                for (page, twin, cur) in ss.modified_pages() {
                    pages.push((ss_idx, base + page as u64 * ps, twin, cur));
                }
            }
            let scanned: u64 = pages.iter().map(|p| p.2.len() as u64).sum();
            self.metrics.scan_pages.add(pages.len() as u64);
            self.metrics.scan_bytes.add(scanned);
            let scan_threads = if scanned >= PAR_MIN_BYTES {
                self.xlate_threads
            } else {
                1
            };
            let page_runs: Vec<Vec<(u64, u64)>> =
                parallel::par_map(scan_threads, &pages, |_, &(_, pbase, twin, cur)| {
                    find_byte_runs(twin, cur, word, splice)
                        .into_iter()
                        .map(|(b0, b1)| (pbase + b0 as u64, pbase + b1 as u64))
                        .collect()
                });
            drop(scan_guard);

            // Group the changed ranges into one job per modified block.
            // This is the serial block walk the translation used to be
            // interleaved with; per-block range order is unchanged, and
            // the per-block `floor` (which prevents double-emitting a
            // primitive spanning two dirty pages) lives in the job runner.
            let mut touched_flagged: Vec<u32> = Vec::new();
            let mut job_of: HashMap<u32, usize> = HashMap::new();
            for (pi, runs) in page_runs.iter().enumerate() {
                let ss_idx = pages[pi].0;
                for &(lo, hi) in runs {
                    let mut cursor = lo;
                    while cursor < hi {
                        let found = match self.heap.block_at(cursor) {
                            Ok((_, meta)) => Some((meta.va, meta.serial)),
                            Err(_) => self
                                .heap
                                .next_block_at_or_after(ss_idx, cursor)
                                .filter(|&(va, _)| va < hi),
                        };
                        let Some((bva, serial)) = found else { break };
                        let meta = self.heap.segment(id).block_by_serial(serial)?.clone();
                        let bend = meta.end();
                        if new_set.contains(&serial) {
                            cursor = bend;
                            continue;
                        }
                        if flagged.contains(&serial) {
                            if !touched_flagged.contains(&serial) {
                                touched_flagged.push(serial);
                            }
                            cursor = bend;
                            continue;
                        }
                        let lo_clamped = cursor.max(bva);
                        let hi_clamped = hi.min(bend);
                        match job_of.get(&serial) {
                            Some(&ji) => {
                                if let XlateKind::Ranges(rs) = &mut jobs[ji].kind {
                                    rs.push((lo_clamped, hi_clamped));
                                }
                            }
                            None => {
                                job_of.insert(serial, jobs.len());
                                jobs.push(XlateJob {
                                    serial,
                                    meta,
                                    kind: XlateKind::Ranges(vec![(lo_clamped, hi_clamped)]),
                                });
                            }
                        }
                        cursor = bend;
                    }
                }
            }
            // Flagged (block-level no-diff) blocks touched this section:
            // transmit whole.
            for serial in touched_flagged {
                let meta = self.heap.segment(id).block_by_serial(serial)?.clone();
                jobs.push(XlateJob {
                    serial,
                    meta,
                    kind: XlateKind::Whole,
                });
            }
        }

        // Phase 2: translate, fanning out over the worker pool when there
        // is enough work to pay for the threads.
        let xlate_bytes: u64 = jobs
            .iter()
            .map(|j| match &j.kind {
                XlateKind::Ranges(rs) => rs.iter().map(|(lo, hi)| hi - lo).sum(),
                _ => j.meta.end() - j.meta.va,
            })
            .sum();
        let threads = if xlate_bytes >= PAR_MIN_BYTES {
            self.xlate_threads
        } else {
            1
        };
        if threads > 1 && jobs.len() > 1 {
            self.metrics.par_collects.inc();
        }
        if self.opts.iso_fast_path
            && jobs
                .iter()
                .any(|j| j.meta.flat.wire_identity().is_iso() && j.meta.prim_count() > 0)
        {
            self.metrics.iso_collects.inc();
        }
        let ctx = self.xlate();
        let outs = parallel::par_map(threads, &jobs, |_, job| ctx.run_xlate_job(job));

        // Phase 3: merge in serial block order — new blocks in allocation
        // order, block diffs in ascending serial order — so the wire diff
        // is byte-identical to a single-threaded collect.
        let mut changed: u64 = 0;
        let mut per_block: BTreeMap<u32, Vec<RunAcc>> = BTreeMap::new();
        for (job, out) in jobs.iter().zip(outs) {
            match out? {
                XlateOut::NewBlock(nb) => diff.new_blocks.push(nb),
                XlateOut::Diff { accs, changed: c } => {
                    changed += c;
                    per_block.insert(job.serial, accs);
                }
            }
        }

        let mut fractions = Vec::with_capacity(per_block.len());
        for (serial, accs) in per_block {
            let block_prims = self
                .heap
                .segment(id)
                .block_by_serial(serial)
                .map(BlockMeta::prim_count)
                .unwrap_or(1);
            let run_prims: u64 = accs.iter().map(|r| r.count).sum();
            fractions.push((serial, run_prims as f64 / block_prims.max(1) as f64));
            diff.block_diffs.push(BlockDiff {
                serial,
                runs: finish_runs(accs),
            });
        }
        diff.freed = freed;
        self.metrics.diffs_collected.inc();
        self.metrics.prims_sent.add(changed);
        self.metrics
            .collected_bytes
            .record(diff.payload_len() as u64);
        Ok((diff, changed, fractions))
    }

    /// Borrows the read-only session state block translation needs into a
    /// [`XlateCtx`] shareable across worker threads.
    fn xlate(&self) -> XlateCtx<'_> {
        XlateCtx {
            heap: &self.heap,
            unresolved: &self.unresolved,
            metrics: &self.metrics,
            iso: self.opts.iso_fast_path,
        }
    }

    /// Builds the MIP for an arbitrary local address (`IW_ptr_to_mip`'s
    /// core).
    pub(crate) fn mip_for_va(&self, va: u64) -> Result<Mip, CoreError> {
        self.xlate().mip_for_va(va)
    }

    // ==================================================================
    // Diff application (§3.1, inverse direction)
    // ==================================================================

    /// Applies a wire diff to the local cached copy. Public for the
    /// benchmark harness; normal callers go through the lock API.
    ///
    /// Application is phased like collection: allocate and predict
    /// serially, decode every wire run into a scratch image (in parallel
    /// when the payload is large), then install the images and the
    /// unresolved-pointer map operations in diff order. Decoded
    /// primitives fully overwrite their byte windows, so the phased
    /// install leaves memory byte-identical to a sequential walk — where
    /// runs overlap, install order equals diff order, the same "later
    /// data wins" rule the server's diff composition uses.
    ///
    /// # Errors
    ///
    /// Wire decoding errors; heap errors on inconsistent diffs.
    pub fn apply_segment_diff(
        &mut self,
        h: &SegHandle,
        diff: &SegmentDiff,
    ) -> Result<(), CoreError> {
        let apply_us = Arc::clone(&self.metrics.apply_us);
        let _timer = apply_us.start_timer();
        let name = h.name().to_string();
        let id = self.state(&name)?.id;

        for (serial, ty) in &diff.new_types {
            self.heap.segment_types_mut(id).install(*serial, ty.clone());
        }

        // Phase 1 (serial): allocate every new block, then turn each new
        // block image and each diff run into a decode job. New blocks
        // arrive in server version-list order; sequential allocation
        // places same-version blocks contiguously ("data layout for
        // cache locality", §3.3).
        let mut jobs: Vec<DecodeJob> = Vec::new();
        let mut new_all_iso = true;
        for nb in &diff.new_blocks {
            let ty = self
                .heap
                .segment(id)
                .types
                .get(nb.type_serial)
                .ok_or(CoreError::Server(format!(
                    "diff references unknown type {}",
                    nb.type_serial
                )))?
                .clone();
            self.heap
                .alloc_block(id, nb.serial, nb.name.as_deref(), &ty, nb.count)?;
            let meta = self.heap.segment(id).block_by_serial(nb.serial)?.clone();
            new_all_iso &= meta.flat.wire_identity().is_iso();
            let prims = meta.prim_count();
            self.metrics.prims_received.add(prims);
            if prims > 0 {
                jobs.push(DecodeJob {
                    meta,
                    start: 0,
                    count: prims,
                    data: nb.data.clone(),
                });
            }
        }

        // Modified blocks, with client-side last-block prediction: "we
        // predict the next changed block in the diff to be the next
        // consecutive block in memory for the client". The predictor
        // walks serially here so its metrics match a sequential apply.
        let mut pred: Option<u64> = None; // end VA of last applied block
        for bd in &diff.block_diffs {
            self.metrics.apply_block_lookups.inc();
            let mut meta: Option<BlockMeta> = None;
            if self.opts.prediction {
                if let Some(end_va) = pred {
                    if let Ok(idx) = self.heap.subseg_at(end_va.saturating_sub(1)) {
                        if let Some((va, serial)) = self.heap.next_block_at_or_after(idx, end_va) {
                            if serial == bd.serial {
                                self.metrics.apply_pred_hits.inc();
                                meta = Some(self.heap.segment(id).block_by_serial(serial)?.clone());
                                let _ = va;
                            }
                        }
                    }
                }
            }
            let meta = match meta {
                Some(m) => m,
                None => self.heap.segment(id).block_by_serial(bd.serial)?.clone(),
            };
            pred = Some(meta.end());
            for run in &bd.runs {
                self.metrics.prims_received.add(run.count);
                if run.count > 0 {
                    jobs.push(DecodeJob {
                        meta: meta.clone(),
                        start: run.start,
                        count: run.count,
                        data: run.data.clone(),
                    });
                }
            }
        }

        // Phase 2: decode wire runs into pooled scratch images, fanning
        // out when there is enough payload to pay for the threads.
        let payload: u64 = jobs.iter().map(|j| j.data.len() as u64).sum();
        let threads = if payload >= PAR_MIN_BYTES {
            self.xlate_threads
        } else {
            1
        };
        if threads > 1 && jobs.len() > 1 {
            self.metrics.par_applies.inc();
        }
        if self.opts.iso_fast_path && jobs.iter().any(|j| j.meta.flat.wire_identity().is_iso()) {
            self.metrics.iso_applies.inc();
        }
        let ctx = self.xlate();
        let pool = &self.scratch_pool;
        let outs = parallel::par_map(threads, &jobs, |_, job| ctx.decode_run(job, pool));

        // Phase 3 (serial): install images and unresolved-map operations
        // in diff order, then stamp block versions.
        let mut reuses = 0u64;
        let mut allocs = 0u64;
        let mut iso_bytes = 0u64;
        for out in outs {
            let d = out?;
            // Clear stale unresolved entries for every pointer field this
            // run rewrote, then record the fields that resolved to a MIP
            // we cannot map locally yet. Skipping the walk when the map is
            // empty is a pure no-op elision (nothing to remove), and it is
            // re-evaluated per run, so a run that inserts entries makes
            // later runs in the same diff walk their ranges — exactly the
            // sequential apply's per-run `track_clears` behaviour.
            // (Isomorphic runs carry no pointer fields, so both lists are
            // empty for them.)
            if !self.unresolved.is_empty() {
                for &(first_va, stride, count) in &d.clear_ranges {
                    for k in 0..u64::from(count) {
                        self.unresolved.remove(&(first_va + k * u64::from(stride)));
                    }
                }
            }
            for (field_va, mip) in d.unresolved_inserts {
                self.unresolved.insert(field_va, mip);
            }
            match d.image {
                RunImage::Scratch { buf, reused } => {
                    if reused {
                        reuses += 1;
                    } else {
                        allocs += 1;
                    }
                    if !buf.is_empty() {
                        self.heap
                            .bytes_mut_unprotected(d.span_va, buf.len())?
                            .copy_from_slice(&buf);
                    }
                    self.scratch_pool.put(buf);
                }
                RunImage::Wire(bytes) => {
                    iso_bytes += bytes.len() as u64;
                    if !bytes.is_empty() {
                        self.heap
                            .bytes_mut_unprotected(d.span_va, bytes.len())?
                            .copy_from_slice(&bytes);
                    }
                }
            }
        }
        self.metrics.iso_memcpy_bytes.add(iso_bytes);
        self.metrics.pool_reuses.add(reuses);
        self.metrics.pool_allocs.add(allocs);
        self.metrics
            .pool_buffers
            .set(self.scratch_pool.held() as i64);

        for nb in &diff.new_blocks {
            self.heap
                .set_block_version(id, nb.serial, diff.to_version)?;
        }
        for bd in &diff.block_diffs {
            self.heap
                .set_block_version(id, bd.serial, diff.to_version)?;
        }

        for &serial in &diff.freed {
            // A tombstone for a block this cache never created (e.g. a
            // create+free pair inside one composed chain, or a server
            // being conservative) is simply a no-op.
            let Ok(meta) = self.heap.segment(id).block_by_serial(serial) else {
                continue;
            };
            let (bva, bend) = (meta.va, meta.end());
            self.heap.free_block(id, serial)?;
            self.unresolved.retain(|&va, _| !(bva..bend).contains(&va));
        }

        let st = self.state_mut(&name)?;
        st.version = diff.to_version;
        st.iso &= new_all_iso;
        self.metrics.diffs_applied.inc();
        Ok(())
    }

    /// Resolves a wire MIP string against locally cached segments.
    pub(crate) fn resolve_mip_to_va(&self, mip_str: &str) -> Result<ResolvedPtr, CoreError> {
        if mip_str.is_empty() {
            return Ok(ResolvedPtr::Null);
        }
        let mip: Mip = mip_str.parse().map_err(CoreError::Wire)?;
        let Some(seg_id) = self.heap.segment_id(&mip.segment) else {
            return Ok(ResolvedPtr::Unresolved(mip));
        };
        let seg = self.heap.segment(seg_id);
        let meta = match &mip.block {
            BlockRef::Serial(n) => seg.block_by_serial(*n),
            BlockRef::Name(n) => seg.block_by_name(n),
        };
        let Ok(meta) = meta else {
            return Ok(ResolvedPtr::Unresolved(mip));
        };
        let Some(p) = meta.flat.prim_at(mip.offset) else {
            return Ok(ResolvedPtr::Unresolved(mip));
        };
        Ok(ResolvedPtr::Local(meta.va + u64::from(p.local_off)))
    }
}

/// Read-only view of the session state needed to translate blocks to and
/// from wire format.
///
/// Every field is `Sync` — the heap is plain data plus `Arc`'d layouts,
/// the metric handles are atomics — which is what lets
/// [`crate::parallel::par_map`] share one context across scoped workers.
/// The session itself is not `Sync` (it owns the transport), so the
/// translation paths live here instead.
pub(crate) struct XlateCtx<'a> {
    heap: &'a Heap,
    unresolved: &'a HashMap<u64, Mip>,
    metrics: &'a SessionMetrics,
    /// Whether the isomorphic fast path may engage
    /// ([`SessionOptions::iso_fast_path`]).
    iso: bool,
}

/// One block's translation work for a collect.
struct XlateJob {
    serial: u32,
    meta: BlockMeta,
    kind: XlateKind,
}

/// What part of the block an [`XlateJob`] transmits.
enum XlateKind {
    /// Newly allocated block, translated whole into a [`NewBlock`].
    NewBlock { type_serial: u32 },
    /// Pre-existing block transmitted whole (no-diff modes).
    Whole,
    /// Changed VA ranges within the block, in page-scan order.
    Ranges(Vec<(u64, u64)>),
}

/// Result of one [`XlateJob`].
enum XlateOut {
    NewBlock(NewBlock),
    Diff { accs: Vec<RunAcc>, changed: u64 },
}

/// One wire run to decode on apply.
struct DecodeJob {
    meta: BlockMeta,
    start: u64,
    count: u64,
    data: Bytes,
}

/// A decoded run: a scratch image of the run's byte span plus the
/// unresolved-pointer map operations to replay at install time.
///
/// Pointer clears are recorded as compact `(first_va, stride, count)`
/// ranges — one per wire run, not one per pointer — and only walked when
/// the unresolved map is non-empty at install, matching the sequential
/// apply's `track_clears` fast path byte for byte without a per-pointer
/// allocation on the (common) empty-map path.
struct DecodedRun {
    span_va: u64,
    image: RunImage,
    /// Fields whose MIPs could not be resolved locally, to insert.
    unresolved_inserts: Vec<(u64, Mip)>,
    /// Pointer-field ranges decoded by this run, to clear from the map
    /// (insertions above win — each field appears in at most one op).
    clear_ranges: Vec<(u64, u32, u32)>,
}

/// The bytes a [`DecodedRun`] installs into the mapped segment.
enum RunImage {
    /// Decoded by the general descriptor walk into a pooled scratch
    /// buffer.
    Scratch {
        buf: Vec<u8>,
        /// Whether the buffer came from the pool (for the reuse metrics).
        reused: bool,
    },
    /// Isomorphic fast path: the wire payload *is* the local image, so
    /// install is one direct memcpy into the mapped segment — no
    /// descriptor traversal, no scratch buffer round trip.
    Wire(Bytes),
}

impl XlateCtx<'_> {
    /// Runs one collect-side translation job. Each job owns its swizzle
    /// cache, so jobs are independent and their outputs depend only on
    /// heap state — never on scheduling.
    fn run_xlate_job(&self, job: &XlateJob) -> Result<XlateOut, CoreError> {
        let meta = &job.meta;
        let mut swz_cache: Option<SwizzleCache> = None;
        let iso = self.iso && meta.flat.wire_identity().is_iso();
        match &job.kind {
            XlateKind::NewBlock { type_serial } => {
                let data =
                    self.translate_block_range(meta, meta.va, meta.end(), &mut 0, &mut swz_cache)?;
                if iso {
                    self.metrics.iso_memcpy_bytes.add(data.len() as u64);
                }
                Ok(XlateOut::NewBlock(NewBlock {
                    serial: job.serial,
                    name: meta.name.clone(),
                    type_serial: *type_serial,
                    count: meta.count,
                    data,
                }))
            }
            XlateKind::Whole => {
                let data =
                    self.translate_block_range(meta, meta.va, meta.end(), &mut 0, &mut swz_cache)?;
                if iso {
                    self.metrics.iso_memcpy_bytes.add(data.len() as u64);
                }
                let count = meta.prim_count();
                let accs = vec![RunAcc {
                    start: 0,
                    count,
                    data,
                }];
                Ok(XlateOut::Diff {
                    accs,
                    changed: count,
                })
            }
            XlateKind::Ranges(ranges) => {
                // All of a block's ranges share one writer, so each
                // merged run's payload is a zero-copy slice of the job
                // buffer — no per-range buffers, no gather copy at merge.
                // The per-block floor prevents double-emitting a primitive
                // that spans two dirty pages; ranges arrive in ascending
                // scan order, exactly as the serial walk visited them.
                let total_span: usize = ranges.iter().map(|&(lo, hi)| (hi - lo) as usize).sum();
                let mut w = WireWriter::with_capacity(self.wire_capacity_for(meta, total_span));
                let mut floor: u64 = 0;
                // Merged runs as (prim start, prim count, byte lo, byte hi)
                // into the shared writer; merging matches `push_run` (runs
                // contiguous in primitive offsets coalesce).
                let mut emitted: Vec<(u64, u64, usize, usize)> = Vec::new();
                let mut changed: u64 = 0;
                for &(lo, hi) in ranges {
                    let b0 = w.len();
                    if let Some((start, count)) =
                        self.translate_range_into(meta, lo, hi, &mut floor, &mut w, &mut swz_cache)?
                    {
                        changed += count;
                        let b1 = w.len();
                        match emitted.last_mut() {
                            Some(last) if last.0 + last.1 == start && last.3 == b0 => {
                                last.1 += count;
                                last.3 = b1;
                            }
                            _ => emitted.push((start, count, b0, b1)),
                        }
                    }
                }
                let payload = w.finish();
                if iso {
                    self.metrics.iso_memcpy_bytes.add(payload.len() as u64);
                }
                let accs = emitted
                    .into_iter()
                    .map(|(start, count, b0, b1)| RunAcc {
                        start,
                        count,
                        data: payload.slice(b0..b1),
                    })
                    .collect();
                Ok(XlateOut::Diff { accs, changed })
            }
        }
    }

    /// Estimated wire size for translating `span` local bytes of `meta`,
    /// from the layout: fixed-width layouts never expand (padding only
    /// shrinks), while pointers swizzle into length-prefixed MIP strings
    /// and strings gain a length prefix. Over-estimating only costs
    /// transient capacity; under-estimating costs a mid-run regrow.
    fn wire_capacity_for(&self, meta: &BlockMeta, span: usize) -> usize {
        if meta.flat.fixed_wire_size().is_some() {
            return span + 16;
        }
        let local = u64::from(meta.size().max(1));
        let wire = wire_upper(meta.flat.nodes(), self.heap.arch());
        let est = (span as u64).saturating_mul(wire) / local;
        est as usize + 64
    }

    /// Translates the whole span `[lo_va, hi_va)` of one block into a
    /// fresh wire payload. Whole-block callers (new blocks, whole-segment
    /// fallback) use this; the ranged collect path writes many ranges
    /// into one shared per-job writer via [`Self::translate_range_into`]
    /// so each run's payload can be a zero-copy slice of the job buffer.
    fn translate_block_range(
        &self,
        meta: &BlockMeta,
        lo_va: u64,
        hi_va: u64,
        floor: &mut u64,
        swz_cache: &mut Option<SwizzleCache>,
    ) -> Result<Bytes, CoreError> {
        let span = (hi_va - lo_va) as usize;
        let mut w = WireWriter::with_capacity(self.wire_capacity_for(meta, span));
        self.translate_range_into(meta, lo_va, hi_va, floor, &mut w, swz_cache)?;
        Ok(w.finish())
    }

    /// Translates the local bytes of `[lo_va, hi_va)` within one block to
    /// wire format, appending to `w`. Primitives inside a contiguous byte
    /// range have consecutive primitive offsets, so each call contributes
    /// at most one run: returns `Some((first primitive offset, primitive
    /// count))` when anything was emitted. `floor` suppresses primitives
    /// already emitted by an earlier overlapping range (a primitive
    /// spanning two dirty pages) and advances past everything emitted
    /// here.
    ///
    /// Translation proceeds run by run (the payoff of isomorphic type
    /// descriptors, §3.3): fixed-size runs use tight per-kind loops,
    /// strings and pointers go element by element.
    fn translate_range_into(
        &self,
        meta: &BlockMeta,
        lo_va: u64,
        hi_va: u64,
        floor: &mut u64,
        w: &mut WireWriter,
        swz_cache: &mut Option<SwizzleCache>,
    ) -> Result<Option<(u64, u64)>, CoreError> {
        if self.iso && meta.flat.wire_identity().is_iso() {
            return self.translate_range_iso(meta, lo_va, hi_va, floor, w);
        }
        let arch = self.heap.arch().clone();
        let little = arch.endian.is_little();
        let slice = self.heap.read_bytes(meta.va, meta.size() as usize)?;
        let rel_lo = (lo_va - meta.va) as u32;
        let rel_hi = (hi_va - meta.va) as u32;
        let mut start: Option<u64> = None;
        let mut total: u64 = 0;
        for mut run in meta.flat.seek_byte_runs(rel_lo) {
            if run.local_off >= rel_hi {
                break;
            }
            // Skip elements already emitted by an earlier range.
            if run.prim_off < *floor {
                let skip = (*floor - run.prim_off).min(u64::from(run.count)) as u32;
                run.prim_off += u64::from(skip);
                run.local_off += skip * run.stride;
                run.count -= skip;
                if run.count == 0 || run.local_off >= rel_hi {
                    continue;
                }
            }
            // Clip to elements starting before rel_hi.
            let span = rel_hi - run.local_off;
            let max_elems = span.div_ceil(run.stride.max(1)).max(1);
            run.count = run.count.min(max_elems);
            match run.kind {
                PrimKind::Ptr => {
                    let size = arch.pointer_size as usize;
                    let mut scratch = String::with_capacity(48);
                    for k in 0..run.count {
                        let off = (run.local_off + k * run.stride) as usize;
                        let window = &slice[off..off + size];
                        let field_va = meta.va + off as u64;
                        self.swizzle_window_into(field_va, window, swz_cache, &mut scratch)?;
                        w.put_str(&scratch);
                    }
                }
                PrimKind::Str { cap } => {
                    for k in 0..run.count {
                        let off = (run.local_off + k * run.stride) as usize;
                        let window = &slice[off..off + cap as usize];
                        w.put_len_bytes(iw_wire::prim::local_str_bytes(window));
                    }
                }
                kind => {
                    let size = kind.local_size(&arch) as usize;
                    encode_fixed_run(
                        w,
                        &slice[run.local_off as usize..],
                        size,
                        run.stride as usize,
                        run.count as usize,
                        little,
                    );
                }
            }
            if start.is_none() {
                start = Some(run.prim_off);
            }
            total += u64::from(run.count);
            *floor = run.prim_off + u64::from(run.count);
        }
        if let Some(c) = swz_cache {
            if c.hits > 0 {
                self.metrics.swizzle_cache_hits.add(c.hits);
                c.hits = 0;
            }
        }
        Ok(start.map(|s| (s, total)))
    }

    /// Isomorphic fast path for [`Self::translate_range_into`]: the
    /// block's local image *is* its wire encoding, so the whole range
    /// collapses to one `memcpy` — no descriptor traversal, no per-run
    /// dispatch. Only the run boundary needs computing: the emitted
    /// primitives are exactly those whose byte extent intersects
    /// `[lo_va, hi_va)` (minus the `floor` suppression), the same set the
    /// descriptor walk emits, and since local bytes equal wire bytes the
    /// payload is byte-identical to the walk's.
    fn translate_range_iso(
        &self,
        meta: &BlockMeta,
        lo_va: u64,
        hi_va: u64,
        floor: &mut u64,
        w: &mut WireWriter,
    ) -> Result<Option<(u64, u64)>, CoreError> {
        if hi_va <= lo_va || meta.prim_count() == 0 {
            return Ok(None);
        }
        let rel_lo = (lo_va - meta.va) as u32;
        let rel_hi = (hi_va - meta.va) as u32;
        // First and last primitives whose byte extent intersects the
        // range: pure arithmetic for homogeneous layouts, two O(depth)
        // tree descents otherwise. A packed layout has no padding, so
        // every in-bounds byte belongs to a primitive.
        let (mut first_prim, mut first_byte, last_prim, end_byte) = match meta.flat.single_run() {
            Some(r) => {
                let s = r.stride.max(1);
                let fp = rel_lo / s;
                let lp = (rel_hi - 1) / s;
                (u64::from(fp), fp * s, u64::from(lp), (lp + 1) * s)
            }
            None => {
                let arch = self.heap.arch();
                let Some(p1) = meta.flat.seek_byte(rel_lo).next() else {
                    return Ok(None);
                };
                let Some(p2) = meta.flat.seek_byte(rel_hi - 1).next() else {
                    return Ok(None);
                };
                (
                    p1.prim_off,
                    p1.local_off,
                    p2.prim_off,
                    p2.local_off + p2.local_size(arch),
                )
            }
        };
        // Skip primitives an earlier overlapping range already emitted.
        if last_prim < *floor {
            return Ok(None);
        }
        if first_prim < *floor {
            let Some(p) = meta.flat.prim_at(*floor) else {
                return Ok(None);
            };
            first_prim = p.prim_off;
            first_byte = p.local_off;
        }
        let len = (end_byte - first_byte) as usize;
        let slice = self.heap.read_bytes(meta.va + u64::from(first_byte), len)?;
        w.put_bytes(slice);
        *floor = last_prim + 1;
        Ok(Some((first_prim, last_prim - first_prim + 1)))
    }

    /// Swizzles one local pointer window into its MIP string, with a
    /// one-entry block cache for pointer-dense translation loops. Appends
    /// the MIP into `out` (cleared first) to avoid per-pointer
    /// allocations.
    fn swizzle_window_into(
        &self,
        field_va: u64,
        window: &[u8],
        cache: &mut Option<SwizzleCache>,
        out: &mut String,
    ) -> Result<(), CoreError> {
        out.clear();
        let va = read_va(window, self.heap.arch());
        if va == 0 {
            if let Some(mip) = self.unresolved.get(&field_va) {
                use std::fmt::Write;
                let _ = write!(out, "{mip}");
            }
            return Ok(());
        }
        if let Some(c) = cache {
            if va >= c.block_lo && va < c.block_hi {
                if let Some(run) = &c.run {
                    let rel = (va - c.block_lo) as u32;
                    let stride = run.stride.max(1);
                    if rel >= run.local_off && (rel - run.local_off).is_multiple_of(stride) {
                        let k = (rel - run.local_off) / stride;
                        if k < run.count {
                            c.hits += 1;
                            let prim_off = run.prim_off + u64::from(k);
                            out.push_str(&c.prefix);
                            if prim_off != 0 {
                                out.push('#');
                                push_u64(out, prim_off);
                            }
                            return Ok(());
                        }
                    }
                }
            }
        }
        // Slow path: full metadata search, then refresh the cache.
        if let Some(c) = cache {
            if c.hits > 0 {
                self.metrics.swizzle_cache_hits.add(c.hits);
            }
        }
        self.metrics.swizzle_cache_misses.inc();
        let (seg, meta) = self.heap.block_at(va)?;
        let mut prefix = String::with_capacity(self.heap.segment(seg).name.len() + 12);
        prefix.push_str(&self.heap.segment(seg).name);
        prefix.push('#');
        match &meta.name {
            Some(n) => prefix.push_str(n),
            None => push_u64(&mut prefix, u64::from(meta.serial)),
        }
        *cache = Some(SwizzleCache {
            block_lo: meta.va,
            block_hi: meta.end(),
            prefix,
            run: meta.flat.single_run(),
            hits: 0,
        });
        let mip = self.mip_for_va(va)?;
        use std::fmt::Write;
        let _ = write!(out, "{mip}");
        Ok(())
    }

    /// Builds the MIP for an arbitrary local address (`IW_ptr_to_mip`'s
    /// core).
    pub(crate) fn mip_for_va(&self, va: u64) -> Result<Mip, CoreError> {
        let (seg, meta) = self.heap.block_at(va)?;
        let rel = (va - meta.va) as u32;
        let prim = meta.flat.prim_containing_byte(rel).ok_or_else(|| {
            CoreError::DanglingPointer(format!(
                "address {va:#x} points into padding of block {}",
                meta.serial
            ))
        })?;
        if u64::from(prim.local_off) != u64::from(rel) {
            return Err(CoreError::DanglingPointer(format!(
                "address {va:#x} points into the middle of a primitive"
            )));
        }
        let block = match &meta.name {
            Some(n) => BlockRef::Name(n.clone()),
            None => BlockRef::Serial(meta.serial),
        };
        Ok(Mip {
            segment: self.heap.segment(seg).name.clone(),
            block,
            offset: prim.prim_off,
        })
    }

    /// Decodes one wire run (`count` primitives starting at `start`) into
    /// a pooled scratch image of the run's byte span, without touching
    /// heap memory. Pointer fields yield ordered unresolved-map
    /// operations that the caller replays serially at install time, so
    /// the map ends up exactly as a sequential apply would leave it.
    /// Callers never build zero-`count` jobs.
    fn decode_run(
        &self,
        job: &DecodeJob,
        pool: &crate::parallel::BufferPool,
    ) -> Result<DecodedRun, CoreError> {
        let meta = &job.meta;
        let (start, count) = (job.start, job.count);
        let mut r = WireReader::new(job.data.clone());
        let mut unswz_cache: Option<UnswizzleCache> = None;
        let arch = self.heap.arch().clone();
        let first = meta.flat.prim_at(start).ok_or_else(|| {
            CoreError::Server(format!("run start {start} outside block {}", meta.serial))
        })?;
        let last = meta.flat.prim_at(start + count - 1).ok_or_else(|| {
            CoreError::Server(format!(
                "run end {} outside block {}",
                start + count - 1,
                meta.serial
            ))
        })?;
        let span_lo = first.local_off as usize;
        let span_hi = last.local_off as usize + last.local_size(&arch) as usize;
        let span = span_hi - span_lo;
        // Isomorphic layouts: the wire payload is already the local image
        // of the span — install it directly, bypassing the descriptor
        // walk and the scratch buffer entirely. A short payload is the
        // same wire error the general walk's first starved read raises.
        if self.iso && meta.flat.wire_identity().is_iso() {
            if job.data.len() < span {
                return Err(CoreError::Wire(iw_wire::codec::WireError::UnexpectedEof {
                    wanted: span,
                    available: job.data.len(),
                }));
            }
            return Ok(DecodedRun {
                span_va: meta.va + span_lo as u64,
                image: RunImage::Wire(job.data.slice(0..span)),
                unresolved_inserts: Vec::new(),
                clear_ranges: Vec::new(),
            });
        }
        // Packed layouts (primitives tile the block, every window fully
        // rewritten by decode) skip the heap pre-fill: decode overwrites
        // every byte of the span, so any initialized buffer works —
        // reused pool buffers cost nothing.
        let (mut scratch, reused) = if meta.flat.is_packed() {
            pool.get_filled(span)
        } else {
            let (mut s, r) = pool.get(span);
            s.extend_from_slice(self.heap.read_bytes(meta.va + span_lo as u64, span)?);
            (s, r)
        };
        let mut unresolved_inserts: Vec<(u64, Mip)> = Vec::new();
        let mut clear_ranges: Vec<(u64, u32, u32)> = Vec::new();
        let little = arch.endian.is_little();
        let mut remaining = count;
        for mut run in meta.flat.seek_prim_runs(start) {
            if remaining == 0 {
                break;
            }
            run.count = run
                .count
                .min(remaining as u32)
                .min(remaining.min(u64::from(u32::MAX)) as u32);
            remaining -= u64::from(run.count);
            match run.kind {
                PrimKind::Ptr => {
                    let size = arch.pointer_size as usize;
                    clear_ranges.push((meta.va + u64::from(run.local_off), run.stride, run.count));
                    for k in 0..run.count {
                        let loff = run.local_off + k * run.stride;
                        let off = loff as usize - span_lo;
                        let mip_bytes = r.get_len_bytes().map_err(CoreError::Wire)?;
                        let mip_str = std::str::from_utf8(&mip_bytes)
                            .map_err(|_| CoreError::Wire(iw_wire::codec::WireError::InvalidUtf8))?;
                        let window = &mut scratch[off..off + size];
                        match self.resolve_mip_cached(mip_str, &mut unswz_cache)? {
                            ResolvedPtr::Null => {
                                write_va(window, &arch, 0);
                            }
                            ResolvedPtr::Local(va) => {
                                write_va(window, &arch, va);
                            }
                            ResolvedPtr::Unresolved(mip) => {
                                write_va(window, &arch, 0);
                                unresolved_inserts.push((meta.va + u64::from(loff), mip));
                            }
                        }
                    }
                }
                PrimKind::Str { cap } => {
                    for k in 0..run.count {
                        let off = (run.local_off + k * run.stride) as usize - span_lo;
                        let window = &mut scratch[off..off + cap as usize];
                        prim_from_wire(&mut r, run.kind, window, &arch, &mut no_pointers_in)
                            .map_err(CoreError::Wire)?;
                    }
                }
                kind => {
                    let size = kind.local_size(&arch) as usize;
                    let base = run.local_off as usize - span_lo;
                    decode_fixed_run(
                        &mut r,
                        &mut scratch[base..],
                        size,
                        run.stride as usize,
                        run.count as usize,
                        little,
                    )
                    .map_err(CoreError::Wire)?;
                }
            }
        }
        if let Some(c) = &mut unswz_cache {
            if c.hits > 0 {
                self.metrics.unswizzle_cache_hits.add(c.hits);
                c.hits = 0;
            }
        }
        Ok(DecodedRun {
            span_va: meta.va + span_lo as u64,
            image: RunImage::Scratch {
                buf: scratch,
                reused,
            },
            unresolved_inserts,
            clear_ranges,
        })
    }

    /// As [`Session::resolve_mip_to_va`], with a one-entry prefix cache
    /// for pointer-dense diff application.
    fn resolve_mip_cached(
        &self,
        mip_str: &str,
        cache: &mut Option<UnswizzleCache>,
    ) -> Result<ResolvedPtr, CoreError> {
        if mip_str.is_empty() {
            return Ok(ResolvedPtr::Null);
        }
        let (prefix, offset) = split_mip_offset(mip_str);
        if let Some(c) = cache {
            if c.prefix == prefix {
                c.hits += 1;
                if let Some(run) = &c.run {
                    if offset >= run.prim_off && offset < run.prim_off + u64::from(run.count) {
                        let k = (offset - run.prim_off) as u32;
                        return Ok(ResolvedPtr::Local(
                            c.block_va + u64::from(run.local_off + k * run.stride),
                        ));
                    }
                }
                return Ok(match c.flat.prim_at(offset) {
                    Some(p) => ResolvedPtr::Local(c.block_va + u64::from(p.local_off)),
                    None => ResolvedPtr::Unresolved(mip_str.parse().map_err(CoreError::Wire)?),
                });
            }
        }
        if let Some(c) = cache {
            if c.hits > 0 {
                self.metrics.unswizzle_cache_hits.add(c.hits);
            }
        }
        self.metrics.unswizzle_cache_misses.inc();
        let mip: Mip = mip_str.parse().map_err(CoreError::Wire)?;
        let Some(seg_id) = self.heap.segment_id(&mip.segment) else {
            return Ok(ResolvedPtr::Unresolved(mip));
        };
        let seg = self.heap.segment(seg_id);
        let meta = match &mip.block {
            BlockRef::Serial(n) => seg.block_by_serial(*n),
            BlockRef::Name(n) => seg.block_by_name(n),
        };
        let Ok(meta) = meta else {
            return Ok(ResolvedPtr::Unresolved(mip));
        };
        *cache = Some(UnswizzleCache {
            prefix: prefix.to_string(),
            block_va: meta.va,
            flat: meta.flat.clone(),
            run: meta.flat.single_run(),
            hits: 0,
        });
        match meta.flat.prim_at(mip.offset) {
            Some(p) => Ok(ResolvedPtr::Local(meta.va + u64::from(p.local_off))),
            None => Ok(ResolvedPtr::Unresolved(mip)),
        }
    }
}

/// Resolution outcome for a wire MIP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ResolvedPtr {
    Null,
    Local(u64),
    Unresolved(Mip),
}

/// One-entry swizzle cache: consecutive pointers overwhelmingly target
/// the same block ("blocks modified together in the past tend to be
/// modified together in the future", §3.3), so the block metadata and the
/// MIP prefix are reused across a run of pointers.
struct SwizzleCache {
    block_lo: u64,
    block_hi: u64,
    /// `segment#block` prefix, ready for the offset suffix.
    prefix: String,
    /// Arithmetic lookup when the target block is one homogeneous run.
    run: Option<iw_types::flat::RunRef>,
    /// Hits batched here and flushed to the metrics counter per
    /// translation call, keeping atomics off the per-pointer path.
    hits: u64,
}

/// One-entry unswizzle cache: repeated MIP prefixes resolve to the same
/// block without re-searching the metadata trees.
struct UnswizzleCache {
    prefix: String,
    block_va: u64,
    flat: std::sync::Arc<iw_types::flat::FlatLayout>,
    run: Option<iw_types::flat::RunRef>,
    /// Hits batched here and flushed to the metrics counter per applied
    /// diff, keeping atomics off the per-pointer path.
    hits: u64,
}

/// Splits a MIP string into its `segment#block` prefix and numeric offset
/// (0 when omitted).
fn split_mip_offset(s: &str) -> (&str, u64) {
    if let Some(pos) = s.rfind('#') {
        let tail = &s[pos + 1..];
        if !tail.is_empty() && tail.bytes().all(|b| b.is_ascii_digit()) && s[..pos].contains('#') {
            if let Ok(off) = tail.parse::<u64>() {
                return (&s[..pos], off);
            }
        }
    }
    (s, 0)
}

fn push_u64(s: &mut String, mut v: u64) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    s.push_str(std::str::from_utf8(&buf[i..]).expect("digits are ASCII"));
}

/// SplitMix64 step: cheap deterministic jitter for backoff schedules
/// (no OS entropy, so contention tests stay reproducible).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unexpected(reply: Reply) -> CoreError {
    match reply {
        Reply::Error { message } => CoreError::Server(message),
        other => CoreError::Server(format!("unexpected reply: {other:?}")),
    }
}

/// Builds a [`Connector`] that dials `addr` over TCP.
fn tcp_connector(addr: std::net::SocketAddr) -> Connector {
    Box::new(move || {
        let t = iw_proto::TcpTransport::connect(addr)
            .map_err(|e| CoreError::Proto(iw_proto::ProtoError::Channel(e.to_string())))?;
        Ok(Box::new(t) as Box<dyn Transport>)
    })
}

/// Builds an unconnected [`ReadReplica`] with its lag gauge resolved.
fn new_replica(
    label: String,
    connector: Connector,
    from_advert: bool,
    registry: &Arc<Registry>,
) -> ReadReplica {
    let lag = registry.gauge(&format!("cluster.replica_lag.{label}"));
    ReadReplica {
        label,
        connector,
        transport: None,
        client_id: 0,
        known: HashMap::new(),
        from_advert,
        dead: false,
        lag,
    }
}

/// A merged run produced by one translation job. The payload is a
/// zero-copy slice of the job's single wire buffer (or the whole buffer
/// for whole-block translation), so finalizing a run never copies.
struct RunAcc {
    start: u64,
    count: u64,
    data: Bytes,
}

/// Estimated wire bytes for one whole value of the layout, walked on the
/// compact node tree (O(tree), not O(primitives)). Pointers swizzle into
/// length-prefixed MIP strings — segment and block names are short, so
/// 48 bytes covers typical swizzled pointers; strings gain a length
/// prefix over their local capacity.
fn wire_upper(nodes: &[FlatNode], arch: &MachineArch) -> u64 {
    nodes
        .iter()
        .map(|n| match n {
            FlatNode::Run { kind, count, .. } => {
                let per = match kind {
                    PrimKind::Ptr => 48,
                    PrimKind::Str { cap } => u64::from(*cap) + 4,
                    kind => u64::from(kind.local_size(arch)),
                };
                u64::from(*count) * per
            }
            FlatNode::Repeat { count, body, .. } => u64::from(*count) * wire_upper(body, arch),
        })
        .sum()
}

/// Finalizes accumulated runs into wire [`DiffRun`]s.
fn finish_runs(accs: Vec<RunAcc>) -> Vec<DiffRun> {
    accs.into_iter()
        .map(|a| DiffRun {
            start: a.start,
            count: a.count,
            data: a.data,
        })
        .collect()
}

/// Bulk-encodes `count` fixed-size primitives (each `size` bytes, spaced
/// `stride` apart in `src`) to big-endian wire format. Packed big-endian
/// runs are a single memcpy; everything else is a tight loop.
fn encode_fixed_run(
    w: &mut WireWriter,
    src: &[u8],
    size: usize,
    stride: usize,
    count: usize,
    little: bool,
) {
    if count == 0 {
        return;
    }
    if stride == size && (!little || size == 1) {
        w.put_bytes(&src[..count * size]);
        return;
    }
    if !little {
        for k in 0..count {
            w.put_bytes(&src[k * stride..k * stride + size]);
        }
        return;
    }
    // Little-endian packed runs: size-specialized bswap loops.
    if stride == size {
        let data = &src[..count * size];
        match size {
            2 => {
                for c in data.chunks_exact(2) {
                    let v = u16::from_le_bytes(c.try_into().expect("2B"));
                    w.put_u16(v);
                }
                return;
            }
            4 => {
                for c in data.chunks_exact(4) {
                    let v = u32::from_le_bytes(c.try_into().expect("4B"));
                    w.put_u32(v);
                }
                return;
            }
            8 => {
                for c in data.chunks_exact(8) {
                    let v = u64::from_le_bytes(c.try_into().expect("8B"));
                    w.put_u64(v);
                }
                return;
            }
            _ => {}
        }
    }
    // Strided or odd-sized: reverse each element through a stack buffer.
    let mut buf = [0u8; 8];
    for k in 0..count {
        let e = &src[k * stride..k * stride + size];
        for i in 0..size {
            buf[i] = e[size - 1 - i];
        }
        w.put_bytes(&buf[..size]);
    }
}

/// Bulk-decodes `count` fixed-size primitives from big-endian wire format
/// into `dst` (the inverse of [`encode_fixed_run`]).
fn decode_fixed_run(
    r: &mut WireReader,
    dst: &mut [u8],
    size: usize,
    stride: usize,
    count: usize,
    little: bool,
) -> Result<(), iw_wire::codec::WireError> {
    if count == 0 {
        return Ok(());
    }
    if stride == size && (!little || size == 1) {
        return r.copy_into(&mut dst[..count * size]);
    }
    if little && stride == size && matches!(size, 2 | 4 | 8) {
        let d = &mut dst[..count * size];
        r.copy_into(d)?;
        match size {
            2 => {
                for c in d.chunks_exact_mut(2) {
                    c.swap(0, 1);
                }
            }
            4 => {
                for c in d.chunks_exact_mut(4) {
                    let v = u32::from_be_bytes((&*c).try_into().expect("4B"));
                    c.copy_from_slice(&v.to_le_bytes());
                }
            }
            _ => {
                for c in d.chunks_exact_mut(8) {
                    let v = u64::from_be_bytes((&*c).try_into().expect("8B"));
                    c.copy_from_slice(&v.to_le_bytes());
                }
            }
        }
        return Ok(());
    }
    let mut buf = [0u8; 8];
    for k in 0..count {
        r.copy_into(&mut buf[..size])?;
        let d = &mut dst[k * stride..k * stride + size];
        if little && size > 1 {
            for i in 0..size {
                d[i] = buf[size - 1 - i];
            }
        } else {
            d.copy_from_slice(&buf[..size]);
        }
    }
    Ok(())
}

/// Reads a local-format pointer word (a simulated VA).
pub(crate) fn read_va(window: &[u8], arch: &MachineArch) -> u64 {
    let little = arch.endian.is_little();
    match window.len() {
        4 => {
            let b: [u8; 4] = window.try_into().expect("4-byte window");
            if little {
                u32::from_le_bytes(b) as u64
            } else {
                u32::from_be_bytes(b) as u64
            }
        }
        8 => {
            let b: [u8; 8] = window.try_into().expect("8-byte window");
            if little {
                u64::from_le_bytes(b)
            } else {
                u64::from_be_bytes(b)
            }
        }
        n => unreachable!("pointer windows are 4 or 8 bytes, not {n}"),
    }
}

/// Writes a local-format pointer word.
pub(crate) fn write_va(window: &mut [u8], arch: &MachineArch, va: u64) {
    let little = arch.endian.is_little();
    match window.len() {
        4 => {
            let v = va as u32;
            window.copy_from_slice(&if little {
                v.to_le_bytes()
            } else {
                v.to_be_bytes()
            });
        }
        8 => {
            window.copy_from_slice(&if little {
                va.to_le_bytes()
            } else {
                va.to_be_bytes()
            });
        }
        n => unreachable!("pointer windows are 4 or 8 bytes, not {n}"),
    }
}
