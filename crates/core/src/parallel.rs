//! Intra-client parallelism for the translation hot path.
//!
//! Block translation through the type descriptors is embarrassingly
//! parallel — every block (and every decoded run) touches disjoint local
//! memory and only *reads* shared session state — so collect and apply
//! fan work out over a scoped worker pool and merge the results back in
//! serial order. The wire bytes produced are **byte-identical** to a
//! single-threaded run: FIFO replication, server-side diff caching, and
//! the chaos oracle all compare diffs bit for bit.
//!
//! The pool is sized by [`std::thread::available_parallelism`], overridden
//! per-session via [`crate::SessionOptions::translate_threads`] or the
//! `IW_TRANSLATE_THREADS` environment variable; `1` reproduces the
//! pre-parallel serial behavior exactly (same code path, no threads
//! spawned).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Work below this many bytes is translated inline: spawning scoped
/// threads costs tens of microseconds, which swamps small diffs (the
/// common case for lock-heavy, fine-grained workloads).
pub(crate) const PAR_MIN_BYTES: u64 = 64 * 1024;

/// Most buffers the scratch pool will hold on to; excess buffers are
/// simply dropped.
const POOL_MAX_BUFS: usize = 64;

/// Largest buffer capacity the pool retains, so one giant apply does not
/// pin its peak footprint for the session's lifetime.
const POOL_MAX_CAP: usize = 4 << 20;

/// Resolves the effective translation thread count for a session:
/// an explicit option wins, then `IW_TRANSLATE_THREADS` (positive
/// integer), then [`std::thread::available_parallelism`].
pub(crate) fn resolve_threads(opt: Option<usize>) -> usize {
    if let Some(n) = opt {
        return n.max(1);
    }
    if let Ok(v) = std::env::var("IW_TRANSLATE_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `f` over `items`, returning results in item order.
///
/// With `threads <= 1` (or fewer than two items) this is a plain serial
/// loop. Otherwise `min(threads, items)` scoped workers pull indices from
/// a shared atomic and the per-worker results are stitched back into
/// input order, so the output is independent of scheduling.
pub(crate) fn par_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let workers = threads.min(items.len());
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut out: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        out.push((i, f(i, &items[i])));
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("translation worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        .map(|o| o.expect("every index dispatched exactly once"))
        .collect()
}

/// A small free-list of scratch buffers shared by the apply-side decode
/// workers, so steady-state diff application stops allocating per run.
/// Buffers come back cleared; capacity is retained up to [`POOL_MAX_CAP`].
#[derive(Debug, Default)]
pub(crate) struct BufferPool {
    bufs: Mutex<Vec<Vec<u8>>>,
}

impl BufferPool {
    /// Takes a cleared buffer with at least `cap` capacity, preferring a
    /// pooled one. Returns the buffer and whether it was reused.
    pub fn get(&self, cap: usize) -> (Vec<u8>, bool) {
        let mut bufs = self.bufs.lock().expect("buffer pool poisoned");
        // Last-in first-out keeps the hottest buffer (and its pages) in
        // use; any pooled buffer is acceptable — `Vec` grows on demand.
        match bufs.pop() {
            Some(mut b) => {
                drop(bufs);
                b.clear();
                b.reserve(cap);
                (b, true)
            }
            None => (Vec::with_capacity(cap), false),
        }
    }

    /// Takes a buffer with exactly `len` initialized bytes of unspecified
    /// content, for callers that overwrite every byte before reading any.
    /// A reused pooled buffer keeps its old contents where it can, paying
    /// neither the zero-fill of a fresh allocation nor a pre-fill copy.
    pub fn get_filled(&self, len: usize) -> (Vec<u8>, bool) {
        let mut bufs = self.bufs.lock().expect("buffer pool poisoned");
        match bufs.pop() {
            Some(mut b) => {
                drop(bufs);
                // Shrinking truncates for free; growing zero-fills only
                // the new tail.
                b.resize(len, 0);
                (b, true)
            }
            None => (vec![0u8; len], false),
        }
    }

    /// Returns a buffer to the pool (dropped when the pool is full or the
    /// buffer is oversized). Contents are left in place — [`Self::get`]
    /// clears on the way out and [`Self::get_filled`] overwrites.
    pub fn put(&self, buf: Vec<u8>) {
        if buf.capacity() == 0 || buf.capacity() > POOL_MAX_CAP {
            return;
        }
        let mut bufs = self.bufs.lock().expect("buffer pool poisoned");
        if bufs.len() < POOL_MAX_BUFS {
            bufs.push(buf);
        }
    }

    /// Buffers currently pooled (for the gauge).
    pub fn held(&self) -> usize {
        self.bufs.lock().expect("buffer pool poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        for threads in [1usize, 2, 4, 9] {
            let out = par_map(threads, &items, |i, &x| {
                assert_eq!(i as u64, x);
                x * 3
            });
            assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(8, &empty, |_, x| *x).is_empty());
        assert_eq!(par_map(8, &[7u32], |_, x| *x + 1), vec![8]);
    }

    #[test]
    fn buffer_pool_reuses() {
        let pool = BufferPool::default();
        let (b, reused) = pool.get(100);
        assert!(!reused);
        pool.put(b);
        assert_eq!(pool.held(), 1);
        let (b, reused) = pool.get(10);
        assert!(reused);
        assert!(b.is_empty());
        assert_eq!(pool.held(), 0);
    }

    #[test]
    fn oversized_buffers_not_pooled() {
        let pool = BufferPool::default();
        pool.put(Vec::with_capacity(POOL_MAX_CAP + 1));
        pool.put(Vec::new());
        assert_eq!(pool.held(), 0);
    }

    #[test]
    fn env_override_must_be_positive() {
        // Explicit option always wins and is clamped to >= 1.
        assert_eq!(resolve_threads(Some(0)), 1);
        assert_eq!(resolve_threads(Some(3)), 3);
        assert!(resolve_threads(None) >= 1);
    }
}
