//! Word-by-word twin comparison and run splicing.
//!
//! "When it finds a modified page, [the diffing routine] performs a
//! word-by-word comparison of the current version of the page and the
//! page's twin, identifying the first (`change_begin`) and last
//! (`change_end`) words of a contiguous run of modified words." (§3.1)
//!
//! "Diff run splicing: in a diffing operation, if one or two adjacent
//! words are unchanged while both of their neighboring words are changed,
//! we treat the entire sequence as changed in order to avoid starting a
//! new run length encoding section in the diff." (§3.3)
//!
//! The comparison is kept separate from wire translation so the
//! granularity experiment (paper Figure 5) can time "word diffing" and
//! "translation" independently.

/// Maximum number of unchanged words spliced into a surrounding run.
pub const SPLICE_GAP_WORDS: usize = 2;

/// Compares `twin` and `current` (same length) word by word and returns
/// the modified byte runs `[(begin, end)]`, with run splicing applied when
/// `splice` is set.
///
/// `word` is the machine word size in bytes. A trailing partial word is
/// compared as a unit.
///
/// # Panics
///
/// Panics if the slices differ in length or `word` is zero.
pub fn find_byte_runs(
    twin: &[u8],
    current: &[u8],
    word: usize,
    splice: bool,
) -> Vec<(usize, usize)> {
    assert_eq!(twin.len(), current.len(), "twin and page must be same size");
    assert!(word > 0, "word size must be non-zero");
    let n = twin.len();
    let mut runs: Vec<(usize, usize)> = Vec::new();
    let mut i = 0usize;
    while i < n {
        let end = (i + word).min(n);
        if twin[i..end] != current[i..end] {
            let begin = i;
            let mut last_changed_end = end;
            i = end;
            let mut gap = 0usize;
            while i < n {
                let wend = (i + word).min(n);
                if twin[i..wend] != current[i..wend] {
                    last_changed_end = wend;
                    gap = 0;
                } else {
                    gap += 1;
                    if !splice || gap > SPLICE_GAP_WORDS {
                        break;
                    }
                }
                i = wend;
            }
            runs.push((begin, last_changed_end));
            // Skip the unchanged gap we just scanned past.
            i = last_changed_end.max(i);
        } else {
            i = end;
        }
    }
    runs
}

/// Merges byte runs that are adjacent or overlapping (used when combining
/// runs that meet at page boundaries).
pub fn merge_adjacent(mut runs: Vec<(usize, usize)>) -> Vec<(usize, usize)> {
    runs.sort_unstable();
    let mut out: Vec<(usize, usize)> = Vec::with_capacity(runs.len());
    for (b, e) in runs {
        match out.last_mut() {
            Some((_, pe)) if *pe >= b => *pe = (*pe).max(e),
            _ => out.push((b, e)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(n: usize) -> Vec<u8> {
        vec![0u8; n]
    }

    #[test]
    fn identical_pages_have_no_runs() {
        let a = page(64);
        assert!(find_byte_runs(&a, &a, 4, true).is_empty());
    }

    #[test]
    fn single_word_change() {
        let twin = page(64);
        let mut cur = page(64);
        cur[8] = 1;
        assert_eq!(find_byte_runs(&twin, &cur, 4, true), vec![(8, 12)]);
    }

    #[test]
    fn contiguous_words_form_one_run() {
        let twin = page(64);
        let mut cur = page(64);
        cur[8..20].fill(9);
        assert_eq!(find_byte_runs(&twin, &cur, 4, true), vec![(8, 20)]);
    }

    #[test]
    fn splicing_bridges_small_gaps() {
        let twin = page(64);
        let mut cur = page(64);
        cur[0..4].fill(1); // word 0 changed
        cur[12..16].fill(1); // word 3 changed (gap of 2 words)
        assert_eq!(find_byte_runs(&twin, &cur, 4, true), vec![(0, 16)]);
        // Without splicing: two runs.
        assert_eq!(
            find_byte_runs(&twin, &cur, 4, false),
            vec![(0, 4), (12, 16)]
        );
    }

    #[test]
    fn gap_of_three_words_breaks_run() {
        let twin = page(64);
        let mut cur = page(64);
        cur[0..4].fill(1); // word 0
        cur[16..20].fill(1); // word 4 (gap of 3)
        assert_eq!(find_byte_runs(&twin, &cur, 4, true), vec![(0, 4), (16, 20)]);
    }

    #[test]
    fn alternating_words_splice_into_one_run() {
        // The paper's double-word case: every other word changed.
        let twin = page(64);
        let mut cur = page(64);
        for w in (0..16).step_by(2) {
            cur[w * 4..w * 4 + 4].fill(7);
        }
        let runs = find_byte_runs(&twin, &cur, 4, true);
        assert_eq!(runs, vec![(0, 60)], "ratio-2 pattern must splice");
        let unspliced = find_byte_runs(&twin, &cur, 4, false);
        assert_eq!(unspliced.len(), 8);
    }

    #[test]
    fn eight_byte_words() {
        let twin = page(64);
        let mut cur = page(64);
        cur[9] = 1;
        assert_eq!(find_byte_runs(&twin, &cur, 8, true), vec![(8, 16)]);
    }

    #[test]
    fn trailing_partial_word() {
        let twin = page(10);
        let mut cur = page(10);
        cur[9] = 5;
        assert_eq!(find_byte_runs(&twin, &cur, 4, true), vec![(8, 10)]);
    }

    #[test]
    fn change_at_page_start_and_end() {
        let twin = page(32);
        let mut cur = page(32);
        cur[0] = 1;
        cur[31] = 1;
        assert_eq!(find_byte_runs(&twin, &cur, 4, true), vec![(0, 4), (28, 32)]);
    }

    #[test]
    fn whole_page_changed() {
        let twin = page(64);
        let cur = vec![1u8; 64];
        assert_eq!(find_byte_runs(&twin, &cur, 4, true), vec![(0, 64)]);
    }

    #[test]
    fn merge_adjacent_runs() {
        assert_eq!(
            merge_adjacent(vec![(0, 4), (4, 8), (12, 16), (14, 20)]),
            vec![(0, 8), (12, 20)]
        );
        assert_eq!(merge_adjacent(vec![]), vec![]);
    }

    #[test]
    #[should_panic(expected = "same size")]
    fn mismatched_lengths_panic() {
        let _ = find_byte_runs(&[0; 4], &[0; 8], 4, true);
    }
}
