//! Word-by-word twin comparison and run splicing.
//!
//! "When it finds a modified page, [the diffing routine] performs a
//! word-by-word comparison of the current version of the page and the
//! page's twin, identifying the first (`change_begin`) and last
//! (`change_end`) words of a contiguous run of modified words." (§3.1)
//!
//! "Diff run splicing: in a diffing operation, if one or two adjacent
//! words are unchanged while both of their neighboring words are changed,
//! we treat the entire sequence as changed in order to avoid starting a
//! new run length encoding section in the diff." (§3.3)
//!
//! The comparison is kept separate from wire translation so the
//! granularity experiment (paper Figure 5) can time "word diffing" and
//! "translation" independently.

/// Maximum number of unchanged words spliced into a surrounding run.
pub const SPLICE_GAP_WORDS: usize = 2;

/// Bytes compared at a time by the coarse scan: a multiple of both
/// supported word sizes (4 and 8), so skipping an equal chunk skips only
/// whole, unchanged words and word alignment is preserved.
const CHUNK_BYTES: usize = 128;

/// Compares `twin` and `current` (same length) word by word and returns
/// the modified byte runs `[(begin, end)]`, with run splicing applied when
/// `splice` is set.
///
/// `word` is the machine word size in bytes. A trailing partial word is
/// compared as a unit.
///
/// For the common word sizes (4 and 8 bytes) the scan is chunked: equal
/// 128-byte chunks are skipped via `u128` lane compares, dropping to
/// word-boundary refinement only inside changed chunks. The output is
/// identical to [`find_byte_runs_scalar`], which is kept as the reference
/// oracle (see the property tests).
///
/// # Panics
///
/// Panics if the slices differ in length or `word` is zero.
pub fn find_byte_runs(
    twin: &[u8],
    current: &[u8],
    word: usize,
    splice: bool,
) -> Vec<(usize, usize)> {
    assert_eq!(twin.len(), current.len(), "twin and page must be same size");
    assert!(word > 0, "word size must be non-zero");
    if word == 4 || word == 8 {
        find_byte_runs_chunked(twin, current, word, splice)
    } else {
        find_byte_runs_scalar(twin, current, word, splice)
    }
}

/// `true` when the word `[i, end)` differs between the two buffers.
/// Full 4/8-byte words compare as native integers (one load + compare
/// instead of a variable-length `memcmp`); a trailing partial word falls
/// back to a slice compare.
#[inline]
fn word_differs(twin: &[u8], current: &[u8], i: usize, end: usize) -> bool {
    match end - i {
        8 => {
            u64::from_ne_bytes(twin[i..end].try_into().unwrap())
                != u64::from_ne_bytes(current[i..end].try_into().unwrap())
        }
        4 => {
            u32::from_ne_bytes(twin[i..end].try_into().unwrap())
                != u32::from_ne_bytes(current[i..end].try_into().unwrap())
        }
        _ => twin[i..end] != current[i..end],
    }
}

/// `true` when the [`CHUNK_BYTES`] chunk at `i` is byte-identical,
/// compared as eight `u128` lanes.
#[inline]
fn chunk_equal(twin: &[u8], current: &[u8], i: usize) -> bool {
    let a = &twin[i..i + CHUNK_BYTES];
    let b = &current[i..i + CHUNK_BYTES];
    let mut off = 0;
    while off < CHUNK_BYTES {
        let x = u128::from_ne_bytes(a[off..off + 16].try_into().unwrap());
        let y = u128::from_ne_bytes(b[off..off + 16].try_into().unwrap());
        if x != y {
            return false;
        }
        off += 16;
    }
    true
}

/// The chunked scanner behind [`find_byte_runs`]: structurally the scalar
/// loop, with equal chunks skipped coarsely between runs and word compares
/// done as integer loads. `word` must be 4 or 8.
fn find_byte_runs_chunked(
    twin: &[u8],
    current: &[u8],
    word: usize,
    splice: bool,
) -> Vec<(usize, usize)> {
    let n = twin.len();
    let mut runs: Vec<(usize, usize)> = Vec::new();
    let mut i = 0usize;
    while i < n {
        // Coarse skip. `i` is a multiple of `word` whenever it is not past
        // the trailing partial word, and CHUNK_BYTES is a multiple of
        // `word`, so this skips only whole, unchanged words.
        while i + CHUNK_BYTES <= n && chunk_equal(twin, current, i) {
            i += CHUNK_BYTES;
        }
        if i >= n {
            break;
        }
        let end = (i + word).min(n);
        if word_differs(twin, current, i, end) {
            let begin = i;
            let mut last_changed_end = end;
            i = end;
            let mut gap = 0usize;
            while i < n {
                let wend = (i + word).min(n);
                if word_differs(twin, current, i, wend) {
                    last_changed_end = wend;
                    gap = 0;
                } else {
                    gap += 1;
                    if !splice || gap > SPLICE_GAP_WORDS {
                        break;
                    }
                }
                i = wend;
            }
            runs.push((begin, last_changed_end));
            i = last_changed_end.max(i);
        } else {
            i = end;
        }
    }
    runs
}

/// The original word-by-word scalar scan, kept as the reference oracle the
/// chunked implementation is verified against.
///
/// # Panics
///
/// Panics if the slices differ in length or `word` is zero.
pub fn find_byte_runs_scalar(
    twin: &[u8],
    current: &[u8],
    word: usize,
    splice: bool,
) -> Vec<(usize, usize)> {
    assert_eq!(twin.len(), current.len(), "twin and page must be same size");
    assert!(word > 0, "word size must be non-zero");
    let n = twin.len();
    let mut runs: Vec<(usize, usize)> = Vec::new();
    let mut i = 0usize;
    while i < n {
        let end = (i + word).min(n);
        if twin[i..end] != current[i..end] {
            let begin = i;
            let mut last_changed_end = end;
            i = end;
            let mut gap = 0usize;
            while i < n {
                let wend = (i + word).min(n);
                if twin[i..wend] != current[i..wend] {
                    last_changed_end = wend;
                    gap = 0;
                } else {
                    gap += 1;
                    if !splice || gap > SPLICE_GAP_WORDS {
                        break;
                    }
                }
                i = wend;
            }
            runs.push((begin, last_changed_end));
            // Skip the unchanged gap we just scanned past.
            i = last_changed_end.max(i);
        } else {
            i = end;
        }
    }
    runs
}

/// Merges byte runs that are adjacent or overlapping (used when combining
/// runs that meet at page boundaries).
pub fn merge_adjacent(mut runs: Vec<(usize, usize)>) -> Vec<(usize, usize)> {
    runs.sort_unstable();
    let mut out: Vec<(usize, usize)> = Vec::with_capacity(runs.len());
    for (b, e) in runs {
        match out.last_mut() {
            Some((_, pe)) if *pe >= b => *pe = (*pe).max(e),
            _ => out.push((b, e)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(n: usize) -> Vec<u8> {
        vec![0u8; n]
    }

    #[test]
    fn identical_pages_have_no_runs() {
        let a = page(64);
        assert!(find_byte_runs(&a, &a, 4, true).is_empty());
    }

    #[test]
    fn single_word_change() {
        let twin = page(64);
        let mut cur = page(64);
        cur[8] = 1;
        assert_eq!(find_byte_runs(&twin, &cur, 4, true), vec![(8, 12)]);
    }

    #[test]
    fn contiguous_words_form_one_run() {
        let twin = page(64);
        let mut cur = page(64);
        cur[8..20].fill(9);
        assert_eq!(find_byte_runs(&twin, &cur, 4, true), vec![(8, 20)]);
    }

    #[test]
    fn splicing_bridges_small_gaps() {
        let twin = page(64);
        let mut cur = page(64);
        cur[0..4].fill(1); // word 0 changed
        cur[12..16].fill(1); // word 3 changed (gap of 2 words)
        assert_eq!(find_byte_runs(&twin, &cur, 4, true), vec![(0, 16)]);
        // Without splicing: two runs.
        assert_eq!(
            find_byte_runs(&twin, &cur, 4, false),
            vec![(0, 4), (12, 16)]
        );
    }

    #[test]
    fn gap_of_three_words_breaks_run() {
        let twin = page(64);
        let mut cur = page(64);
        cur[0..4].fill(1); // word 0
        cur[16..20].fill(1); // word 4 (gap of 3)
        assert_eq!(find_byte_runs(&twin, &cur, 4, true), vec![(0, 4), (16, 20)]);
    }

    #[test]
    fn alternating_words_splice_into_one_run() {
        // The paper's double-word case: every other word changed.
        let twin = page(64);
        let mut cur = page(64);
        for w in (0..16).step_by(2) {
            cur[w * 4..w * 4 + 4].fill(7);
        }
        let runs = find_byte_runs(&twin, &cur, 4, true);
        assert_eq!(runs, vec![(0, 60)], "ratio-2 pattern must splice");
        let unspliced = find_byte_runs(&twin, &cur, 4, false);
        assert_eq!(unspliced.len(), 8);
    }

    #[test]
    fn eight_byte_words() {
        let twin = page(64);
        let mut cur = page(64);
        cur[9] = 1;
        assert_eq!(find_byte_runs(&twin, &cur, 8, true), vec![(8, 16)]);
    }

    #[test]
    fn trailing_partial_word() {
        let twin = page(10);
        let mut cur = page(10);
        cur[9] = 5;
        assert_eq!(find_byte_runs(&twin, &cur, 4, true), vec![(8, 10)]);
    }

    #[test]
    fn change_at_page_start_and_end() {
        let twin = page(32);
        let mut cur = page(32);
        cur[0] = 1;
        cur[31] = 1;
        assert_eq!(find_byte_runs(&twin, &cur, 4, true), vec![(0, 4), (28, 32)]);
    }

    #[test]
    fn whole_page_changed() {
        let twin = page(64);
        let cur = vec![1u8; 64];
        assert_eq!(find_byte_runs(&twin, &cur, 4, true), vec![(0, 64)]);
    }

    #[test]
    fn merge_adjacent_runs() {
        assert_eq!(
            merge_adjacent(vec![(0, 4), (4, 8), (12, 16), (14, 20)]),
            vec![(0, 8), (12, 20)]
        );
        assert_eq!(merge_adjacent(vec![]), vec![]);
    }

    #[test]
    #[should_panic(expected = "same size")]
    fn mismatched_lengths_panic() {
        let _ = find_byte_runs(&[0; 4], &[0; 8], 4, true);
    }

    /// Deterministic cross-check of the chunked scanner against the scalar
    /// oracle on patterns chosen around chunk boundaries. (Randomized
    /// equivalence lives in the `prop_diffing` integration test.)
    #[test]
    fn chunked_matches_scalar_on_boundary_patterns() {
        let n = 4096;
        let twin = page(n);
        let patterns: Vec<Vec<usize>> = vec![
            vec![],                           // untouched page
            vec![0],                          // first byte
            vec![n - 1],                      // last byte
            vec![127],                        // last byte of chunk 0
            vec![128],                        // first byte of chunk 1
            vec![127, 128],                   // straddling a chunk seam
            vec![120, 132],                   // spliceable gap across seam
            (0..n).step_by(8).collect(),      // every other 4-byte word
            (0..n).collect(),                 // whole page
            vec![256, 512, 1024, 2048, 4095], // sparse chunks
        ];
        for word in [4usize, 8] {
            for splice in [true, false] {
                for pat in &patterns {
                    let mut cur = page(n);
                    for &b in pat {
                        cur[b] = cur[b].wrapping_add(1);
                    }
                    assert_eq!(
                        find_byte_runs(&twin, &cur, word, splice),
                        find_byte_runs_scalar(&twin, &cur, word, splice),
                        "word={word} splice={splice} pat={pat:?}"
                    );
                }
            }
        }
    }

    /// Buffers shorter than one chunk, including partial trailing words,
    /// go through the same code path and must agree with the oracle.
    #[test]
    fn chunked_matches_scalar_on_short_buffers() {
        for n in [1usize, 3, 4, 7, 8, 9, 15, 16, 17, 127, 129, 130] {
            let twin = page(n);
            for changed in 0..n {
                let mut cur = page(n);
                cur[changed] = 9;
                for word in [4usize, 8] {
                    assert_eq!(
                        find_byte_runs(&twin, &cur, word, true),
                        find_byte_runs_scalar(&twin, &cur, word, true),
                        "n={n} changed={changed} word={word}"
                    );
                }
            }
        }
    }
}
