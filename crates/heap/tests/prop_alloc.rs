//! Property tests for the heap allocator: random allocate/free interleavings
//! must never produce overlapping blocks, dangling metadata, or unresolvable
//! addresses.

use iw_heap::{Heap, HeapError};
use iw_types::arch::MachineArch;
use iw_types::desc::TypeDesc;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Alloc { count: u32, ty_pick: u8 },
    Free { victim: usize },
    Write { victim: usize, off_frac: f64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (1u32..200, 0u8..4).prop_map(|(count, ty_pick)| Op::Alloc { count, ty_pick }),
        1 => (0usize..64).prop_map(|victim| Op::Free { victim }),
        2 => ((0usize..64), 0.0f64..1.0).prop_map(|(victim, off_frac)| Op::Write {
            victim,
            off_frac
        }),
    ]
}

fn ty_for(pick: u8) -> TypeDesc {
    match pick {
        0 => TypeDesc::char8(),
        1 => TypeDesc::int32(),
        2 => TypeDesc::float64(),
        _ => TypeDesc::structure(
            "s",
            vec![("i", TypeDesc::int32()), ("d", TypeDesc::float64())],
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn allocator_invariants_hold(ops in prop::collection::vec(arb_op(), 1..60)) {
        let mut h = Heap::with_page_size(MachineArch::x86(), 256);
        let seg = h.create_segment("p/t").unwrap();
        let mut live: Vec<u32> = Vec::new();
        let mut next_serial = 0u32;

        for op in ops {
            match op {
                Op::Alloc { count, ty_pick } => {
                    let ty = ty_for(ty_pick);
                    let serial = next_serial;
                    next_serial += 1;
                    let va = h.alloc_block(seg, serial, None, &ty, count).unwrap();
                    // Fresh blocks are zeroed even when reusing freed space.
                    let size = h.segment(seg).block_by_serial(serial).unwrap().size();
                    prop_assert!(h
                        .read_bytes(va, size as usize)
                        .unwrap()
                        .iter()
                        .all(|&b| b == 0));
                    live.push(serial);
                }
                Op::Free { victim } => {
                    if live.is_empty() { continue; }
                    let serial = live.remove(victim % live.len());
                    h.free_block(seg, serial).unwrap();
                    prop_assert!(matches!(
                        h.free_block(seg, serial),
                        Err(HeapError::UnknownBlockSerial(_))
                    ));
                }
                Op::Write { victim, off_frac } => {
                    if live.is_empty() { continue; }
                    let serial = live[victim % live.len()];
                    let (va, size) = {
                        let b = h.segment(seg).block_by_serial(serial).unwrap();
                        (b.va, b.size())
                    };
                    let off = ((size.saturating_sub(1)) as f64 * off_frac) as u64;
                    h.write_bytes(va + off, &[0xAB]).unwrap();
                    prop_assert_eq!(h.read_bytes(va + off, 1).unwrap(), &[0xAB]);
                }
            }

            // Invariant: live blocks never overlap, sorted by address.
            let mut spans: Vec<(u64, u64)> = live
                .iter()
                .map(|&s| {
                    let b = h.segment(seg).block_by_serial(s).unwrap();
                    (b.va, b.end())
                })
                .collect();
            spans.sort_unstable();
            for w in spans.windows(2) {
                prop_assert!(w[0].1 <= w[1].0, "blocks overlap: {:?}", w);
            }

            // Invariant: interior addresses resolve to the right block.
            for &s in &live {
                let b = h.segment(seg).block_by_serial(s).unwrap();
                let (va, end) = (b.va, b.end());
                let mid = va + (end - va) / 2;
                let (_, found) = h.block_at(mid).unwrap();
                prop_assert_eq!(found.serial, s);
            }

            prop_assert_eq!(h.segment(seg).block_count(), live.len());
        }
    }
}
