//! The InterWeave client heap.
//!
//! "An InterWeave client manages its own heap area, rather than relying on
//! the standard C library function `malloc()`. The InterWeave heap routines
//! manage subsegments, and maintain a variety of bookkeeping information
//! [including] a collection of balanced search trees to allow InterWeave to
//! quickly locate blocks by name, serial number, or address." (§3.1)
//!
//! Addresses here are *simulated* virtual addresses: every subsegment is
//! assigned a page-aligned base in a per-heap 64-bit address space, and
//! local-format pointer fields store these addresses (encoded per the
//! heap's architecture). Dereferencing resolves through the global
//! `subseg_addr_tree`, exactly as the paper's swizzling metadata does — the
//! bit patterns are simply owned by the library instead of the OS.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use iw_types::arch::MachineArch;
use iw_types::desc::TypeDesc;
use iw_types::flat::FlatLayout;

use crate::block::{block_type, BlockMeta};
use crate::error::HeapError;
use crate::segment::SegmentHeap;
use crate::subseg::Subsegment;

/// Identifies a cached segment within one heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SegId(pub(crate) usize);

/// Default page size (bytes), matching the paper's Linux/x86 testbed.
pub const DEFAULT_PAGE_SIZE: u32 = 4096;

/// Minimum subsegment size in pages; larger blocks get a subsegment sized
/// to fit.
pub const MIN_SUBSEG_PAGES: usize = 16;

/// Alignment of every block's start address.
pub const BLOCK_ALIGN: u32 = 16;

const VA_BASE: u64 = 0x0001_0000;

/// The client-side heap: all cached segments, their subsegments and blocks,
/// and the global address tree.
#[derive(Debug)]
pub struct Heap {
    arch: MachineArch,
    page_size: u32,
    next_va: u64,
    subsegs: Vec<Option<Subsegment>>,
    /// Which segment each subsegment belongs to (parallel to `subsegs`).
    subseg_seg: Vec<SegId>,
    /// `subseg_addr_tree`: subsegment base VA → subsegment index.
    subseg_addr_tree: BTreeMap<u64, usize>,
    segments: Vec<Option<SegmentHeap>>,
    by_name: HashMap<String, SegId>,
    /// Cache of flattened layouts keyed by (type, count).
    flat_cache: HashMap<(TypeDesc, u32), Arc<FlatLayout>>,
}

impl Heap {
    /// Creates a heap for `arch` with the default page size.
    pub fn new(arch: MachineArch) -> Self {
        Heap::with_page_size(arch, DEFAULT_PAGE_SIZE)
    }

    /// Creates a heap with an explicit page size (small pages make tests
    /// exercise page-boundary logic cheaply).
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is zero or not a multiple of 8.
    pub fn with_page_size(arch: MachineArch, page_size: u32) -> Self {
        assert!(
            page_size > 0 && page_size.is_multiple_of(8),
            "bad page size"
        );
        Heap {
            arch,
            page_size,
            next_va: VA_BASE,
            subsegs: Vec::new(),
            subseg_seg: Vec::new(),
            subseg_addr_tree: BTreeMap::new(),
            segments: Vec::new(),
            by_name: HashMap::new(),
            flat_cache: HashMap::new(),
        }
    }

    /// The architecture this heap lays data out for.
    pub fn arch(&self) -> &MachineArch {
        &self.arch
    }

    /// The page size used for twinning and protection.
    pub fn page_size(&self) -> u32 {
        self.page_size
    }

    // ------------------------------------------------------------------
    // Segments
    // ------------------------------------------------------------------

    /// Creates heap state for a newly cached segment.
    ///
    /// # Errors
    ///
    /// [`HeapError::DuplicateSegment`] when the name is already cached.
    pub fn create_segment(&mut self, name: &str) -> Result<SegId, HeapError> {
        if self.by_name.contains_key(name) {
            return Err(HeapError::DuplicateSegment(name.to_string()));
        }
        let id = SegId(self.segments.len());
        self.segments.push(Some(SegmentHeap::new(name.to_string())));
        self.by_name.insert(name.to_string(), id);
        Ok(id)
    }

    /// Looks up a cached segment by name.
    pub fn segment_id(&self, name: &str) -> Option<SegId> {
        self.by_name.get(name).copied()
    }

    /// Borrows a segment's heap state.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not refer to a live segment.
    pub fn segment(&self, id: SegId) -> &SegmentHeap {
        self.segments[id.0].as_ref().expect("segment dropped")
    }

    fn segment_mut(&mut self, id: SegId) -> &mut SegmentHeap {
        self.segments[id.0].as_mut().expect("segment dropped")
    }

    /// Mutable access to a segment's type registry (the client library
    /// registers types at `IW_malloc` time and installs server-provided
    /// descriptors during diff application).
    ///
    /// # Panics
    ///
    /// Panics if `id` does not refer to a live segment.
    pub fn segment_types_mut(&mut self, id: SegId) -> &mut crate::segment::TypeRegistry {
        &mut self.segment_mut(id).types
    }

    /// Discards all local state for a segment (un-caching it).
    pub fn remove_segment(&mut self, id: SegId) {
        if let Some(seg) = self.segments[id.0].take() {
            self.by_name.remove(&seg.name);
            for idx in seg.subsegs {
                if let Some(ss) = self.subsegs[idx].take() {
                    self.subseg_addr_tree.remove(&ss.base());
                }
            }
        }
    }

    /// Names of all cached segments.
    pub fn segment_names(&self) -> impl Iterator<Item = &str> {
        self.by_name.keys().map(String::as_str)
    }

    // ------------------------------------------------------------------
    // Subsegments
    // ------------------------------------------------------------------

    /// Borrows a subsegment by index (indices come from
    /// [`SegmentHeap::subseg_indices`]).
    ///
    /// # Panics
    ///
    /// Panics if the subsegment was dropped with its segment.
    pub fn subseg(&self, idx: usize) -> &Subsegment {
        self.subsegs[idx].as_ref().expect("subsegment dropped")
    }

    fn subseg_mut(&mut self, idx: usize) -> &mut Subsegment {
        self.subsegs[idx].as_mut().expect("subsegment dropped")
    }

    /// The subsegment index containing `va`, via the global address tree.
    ///
    /// # Errors
    ///
    /// [`HeapError::BadAddress`] when `va` is outside every subsegment.
    pub fn subseg_at(&self, va: u64) -> Result<usize, HeapError> {
        let (_, &idx) = self
            .subseg_addr_tree
            .range(..=va)
            .next_back()
            .ok_or(HeapError::BadAddress { va })?;
        let ss = self.subsegs[idx]
            .as_ref()
            .ok_or(HeapError::BadAddress { va })?;
        if !ss.contains(va) {
            return Err(HeapError::BadAddress { va });
        }
        Ok(idx)
    }

    /// The segment that owns the subsegment containing `va`.
    ///
    /// # Errors
    ///
    /// [`HeapError::BadAddress`] when `va` is outside every subsegment.
    pub fn segment_of_va(&self, va: u64) -> Result<SegId, HeapError> {
        Ok(self.subseg_seg[self.subseg_at(va)?])
    }

    fn new_subseg(&mut self, seg: SegId, min_bytes: u64) -> usize {
        let ps = u64::from(self.page_size);
        let want = min_bytes.max(ps * MIN_SUBSEG_PAGES as u64);
        let pages = want.div_ceil(ps) as usize;
        let base = self.next_va;
        self.next_va += pages as u64 * ps;
        let idx = self.subsegs.len();
        self.subsegs
            .push(Some(Subsegment::new(base, pages, self.page_size)));
        self.subseg_seg.push(seg);
        self.subseg_addr_tree.insert(base, idx);
        self.segment_mut(seg).subsegs.push(idx);
        // The whole subsegment starts as free space.
        self.segment_mut(seg).free.insert(base, pages as u64 * ps);
        idx
    }

    // ------------------------------------------------------------------
    // Allocation
    // ------------------------------------------------------------------

    /// Returns (and caches) the flattened layout for `count` elements of
    /// `ty` on this heap's architecture.
    pub fn flat_layout(&mut self, ty: &TypeDesc, count: u32) -> Arc<FlatLayout> {
        if let Some(f) = self.flat_cache.get(&(ty.clone(), count)) {
            return f.clone();
        }
        let bt = block_type(ty, count);
        let f = Arc::new(FlatLayout::new(&bt, &self.arch));
        self.flat_cache.insert((ty.clone(), count), f.clone());
        f
    }

    /// Allocates a zeroed block of `count` elements of `ty` in `seg` under
    /// the given `serial` (serial assignment is the client library's job;
    /// it requires the segment's write lock).
    ///
    /// Returns the block's start VA.
    ///
    /// # Errors
    ///
    /// - [`HeapError::BlockTooLarge`] when the local image exceeds 4 GiB;
    /// - [`HeapError::DuplicateBlockName`] when `name` is taken;
    /// - [`HeapError::InvalidBlockName`] when `name` is all digits.
    pub fn alloc_block(
        &mut self,
        seg: SegId,
        serial: u32,
        name: Option<&str>,
        ty: &TypeDesc,
        count: u32,
    ) -> Result<u64, HeapError> {
        if let Some(n) = name {
            if n.chars().all(|c| c.is_ascii_digit()) {
                return Err(HeapError::InvalidBlockName(n.to_string()));
            }
            if self.segment(seg).names.contains_key(n) {
                return Err(HeapError::DuplicateBlockName(n.to_string()));
            }
        }
        let flat = self.flat_layout(ty, count);
        let size = u64::from(flat.local_size());
        if size > u64::from(u32::MAX) {
            return Err(HeapError::BlockTooLarge { bytes: size });
        }
        let alloc_size = size.max(1).next_multiple_of(u64::from(BLOCK_ALIGN));
        let va = self.carve(seg, alloc_size);

        // Zero the space without tripping modification tracking: block
        // creation is reported to the server as a whole new block, not as
        // a diff.
        let idx = self.subseg_at(va)?;
        self.subseg_mut(idx)
            .bytes_mut_unprotected(va, alloc_size as usize)?
            .fill(0);
        self.subseg_mut(idx).blk_addr_tree.insert(va, serial);

        let meta = BlockMeta {
            serial,
            name: name.map(str::to_string),
            va,
            ty: ty.clone(),
            count,
            flat,
            version: 0,
        };
        let segh = self.segment_mut(seg);
        if let Some(n) = name {
            segh.names.insert(n.to_string(), serial);
        }
        segh.blocks.insert(serial, meta);
        Ok(va)
    }

    /// First-fit carve of `alloc_size` bytes from the segment's free list,
    /// growing the segment with a new subsegment when necessary.
    fn carve(&mut self, seg: SegId, alloc_size: u64) -> u64 {
        let pick = self
            .segment(seg)
            .free
            .iter()
            .find(|(_, &len)| len >= alloc_size)
            .map(|(&va, &len)| (va, len));
        let (va, len) = match pick {
            Some(hit) => hit,
            None => {
                self.new_subseg(seg, alloc_size);
                self.segment(seg)
                    .free
                    .iter()
                    .find(|(_, &len)| len >= alloc_size)
                    .map(|(&va, &len)| (va, len))
                    .expect("fresh subsegment must satisfy the allocation")
            }
        };
        let segh = self.segment_mut(seg);
        segh.free.remove(&va);
        if len > alloc_size {
            segh.free.insert(va + alloc_size, len - alloc_size);
        }
        va
    }

    /// Frees a block, returning its space to the segment's free list
    /// (with coalescing of adjacent free ranges in the same subsegment).
    ///
    /// # Errors
    ///
    /// [`HeapError::UnknownBlockSerial`] when the block does not exist.
    pub fn free_block(&mut self, seg: SegId, serial: u32) -> Result<(), HeapError> {
        let meta = self
            .segment_mut(seg)
            .blocks
            .remove(&serial)
            .ok_or(HeapError::UnknownBlockSerial(serial))?;
        if let Some(n) = &meta.name {
            self.segment_mut(seg).names.remove(n);
        }
        let idx = self.subseg_at(meta.va)?;
        self.subseg_mut(idx).blk_addr_tree.remove(&meta.va);
        let (ss_base, ss_end) = {
            let ss = self.subseg(idx);
            (ss.base(), ss.end())
        };
        let alloc_size = u64::from(meta.size())
            .max(1)
            .next_multiple_of(u64::from(BLOCK_ALIGN));
        let mut start = meta.va;
        let mut len = alloc_size;
        let segh = self.segment_mut(seg);
        // Coalesce with the previous free range if adjacent.
        if let Some((&pva, &plen)) = segh.free.range(..start).next_back() {
            if pva + plen == start && pva >= ss_base {
                segh.free.remove(&pva);
                start = pva;
                len += plen;
            }
        }
        // Coalesce with the following free range if adjacent.
        if let Some((&nva, &nlen)) = segh.free.range(start + len..).next() {
            if start + len == nva && nva + nlen <= ss_end {
                segh.free.remove(&nva);
                len += nlen;
            }
        }
        segh.free.insert(start, len);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Address resolution (swizzling support)
    // ------------------------------------------------------------------

    /// Finds the block containing `va`: searches the `subseg_addr_tree`
    /// for the spanning subsegment, then its `blk_addr_tree` for the
    /// pointed-to block — the exact procedure of §3.1's pointer
    /// swizzling.
    ///
    /// # Errors
    ///
    /// [`HeapError::BadAddress`] outside every subsegment,
    /// [`HeapError::NotInBlock`] inside a subsegment but not a block.
    pub fn block_at(&self, va: u64) -> Result<(SegId, &BlockMeta), HeapError> {
        let idx = self.subseg_at(va)?;
        let ss = self.subseg(idx);
        let (_, &serial) = ss
            .blk_addr_tree
            .range(..=va)
            .next_back()
            .ok_or(HeapError::NotInBlock { va })?;
        let seg = self.subseg_seg[idx];
        let meta = self.segment(seg).block_by_serial(serial)?;
        if !meta.contains(va) {
            return Err(HeapError::NotInBlock { va });
        }
        Ok((seg, meta))
    }

    /// The first block whose start address is `>= va` within subsegment
    /// `idx` — used by diff collection to advance from one block to the
    /// next within a modified run.
    pub fn next_block_at_or_after(&self, idx: usize, va: u64) -> Option<(u64, u32)> {
        self.subseg(idx)
            .blk_addr_tree
            .range(va..)
            .next()
            .map(|(&va, &serial)| (va, serial))
    }

    // ------------------------------------------------------------------
    // Raw data access
    // ------------------------------------------------------------------

    /// Reads `len` bytes at `va`.
    ///
    /// # Errors
    ///
    /// [`HeapError::BadAddress`] / [`HeapError::OutOfBounds`].
    pub fn read_bytes(&self, va: u64, len: usize) -> Result<&[u8], HeapError> {
        self.subseg(self.subseg_at(va)?).bytes(va, len)
    }

    /// Writes `src` at `va` through modification tracking (twins are
    /// created for protected pages, as the SIGSEGV handler would).
    ///
    /// # Errors
    ///
    /// [`HeapError::BadAddress`] / [`HeapError::OutOfBounds`].
    pub fn write_bytes(&mut self, va: u64, src: &[u8]) -> Result<(), HeapError> {
        let idx = self.subseg_at(va)?;
        self.subseg_mut(idx).write(va, src)
    }

    /// Mutable access at `va` through modification tracking.
    ///
    /// # Errors
    ///
    /// [`HeapError::BadAddress`] / [`HeapError::OutOfBounds`].
    pub fn bytes_mut(&mut self, va: u64, len: usize) -> Result<&mut [u8], HeapError> {
        let idx = self.subseg_at(va)?;
        self.subseg_mut(idx).bytes_mut(va, len)
    }

    /// Mutable access bypassing modification tracking (library-internal
    /// writes such as diff application).
    ///
    /// # Errors
    ///
    /// [`HeapError::BadAddress`] / [`HeapError::OutOfBounds`].
    pub fn bytes_mut_unprotected(&mut self, va: u64, len: usize) -> Result<&mut [u8], HeapError> {
        let idx = self.subseg_at(va)?;
        self.subseg_mut(idx).bytes_mut_unprotected(va, len)
    }

    // ------------------------------------------------------------------
    // Modification tracking control
    // ------------------------------------------------------------------

    /// Write-protects all pages of a segment (write-lock acquisition).
    pub fn protect_segment(&mut self, seg: SegId) {
        let idxs = self.segment(seg).subsegs.clone();
        for idx in idxs {
            self.subseg_mut(idx).protect_all();
        }
    }

    /// Drops all twins and protection for a segment (after diff
    /// collection, or when abandoning tracking).
    pub fn clear_tracking(&mut self, seg: SegId) {
        let idxs = self.segment(seg).subsegs.clone();
        for idx in idxs {
            self.subseg_mut(idx).clear_tracking();
        }
    }

    /// Rolls every twinned page of a segment back to its pristine
    /// content (transaction abort), clearing tracking.
    pub fn restore_segment_twins(&mut self, seg: SegId) {
        let idxs = self.segment(seg).subsegs.clone();
        for idx in idxs {
            self.subseg_mut(idx).restore_twins();
        }
    }

    /// Clears protection without touching twins (no-diff mode: writes
    /// proceed at full speed with no twin overhead).
    pub fn unprotect_segment(&mut self, seg: SegId) {
        let idxs = self.segment(seg).subsegs.clone();
        for idx in idxs {
            self.subseg_mut(idx).unprotect_all();
        }
    }

    /// Cumulative simulated write faults (twin creations) across all
    /// live subsegments.
    pub fn fault_count(&self) -> u64 {
        self.subsegs
            .iter()
            .flatten()
            .map(Subsegment::fault_count)
            .sum()
    }

    /// Updates the last-modified version recorded in a block's header.
    ///
    /// # Errors
    ///
    /// [`HeapError::UnknownBlockSerial`] when the block does not exist.
    pub fn set_block_version(
        &mut self,
        seg: SegId,
        serial: u32,
        version: u64,
    ) -> Result<(), HeapError> {
        self.segment_mut(seg)
            .mutate_block(serial, |b| b.version = version)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iw_types::desc::TypeDesc;

    fn heap() -> Heap {
        Heap::with_page_size(MachineArch::x86(), 256)
    }

    #[test]
    fn create_and_lookup_segment() {
        let mut h = heap();
        let id = h.create_segment("host/a").unwrap();
        assert_eq!(h.segment_id("host/a"), Some(id));
        assert_eq!(h.segment_id("host/b"), None);
        assert!(h.create_segment("host/a").is_err());
        assert_eq!(h.segment(id).name, "host/a");
        let names: Vec<&str> = h.segment_names().collect();
        assert_eq!(names, vec!["host/a"]);
    }

    #[test]
    fn alloc_zeroes_and_registers() {
        let mut h = heap();
        let s = h.create_segment("h/s").unwrap();
        let va = h
            .alloc_block(s, 1, Some("head"), &TypeDesc::int32(), 4)
            .unwrap();
        assert_eq!(va % u64::from(BLOCK_ALIGN), 0);
        assert_eq!(h.read_bytes(va, 16).unwrap(), &[0; 16]);
        let b = h.segment(s).block_by_serial(1).unwrap();
        assert_eq!(b.va, va);
        assert_eq!(b.size(), 16);
        assert_eq!(b.prim_count(), 4);
        assert_eq!(h.segment(s).block_by_name("head").unwrap().serial, 1);
        let (seg, found) = h.block_at(va + 7).unwrap();
        assert_eq!(seg, s);
        assert_eq!(found.serial, 1);
    }

    #[test]
    fn block_name_rules() {
        let mut h = heap();
        let s = h.create_segment("h/s").unwrap();
        assert!(matches!(
            h.alloc_block(s, 1, Some("123"), &TypeDesc::int32(), 1),
            Err(HeapError::InvalidBlockName(_))
        ));
        h.alloc_block(s, 1, Some("ok"), &TypeDesc::int32(), 1)
            .unwrap();
        assert!(matches!(
            h.alloc_block(s, 2, Some("ok"), &TypeDesc::int32(), 1),
            Err(HeapError::DuplicateBlockName(_))
        ));
    }

    #[test]
    fn sequential_allocations_are_contiguous() {
        // Layout-for-locality depends on this: blocks allocated together
        // land together.
        let mut h = heap();
        let s = h.create_segment("h/s").unwrap();
        let a = h.alloc_block(s, 1, None, &TypeDesc::int32(), 4).unwrap();
        let b = h.alloc_block(s, 2, None, &TypeDesc::int32(), 4).unwrap();
        assert_eq!(b, a + 16);
    }

    #[test]
    fn big_block_gets_own_subsegment() {
        let mut h = heap();
        let s = h.create_segment("h/s").unwrap();
        // 256-byte pages, MIN_SUBSEG_PAGES=16 → default subseg 4096 bytes.
        let va = h.alloc_block(s, 1, None, &TypeDesc::int32(), 5000).unwrap();
        // 20000 bytes > 4096: sized to fit.
        assert_eq!(h.segment(s).subseg_indices().len(), 1);
        let ss = h.subseg(h.subseg_at(va).unwrap());
        assert!(ss.len() >= 20000);
        assert_eq!(ss.len() % 256, 0);
    }

    #[test]
    fn segment_grows_with_new_subsegments() {
        let mut h = heap();
        let s = h.create_segment("h/s").unwrap();
        for i in 0..100 {
            h.alloc_block(s, i, None, &TypeDesc::int32(), 64).unwrap();
        }
        assert!(h.segment(s).subseg_indices().len() > 1);
        // All blocks remain addressable.
        for i in 0..100 {
            let b = h.segment(s).block_by_serial(i).unwrap();
            let va = b.va;
            assert_eq!(h.block_at(va).unwrap().1.serial, i);
        }
    }

    #[test]
    fn free_and_reuse() {
        let mut h = heap();
        let s = h.create_segment("h/s").unwrap();
        let a = h
            .alloc_block(s, 1, Some("x"), &TypeDesc::int32(), 8)
            .unwrap();
        h.write_bytes(a, &[0xFF; 32]).unwrap();
        h.free_block(s, 1).unwrap();
        assert!(h.block_at(a).is_err());
        assert!(h.segment(s).block_by_name("x").is_err());
        // Reuse zeroes the space.
        let b = h.alloc_block(s, 2, None, &TypeDesc::int32(), 8).unwrap();
        assert_eq!(a, b, "first fit should reuse the freed range");
        assert_eq!(h.read_bytes(b, 32).unwrap(), &[0; 32]);
    }

    #[test]
    fn free_coalesces_adjacent_ranges() {
        let mut h = heap();
        let s = h.create_segment("h/s").unwrap();
        let _a = h.alloc_block(s, 1, None, &TypeDesc::int32(), 8).unwrap();
        let _b = h.alloc_block(s, 2, None, &TypeDesc::int32(), 8).unwrap();
        let _c = h.alloc_block(s, 3, None, &TypeDesc::int32(), 8).unwrap();
        let before = h.segment(s).free.len();
        h.free_block(s, 1).unwrap();
        h.free_block(s, 3).unwrap();
        h.free_block(s, 2).unwrap(); // merges all three
        let after = h.segment(s).free.len();
        assert!(
            after <= before + 1,
            "ranges must coalesce: {after} vs {before}"
        );
        // A block spanning all three slots now fits without growth.
        let subsegs_before = h.segment(s).subseg_indices().len();
        h.alloc_block(s, 4, None, &TypeDesc::int32(), 24).unwrap();
        assert_eq!(h.segment(s).subseg_indices().len(), subsegs_before);
    }

    #[test]
    fn double_free_rejected() {
        let mut h = heap();
        let s = h.create_segment("h/s").unwrap();
        h.alloc_block(s, 1, None, &TypeDesc::int32(), 1).unwrap();
        h.free_block(s, 1).unwrap();
        assert!(matches!(
            h.free_block(s, 1),
            Err(HeapError::UnknownBlockSerial(1))
        ));
    }

    #[test]
    fn block_at_rejects_free_space_and_wild_addresses() {
        let mut h = heap();
        let s = h.create_segment("h/s").unwrap();
        let va = h.alloc_block(s, 1, None, &TypeDesc::int32(), 1).unwrap();
        // Just past the block (within the subsegment's free space).
        assert!(matches!(
            h.block_at(va + 16),
            Err(HeapError::NotInBlock { .. })
        ));
        assert!(matches!(h.block_at(7), Err(HeapError::BadAddress { .. })));
    }

    #[test]
    fn protection_roundtrip_through_heap() {
        let mut h = heap();
        let s = h.create_segment("h/s").unwrap();
        let va = h.alloc_block(s, 1, None, &TypeDesc::int32(), 128).unwrap();
        h.protect_segment(s);
        h.write_bytes(va + 300, &[1, 2, 3, 4]).unwrap();
        let idx = h.subseg_at(va).unwrap();
        assert_eq!(h.subseg(idx).twin_count(), 1);
        h.clear_tracking(s);
        assert_eq!(h.subseg(idx).twin_count(), 0);
    }

    #[test]
    fn remove_segment_unmaps_addresses() {
        let mut h = heap();
        let s = h.create_segment("h/s").unwrap();
        let va = h.alloc_block(s, 1, None, &TypeDesc::int32(), 1).unwrap();
        h.remove_segment(s);
        assert!(h.block_at(va).is_err());
        assert_eq!(h.segment_id("h/s"), None);
        // Name can be reused afterwards.
        h.create_segment("h/s").unwrap();
    }

    #[test]
    fn next_block_at_or_after_walks_blocks() {
        let mut h = heap();
        let s = h.create_segment("h/s").unwrap();
        let a = h.alloc_block(s, 1, None, &TypeDesc::int32(), 4).unwrap();
        let b = h.alloc_block(s, 2, None, &TypeDesc::int32(), 4).unwrap();
        let idx = h.subseg_at(a).unwrap();
        assert_eq!(h.next_block_at_or_after(idx, a), Some((a, 1)));
        assert_eq!(h.next_block_at_or_after(idx, a + 1), Some((b, 2)));
        assert_eq!(h.next_block_at_or_after(idx, b + 1), None);
    }

    #[test]
    fn flat_layout_cache_returns_same_arc() {
        let mut h = heap();
        let f1 = h.flat_layout(&TypeDesc::int32(), 10);
        let f2 = h.flat_layout(&TypeDesc::int32(), 10);
        assert!(Arc::ptr_eq(&f1, &f2));
        let f3 = h.flat_layout(&TypeDesc::int32(), 11);
        assert!(!Arc::ptr_eq(&f1, &f3));
    }

    #[test]
    fn set_block_version_updates_header() {
        let mut h = heap();
        let s = h.create_segment("h/s").unwrap();
        h.alloc_block(s, 1, None, &TypeDesc::int32(), 1).unwrap();
        h.set_block_version(s, 1, 42).unwrap();
        assert_eq!(h.segment(s).block_by_serial(1).unwrap().version, 42);
        assert!(h.set_block_version(s, 9, 1).is_err());
    }
}
