//! Per-segment heap metadata: block trees, free lists, and the type
//! registry.
//!
//! Each entry in the client's segment table holds "one [pointer] for the
//! first subsegment that belongs to that segment, one for the first free
//! space in the segment, and two for a pair of balanced trees containing
//! the segment's blocks. One tree is sorted by block serial number
//! (`blk_number_tree`), the other by block symbolic name (`blk_name_tree`);
//! together they support translation from MIPs to local pointers." (§3.1)

use std::collections::{BTreeMap, HashMap};

use iw_types::desc::TypeDesc;

use crate::block::BlockMeta;
use crate::error::HeapError;

/// The registry of type descriptors used by a segment, with
/// segment-specific serial numbers "to be used by the server and client in
/// wire-format messages" (§3.1).
#[derive(Debug, Default)]
pub struct TypeRegistry {
    types: Vec<TypeDesc>,
    index: HashMap<TypeDesc, u32>,
}

impl TypeRegistry {
    /// Registers `ty`, returning its serial (existing serial if already
    /// registered).
    pub fn register(&mut self, ty: &TypeDesc) -> u32 {
        if let Some(&s) = self.index.get(ty) {
            return s;
        }
        let s = self.types.len() as u32;
        self.types.push(ty.clone());
        self.index.insert(ty.clone(), s);
        s
    }

    /// Installs a type received from the server under an explicit serial.
    /// Serials must arrive in order (they are dense).
    ///
    /// # Panics
    ///
    /// Panics if `serial` skips ahead of the registry size.
    pub fn install(&mut self, serial: u32, ty: TypeDesc) {
        if let Some(existing) = self.types.get(serial as usize) {
            debug_assert_eq!(existing, &ty, "type serial reused for different type");
            return;
        }
        assert_eq!(
            serial as usize,
            self.types.len(),
            "type serials must be installed densely"
        );
        self.types.push(ty.clone());
        self.index.insert(ty, serial);
    }

    /// Looks up a descriptor by serial.
    pub fn get(&self, serial: u32) -> Option<&TypeDesc> {
        self.types.get(serial as usize)
    }

    /// Looks up the serial of a descriptor.
    pub fn serial_of(&self, ty: &TypeDesc) -> Option<u32> {
        self.index.get(ty).copied()
    }

    /// Number of registered types.
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// `true` when no types are registered.
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// Iterates `(serial, descriptor)` pairs in serial order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &TypeDesc)> {
        self.types.iter().enumerate().map(|(i, t)| (i as u32, t))
    }
}

/// Heap-side state for one cached segment.
#[derive(Debug)]
pub struct SegmentHeap {
    /// The segment's name (its URL path, e.g. `"host/list"`).
    pub name: String,
    /// Indices of this segment's subsegments in the owning heap, in
    /// allocation order (the paper's linked list of subsegments).
    pub(crate) subsegs: Vec<usize>,
    /// Free space: start VA → length (the paper's free list).
    pub(crate) free: BTreeMap<u64, u64>,
    /// `blk_number_tree`: serial → block metadata.
    pub(crate) blocks: BTreeMap<u32, BlockMeta>,
    /// `blk_name_tree`: symbolic name → serial.
    pub(crate) names: BTreeMap<String, u32>,
    /// Type descriptors used in this segment.
    pub types: TypeRegistry,
}

impl SegmentHeap {
    pub(crate) fn new(name: String) -> Self {
        SegmentHeap {
            name,
            subsegs: Vec::new(),
            free: BTreeMap::new(),
            blocks: BTreeMap::new(),
            names: BTreeMap::new(),
            types: TypeRegistry::default(),
        }
    }

    /// Looks up a block by serial number.
    ///
    /// # Errors
    ///
    /// [`HeapError::UnknownBlockSerial`] when absent.
    pub fn block_by_serial(&self, serial: u32) -> Result<&BlockMeta, HeapError> {
        self.blocks
            .get(&serial)
            .ok_or(HeapError::UnknownBlockSerial(serial))
    }

    /// Looks up a block by symbolic name.
    ///
    /// # Errors
    ///
    /// [`HeapError::UnknownBlockName`] when absent.
    pub fn block_by_name(&self, name: &str) -> Result<&BlockMeta, HeapError> {
        let serial = self
            .names
            .get(name)
            .ok_or_else(|| HeapError::UnknownBlockName(name.to_string()))?;
        self.block_by_serial(*serial)
    }

    /// Iterates blocks in serial order.
    pub fn blocks(&self) -> impl Iterator<Item = &BlockMeta> {
        self.blocks.values()
    }

    /// Number of live blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Indices of the segment's subsegments in the owning heap.
    pub fn subseg_indices(&self) -> &[usize] {
        &self.subsegs
    }

    /// Total free bytes (diagnostics).
    pub fn free_bytes(&self) -> u64 {
        self.free.values().sum()
    }

    pub(crate) fn mutate_block<R>(
        &mut self,
        serial: u32,
        f: impl FnOnce(&mut BlockMeta) -> R,
    ) -> Result<R, HeapError> {
        self.blocks
            .get_mut(&serial)
            .map(f)
            .ok_or(HeapError::UnknownBlockSerial(serial))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_dedups() {
        let mut r = TypeRegistry::default();
        let a = r.register(&TypeDesc::int32());
        let b = r.register(&TypeDesc::float64());
        let a2 = r.register(&TypeDesc::int32());
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(r.len(), 2);
        assert_eq!(r.get(a), Some(&TypeDesc::int32()));
        assert_eq!(r.serial_of(&TypeDesc::float64()), Some(b));
        assert_eq!(r.serial_of(&TypeDesc::char8()), None);
        assert!(!r.is_empty());
    }

    #[test]
    fn registry_install_dense() {
        let mut r = TypeRegistry::default();
        r.install(0, TypeDesc::int32());
        r.install(1, TypeDesc::pointer());
        // Idempotent re-install.
        r.install(0, TypeDesc::int32());
        assert_eq!(r.len(), 2);
        let collected: Vec<u32> = r.iter().map(|(s, _)| s).collect();
        assert_eq!(collected, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "densely")]
    fn registry_install_sparse_panics() {
        let mut r = TypeRegistry::default();
        r.install(5, TypeDesc::int32());
    }

    #[test]
    fn segment_lookup_errors() {
        let s = SegmentHeap::new("h/s".into());
        assert!(matches!(
            s.block_by_serial(3),
            Err(HeapError::UnknownBlockSerial(3))
        ));
        assert!(matches!(
            s.block_by_name("x"),
            Err(HeapError::UnknownBlockName(_))
        ));
        assert_eq!(s.block_count(), 0);
        assert_eq!(s.free_bytes(), 0);
    }
}
