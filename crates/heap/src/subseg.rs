//! Subsegments: the contiguous pieces of a cached segment.
//!
//! "The copy of a segment cached by a given process need not be contiguous
//! in the application's virtual address space, so long as individually
//! malloc'd blocks are contiguous. The InterWeave library can therefore
//! implement a segment as a collection of subsegments, invisible to the
//! user. Each subsegment is contiguous, and can be any integral number of
//! pages in length." (§3.1)
//!
//! Real InterWeave write-protects subsegment pages with `mprotect` and
//! catches SIGSEGV to create page *twins*. This reproduction keeps a
//! per-page protection bitmap instead: every write that goes through the
//! heap checks the bitmap and, on the first touch of a protected page,
//! snapshots the page into the `pagemap` exactly as the paper's fault
//! handler would. The observable algorithm — one twin per dirtied page,
//! word-by-word comparison at diff time — is identical; only the trigger
//! differs (see DESIGN.md).

use crate::error::HeapError;

/// A contiguous, page-multiple region of a cached segment.
#[derive(Debug)]
pub struct Subsegment {
    /// Base simulated virtual address (page aligned).
    base: u64,
    /// Page size in bytes (constant per heap).
    page_size: u32,
    /// The local-format bytes of this subsegment.
    data: Vec<u8>,
    /// Per-page twins, created lazily on first protected write
    /// (the paper's "pagemap (pointers to twins)").
    pagemap: Vec<Option<Box<[u8]>>>,
    /// Per-page write-protection bits (the `mprotect` stand-in).
    protected: Vec<bool>,
    /// Cumulative simulated write faults (twin creations).
    faults: u64,
    /// Blocks in this subsegment, sorted by start address
    /// (the paper's `blk_addr_tree`): start VA → block serial.
    pub(crate) blk_addr_tree: std::collections::BTreeMap<u64, u32>,
}

impl Subsegment {
    /// Creates a zero-filled subsegment of `pages` pages at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not page aligned or `pages` is zero.
    pub fn new(base: u64, pages: usize, page_size: u32) -> Self {
        assert!(pages > 0, "subsegment must have at least one page");
        assert_eq!(base % u64::from(page_size), 0, "base must be page aligned");
        Subsegment {
            base,
            page_size,
            data: vec![0; pages * page_size as usize],
            pagemap: (0..pages).map(|_| None).collect(),
            protected: vec![false; pages],
            faults: 0,
            blk_addr_tree: std::collections::BTreeMap::new(),
        }
    }

    /// Base virtual address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Size in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the subsegment holds no bytes (never true in practice).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of pages.
    pub fn pages(&self) -> usize {
        self.pagemap.len()
    }

    /// One-past-the-end virtual address.
    pub fn end(&self) -> u64 {
        self.base + self.len() as u64
    }

    /// `true` when `va` falls inside this subsegment.
    pub fn contains(&self, va: u64) -> bool {
        va >= self.base && va < self.end()
    }

    /// Immutable view of `len` bytes at `va`.
    ///
    /// # Errors
    ///
    /// [`HeapError::OutOfBounds`] when the range leaves the subsegment.
    pub fn bytes(&self, va: u64, len: usize) -> Result<&[u8], HeapError> {
        let off = self.offset_of(va, len)?;
        Ok(&self.data[off..off + len])
    }

    /// Writes `src` at `va`, creating twins for any protected page touched
    /// (the simulated SIGSEGV handler).
    ///
    /// # Errors
    ///
    /// [`HeapError::OutOfBounds`] when the range leaves the subsegment.
    pub fn write(&mut self, va: u64, src: &[u8]) -> Result<(), HeapError> {
        let off = self.offset_of(va, src.len())?;
        self.fault_range(off, src.len());
        self.data[off..off + src.len()].copy_from_slice(src);
        Ok(())
    }

    /// Mutable view of `len` bytes at `va`, faulting pages first. Used by
    /// bulk operations (diff application) that write in place.
    ///
    /// # Errors
    ///
    /// [`HeapError::OutOfBounds`] when the range leaves the subsegment.
    pub fn bytes_mut(&mut self, va: u64, len: usize) -> Result<&mut [u8], HeapError> {
        let off = self.offset_of(va, len)?;
        self.fault_range(off, len);
        Ok(&mut self.data[off..off + len])
    }

    /// Mutable view that bypasses protection (used by the library itself
    /// when installing server updates that must not look like local
    /// modifications).
    ///
    /// # Errors
    ///
    /// [`HeapError::OutOfBounds`] when the range leaves the subsegment.
    pub fn bytes_mut_unprotected(&mut self, va: u64, len: usize) -> Result<&mut [u8], HeapError> {
        let off = self.offset_of(va, len)?;
        Ok(&mut self.data[off..off + len])
    }

    fn offset_of(&self, va: u64, len: usize) -> Result<usize, HeapError> {
        if !self.contains(va) {
            return Err(HeapError::BadAddress { va });
        }
        let off = (va - self.base) as usize;
        if off + len > self.data.len() {
            return Err(HeapError::OutOfBounds { va, len });
        }
        Ok(off)
    }

    /// Creates twins for all protected pages overlapping `[off, off+len)`
    /// and clears their protection — the work of the paper's SIGSEGV
    /// handler, which "creates a pristine copy, or twin, of the page …
    /// saves a pointer to that twin in the faulting subsegment's header …
    /// and then asks the operating system to re-enable write access".
    fn fault_range(&mut self, off: usize, len: usize) {
        if len == 0 {
            return;
        }
        let ps = self.page_size as usize;
        let first = off / ps;
        let last = (off + len - 1) / ps;
        for page in first..=last {
            if self.protected[page] {
                let start = page * ps;
                let twin: Box<[u8]> = self.data[start..start + ps].into();
                self.pagemap[page] = Some(twin);
                self.protected[page] = false;
                self.faults += 1;
            }
        }
    }

    /// Write-protects every page (done at write-lock acquisition).
    /// Pages that already have a twin from the current critical section
    /// keep it and stay unprotected.
    pub fn protect_all(&mut self) {
        for (page, p) in self.protected.iter_mut().enumerate() {
            if self.pagemap[page].is_none() {
                *p = true;
            }
        }
    }

    /// Clears all protection bits without touching twins (used when
    /// entering no-diff mode, where modification tracking is disabled).
    pub fn unprotect_all(&mut self) {
        self.protected.iter_mut().for_each(|p| *p = false);
    }

    /// Restores every twinned page to its pristine (twin) content —
    /// the rollback primitive for aborted transactions. Twins and
    /// protection are cleared afterwards.
    pub fn restore_twins(&mut self) {
        let ps = self.page_size as usize;
        for (i, slot) in self.pagemap.iter_mut().enumerate() {
            if let Some(twin) = slot.take() {
                self.data[i * ps..(i + 1) * ps].copy_from_slice(&twin);
            }
        }
        self.unprotect_all();
    }

    /// Drops all twins and protection (done after diff collection).
    pub fn clear_tracking(&mut self) {
        self.pagemap.iter_mut().for_each(|t| *t = None);
        self.unprotect_all();
    }

    /// Iterates `(page index, twin, current page bytes)` for every page
    /// that has a twin — i.e. every page dirtied since `protect_all`.
    pub fn modified_pages(&self) -> impl Iterator<Item = (usize, &[u8], &[u8])> {
        let ps = self.page_size as usize;
        self.pagemap.iter().enumerate().filter_map(move |(i, t)| {
            t.as_deref()
                .map(|twin| (i, twin, &self.data[i * ps..(i + 1) * ps]))
        })
    }

    /// Cumulative simulated write faults (twin creations) since the
    /// subsegment was created — the analogue of the paper's SIGSEGV
    /// count, which no-diff mode exists to eliminate.
    pub fn fault_count(&self) -> u64 {
        self.faults
    }

    /// Number of pages currently twinned.
    pub fn twin_count(&self) -> usize {
        self.pagemap.iter().filter(|t| t.is_some()).count()
    }

    /// `true` if page `i` is write-protected.
    pub fn is_protected(&self, i: usize) -> bool {
        self.protected[i]
    }

    /// The page size this subsegment was built with.
    pub fn page_size(&self) -> u32 {
        self.page_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn subseg() -> Subsegment {
        Subsegment::new(0x1000, 4, 256)
    }

    #[test]
    fn geometry() {
        let s = subseg();
        assert_eq!(s.base(), 0x1000);
        assert_eq!(s.len(), 1024);
        assert_eq!(s.pages(), 4);
        assert_eq!(s.end(), 0x1400);
        assert!(s.contains(0x1000));
        assert!(s.contains(0x13FF));
        assert!(!s.contains(0x1400));
        assert!(!s.contains(0xFFF));
        assert!(!s.is_empty());
    }

    #[test]
    #[should_panic(expected = "page aligned")]
    fn misaligned_base_panics() {
        let _ = Subsegment::new(0x1001, 1, 256);
    }

    #[test]
    fn read_write_roundtrip() {
        let mut s = subseg();
        s.write(0x1010, &[1, 2, 3]).unwrap();
        assert_eq!(s.bytes(0x1010, 3).unwrap(), &[1, 2, 3]);
        assert_eq!(s.bytes(0x100F, 1).unwrap(), &[0]);
    }

    #[test]
    fn bounds_checked() {
        let mut s = subseg();
        assert!(matches!(s.bytes(0x0, 1), Err(HeapError::BadAddress { .. })));
        assert!(matches!(
            s.bytes(0x13FF, 2),
            Err(HeapError::OutOfBounds { .. })
        ));
        assert!(s.write(0x1400, &[0]).is_err());
    }

    #[test]
    fn unprotected_writes_make_no_twins() {
        let mut s = subseg();
        s.write(0x1000, &[1; 100]).unwrap();
        assert_eq!(s.twin_count(), 0);
        assert_eq!(s.modified_pages().count(), 0);
    }

    #[test]
    fn protected_write_creates_twin_with_pristine_content() {
        let mut s = subseg();
        s.write(0x1000, &[7; 256]).unwrap(); // page 0 pre-content
        s.protect_all();
        assert!(s.is_protected(0));
        s.write(0x1004, &[9, 9]).unwrap();
        assert!(!s.is_protected(0), "fault must unprotect");
        assert_eq!(s.twin_count(), 1);
        let (idx, twin, cur) = s.modified_pages().next().unwrap();
        assert_eq!(idx, 0);
        assert_eq!(twin, &[7u8; 256][..], "twin is the pristine copy");
        assert_eq!(&cur[4..6], &[9, 9]);
    }

    #[test]
    fn second_write_to_same_page_keeps_first_twin() {
        let mut s = subseg();
        s.protect_all();
        s.write(0x1000, &[1]).unwrap();
        s.write(0x1001, &[2]).unwrap();
        assert_eq!(s.twin_count(), 1);
        let (_, twin, _) = s.modified_pages().next().unwrap();
        assert_eq!(twin[0], 0, "twin must predate the first write");
    }

    #[test]
    fn write_spanning_pages_twins_each() {
        let mut s = subseg();
        s.protect_all();
        s.write(0x10FE, &[1, 2, 3, 4]).unwrap(); // pages 0 and 1
        assert_eq!(s.twin_count(), 2);
        let pages: Vec<usize> = s.modified_pages().map(|(i, _, _)| i).collect();
        assert_eq!(pages, vec![0, 1]);
    }

    #[test]
    fn reprotect_preserves_existing_twins() {
        let mut s = subseg();
        s.protect_all();
        s.write(0x1000, &[1]).unwrap();
        s.protect_all(); // e.g. nested lock re-acquire
        assert!(!s.is_protected(0), "twinned page must stay writable");
        assert!(s.is_protected(1));
    }

    #[test]
    fn restore_twins_rolls_back_content() {
        let mut s = subseg();
        s.write(0x1000, &[7; 16]).unwrap();
        s.protect_all();
        s.write(0x1000, &[9; 16]).unwrap();
        s.write(0x1100, &[5]).unwrap();
        s.restore_twins();
        assert_eq!(s.bytes(0x1000, 16).unwrap(), &[7; 16]);
        assert_eq!(s.bytes(0x1100, 1).unwrap(), &[0]);
        assert_eq!(s.twin_count(), 0);
        assert!(!s.is_protected(0));
    }

    #[test]
    fn clear_tracking_resets() {
        let mut s = subseg();
        s.protect_all();
        s.write(0x1000, &[1]).unwrap();
        s.clear_tracking();
        assert_eq!(s.twin_count(), 0);
        assert!(!s.is_protected(0));
        assert!(!s.is_protected(3));
    }

    #[test]
    fn unprotected_mut_view_bypasses_twinning() {
        let mut s = subseg();
        s.protect_all();
        s.bytes_mut_unprotected(0x1000, 4).unwrap()[0] = 5;
        assert_eq!(s.twin_count(), 0);
        assert!(s.is_protected(0), "protection must survive library writes");
    }

    #[test]
    fn bytes_mut_faults_like_write() {
        let mut s = subseg();
        s.protect_all();
        s.bytes_mut(0x1100, 8).unwrap().fill(3);
        assert_eq!(s.twin_count(), 1);
        assert_eq!(s.bytes(0x1100, 8).unwrap(), &[3; 8]);
    }

    #[test]
    fn zero_length_write_is_noop() {
        let mut s = subseg();
        s.protect_all();
        s.write(0x1000, &[]).unwrap();
        assert_eq!(s.twin_count(), 0);
    }
}
