//! Heap error type.

use std::error::Error;
use std::fmt;

/// Errors raised by heap operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HeapError {
    /// An address did not fall within any cached subsegment.
    BadAddress {
        /// The offending virtual address.
        va: u64,
    },
    /// An address fell inside a subsegment but not inside any block
    /// (free space, block header padding, …).
    NotInBlock {
        /// The offending virtual address.
        va: u64,
    },
    /// Access extended past the end of a subsegment or block.
    OutOfBounds {
        /// Start of the attempted access.
        va: u64,
        /// Length of the attempted access.
        len: usize,
    },
    /// The named segment is not cached in this heap.
    UnknownSegment(String),
    /// The named segment is already cached in this heap.
    DuplicateSegment(String),
    /// No block with this serial number exists in the segment.
    UnknownBlockSerial(u32),
    /// No block with this symbolic name exists in the segment.
    UnknownBlockName(String),
    /// A symbolic block name was already taken.
    DuplicateBlockName(String),
    /// A symbolic block name consisted only of digits (reserved for serial
    /// numbers in MIP syntax).
    InvalidBlockName(String),
    /// The block is too large to address (> 4 GiB local image).
    BlockTooLarge {
        /// Requested size in bytes.
        bytes: u64,
    },
    /// An operation required a block that was freed.
    BlockFreed(u32),
}

impl fmt::Display for HeapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeapError::BadAddress { va } => {
                write!(f, "address {va:#x} is not in any cached subsegment")
            }
            HeapError::NotInBlock { va } => {
                write!(f, "address {va:#x} is not inside any block")
            }
            HeapError::OutOfBounds { va, len } => {
                write!(f, "access of {len} bytes at {va:#x} is out of bounds")
            }
            HeapError::UnknownSegment(s) => write!(f, "segment `{s}` is not cached"),
            HeapError::DuplicateSegment(s) => {
                write!(f, "segment `{s}` is already cached")
            }
            HeapError::UnknownBlockSerial(n) => write!(f, "no block with serial {n}"),
            HeapError::UnknownBlockName(s) => write!(f, "no block named `{s}`"),
            HeapError::DuplicateBlockName(s) => {
                write!(f, "block name `{s}` already in use")
            }
            HeapError::InvalidBlockName(s) => write!(
                f,
                "block name `{s}` is all digits, which is reserved for serial numbers"
            ),
            HeapError::BlockTooLarge { bytes } => {
                write!(f, "block of {bytes} bytes exceeds the 4 GiB block limit")
            }
            HeapError::BlockFreed(n) => write!(f, "block {n} has been freed"),
        }
    }
}

impl Error for HeapError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(HeapError::BadAddress { va: 0x10 }
            .to_string()
            .contains("0x10"));
        assert!(HeapError::UnknownSegment("x/y".into())
            .to_string()
            .contains("x/y"));
        assert!(HeapError::InvalidBlockName("123".into())
            .to_string()
            .contains("digits"));
    }
}
