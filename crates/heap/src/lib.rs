//! # iw-heap — the InterWeave client heap
//!
//! Memory-management substrate for InterWeave-rs (the ICDCS'03 InterWeave
//! reproduction): segments as collections of page-multiple [`Subsegment`]s,
//! strongly typed blocks with serial numbers and optional symbolic names,
//! first-fit free lists, and the metadata trees that power modification
//! tracking and pointer swizzling:
//!
//! - the global `subseg_addr_tree` (subsegments of all segments by
//!   address),
//! - per-subsegment `blk_addr_tree` (blocks by address),
//! - per-segment `blk_number_tree` and `blk_name_tree` (blocks by serial
//!   and by name).
//!
//! Modification tracking mirrors the paper's `mprotect`/SIGSEGV twinning
//! with per-page protection bitmaps: the first tracked write to a
//! protected page snapshots a pristine *twin* into the subsegment's
//! pagemap; diff collection later compares each dirty page to its twin
//! word by word. See `DESIGN.md` for the substitution argument.
//!
//! # Examples
//!
//! ```
//! use iw_heap::{Heap, SegId};
//! use iw_types::arch::MachineArch;
//! use iw_types::desc::TypeDesc;
//!
//! let mut heap = Heap::new(MachineArch::x86());
//! let seg = heap.create_segment("example.org/data")?;
//! let va = heap.alloc_block(seg, 1, Some("head"), &TypeDesc::int32(), 16)?;
//!
//! heap.protect_segment(seg);                 // write-lock acquired
//! heap.write_bytes(va, &7i32.to_le_bytes())?; // faults; twin created
//!
//! let idx = heap.subseg_at(va)?;
//! assert_eq!(heap.subseg(idx).twin_count(), 1);
//! # Ok::<(), iw_heap::HeapError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
mod error;
mod heap;
mod segment;
mod subseg;

pub use block::{block_type, BlockMeta};
pub use error::HeapError;
pub use heap::{Heap, SegId, BLOCK_ALIGN, DEFAULT_PAGE_SIZE, MIN_SUBSEG_PAGES};
pub use segment::{SegmentHeap, TypeRegistry};
pub use subseg::Subsegment;
