//! Block metadata.
//!
//! "Each block must have a well-defined type, but this type can be a
//! recursively defined structure of arbitrary complexity, so blocks can be
//! of arbitrary size. Every block has a serial number within its segment,
//! assigned by `IW_malloc()`. It may also have an optional symbolic name."
//! (§3.1)

use std::sync::Arc;

use iw_types::desc::TypeDesc;
use iw_types::flat::FlatLayout;

/// Metadata the client keeps for one block (the paper's block header).
#[derive(Debug, Clone)]
pub struct BlockMeta {
    /// Serial number within the segment.
    pub serial: u32,
    /// Optional symbolic name (must contain a non-digit).
    pub name: Option<String>,
    /// Start virtual address of the block's local image.
    pub va: u64,
    /// Element type descriptor (the type passed to `IW_malloc`).
    pub ty: TypeDesc,
    /// Number of contiguous elements of `ty` (1 for scalars).
    pub count: u32,
    /// Flattened translation layout of the whole block on this heap's
    /// architecture.
    pub flat: Arc<FlatLayout>,
    /// Version of the segment in which this block was last modified, as
    /// known to this client (used for layout locality and prediction).
    pub version: u64,
}

impl BlockMeta {
    /// Size in bytes of the block's local image.
    pub fn size(&self) -> u32 {
        self.flat.local_size()
    }

    /// One-past-the-end virtual address.
    pub fn end(&self) -> u64 {
        self.va + u64::from(self.size())
    }

    /// `true` when `va` falls inside this block.
    pub fn contains(&self, va: u64) -> bool {
        va >= self.va && va < self.end()
    }

    /// Number of primitive data units in the block.
    pub fn prim_count(&self) -> u64 {
        self.flat.prim_count()
    }
}

/// Builds the block-level type for `count` elements of `ty`: the type
/// itself for a single element, an array otherwise.
pub fn block_type(ty: &TypeDesc, count: u32) -> TypeDesc {
    if count == 1 {
        ty.clone()
    } else {
        TypeDesc::array(ty.clone(), count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iw_types::arch::MachineArch;

    fn meta(count: u32) -> BlockMeta {
        let ty = TypeDesc::int32();
        let bt = block_type(&ty, count);
        BlockMeta {
            serial: 1,
            name: None,
            va: 0x1000,
            ty,
            count,
            flat: Arc::new(FlatLayout::new(&bt, &MachineArch::x86())),
            version: 0,
        }
    }

    #[test]
    fn scalar_block_geometry() {
        let m = meta(1);
        assert_eq!(m.size(), 4);
        assert_eq!(m.end(), 0x1004);
        assert!(m.contains(0x1003));
        assert!(!m.contains(0x1004));
        assert_eq!(m.prim_count(), 1);
    }

    #[test]
    fn array_block_geometry() {
        let m = meta(100);
        assert_eq!(m.size(), 400);
        assert_eq!(m.prim_count(), 100);
    }

    #[test]
    fn block_type_for_single_is_elem() {
        let ty = TypeDesc::float64();
        assert_eq!(block_type(&ty, 1), ty);
        assert_eq!(block_type(&ty, 3), TypeDesc::array(ty.clone(), 3));
    }
}
