//! Primary/backup segment replication (`iw-cluster`).
//!
//! The paper pins each segment to the single server named by its URL
//! (§2.1); this crate removes that single point of failure. A
//! [`Primary`] wraps a [`Server`] behind the normal [`Handler`]
//! interface and streams every committed write-release diff — the same
//! machine-independent wire diff the coherence protocol already uses —
//! to an ordered set of backup servers over any [`Transport`]
//! (loopback in tests, TCP in production).
//!
//! Replication is **asynchronous**: the commit path only clones the
//! diff into a channel; a background ship thread delivers it. Backups
//! apply diffs through the ordinary version chain
//! (`Request::Replicate`), so their `ServerSegment` state is
//! bit-identical to the primary's. A backup that joins late or falls
//! behind (version gap) is caught up with a full checkpoint-encoded
//! image (`Request::SyncFull`), after which the diff stream resumes.
//!
//! # Ordering under a concurrent server
//!
//! The wrapped server handles requests from many worker threads at
//! once, so the primary cannot learn about commits by watching replies
//! — two replies for one segment could be observed out of commit
//! order. Instead it registers a [`iw_server::CommitHook`], which the
//! server fires *while still holding that segment's write lock*: for
//! any one segment, hook invocations (and therefore ship-queue entries)
//! happen in exactly the version order the diffs committed in, and the
//! single ship thread preserves that FIFO order on the wire. The
//! ship queue is the bottom of the server's lock hierarchy (segment →
//! lock table → ship queue; DESIGN.md §6a).
//!
//! The asynchrony buys a bounded window: diffs acknowledged to a client
//! but not yet shipped are lost if the primary dies. The window is
//! observable as the per-segment `cluster.lag.<segment>` gauge.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use bytes::Bytes;

use iw_proto::msg::{Reply, Request};
use iw_proto::{Handler, TcpTransport, Transport};
use iw_server::checkpoint;
use iw_server::Server;
use iw_telemetry::{Counter, Gauge, Registry};
use iw_wire::diff::SegmentDiff;

/// Work for the ship thread.
enum Job {
    /// A committed diff to replicate to every backup.
    Ship {
        segment: String,
        diff: SegmentDiff,
    },
    /// A backup connection established by the caller (tests, local
    /// wiring).
    Attach(Box<dyn Transport>),
    /// A backup that asked to join by address (`iwsrv --backup-of`);
    /// the ship thread dials it so connect timeouts never stall the
    /// request path.
    AttachAddr(String),
    /// Signals when every job enqueued before it has been processed.
    Barrier(mpsc::Sender<()>),
    Stop,
}

/// One backup replica as the ship thread sees it.
struct BackupLink {
    transport: Box<dyn Transport>,
    /// Dial address for address-attached backups (`iwsrv --backup-of`);
    /// used to deduplicate re-announcements. `None` for transports
    /// attached directly via [`Primary::add_backup`].
    addr: Option<String>,
    /// Last version each segment acked; drives catch-up and the lag
    /// gauge.
    acked: HashMap<String, u64>,
    /// Set on a channel error; a dead link is pruned — transport,
    /// acked-version map and all — at the next bookkeeping pass, so a
    /// backup that re-attaches starts from a fresh full sync instead of
    /// inheriting stale ack state.
    dead: bool,
}

/// Counters the ship thread updates, registered in the wrapped server's
/// own registry so `iwstat` against the primary shows them.
struct ShipMetrics {
    registry: Arc<Registry>,
    /// `cluster.diffs_shipped_total` — diffs delivered to a backup.
    diffs_shipped: Arc<Counter>,
    /// `cluster.sync_full_total` — full catch-up images shipped.
    syncs_shipped: Arc<Counter>,
    /// `cluster.catchup_bytes_shipped_total` — bytes of those images.
    catchup_bytes: Arc<Counter>,
    /// `cluster.ship_errors_total` — failed deliveries (backup marked
    /// dead or sync fallback needed).
    ship_errors: Arc<Counter>,
    /// `cluster.resyncs_total` — mid-stream full resyncs forced by a
    /// version gap (attach-time catch-up syncs are *not* counted here).
    resyncs: Arc<Counter>,
    /// `cluster.backups_pruned_total` — dead links discarded together
    /// with their per-segment ack state.
    backups_pruned: Arc<Counter>,
    /// `cluster.backups` — live attached backups.
    backups: Arc<Gauge>,
}

impl ShipMetrics {
    fn new(registry: Arc<Registry>) -> Self {
        ShipMetrics {
            diffs_shipped: registry.counter("cluster.diffs_shipped_total"),
            syncs_shipped: registry.counter("cluster.sync_full_total"),
            catchup_bytes: registry.counter("cluster.catchup_bytes_shipped_total"),
            ship_errors: registry.counter("cluster.ship_errors_total"),
            resyncs: registry.counter("cluster.resyncs_total"),
            backups_pruned: registry.counter("cluster.backups_pruned_total"),
            backups: registry.gauge("cluster.backups"),
            registry,
        }
    }
}

/// A replicating front-end over a [`Server`].
///
/// Implements [`Handler`], so it drops into every place a bare server
/// fits (loopback, [`iw_proto::TcpServer`]) and inherits the server's
/// internal concurrency — requests pass straight through with no
/// wrapper lock. Committed diffs reach the ship thread via the server's
/// commit hook (see the module docs), and `AttachBackup` requests
/// register new backups.
pub struct Primary {
    server: Arc<Server>,
    tx: mpsc::Sender<Job>,
    ship: Option<JoinHandle<()>>,
    /// Attached (or attaching) backups. While zero, the commit hook
    /// skips the enqueue entirely — a lone server pays nothing for
    /// being replication-capable. Diffs committed before a pending
    /// attach is processed are covered by its attach-time full sync.
    attached: Arc<AtomicUsize>,
    /// Dial addresses of *live* address-attached backups, advertised to
    /// clients in `Welcome` and `Frontier` replies so they can route
    /// relaxed reads at read replicas. Maintained by the ship thread: a
    /// backup joins the set once its attach-time sync succeeds and
    /// leaves it the moment its dead link is pruned — clients must
    /// never be pointed at a backup the primary has given up on.
    advertised: Arc<Mutex<Vec<String>>>,
}

impl std::fmt::Debug for Primary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Primary").finish_non_exhaustive()
    }
}

impl Primary {
    /// Wraps `server`, spawning the replication ship thread and hooking
    /// the server's commit path.
    pub fn new(server: Server) -> Self {
        let registry = server.registry().clone();
        let server = Arc::new(server);
        let (tx, rx) = mpsc::channel();
        let ship_server = server.clone();
        let metrics = ShipMetrics::new(registry);
        let attached = Arc::new(AtomicUsize::new(0));
        let ship_attached = attached.clone();
        let advertised = Arc::new(Mutex::new(Vec::new()));
        let ship_advertised = advertised.clone();
        let ship = std::thread::Builder::new()
            .name("iw-cluster-ship".into())
            .spawn(move || {
                ship_loop(
                    &rx,
                    &ship_server,
                    &metrics,
                    &ship_attached,
                    &ship_advertised,
                )
            })
            .expect("spawn ship thread");
        let hook_tx = tx.clone();
        let hook_attached = attached.clone();
        server.set_commit_hook(Arc::new(move |segment, diff| {
            if hook_attached.load(Ordering::Relaxed) == 0 {
                // No backups: the commit path stays exactly the bare
                // server's (no clone, no channel, no ship-thread wakeup).
                return;
            }
            let _ = hook_tx.send(Job::Ship {
                segment: segment.to_string(),
                diff: diff.clone(),
            });
        }));
        Primary {
            server,
            tx,
            ship: Some(ship),
            attached,
            advertised,
        }
    }

    /// Dial addresses of live address-attached backups, as advertised to
    /// clients (tests).
    pub fn advertised_replicas(&self) -> Vec<String> {
        self.advertised.lock().expect("advertised set").clone()
    }

    /// The wrapped server (benchmarks and tests).
    pub fn server(&self) -> &Arc<Server> {
        &self.server
    }

    /// Attaches an already-connected backup transport (tests, local
    /// wiring). The backup is first brought up to date with full images
    /// of every segment, then follows the diff stream.
    pub fn add_backup(&self, transport: Box<dyn Transport>) {
        self.attached.fetch_add(1, Ordering::SeqCst);
        let _ = self.tx.send(Job::Attach(transport));
    }

    /// Blocks until every job enqueued so far has been shipped (tests:
    /// replication is asynchronous, so assertions need a barrier).
    pub fn drain(&self) {
        let (done_tx, done_rx) = mpsc::channel();
        let _ = self.tx.send(Job::Barrier(done_tx));
        let _ = done_rx.recv_timeout(std::time::Duration::from_secs(10));
    }
}

impl Drop for Primary {
    fn drop(&mut self) {
        let _ = self.tx.send(Job::Stop);
        if let Some(t) = self.ship.take() {
            let _ = t.join();
        }
    }
}

impl Handler for Primary {
    fn handle(&self, request: Bytes) -> Bytes {
        // Hold the server's accounting span across our own decode and
        // encode, so busy/concurrency metrics cover the full in-handler
        // time on clustered servers too.
        let _guard = self.server.begin_request();
        let (req, hello_caps) = match Request::decode_full(request) {
            Ok(decoded) => decoded,
            Err(e) => {
                return Reply::Error {
                    message: format!("bad request: {e}"),
                }
                .encode()
            }
        };
        if let Request::AttachBackup { addr } = &req {
            self.attached.fetch_add(1, Ordering::SeqCst);
            let _ = self.tx.send(Job::AttachAddr(addr.clone()));
            return Reply::Replicated { acked_version: 0 }.encode();
        }
        // Committed diffs are enqueued by the commit hook, under the
        // owning segment's write lock — not here, where concurrent
        // replies could be observed out of commit order.
        let mut reply = self.server.dispatch(&req);
        if let Reply::Welcome { replicas, .. } | Reply::Frontier { replicas, .. } = &mut reply {
            // Advertise the live backup set so clients can discover —
            // and, after a prune, evict — read replicas.
            *replicas = self.advertised.lock().expect("advertised set").clone();
        }
        // The server's caps-aware encoder: negotiates on Hello, serves
        // diffs in the client's revision, accounts wire bytes.
        self.server.encode_reply(&req, hello_caps, &reply)
    }
}

/// The serving face of a backup replica: delegates the read path
/// (`Hello`, `Open`, relaxed `Poll`s, shared `Acquire`s, replication
/// traffic) to the wrapped [`Server`] and refuses write-shaped requests
/// with [`Reply::NotPrimary`], optionally pointing at the primary. A
/// `Poll` carrying a non-zero version floor is a replica-routed read:
/// the wrapped server answers it from the replicated state, refusing
/// with `NotFresh` when it has not caught up to the floor — so a backup
/// can serve relaxed-coherence reads without ever being able to serve
/// one staler than the client's predicate allows.
///
/// Built [`Backup::promotable`], the face additionally *promotes*: the
/// first failover-marked `Hello` (how a client that lost the primary
/// re-registers — see [`Server::hello`]) flips the node to its inner
/// [`Primary`] handler for good, so a dead primary's clients land on a
/// fully writable, replication-capable survivor. While the primary
/// lives, writes still bounce.
pub struct Backup {
    server: Arc<Server>,
    primary: Option<String>,
    /// The full primary face to serve once promoted (`iwsrv
    /// --backup-of` wires the node's own [`Primary`] wrapper here).
    inner: Option<Arc<dyn Handler>>,
    /// Latched by the first failover-marked `Hello`.
    promoted: AtomicBool,
    /// `cluster.replica_reads_served_total` — floored polls this backup
    /// answered (`UpToDate` or `Update`).
    reads_served: Arc<Counter>,
    /// `cluster.replica_not_fresh_total` — floored polls refused
    /// because this backup trailed the requested floor.
    not_fresh: Arc<Counter>,
    /// `cluster.write_redirects_total` — write-shaped requests bounced
    /// with `NotPrimary`.
    redirects: Arc<Counter>,
    /// `cluster.promotions_total` — failover-marked `Hello`s that
    /// flipped this backup to its primary face (0 or 1 per process).
    promotions: Arc<Counter>,
}

impl std::fmt::Debug for Backup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Backup")
            .field("primary", &self.primary)
            .finish_non_exhaustive()
    }
}

impl Backup {
    /// Wraps `server` as a read-serving backup. `primary` is the dial
    /// address redirected writers should use, when known. Never
    /// promotes — writes bounce for the process lifetime.
    pub fn new(server: Arc<Server>, primary: Option<String>) -> Self {
        let registry = server.registry().clone();
        Backup {
            reads_served: registry.counter("cluster.replica_reads_served_total"),
            not_fresh: registry.counter("cluster.replica_not_fresh_total"),
            redirects: registry.counter("cluster.write_redirects_total"),
            promotions: registry.counter("cluster.promotions_total"),
            inner: None,
            promoted: AtomicBool::new(false),
            server,
            primary,
        }
    }

    /// As [`Backup::new`], but with a full primary face (`inner`, a
    /// [`Primary`] wrapping the *same* `server`) that takes over
    /// permanently when a failover-marked `Hello` arrives — the
    /// standalone-daemon shape, where a backup must be able to survive
    /// its primary.
    pub fn promotable(
        inner: Arc<dyn Handler>,
        server: Arc<Server>,
        primary: Option<String>,
    ) -> Self {
        let mut b = Backup::new(server, primary);
        b.inner = Some(inner);
        b
    }

    /// `true` once a failover-marked `Hello` flipped this node to its
    /// primary face.
    pub fn is_promoted(&self) -> bool {
        self.promoted.load(Ordering::SeqCst)
    }

    /// The wrapped server (benchmarks and tests).
    pub fn server(&self) -> &Arc<Server> {
        &self.server
    }
}

impl Handler for Backup {
    fn handle(&self, request: Bytes) -> Bytes {
        if let Some(inner) = &self.inner {
            if self.promoted.load(Ordering::SeqCst) {
                return inner.handle(request);
            }
            // Peek for the promotion trigger before the redirect face
            // sees it: a failover-marked `Hello` means the primary is
            // dead as far as that client could tell, and somebody has
            // to own the version chain from here on.
            if let Ok(Request::Hello { info }) = Request::decode(request.clone()) {
                if info.contains("failover") {
                    self.promoted.store(true, Ordering::SeqCst);
                    self.promotions.inc();
                    return inner.handle(request);
                }
            }
        }
        let _guard = self.server.begin_request();
        let (req, hello_caps) = match Request::decode_full(request) {
            Ok(decoded) => decoded,
            Err(e) => {
                return Reply::Error {
                    message: format!("bad request: {e}"),
                }
                .encode()
            }
        };
        match &req {
            // Write-shaped requests mutate the version chain, which only
            // the primary owns. (A diff-less `Release` is a read-lock
            // release and passes through.)
            Request::Acquire {
                mode: iw_proto::LockMode::Write,
                ..
            }
            | Request::Release { diff: Some(_), .. }
            | Request::Commit { .. }
            | Request::AttachBackup { .. } => {
                self.redirects.inc();
                Reply::NotPrimary {
                    primary: self.primary.clone(),
                }
                .encode()
            }
            Request::Poll { floor, .. } if *floor > 0 => {
                let reply = self.server.dispatch(&req);
                match &reply {
                    Reply::NotFresh { .. } => self.not_fresh.inc(),
                    Reply::UpToDate | Reply::Update { .. } => self.reads_served.inc(),
                    _ => {}
                }
                // Replica-served updates ride the negotiated revision
                // too — read replicas must not undo the compaction.
                self.server.encode_reply(&req, hello_caps, &reply)
            }
            _ => {
                let reply = self.server.dispatch(&req);
                self.server.encode_reply(&req, hello_caps, &reply)
            }
        }
    }
}

/// Delivers one diff to one backup, falling back to a full image on a
/// version gap. Returns `false` if the backup's channel died.
fn ship_one(
    backup: &mut BackupLink,
    segment: &str,
    diff: &SegmentDiff,
    server: &Server,
    metrics: &ShipMetrics,
) -> bool {
    if backup.acked.get(segment).copied().unwrap_or(0) >= diff.to_version {
        return true; // already has it (e.g. from the attach-time sync)
    }
    let req = Request::Replicate {
        segment: segment.to_string(),
        from_version: diff.from_version,
        diff: diff.clone(),
    };
    match backup.transport.request(&req) {
        Ok(Reply::Replicated { acked_version }) => {
            backup.acked.insert(segment.to_string(), acked_version);
            metrics.diffs_shipped.inc();
            true
        }
        Ok(_) => {
            // Version gap (or any server-side refusal): catch up with a
            // full image.
            metrics.ship_errors.inc();
            metrics.resyncs.inc();
            sync_one(backup, segment, server, metrics)
        }
        Err(_) => {
            metrics.ship_errors.inc();
            false
        }
    }
}

/// Ships a full checkpoint image of `segment` to one backup. Returns
/// `false` if the backup's channel died.
fn sync_one(
    backup: &mut BackupLink,
    segment: &str,
    server: &Server,
    metrics: &ShipMetrics,
) -> bool {
    let image = match server.with_segment_mut(segment, checkpoint::encode_segment) {
        Some(Ok(image)) => image,
        // Vanished or unencodable: skip, don't kill the link.
        Some(Err(_)) | None => return true,
    };
    let req = Request::SyncFull {
        segment: segment.to_string(),
        image: image.clone(),
    };
    match backup.transport.request(&req) {
        Ok(Reply::Replicated { acked_version }) => {
            backup.acked.insert(segment.to_string(), acked_version);
            metrics.syncs_shipped.inc();
            metrics.catchup_bytes.add(image.len() as u64);
            true
        }
        Ok(_) | Err(_) => {
            metrics.ship_errors.inc();
            false
        }
    }
}

/// Brings a newly attached backup fully up to date.
fn attach(
    mut backup: BackupLink,
    backups: &mut Vec<BackupLink>,
    server: &Server,
    metrics: &ShipMetrics,
) {
    // One Hello probe negotiates the ship link's wire caps: a current
    // backup answers with a capability trailer and every subsequent
    // Replicate body rides the compact v2 revision; an old backup
    // answers without one and the link stays on v1. Probe failures are
    // ignored — a dead transport surfaces in the sync loop below.
    let _ = backup.transport.request(&Request::Hello {
        info: "iw-cluster ship-link".into(),
    });
    for name in server.segment_names() {
        if !sync_one(&mut backup, &name, server, metrics) {
            backup.dead = true;
            break;
        }
    }
    if !backup.dead {
        backups.push(backup);
    }
    metrics
        .backups
        .set(backups.iter().filter(|b| !b.dead).count() as i64);
}

fn ship_loop(
    rx: &mpsc::Receiver<Job>,
    server: &Arc<Server>,
    metrics: &ShipMetrics,
    attached: &AtomicUsize,
    advertised: &Mutex<Vec<String>>,
) {
    let mut backups: Vec<BackupLink> = Vec::new();
    // Pre-resolved per-segment lag gauges (the registry's name map is a
    // lock; resolve each gauge once, not per shipped diff).
    let mut lag: HashMap<String, Arc<Gauge>> = HashMap::new();
    // Discards dead links — transport, acked map and all — so re-attached
    // backups cannot inherit stale per-segment ack state, then republishes
    // the live count. A failed attach or a death drops the count; pending
    // attaches re-raise it via fetch_add, and any diffs skipped at zero
    // are covered by the pending attach's full sync. The client-facing
    // advertised replica set is rebuilt from the survivors in the same
    // pass: pruning a dead backup evicts it from what clients are told,
    // so no new reader is routed at a replica the primary gave up on.
    let prune_and_refresh = |backups: &mut Vec<BackupLink>| {
        let before = backups.len();
        backups.retain(|b| !b.dead);
        let pruned = before - backups.len();
        if pruned > 0 {
            metrics.backups_pruned.add(pruned as u64);
        }
        metrics.backups.set(backups.len() as i64);
        attached.store(backups.len(), Ordering::SeqCst);
        *advertised.lock().expect("advertised set") = backups
            .iter()
            .filter_map(|b| b.addr.clone())
            .collect::<Vec<_>>();
    };
    while let Ok(job) = rx.recv() {
        match job {
            Job::Stop => break,
            Job::Barrier(done) => {
                let _ = done.send(());
            }
            Job::Attach(transport) => {
                attach(
                    BackupLink {
                        transport,
                        addr: None,
                        acked: HashMap::new(),
                        dead: false,
                    },
                    &mut backups,
                    server,
                    metrics,
                );
                prune_and_refresh(&mut backups);
            }
            Job::AttachAddr(addr) => {
                // A backup re-announcing itself (retried `--backup-of`,
                // restart with the same address) must not open a second
                // stream; the existing live link already covers it.
                if backups
                    .iter()
                    .any(|b| !b.dead && b.addr.as_deref() == Some(addr.as_str()))
                {
                    prune_and_refresh(&mut backups);
                    continue;
                }
                let Ok(sockaddr) = addr.parse::<SocketAddr>() else {
                    metrics.ship_errors.inc();
                    prune_and_refresh(&mut backups);
                    continue;
                };
                match TcpTransport::connect(sockaddr) {
                    Ok(t) => attach(
                        BackupLink {
                            transport: Box::new(t),
                            addr: Some(addr),
                            acked: HashMap::new(),
                            dead: false,
                        },
                        &mut backups,
                        server,
                        metrics,
                    ),
                    Err(_) => metrics.ship_errors.inc(),
                }
                prune_and_refresh(&mut backups);
            }
            Job::Ship { segment, diff } => {
                for backup in &mut backups {
                    if backup.dead {
                        continue;
                    }
                    if !ship_one(backup, &segment, &diff, server, metrics) {
                        backup.dead = true;
                    }
                }
                prune_and_refresh(&mut backups);
                // Lag = newest shipped version minus the slowest
                // backup's ack. Zero backups means nothing to lag behind.
                let min_acked = backups
                    .iter()
                    .map(|b| b.acked.get(&segment).copied().unwrap_or(0))
                    .min();
                if let Some(min_acked) = min_acked {
                    lag.entry(segment.clone())
                        .or_insert_with(|| {
                            metrics.registry.gauge(&format!("cluster.lag.{segment}"))
                        })
                        .set(diff.to_version.saturating_sub(min_acked) as i64);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iw_proto::msg::LockMode;
    use iw_proto::{Coherence, Loopback};
    use iw_types::desc::TypeDesc;
    use iw_wire::diff::NewBlock;

    fn seed_diff(from: u64) -> SegmentDiff {
        SegmentDiff {
            from_version: from,
            to_version: from + 1,
            new_types: if from == 0 {
                vec![(0, TypeDesc::int32())]
            } else {
                vec![]
            },
            new_blocks: vec![NewBlock {
                serial: from as u32,
                name: None,
                type_serial: 0,
                count: 4,
                data: Bytes::from(vec![from as u8; 16]),
            }],
            ..Default::default()
        }
    }

    fn write_version(primary: &Arc<Primary>, client: u64, from: u64) {
        let mut t = Loopback::new(primary.clone());
        let r = t
            .request(&Request::Acquire {
                client,
                segment: "h/s".into(),
                mode: LockMode::Write,
                have_version: from,
                coherence: Coherence::Full,
            })
            .unwrap();
        assert!(matches!(r, Reply::Granted { .. }), "{r:?}");
        let r = t
            .request(&Request::Release {
                client,
                segment: "h/s".into(),
                diff: Some(seed_diff(from)),
            })
            .unwrap();
        assert_eq!(r, Reply::Released { version: from + 1 });
    }

    /// Primary + one loopback backup server.
    fn cluster() -> (Arc<Primary>, Arc<Server>) {
        let backup = Arc::new(Server::new());
        let primary = Arc::new(Primary::new(Server::new()));
        primary.add_backup(Box::new(Loopback::new(backup.clone())));
        // Settle the attach before the test opens segments, so each
        // test sees a deterministic ship sequence (otherwise the
        // attach-time sync can race ahead of the first writes and
        // legitimately absorb them).
        primary.drain();
        (primary, backup)
    }

    fn connect(primary: &Arc<Primary>) -> (Loopback, u64) {
        let mut t = Loopback::new(primary.clone());
        let Reply::Welcome { client, .. } =
            t.request(&Request::Hello { info: "t".into() }).unwrap()
        else {
            panic!("no welcome")
        };
        t.request(&Request::Open {
            client,
            segment: "h/s".into(),
        })
        .unwrap();
        (t, client)
    }

    #[test]
    fn diffs_stream_to_backup() {
        let (primary, backup) = cluster();
        let (_t, client) = connect(&primary);
        for v in 0..3 {
            write_version(&primary, client, v);
        }
        primary.drain();
        assert_eq!(backup.segment_version("h/s"), Some(3));
        let snap = primary.server().metrics_snapshot();
        assert_eq!(snap.counter("cluster.diffs_shipped_total"), Some(3));
        let bsnap = backup.metrics_snapshot();
        assert_eq!(bsnap.counter("cluster.diffs_applied_total"), Some(3));
    }

    #[test]
    fn late_backup_catches_up_with_full_image() {
        let primary = Arc::new(Primary::new(Server::new()));
        let (_t, client) = connect(&primary);
        for v in 0..2 {
            write_version(&primary, client, v);
        }
        // Backup joins after two versions already exist.
        let backup = Arc::new(Server::new());
        primary.add_backup(Box::new(Loopback::new(backup.clone())));
        primary.drain();
        assert_eq!(backup.segment_version("h/s"), Some(2));
        // Attach-time sync made the backup bit-identical.
        let image = backup
            .with_segment_mut("h/s", |seg| checkpoint::encode_segment(seg).unwrap())
            .unwrap();
        assert_eq!(
            primary
                .server()
                .with_segment_mut("h/s", |seg| checkpoint::encode_segment(seg).unwrap())
                .unwrap(),
            image
        );
        // And the diff stream continues from there.
        write_version(&primary, client, 2);
        primary.drain();
        assert_eq!(backup.segment_version("h/s"), Some(3));
        let snap = primary.server().metrics_snapshot();
        assert_eq!(snap.counter("cluster.sync_full_total"), Some(1));
        assert!(snap.counter("cluster.catchup_bytes_shipped_total").unwrap() > 0);
    }

    #[test]
    fn version_gap_triggers_full_sync() {
        let (primary, backup) = cluster();
        let (_t, client) = connect(&primary);
        write_version(&primary, client, 0);
        primary.drain();
        assert_eq!(backup.segment_version("h/s"), Some(1));
        // A version applied behind the replication stream's back (as if
        // shipped diffs were lost) opens a gap.
        primary
            .server()
            .with_segment_mut("h/s", |seg| seg.apply_diff(&seed_diff(1)).unwrap())
            .unwrap();
        write_version(&primary, client, 2);
        primary.drain();
        assert_eq!(backup.segment_version("h/s"), Some(3));
        let snap = primary.server().metrics_snapshot();
        assert_eq!(snap.counter("cluster.sync_full_total"), Some(1));
        // The gap forced a mid-stream resync (attach-time catch-up
        // would not count).
        assert_eq!(snap.counter("cluster.resyncs_total"), Some(1));
        let bsnap = backup.metrics_snapshot();
        assert_eq!(bsnap.counter("cluster.sync_full_applied_total"), Some(1));
    }

    #[test]
    fn dead_backup_is_skipped_live_one_keeps_streaming() {
        let (primary, backup) = cluster();
        // Second backup whose channel drops every request.
        let flaky_srv = Arc::new(Server::new());
        let mut flaky = Loopback::new(flaky_srv.clone());
        flaky.drop_every(1);
        primary.add_backup(Box::new(flaky));

        let (_t, client) = connect(&primary);
        for v in 0..3 {
            write_version(&primary, client, v);
        }
        primary.drain();
        assert_eq!(backup.segment_version("h/s"), Some(3));
        assert!(flaky_srv.segment_version("h/s").is_none());
        let snap = primary.server().metrics_snapshot();
        assert!(snap.counter("cluster.ship_errors_total").unwrap() > 0);
        assert_eq!(snap.gauge("cluster.backups"), Some(1));
    }

    #[test]
    fn dead_backup_is_pruned_and_reattach_starts_fresh() {
        let (primary, backup) = cluster();
        // A backup whose channel dies on its first shipped diff.
        let flaky_srv = Arc::new(Server::new());
        let mut flaky = Loopback::new(flaky_srv.clone());
        flaky.drop_every(1);
        primary.add_backup(Box::new(flaky));
        // Settle the attach while no segments exist, so the link dies on
        // a shipped diff (the pruning path under test), not mid-attach.
        primary.drain();
        let (_t, client) = connect(&primary);
        write_version(&primary, client, 0);
        primary.drain();
        let snap = primary.server().metrics_snapshot();
        // The dead link — acked-version map and all — was discarded,
        // not just skipped.
        assert_eq!(snap.counter("cluster.backups_pruned_total"), Some(1));
        assert_eq!(snap.gauge("cluster.backups"), Some(1));
        // A replacement attaches cleanly and full-syncs from scratch.
        let fresh = Arc::new(Server::new());
        primary.add_backup(Box::new(Loopback::new(fresh.clone())));
        primary.drain();
        assert_eq!(fresh.segment_version("h/s"), Some(1));
        let snap = primary.server().metrics_snapshot();
        assert_eq!(snap.gauge("cluster.backups"), Some(2));
        // Both survivors keep streaming.
        write_version(&primary, client, 1);
        primary.drain();
        assert_eq!(backup.segment_version("h/s"), Some(2));
        assert_eq!(fresh.segment_version("h/s"), Some(2));
    }

    #[test]
    fn reannounced_backup_addr_attaches_once() {
        let backup = Arc::new(Server::new());
        let srv =
            iw_proto::TcpServer::spawn("127.0.0.1:0".parse().unwrap(), backup.clone()).unwrap();
        let primary = Arc::new(Primary::new(Server::new()));
        let (mut t, client) = connect(&primary);
        let announce = Request::AttachBackup {
            addr: srv.addr().to_string(),
        };
        // The backup announces twice (e.g. a retried `--backup-of`
        // loop); the second announcement must not open a second stream.
        assert!(matches!(
            t.request(&announce).unwrap(),
            Reply::Replicated { .. }
        ));
        primary.drain();
        assert!(matches!(
            t.request(&announce).unwrap(),
            Reply::Replicated { .. }
        ));
        primary.drain();
        let snap = primary.server().metrics_snapshot();
        assert_eq!(snap.gauge("cluster.backups"), Some(1));
        write_version(&primary, client, 0);
        primary.drain();
        // One link ⇒ the diff was shipped exactly once.
        let snap = primary.server().metrics_snapshot();
        assert_eq!(snap.counter("cluster.diffs_shipped_total"), Some(1));
        assert_eq!(backup.segment_version("h/s"), Some(1));
    }

    #[test]
    fn committed_transaction_diffs_replicate() {
        let (primary, backup) = cluster();
        let (mut t, client) = connect(&primary);
        let r = t
            .request(&Request::Acquire {
                client,
                segment: "h/s".into(),
                mode: LockMode::Write,
                have_version: 0,
                coherence: Coherence::Full,
            })
            .unwrap();
        assert!(matches!(r, Reply::Granted { .. }));
        let r = t
            .request(&Request::Commit {
                client,
                entries: vec![("h/s".into(), Some(seed_diff(0)))],
            })
            .unwrap();
        assert!(matches!(r, Reply::Committed { .. }), "{r:?}");
        primary.drain();
        assert_eq!(backup.segment_version("h/s"), Some(1));
    }

    #[test]
    fn lag_gauge_tracks_slowest_backup() {
        let (primary, _backup) = cluster();
        let (_t, client) = connect(&primary);
        write_version(&primary, client, 0);
        primary.drain();
        let snap = primary.server().metrics_snapshot();
        assert_eq!(snap.gauge("cluster.lag.h/s"), Some(0));
    }

    #[test]
    fn recovered_primary_reships_from_persisted_frontier() {
        use iw_server::{DurabilityMode, DurableOptions};
        let dir = std::env::temp_dir().join(format!("iw-cluster-dur-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = DurableOptions {
            mode: DurabilityMode::WalCheckpoint,
            fsync: false,
            ..DurableOptions::default()
        };
        {
            // A durable primary commits three versions, then "crashes"
            // (dropped without shipping anywhere).
            let (server, _) = Server::with_durability(dir.clone(), opts.clone()).unwrap();
            let primary = Arc::new(Primary::new(server));
            let (_t, client) = connect(&primary);
            for v in 0..3 {
                write_version(&primary, client, v);
            }
        }
        // Restart from disk: the recovered primary's persisted frontier
        // (v3) is what attach-time catch-up ships to a fresh backup.
        let (server, rec) = Server::with_durability(dir.clone(), opts).unwrap();
        assert!(rec.warnings.is_empty(), "{:?}", rec.warnings);
        let primary = Arc::new(Primary::new(server));
        let backup = Arc::new(Server::new());
        primary.add_backup(Box::new(Loopback::new(backup.clone())));
        primary.drain();
        assert_eq!(backup.segment_version("h/s"), Some(3));
        let image = |s: &Arc<Server>| {
            s.with_segment_mut("h/s", |seg| checkpoint::encode_segment(seg).unwrap())
                .unwrap()
        };
        assert_eq!(image(primary.server()), image(&backup));
        // The replication stream continues past the recovered frontier.
        let (_t, client) = connect(&primary);
        write_version(&primary, client, 3);
        primary.drain();
        assert_eq!(backup.segment_version("h/s"), Some(4));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_release_is_not_replicated() {
        let (primary, backup) = cluster();
        let (mut t, client) = connect(&primary);
        // Release with a diff but no write lock: server refuses, and the
        // refused diff must not reach the backup.
        let r = t
            .request(&Request::Release {
                client,
                segment: "h/s".into(),
                diff: Some(seed_diff(0)),
            })
            .unwrap();
        assert!(matches!(r, Reply::Error { .. }));
        primary.drain();
        assert_eq!(backup.segment_version("h/s"), None);
    }
}
