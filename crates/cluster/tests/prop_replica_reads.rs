//! Property test: random interleavings of writes, replica ships and
//! relaxed-coherence reads against a model checker.
//!
//! One writer commits versions through the primary; two backups are
//! brought forward at arbitrary points with the same full images the
//! ship thread uses; two reader sessions — each under a randomly drawn
//! coherence model — read through the replica fan-out path. The slot
//! `clu/data#x` always holds the version that committed it, so every
//! read is self-checking. For each read the model asserts:
//!
//! 1. **No torn read**: `value == version` (the reply was one committed
//!    snapshot, whichever node served it).
//! 2. **No future read**: `version <= primary's committed version`.
//! 3. **Per-reader monotonicity**: a session never observes the
//!    segment moving backwards, no matter which replica answered.
//! 4. **Coherence predicate**: a *replica-served* read is no staler
//!    than the model's floor — `best_known - x` under `Delta(x)`, the
//!    reader's confirmed frontier under `Temporal`/`Diff` — where the
//!    model tracks a sound lower bound of the client's `best_known`
//!    (the largest version the reader has ever observed).
//! 5. The client-side violation counter stays zero (the server-side
//!    floor check never let a stale reply through).

use std::sync::Arc;

use iw_cluster::Backup;
use iw_core::{Connector, SegHandle, Session};
use iw_proto::msg::{Reply, Request};
use iw_proto::{Coherence, Handler, Loopback, Transport};
use iw_server::{checkpoint, Server};
use iw_types::desc::TypeDesc;
use iw_types::MachineArch;
use proptest::prelude::*;

const SEG: &str = "clu/data";
const BACKUPS: usize = 2;
const READERS: usize = 2;

#[derive(Debug, Clone, Copy)]
enum Op {
    /// Commit the next version through the primary.
    Write,
    /// Bring backup `i` forward to the primary's current version.
    Ship(usize),
    /// One locked read on reader `i`.
    Read(usize),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    let op = prop_oneof![
        3 => Just(Op::Write),
        2 => (0..BACKUPS).prop_map(Op::Ship),
        4 => (0..READERS).prop_map(Op::Read),
    ];
    prop::collection::vec(op, 1..40)
}

fn coherence() -> impl Strategy<Value = Coherence> {
    prop_oneof![
        Just(Coherence::Full),
        (0u32..3).prop_map(Coherence::Delta),
        Just(Coherence::Temporal(0)),
        // Large enough that the staleness window never expires
        // mid-test: Temporal stays deterministic under a real clock.
        Just(Coherence::Temporal(3_600_000)),
        Just(Coherence::Diff(0)),
        Just(Coherence::Diff(2_500)),
    ]
}

fn connector(h: &Arc<dyn Handler>) -> Connector {
    let h = h.clone();
    Box::new(move || Ok(Box::new(Loopback::new(h.clone())) as Box<dyn Transport>))
}

fn session(primary: &Arc<Server>, replicas: &[Arc<dyn Handler>]) -> Session {
    let scratch: Arc<dyn Handler> = Arc::new(Server::new());
    let mut s = Session::new(MachineArch::x86(), Box::new(Loopback::new(scratch))).unwrap();
    let ph: Arc<dyn Handler> = primary.clone();
    s.add_server_group("clu", vec![connector(&ph)]).unwrap();
    s.add_read_replicas("clu", replicas.iter().map(connector).collect())
        .unwrap();
    s
}

/// The ship thread's catch-up: a full image, primary → backup.
fn ship(primary: &Arc<Server>, backup: &Arc<Server>) {
    let image = primary
        .with_segment_mut(SEG, |seg| {
            checkpoint::encode_segment(seg).expect("image encodes")
        })
        .expect("segment exists");
    let reply = backup.handle_request(&Request::SyncFull {
        segment: SEG.to_string(),
        image,
    });
    assert!(matches!(reply, Reply::Replicated { .. }), "{reply:?}");
}

fn counter(s: &Session, name: &str) -> u64 {
    s.metrics_snapshot().counter(name).unwrap_or(0)
}

/// What the model knows about one reader.
#[derive(Debug, Default, Clone, Copy)]
struct ReaderModel {
    /// Last version this reader observed (monotonicity).
    last: u64,
    /// Largest version ever observed: a sound lower bound of the
    /// client's `best_known` frontier, hence of any replica floor.
    known: u64,
}

fn model_floor(coherence: Coherence, known: u64) -> u64 {
    match coherence {
        Coherence::Full => 0,
        Coherence::Delta(x) => known.saturating_sub(u64::from(x)),
        Coherence::Temporal(_) | Coherence::Diff(_) => known,
    }
}

fn run(ops: &[Op], coherences: [Coherence; READERS]) {
    let primary = Arc::new(Server::new());
    let backup_srvs: Vec<Arc<Server>> = (0..BACKUPS).map(|_| Arc::new(Server::new())).collect();
    let backups: Vec<Arc<dyn Handler>> = backup_srvs
        .iter()
        .map(|b| Arc::new(Backup::new(b.clone(), None)) as Arc<dyn Handler>)
        .collect();

    // Seed version 1 (value == version) before any reader opens.
    let mut writer = session(&primary, &[]);
    let hw = writer.open_segment(SEG).unwrap();
    writer.wl_acquire(&hw).unwrap();
    let p = writer
        .malloc(&hw, &TypeDesc::int64(), 1, Some("x"))
        .unwrap();
    writer.write_i64(&p, 1).unwrap();
    writer.wl_release(&hw).unwrap();
    let mut primary_version = 1u64;

    let mut readers: Vec<(Session, SegHandle)> = Vec::new();
    let mut models = [ReaderModel::default(); READERS];
    for (i, model) in models.iter_mut().enumerate() {
        let mut s = session(&primary, &backups);
        let h = s.open_segment(SEG).unwrap();
        s.set_coherence(&h, coherences[i]).unwrap();
        // `Open` confirmed the current primary version to this reader.
        model.known = primary_version;
        readers.push((s, h));
    }

    for &op in ops {
        match op {
            Op::Write => {
                writer.wl_acquire(&hw).unwrap();
                let committing = writer.segment_version(&hw).unwrap() + 1;
                let p = writer.mip_to_ptr("clu/data#x").unwrap();
                writer.write_i64(&p, committing as i64).unwrap();
                writer.wl_release(&hw).unwrap();
                primary_version = committing;
            }
            Op::Ship(b) => ship(&primary, &backup_srvs[b]),
            Op::Read(r) => {
                let (s, h) = &mut readers[r];
                let replica_before = counter(s, "cluster.replica_reads_total");
                s.rl_acquire(h).unwrap();
                let p = s.mip_to_ptr("clu/data#x").unwrap();
                let value = s.read_i64(&p).unwrap();
                let version = s.segment_version(h).unwrap();
                s.rl_release(h).unwrap();
                let replica_served = counter(s, "cluster.replica_reads_total") - replica_before;

                prop_assert_eq!(value, version as i64, "torn read on reader {}", r);
                prop_assert!(
                    version <= primary_version,
                    "future read: reader {} saw v{} with the primary at v{}",
                    r,
                    version,
                    primary_version
                );
                prop_assert!(
                    version >= models[r].last,
                    "reader {} moved backwards: v{} after v{}",
                    r,
                    version,
                    models[r].last
                );
                prop_assert!(replica_served <= 1, "one read, one replica serve at most");
                if replica_served == 1 {
                    prop_assert!(
                        !matches!(coherences[r], Coherence::Full),
                        "Full-coherence read served by a replica"
                    );
                    let floor = model_floor(coherences[r], models[r].known);
                    prop_assert!(
                        version >= floor,
                        "predicate violated: reader {} ({:?}) got v{} below floor v{} \
                         (frontier bound v{})",
                        r,
                        coherences[r],
                        version,
                        floor,
                        models[r].known
                    );
                }
                prop_assert_eq!(
                    counter(s, "cluster.replica_read_violations_total"),
                    0,
                    "server-side floor check let a stale reply through"
                );
                models[r].last = version;
                models[r].known = models[r].known.max(version);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn replica_served_reads_satisfy_their_coherence_predicate(
        ops in ops(),
        c0 in coherence(),
        c1 in coherence(),
    ) {
        run(&ops, [c0, c1]);
    }
}
