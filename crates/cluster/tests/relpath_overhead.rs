//! Ad-hoc release-path overhead measurement (run manually).
use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use iw_cluster::Primary;
use iw_proto::msg::{LockMode, Reply, Request};
use iw_proto::{Coherence, Handler, Loopback, Transport};
use iw_server::Server;
use iw_types::desc::TypeDesc;
use iw_wire::diff::{NewBlock, SegmentDiff};

fn seed_diff(from: u64) -> SegmentDiff {
    SegmentDiff {
        from_version: from,
        to_version: from + 1,
        new_types: if from == 0 {
            vec![(0, TypeDesc::int32())]
        } else {
            vec![]
        },
        new_blocks: vec![NewBlock {
            serial: from as u32,
            name: None,
            type_serial: 0,
            count: 256,
            data: Bytes::from(vec![from as u8; 1024]),
        }],
        ..Default::default()
    }
}

fn run(handler: Arc<dyn Handler>, n: u64) -> f64 {
    let mut t = Loopback::new(handler);
    let Reply::Welcome { client, .. } = t.request(&Request::Hello { info: "b".into() }).unwrap()
    else {
        panic!()
    };
    t.request(&Request::Open {
        client,
        segment: "h/s".into(),
    })
    .unwrap();
    let start = Instant::now();
    for v in 0..n {
        t.request(&Request::Acquire {
            client,
            segment: "h/s".into(),
            mode: LockMode::Write,
            have_version: v,
            coherence: Coherence::Full,
        })
        .unwrap();
        t.request(&Request::Release {
            client,
            segment: "h/s".into(),
            diff: Some(seed_diff(v)),
        })
        .unwrap();
    }
    start.elapsed().as_secs_f64() / n as f64 * 1e6
}

#[test]
fn measure() {
    let n = 3000;
    // warmup + measure bare
    let bare: Arc<dyn Handler> = Arc::new(Server::new());
    run(bare, n);
    let bare: Arc<dyn Handler> = Arc::new(Server::new());
    let bare_us = run(bare, n);
    // primary with one backup attached
    let backup: Arc<dyn Handler> = Arc::new(Server::new());
    let p = Primary::new(Server::new());
    p.add_backup(Box::new(Loopback::new(backup)));
    p.drain();
    let ph: Arc<dyn Handler> = Arc::new(p);
    let prim_us = run(ph, n);
    // primary with no backup: isolates the synchronous enqueue overhead
    let p0 = Primary::new(Server::new());
    let ph0: Arc<dyn Handler> = Arc::new(p0);
    let prim0_us = run(ph0, n);
    eprintln!("bare: {bare_us:.2} us, primary+0 backups: {prim0_us:.2} us ({:.2}%), primary+1 backup: {prim_us:.2} us ({:.2}%)", (prim0_us / bare_us - 1.0) * 100.0, (prim_us / bare_us - 1.0) * 100.0);
}
