//! End-to-end replica-read fan-out: a `Session` whose relaxed-coherence
//! reads are served by a [`Backup`] while the write path and Full reads
//! stay pinned to the [`Primary`].
//!
//! The value stored at `clu/data#x` always equals the committed version
//! that wrote it, so every read doubles as a content oracle: a torn or
//! mis-versioned reply shows up as `value != version`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use iw_cluster::{Backup, Primary};
use iw_core::{Connector, SegHandle, Session};
use iw_proto::msg::{LockMode, Reply, Request};
use iw_proto::{Coherence, Handler, Loopback, Transport};
use iw_server::{checkpoint, Server};
use iw_types::desc::TypeDesc;
use iw_types::MachineArch;
use iw_wire::diff::{NewBlock, SegmentDiff};

fn connector(h: &Arc<dyn Handler>) -> Connector {
    let h = h.clone();
    Box::new(move || Ok(Box::new(Loopback::new(h.clone())) as Box<dyn Transport>))
}

/// A session whose `clu/*` group is the primary, with the given read
/// replicas registered.
fn session(primary: &Arc<Primary>, replicas: &[Arc<dyn Handler>]) -> Session {
    let scratch: Arc<dyn Handler> = Arc::new(Server::new());
    let mut s = Session::new(MachineArch::x86(), Box::new(Loopback::new(scratch))).unwrap();
    let ph: Arc<dyn Handler> = primary.clone();
    s.add_server_group("clu", vec![connector(&ph)]).unwrap();
    s.add_read_replicas("clu", replicas.iter().map(connector).collect())
        .unwrap();
    s
}

/// Seeds `clu/data#x = 1` (version 1: value == version) and returns the
/// writer with its handle.
fn writer(primary: &Arc<Primary>) -> (Session, SegHandle) {
    let mut s = session(primary, &[]);
    let h = s.open_segment("clu/data").unwrap();
    s.wl_acquire(&h).unwrap();
    let p = s.malloc(&h, &TypeDesc::int64(), 1, Some("x")).unwrap();
    s.write_i64(&p, 1).unwrap();
    s.wl_release(&h).unwrap();
    (s, h)
}

/// Commits one more version keeping the `value == version` oracle.
fn bump(s: &mut Session, h: &SegHandle) {
    s.wl_acquire(h).unwrap();
    let committing = s.segment_version(h).unwrap() + 1;
    let p = s.mip_to_ptr("clu/data#x").unwrap();
    s.write_i64(&p, committing as i64).unwrap();
    s.wl_release(h).unwrap();
}

fn counter(s: &Session, name: &str) -> u64 {
    s.metrics_snapshot().counter(name).unwrap_or(0)
}

/// One locked read returning `(value, version)`.
fn read(s: &mut Session, h: &SegHandle) -> (i64, u64) {
    s.rl_acquire(h).unwrap();
    let p = s.mip_to_ptr("clu/data#x").unwrap();
    let v = s.read_i64(&p).unwrap();
    let version = s.segment_version(h).unwrap();
    s.rl_release(h).unwrap();
    (v, version)
}

/// Hand-ships a full image primary → backup (the ship thread's
/// `SyncFull`), pinning the backup at the primary's current version.
fn sync(primary: &Arc<Server>, backup: &Arc<Server>, segment: &str) {
    let image = primary
        .with_segment_mut(segment, |seg| {
            checkpoint::encode_segment(seg).expect("image encodes")
        })
        .expect("segment exists on primary");
    let reply = backup.handle_request(&Request::SyncFull {
        segment: segment.to_string(),
        image,
    });
    assert!(matches!(reply, Reply::Replicated { .. }), "{reply:?}");
}

#[test]
fn relaxed_reads_are_served_by_a_caught_up_backup() {
    let bsrv = Arc::new(Server::new());
    let primary = Arc::new(Primary::new(Server::new()));
    let bh: Arc<dyn Handler> = bsrv.clone();
    primary.add_backup(Box::new(Loopback::new(bh)));
    primary.drain();
    let (mut w, hw) = writer(&primary);
    bump(&mut w, &hw);
    bump(&mut w, &hw); // primary and (after the drain) backup at v3
    primary.drain();
    assert_eq!(bsrv.segment_version("clu/data"), Some(3));

    let backup: Arc<dyn Handler> = Arc::new(Backup::new(bsrv.clone(), None));
    let mut r = session(&primary, std::slice::from_ref(&backup));
    let h = r.open_segment("clu/data").unwrap();
    r.set_coherence(&h, Coherence::Delta(1)).unwrap();

    // First read: the cache is empty, so the update diff itself comes
    // from the backup. Second read: version parity — the backup answers
    // `UpToDate`.
    assert_eq!(read(&mut r, &h), (3, 3));
    assert_eq!(read(&mut r, &h), (3, 3));

    assert_eq!(counter(&r, "cluster.replica_reads_total"), 2);
    assert_eq!(counter(&r, "cluster.replica_read_fallbacks_total"), 0);
    assert_eq!(counter(&r, "cluster.replica_read_violations_total"), 0);
    // Both floored polls landed on the backup, none on the primary.
    assert_eq!(
        bsrv.metrics_snapshot()
            .counter("cluster.replica_reads_served_total"),
        Some(2)
    );
    // The write path never touched the replica machinery.
    assert_eq!(counter(&w, "cluster.replica_reads_total"), 0);
}

#[test]
fn stale_backup_refuses_and_the_primary_serves() {
    let primary = Arc::new(Primary::new(Server::new()));
    let bsrv = Arc::new(Server::new());
    let (mut w, hw) = writer(&primary);
    // Pin the backup at v1, then advance the primary to v3: the backup
    // trails the Delta(1) floor (v2).
    sync(primary.server(), &bsrv, "clu/data");
    bump(&mut w, &hw);
    bump(&mut w, &hw);

    let backup: Arc<dyn Handler> = Arc::new(Backup::new(bsrv.clone(), None));
    let mut r = session(&primary, std::slice::from_ref(&backup));
    let h = r.open_segment("clu/data").unwrap();
    r.set_coherence(&h, Coherence::Delta(1)).unwrap();

    // The backup refuses (`NotFresh`), the primary serves, the caller
    // never notices.
    assert_eq!(read(&mut r, &h), (3, 3));
    assert_eq!(counter(&r, "cluster.replica_reads_total"), 0);
    assert_eq!(counter(&r, "cluster.replica_not_fresh_total"), 1);
    assert_eq!(counter(&r, "cluster.replica_read_fallbacks_total"), 1);
    assert_eq!(
        bsrv.metrics_snapshot()
            .counter("cluster.replica_not_fresh_total"),
        Some(1)
    );
    // The refusal recorded the backup's version; its lag is observable.
    assert_eq!(
        r.metrics_snapshot().gauge("cluster.replica_lag.clu.r0"),
        Some(2)
    );

    // Once the backup catches up, the same session offloads again.
    sync(primary.server(), &bsrv, "clu/data");
    assert_eq!(read(&mut r, &h), (3, 3));
    assert_eq!(counter(&r, "cluster.replica_reads_total"), 1);
    assert_eq!(counter(&r, "cluster.replica_read_violations_total"), 0);
}

#[test]
fn aged_temporal_anchor_probes_the_frontier_then_offloads() {
    let bsrv = Arc::new(Server::new());
    let primary = Arc::new(Primary::new(Server::new()));
    let bh: Arc<dyn Handler> = bsrv.clone();
    primary.add_backup(Box::new(Loopback::new(bh)));
    primary.drain();
    let (mut w, hw) = writer(&primary);
    primary.drain(); // backup at v1

    let backup: Arc<dyn Handler> = Arc::new(Backup::new(bsrv.clone(), None));
    let mut r = session(&primary, std::slice::from_ref(&backup));
    let h = r.open_segment("clu/data").unwrap();
    r.set_coherence(&h, Coherence::Temporal(300)).unwrap();
    // Initial fetch: the anchor from `Open` is fresh, so even this first
    // read is replica-served.
    assert_eq!(read(&mut r, &h), (1, 1));
    assert_eq!(counter(&r, "cluster.replica_reads_total"), 1);
    let base_probes = counter(&r, "cluster.frontier_probes_total");

    bump(&mut w, &hw); // v2
    primary.drain();
    std::thread::sleep(Duration::from_millis(350));

    // The anchor aged out: one cheap frontier probe against the primary
    // re-arms it, and the heavy diff fetch still lands on the backup.
    assert_eq!(read(&mut r, &h), (2, 2));
    assert_eq!(
        counter(&r, "cluster.frontier_probes_total"),
        base_probes + 1
    );
    assert_eq!(counter(&r, "cluster.replica_reads_total"), 2);

    // Within the staleness window the read is satisfied locally — no
    // network traffic at all.
    assert_eq!(read(&mut r, &h), (2, 2));
    assert_eq!(
        counter(&r, "cluster.frontier_probes_total"),
        base_probes + 1
    );
    assert_eq!(counter(&r, "cluster.replica_reads_total"), 2);
    assert_eq!(counter(&r, "cluster.replica_read_violations_total"), 0);
}

#[test]
fn write_shaped_requests_bounce_with_not_primary() {
    let bsrv = Arc::new(Server::new());
    let backup: Arc<dyn Handler> =
        Arc::new(Backup::new(bsrv.clone(), Some("10.1.2.3:7777".into())));
    let mut t = Loopback::new(backup);
    let Reply::Welcome { client, .. } = t.request(&Request::Hello { info: "w".into() }).unwrap()
    else {
        panic!("no welcome")
    };
    t.request(&Request::Open {
        client,
        segment: "clu/data".into(),
    })
    .unwrap();

    let bounced = [
        Request::Acquire {
            client,
            segment: "clu/data".into(),
            mode: LockMode::Write,
            have_version: 0,
            coherence: Coherence::Full,
        },
        Request::Release {
            client,
            segment: "clu/data".into(),
            diff: Some(SegmentDiff::default()),
        },
        Request::Commit {
            client,
            entries: vec![],
        },
        Request::AttachBackup {
            addr: "127.0.0.1:1".into(),
        },
    ];
    for req in bounced {
        assert_eq!(
            t.request(&req).unwrap(),
            Reply::NotPrimary {
                primary: Some("10.1.2.3:7777".into())
            },
            "{req:?} must be redirected"
        );
    }
    assert_eq!(
        bsrv.metrics_snapshot()
            .counter("cluster.write_redirects_total"),
        Some(4)
    );

    // Read-shaped traffic passes through to the replicated state: a
    // shared acquire takes a real (local) read lock and releases it.
    let r = t
        .request(&Request::Acquire {
            client,
            segment: "clu/data".into(),
            mode: LockMode::Read,
            have_version: 0,
            coherence: Coherence::Full,
        })
        .unwrap();
    assert!(matches!(r, Reply::Granted { .. }), "{r:?}");
    let r = t
        .request(&Request::Release {
            client,
            segment: "clu/data".into(),
            diff: None,
        })
        .unwrap();
    assert!(matches!(r, Reply::Released { .. }), "{r:?}");
}

/// A promotable backup (the `iwsrv --backup-of` shape) serves the
/// redirect face while the primary lives, then flips to its inner
/// primary face on the first failover-marked `Hello` — so PR 2's
/// kill-the-primary failover keeps working with the read-replica face
/// in front.
#[test]
fn failover_hello_promotes_a_promotable_backup() {
    let full = Primary::new(Server::new());
    let srv = full.server().clone();
    let backup = Arc::new(Backup::promotable(
        Arc::new(full),
        srv.clone(),
        Some("10.0.0.1:1".into()),
    ));
    let bh: Arc<dyn Handler> = backup.clone();
    let mut t = Loopback::new(bh);

    // While the primary is presumed alive: ordinary clients get the
    // redirect face.
    let Reply::Welcome { client, .. } = t.request(&Request::Hello { info: "w".into() }).unwrap()
    else {
        panic!("no welcome")
    };
    t.request(&Request::Open {
        client,
        segment: "clu/data".into(),
    })
    .unwrap();
    assert_eq!(
        t.request(&Request::Acquire {
            client,
            segment: "clu/data".into(),
            mode: LockMode::Write,
            have_version: 0,
            coherence: Coherence::Full,
        })
        .unwrap(),
        Reply::NotPrimary {
            primary: Some("10.0.0.1:1".into())
        }
    );
    assert!(!backup.is_promoted());

    // A client that lost the primary re-registers with the failover
    // marker (`Session::fail_over`'s `Hello`): the backup latches its
    // primary face.
    let Reply::Welcome { client, .. } = t
        .request(&Request::Hello {
            info: "iw client on x86 (failover)".into(),
        })
        .unwrap()
    else {
        panic!("no welcome after failover")
    };
    assert!(backup.is_promoted());

    // The survivor owns the version chain now: writes succeed.
    t.request(&Request::Open {
        client,
        segment: "clu/data".into(),
    })
    .unwrap();
    let r = t
        .request(&Request::Acquire {
            client,
            segment: "clu/data".into(),
            mode: LockMode::Write,
            have_version: 0,
            coherence: Coherence::Full,
        })
        .unwrap();
    assert!(matches!(r, Reply::Granted { .. }), "{r:?}");
    let diff = SegmentDiff {
        from_version: 0,
        to_version: 1,
        new_types: vec![(0, TypeDesc::int32())],
        new_blocks: vec![NewBlock {
            serial: 0,
            name: None,
            type_serial: 0,
            count: 4,
            data: Bytes::from(vec![1u8; 16]),
        }],
        ..Default::default()
    };
    assert_eq!(
        t.request(&Request::Release {
            client,
            segment: "clu/data".into(),
            diff: Some(diff),
        })
        .unwrap(),
        Reply::Released { version: 1 }
    );
    let snap = srv.metrics_snapshot();
    assert_eq!(snap.counter("cluster.promotions_total"), Some(1));
    assert_eq!(snap.counter("cluster.failovers_total"), Some(1));
}

/// Satellite: the primary's dead-backup pruning must also evict the
/// backup from what clients are told, and clients must drop their
/// auto-discovered replica in turn — end to end over real TCP.
#[test]
fn pruned_backup_is_evicted_from_the_advertised_set() {
    let bsrv = Arc::new(Server::new());
    let backup = Arc::new(Backup::new(bsrv.clone(), None));
    let poisoned = Arc::new(AtomicBool::new(false));
    let pb = poisoned.clone();
    let handler: Arc<dyn Handler> = Arc::new(move |req: Bytes| {
        if pb.load(Ordering::SeqCst) {
            return Reply::Error {
                message: "injected: backup down".into(),
            }
            .encode();
        }
        backup.handle(req)
    });
    let srv = iw_proto::TcpServer::spawn("127.0.0.1:0".parse().unwrap(), handler).unwrap();
    let addr = srv.addr().to_string();

    let primary = Arc::new(Primary::new(Server::new()));
    let (mut w, hw) = writer(&primary);
    // The backup announces itself by address, as `iwsrv --backup-of`
    // does.
    let ph: Arc<dyn Handler> = primary.clone();
    let mut t = Loopback::new(ph);
    assert!(matches!(
        t.request(&Request::AttachBackup { addr: addr.clone() })
            .unwrap(),
        Reply::Replicated { .. }
    ));
    primary.drain();
    assert_eq!(primary.advertised_replicas(), vec![addr.clone()]);
    let Reply::Welcome { replicas, .. } = t.request(&Request::Hello { info: "x".into() }).unwrap()
    else {
        panic!("no welcome")
    };
    assert_eq!(replicas, vec![addr.clone()]);

    // A session discovers the replica from a frontier probe and serves
    // a relaxed read from it over TCP.
    let mut r = session(&primary, &[]);
    r.refresh_frontier("clu").unwrap();
    assert_eq!(r.read_replica_labels("clu"), vec![addr.clone()]);
    bump(&mut w, &hw);
    bump(&mut w, &hw); // v3
    primary.drain();
    let h = r.open_segment("clu/data").unwrap();
    r.set_coherence(&h, Coherence::Delta(1)).unwrap();
    assert_eq!(read(&mut r, &h), (3, 3));
    assert_eq!(counter(&r, "cluster.replica_reads_total"), 1);

    // The backup dies; the next shipped diff detects it, the primary
    // prunes the link and withdraws the advertisement...
    poisoned.store(true, Ordering::SeqCst);
    bump(&mut w, &hw);
    bump(&mut w, &hw); // v5: two versions past the reader's cache, so
    primary.drain(); // Delta(1) must fetch, not answer from the cache
    assert!(primary.advertised_replicas().is_empty());

    // ...and the client's next probe evicts its auto-discovered replica,
    // so reads fall back to the primary instead of a dead node.
    r.refresh_frontier("clu").unwrap();
    assert!(r.read_replica_labels("clu").is_empty());
    assert_eq!(read(&mut r, &h), (5, 5));
    assert_eq!(counter(&r, "cluster.replica_reads_total"), 1);
    assert_eq!(counter(&r, "cluster.replica_read_violations_total"), 0);
}
