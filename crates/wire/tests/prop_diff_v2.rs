//! Differential proof battery for the v2 diff wire revision.
//!
//! The contract under test: for arbitrary diffs (random type
//! descriptors, block shapes, dirty-run patterns), every wire revision
//! — v1, v2, and v2 with adaptive compression — decodes back to a
//! structurally identical `SegmentDiff`. Structural identity is what
//! `apply` consumes, so identical decodes imply byte-identical applied
//! images whether or not compression was on the wire. Hostile-input
//! lemmas ride along: truncation at every byte offset fails cleanly,
//! and bit-flips anywhere in the envelope (codec tag and varint bytes
//! included) never panic the decoder.

use bytes::Bytes;
use iw_types::desc::TypeDesc;
use iw_wire::codec::WireReader;
use iw_wire::diff::{BlockDiff, DiffRun, DiffWire, NewBlock, SegmentDiff};
use proptest::prelude::*;

fn arb_type() -> impl Strategy<Value = TypeDesc> {
    let leaf = prop_oneof![
        Just(TypeDesc::char8()),
        Just(TypeDesc::int16()),
        Just(TypeDesc::int32()),
        Just(TypeDesc::int64()),
        Just(TypeDesc::float32()),
        Just(TypeDesc::float64()),
        (1u32..300).prop_map(TypeDesc::string),
        Just(TypeDesc::pointer()),
    ];
    leaf.prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            (inner.clone(), 0u32..5).prop_map(|(t, n)| TypeDesc::array(t, n)),
            (prop::collection::vec(inner, 0..4), "[a-z]{1,8}").prop_map(|(tys, name)| {
                TypeDesc::structure(
                    name,
                    tys.iter()
                        .enumerate()
                        .map(|(i, t)| -> (&str, TypeDesc) {
                            (Box::leak(format!("f{i}").into_boxed_str()), t.clone())
                        })
                        .collect(),
                )
            }),
        ]
    })
}

/// Dirty-run payloads with a knob between compressible (repeating) and
/// incompressible (arbitrary) bytes so both codec branches are hit.
fn arb_payload() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        prop::collection::vec(any::<u8>(), 0..64),
        (any::<u8>(), 1usize..512).prop_map(|(b, n)| vec![b; n]),
        (0u8..4, 1usize..128)
            .prop_map(|(k, n)| (0..n).map(|i| ((i as u8) % 7) * k).collect::<Vec<u8>>()),
    ]
}

fn arb_run() -> impl Strategy<Value = DiffRun> {
    (0u64..100_000, 1u64..256, arb_payload()).prop_map(|(start, count, data)| DiffRun {
        start,
        count,
        data: Bytes::from(data),
    })
}

fn arb_diff() -> impl Strategy<Value = SegmentDiff> {
    (
        0u64..1_000_000,
        0u64..32,
        prop::collection::vec(arb_type(), 0..3),
        prop::collection::vec(
            (
                0u32..1000,
                prop::option::of("[a-z]{1,12}"),
                0u32..50,
                1u32..64,
                arb_payload(),
            ),
            0..3,
        ),
        prop::collection::vec((0u32..1000, prop::collection::vec(arb_run(), 0..6)), 0..4),
        prop::collection::vec(0u32..10_000, 0..5),
    )
        .prop_map(|(from, delta, types, blocks, diffs, freed)| SegmentDiff {
            from_version: from,
            to_version: from + delta,
            new_types: types
                .into_iter()
                .enumerate()
                .map(|(i, t)| (i as u32, t))
                .collect(),
            new_blocks: blocks
                .into_iter()
                .map(|(serial, name, type_serial, count, data)| NewBlock {
                    serial,
                    name,
                    type_serial,
                    count,
                    data: Bytes::from(data),
                })
                .collect(),
            block_diffs: diffs
                .into_iter()
                .map(|(serial, runs)| BlockDiff { serial, runs })
                .collect(),
            freed,
            ..Default::default()
        })
}

const FORMATS: [DiffWire; 3] = [
    DiffWire::V1,
    DiffWire::V2 { compress: false },
    DiffWire::V2 { compress: true },
];

fn decode_all(b: Bytes) -> SegmentDiff {
    let mut r = WireReader::new(b);
    let d = SegmentDiff::decode(&mut r).expect("well-formed encoding must decode");
    assert!(r.is_empty(), "decode must consume the full encoding");
    d
}

proptest! {
    /// The differential proof: all three wire revisions of the same
    /// diff decode to structurally identical values, and the varint/
    /// delta revision never loses to v1 on size by more than the
    /// 2-byte envelope.
    #[test]
    fn all_revisions_decode_identically(d in arb_diff()) {
        let v1 = d.encode_as(DiffWire::V1);
        prop_assert_eq!(v1.len(), d.encoded_len_hint(), "hint must be exact");
        for fmt in FORMATS {
            let enc = d.encode_as(fmt);
            let back = decode_all(enc);
            prop_assert_eq!(&back, &d, "{:?} must decode to the original", fmt);
            // Round-trip again through the opposite revision: a decoded
            // diff re-encodes to working bytes in every other format.
            for fmt2 in FORMATS {
                prop_assert_eq!(&decode_all(back.encode_as(fmt2)), &d);
            }
        }
    }

    /// v1 → v2 is a real compaction on realistic shapes: the v2
    /// envelope never exceeds v1 by more than its 2-byte header plus
    /// one worst-case varint per integer field.
    #[test]
    fn v2_never_bloats_materially(d in arb_diff()) {
        let v1 = d.encode_as(DiffWire::V1).len();
        let v2 = d.encode_as(DiffWire::V2 { compress: false }).len();
        // Integer fields whose varint form can exceed the fixed width
        // by at most 2 bytes each (u64) or 1 byte (u32).
        let ints = 2 + 4
            + d.new_types.len()
            + d.new_blocks.len() * 4
            + d.block_diffs.iter().map(|b| 2 + 3 * b.runs.len()).sum::<usize>()
            + d.freed.len();
        prop_assert!(v2 <= v1 + 2 + 2 * ints, "v2 {} vs v1 {}", v2, v1);
    }

    /// Single-bit flips anywhere in the v2 envelope — magic, codec tag,
    /// varint length bytes, payloads — never panic the decoder, and
    /// anything that still decodes must re-encode/decode consistently.
    #[test]
    fn bit_flips_never_panic(d in arb_diff(), pos_seed in any::<u64>(), bit in 0u8..8) {
        for fmt in [DiffWire::V2 { compress: false }, DiffWire::V2 { compress: true }] {
            let enc = d.encode_as(fmt);
            if enc.is_empty() { continue; }
            let pos = (pos_seed % enc.len() as u64) as usize;
            let mut bytes = enc.to_vec();
            bytes[pos] ^= 1 << bit;
            let mut r = WireReader::new(Bytes::from(bytes));
            if let Ok(mutant) = SegmentDiff::decode(&mut r) {
                // Survivors must still be internally consistent.
                let again = decode_all(mutant.encode_as(fmt));
                prop_assert_eq!(again, mutant);
            }
        }
    }
}

proptest! {
    // Every-offset truncation is O(len²) per case; fewer cases suffice.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Truncating any encoding at any byte offset fails cleanly: every
    /// byte of every revision is load-bearing, so no proper prefix may
    /// parse as a valid diff (and none may panic).
    #[test]
    fn truncation_at_every_offset_rejected(d in arb_diff()) {
        for fmt in FORMATS {
            let enc = d.encode_as(fmt);
            for cut in 0..enc.len() {
                let mut r = WireReader::new(enc.slice(..cut));
                prop_assert!(
                    SegmentDiff::decode(&mut r).is_err(),
                    "{:?} cut at {} decoded", fmt, cut
                );
            }
        }
    }
}
