//! Property tests for WAL record framing (`iw_wire::wal`): arbitrary
//! frame sequences round-trip exactly, and every damage class the
//! recovery path must survive — a bit flip anywhere, a torn tail at any
//! cut point, a duplicated record — leaves the reader stopping cleanly
//! at the first bad record with everything before it intact.

use iw_wire::wal::{crc32, encode_frame, FrameDefect, FrameReader, FRAME_HEADER_LEN};
use proptest::prelude::*;

/// An arbitrary log: up to 8 frames of arbitrary kind and body.
fn arb_log() -> impl Strategy<Value = Vec<(u8, Vec<u8>)>> {
    prop::collection::vec(
        (any::<u8>(), prop::collection::vec(any::<u8>(), 0..200)),
        0..8,
    )
}

fn encode_log(records: &[(u8, Vec<u8>)]) -> Vec<u8> {
    let mut buf = Vec::new();
    for (kind, body) in records {
        buf.extend_from_slice(&encode_frame(*kind, body));
    }
    buf
}

/// Reads until defect or end; returns the decoded records.
fn read_all(buf: &[u8]) -> (Vec<(u8, Vec<u8>)>, Option<FrameDefect>) {
    let mut r = FrameReader::new(buf);
    let mut out = Vec::new();
    while let Some(f) = r.next() {
        out.push((f.kind, f.body.to_vec()));
    }
    (out, r.defect())
}

proptest! {
    /// Any sequence of records round-trips frame-exactly.
    #[test]
    fn round_trip(records in arb_log()) {
        let buf = encode_log(&records);
        let (decoded, defect) = read_all(&buf);
        prop_assert_eq!(defect, None);
        prop_assert_eq!(decoded, records);
    }

    /// Flipping any single bit makes the reader stop at (or before)
    /// the damaged frame — never decode damaged bytes as good, never
    /// lose a frame that ends before the flip.
    #[test]
    fn bit_flip_stops_cleanly(records in arb_log(), flip_at in any::<usize>(), flip_bit in any::<u8>()) {
        let records = {
            let mut r = records;
            if r.is_empty() {
                r.push((1, vec![7, 7, 7]));
            }
            r
        };
        let clean = encode_log(&records);
        let (at, bit) = (flip_at % clean.len(), flip_bit % 8);
        let mut buf = clean.clone();
        buf[at] ^= 1 << bit;

        let (decoded, defect) = read_all(&buf);
        // Frames wholly before the flipped byte are untouched; the
        // reader must deliver all of them.
        let mut intact = 0usize;
        let mut end = 0usize;
        for (kind, body) in &records {
            end += FRAME_HEADER_LEN + 1 + body.len();
            if end <= at {
                intact += 1;
            } else {
                break;
            }
            let _ = kind;
        }
        prop_assert!(decoded.len() >= intact, "lost an undamaged frame");
        // The damaged frame itself must not come back looking valid
        // *unchanged* — either the reader stopped (defect) or, if the
        // flip landed in a later frame's header length field in a way
        // that still frames, the decoded prefix differs from the
        // original. A flip inside a CRC-covered region always stops.
        if decoded.len() == records.len() && defect.is_none() {
            prop_assert!(read_all(&clean).0 != decoded, "flip decoded as the original");
        }
    }

    /// Cutting the log at any point yields exactly the complete frames
    /// before the cut; a mid-frame cut reports `TornTail` (the
    /// recoverable class), never a parse of garbage.
    #[test]
    fn torn_tail_truncates_to_frame_boundary(records in arb_log(), cut in any::<usize>()) {
        let records = {
            let mut r = records;
            if r.is_empty() {
                r.push((2, vec![1, 2, 3]));
            }
            r
        };
        let clean = encode_log(&records);
        let cut = cut % clean.len(); // strictly shorter than the log
        let (decoded, defect) = read_all(&clean[..cut]);

        // How many frames fit entirely within the cut?
        let mut fit = 0usize;
        let mut end = 0usize;
        for (_, body) in &records {
            let next = end + FRAME_HEADER_LEN + 1 + body.len();
            if next <= cut {
                fit += 1;
                end = next;
            } else {
                break;
            }
        }
        prop_assert_eq!(decoded.len(), fit);
        prop_assert_eq!(&decoded[..], &records[..fit]);
        if end == cut {
            prop_assert_eq!(defect, None, "boundary cut is a clean EOF");
        } else {
            prop_assert_eq!(defect, Some(FrameDefect::TornTail));
        }
    }

    /// A duplicated record is *valid framing* (replay-level dedup is the
    /// store's job): the reader delivers both copies and keeps going.
    #[test]
    fn duplicated_record_keeps_framing(records in arb_log(), pick in any::<usize>()) {
        let records = {
            let mut r = records;
            if r.is_empty() {
                r.push((3, vec![9]));
            }
            r
        };
        let pick = pick % records.len();
        let mut doubled = records.clone();
        doubled.insert(pick, records[pick].clone());
        let (decoded, defect) = read_all(&encode_log(&doubled));
        prop_assert_eq!(defect, None);
        prop_assert_eq!(decoded, doubled);
    }

    /// CRC is over kind+body: changing the kind byte alone is caught.
    #[test]
    fn kind_is_crc_covered(kind in any::<u8>(), body in prop::collection::vec(any::<u8>(), 0..64)) {
        let mut buf = encode_frame(kind, &body);
        buf[FRAME_HEADER_LEN] ^= 0xFF; // the kind byte sits right after the header
        let (decoded, defect) = read_all(&buf);
        prop_assert!(decoded.is_empty());
        prop_assert_eq!(defect, Some(FrameDefect::Corrupt));
        let _ = crc32(&body); // (exercise the public helper)
    }
}
