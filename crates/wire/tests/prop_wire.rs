//! Property tests: wire encodings are total, injective round-trips.

use bytes::Bytes;
use iw_types::arch::MachineArch;
use iw_types::desc::{PrimKind, TypeDesc};
use iw_wire::codec::{WireReader, WireWriter};
use iw_wire::diff::{BlockDiff, DiffRun, NewBlock, SegmentDiff};
use iw_wire::mip::{BlockRef, Mip};
use iw_wire::prim::{no_pointers, no_pointers_in, prim_from_wire, prim_to_wire};
use iw_wire::tdesc::{decode_type, encode_type};
use proptest::prelude::*;

fn arb_fixed_kind() -> impl Strategy<Value = PrimKind> {
    prop_oneof![
        Just(PrimKind::Char),
        Just(PrimKind::Int16),
        Just(PrimKind::Int32),
        Just(PrimKind::Int64),
        Just(PrimKind::Float32),
        Just(PrimKind::Float64),
    ]
}

fn arb_arch() -> impl Strategy<Value = MachineArch> {
    prop_oneof![
        Just(MachineArch::x86()),
        Just(MachineArch::x86_64()),
        Just(MachineArch::alpha()),
        Just(MachineArch::sparc_v9()),
        Just(MachineArch::mips32()),
    ]
}

fn arb_type() -> impl Strategy<Value = TypeDesc> {
    let leaf = prop_oneof![
        Just(TypeDesc::char8()),
        Just(TypeDesc::int32()),
        Just(TypeDesc::float64()),
        (1u32..64).prop_map(TypeDesc::string),
        Just(TypeDesc::pointer()),
    ];
    leaf.prop_recursive(4, 32, 5, |inner| {
        prop_oneof![
            (inner.clone(), 0u32..6).prop_map(|(t, n)| TypeDesc::array(t, n)),
            (prop::collection::vec(inner, 0..5), "[a-z]{1,6}").prop_map(|(tys, name)| {
                TypeDesc::structure(
                    name,
                    tys.iter()
                        .enumerate()
                        .map(|(i, t)| -> (&str, TypeDesc) {
                            (Box::leak(format!("f{i}").into_boxed_str()), t.clone())
                        })
                        .collect(),
                )
            }),
        ]
    })
}

proptest! {
    #[test]
    fn fixed_prims_roundtrip_across_arch_pairs(
        kind in arb_fixed_kind(),
        src_arch in arb_arch(),
        dst_arch in arb_arch(),
        bytes in prop::collection::vec(any::<u8>(), 8),
    ) {
        // A value written on src and read on dst must carry the same
        // logical value: check by normalizing both to big-endian.
        let size = kind.local_size(&src_arch) as usize;
        let src_local = &bytes[..size];
        let mut w = WireWriter::new();
        prim_to_wire(&mut w, kind, src_local, &src_arch, &mut no_pointers).unwrap();
        let wire = w.finish();

        let mut dst_local = vec![0u8; kind.local_size(&dst_arch) as usize];
        let mut r = WireReader::new(wire.clone());
        prim_from_wire(&mut r, kind, &mut dst_local, &dst_arch, &mut no_pointers_in)
            .unwrap();

        // Re-encode from dst: identical wire bytes.
        let mut w2 = WireWriter::new();
        prim_to_wire(&mut w2, kind, &dst_local, &dst_arch, &mut no_pointers).unwrap();
        prop_assert_eq!(wire, w2.finish());
    }

    #[test]
    fn type_descriptors_roundtrip(ty in arb_type()) {
        let mut w = WireWriter::new();
        encode_type(&mut w, &ty);
        let mut r = WireReader::new(w.finish());
        let back = decode_type(&mut r).unwrap();
        prop_assert!(r.is_empty());
        prop_assert_eq!(back, ty);
    }

    #[test]
    fn decode_type_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let mut r = WireReader::new(Bytes::from(bytes));
        let _ = decode_type(&mut r); // must not panic or hang
    }

    #[test]
    fn mips_roundtrip(
        seg in "[a-z]{1,8}(\\.[a-z]{2,3})?/[a-z]{1,8}",
        serial in prop::option::of(0u32..10_000),
        name in "[a-z][a-z0-9]{0,7}",
        off in 0u64..1_000_000,
    ) {
        let block = match serial {
            Some(n) => BlockRef::Serial(n),
            None => BlockRef::Name(name),
        };
        let m = Mip { segment: seg, block, offset: off };
        let parsed: Mip = m.to_string().parse().unwrap();
        prop_assert_eq!(parsed, m);
    }

    #[test]
    fn segment_diffs_roundtrip(
        from in 0u64..100,
        delta in 0u64..10,
        runs in prop::collection::vec((0u64..1000, 1u64..16), 0..8),
        freed in prop::collection::vec(0u32..100, 0..4),
        payload in prop::collection::vec(any::<u8>(), 0..32),
    ) {
        let d = SegmentDiff {
            from_version: from,
            to_version: from + delta,
            new_types: vec![(0, TypeDesc::int32())],
            new_blocks: vec![NewBlock {
                serial: 1,
                name: None,
                type_serial: 0,
                count: 1,
                data: Bytes::from(payload.clone()),
            }],
            block_diffs: vec![BlockDiff {
                serial: 2,
                runs: runs
                    .iter()
                    .map(|&(start, count)| DiffRun {
                        start,
                        count,
                        data: Bytes::from(payload.clone()),
                    })
                    .collect(),
            }],
            freed,
            ..Default::default()
        };
        let mut r = WireReader::new(d.encode());
        let back = SegmentDiff::decode(&mut r).unwrap();
        prop_assert!(r.is_empty());
        prop_assert_eq!(back, d);
    }

    #[test]
    fn diff_decode_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        let mut r = WireReader::new(Bytes::from(bytes));
        let _ = SegmentDiff::decode(&mut r);
    }
}
