//! The wire-format diff.
//!
//! "A wire-format block diff consists of a block serial number, the length
//! of the diff (measured in bytes), and a series of run length encoded data
//! changes, each of which consists of the starting point and length of the
//! change (both measured in primitive data units), and the updated data (in
//! wire format)." (§3.1)
//!
//! A [`SegmentDiff`] bundles everything needed to move a cached copy of a
//! segment from one version to another: type-descriptor registrations, new
//! blocks (with their full wire images), per-block run diffs, and freed
//! blocks.
//!
//! # Wire revisions
//!
//! Two encodings exist, selected by [`DiffWire`] and negotiated per
//! connection by a capability bit in the Hello/Welcome handshake:
//!
//! - **v1** — the original fixed-width big-endian layout. Every count
//!   and serial is a `u32`, every run header is `u64 start + u64 count +
//!   u32 len` (20 bytes before any payload).
//! - **v2** — a self-describing envelope (`0xD2` magic, then a 1-byte
//!   codec tag: raw or LZ-compressed) around a varint body: LEB128
//!   varints for all counts/serials/lengths and zigzag *delta-encoded*
//!   run starts (each start is stored relative to the previous run's
//!   end, so sorted runs cost one or two bytes each). The codec tag is
//!   `1` when the body is LZ-compressed ([`crate::lz`]), chosen
//!   adaptively per diff by a size + entropy heuristic.
//!
//! [`SegmentDiff::decode`] accepts both transparently: v1 bodies start
//! with the high byte of `from_version`, which is zero for any version
//! below 2⁵⁶, so the `0xD2` first byte unambiguously marks a v2
//! envelope in practice (a v1 diff would need `from_version ≥
//! 0xD2 << 56 ≈ 1.5 × 10¹⁹` to collide — versions advance by one per
//! commit).

use std::sync::{Arc, OnceLock};

use bytes::Bytes;
use iw_types::desc::TypeDesc;

use crate::codec::{WireError, WireReader, WireWriter};
use crate::lz;
use crate::tdesc::{decode_type, encode_type, encoded_type_len};

/// First byte of every v2-encoded diff. See the module docs for why
/// this cannot collide with a v1 body.
pub const V2_MAGIC: u8 = 0xD2;

/// v2 codec tag: the body follows uncompressed.
const CODEC_RAW: u8 = 0;
/// v2 codec tag: the body is LZ-compressed (`varint raw_len`,
/// `varint comp_len`, compressed bytes).
const CODEC_LZ: u8 = 1;

/// Ceiling on a v2 compressed body's declared decompressed size (1 GiB,
/// matching the WAL frame cap).
const MAX_V2_BODY: u64 = 1 << 30;

/// Which wire revision to emit for a [`SegmentDiff`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffWire {
    /// Fixed-width big-endian layout understood by every peer.
    V1,
    /// Varint/delta envelope; `compress` additionally allows the
    /// adaptive LZ codec when the heuristic predicts a win.
    V2 {
        /// Permit per-diff LZ compression inside the envelope.
        compress: bool,
    },
}

/// One run-length-encoded change within a block.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRun {
    /// Starting point of the change, in primitive data units from the
    /// beginning of the block.
    pub start: u64,
    /// Length of the change, in primitive data units.
    pub count: u64,
    /// The updated data, in wire format (`count` primitives).
    pub data: Bytes,
}

/// The diff for a single block: its serial number and RLE runs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BlockDiff {
    /// Serial number of the block within its segment.
    pub serial: u32,
    /// Changed runs, in increasing `start` order.
    pub runs: Vec<DiffRun>,
}

impl BlockDiff {
    /// Total wire size of the run payloads in bytes — the paper's
    /// "length of the diff, measured in bytes".
    pub fn diff_len(&self) -> usize {
        self.runs.iter().map(|r| r.data.len()).sum()
    }

    /// Total number of changed primitive data units. The server adds this
    /// to its per-client counters for Diff coherence (§3.2).
    pub fn prims_changed(&self) -> u64 {
        self.runs.iter().map(|r| r.count).sum()
    }
}

/// A freshly created block travelling in a diff.
#[derive(Debug, Clone, PartialEq)]
pub struct NewBlock {
    /// Serial number assigned by the allocating client.
    pub serial: u32,
    /// Optional symbolic name.
    pub name: Option<String>,
    /// Segment-specific serial of the block's type descriptor.
    pub type_serial: u32,
    /// Number of elements of the type (blocks are allocated as `count`
    /// contiguous values, like `calloc`).
    pub count: u32,
    /// Full wire-format image of the block.
    pub data: Bytes,
}

/// Per-revision encoded-bytes slots filled lazily, at most once each.
#[derive(Debug, Default)]
struct EncSlots {
    v1: OnceLock<Bytes>,
    v2: OnceLock<Bytes>,
    v2_lz: OnceLock<Bytes>,
}

/// Lazy encode-once/serve-many cache riding a [`SegmentDiff`].
///
/// Disarmed (the default) it is a single `None` pointer and
/// [`SegmentDiff::encode_as`] serializes afresh — client-built diffs
/// pay nothing. The server *arms* it before parking a diff in its
/// serve cache; every clone then shares the same slots, so the first
/// encode per revision is kept and every later reply for the same
/// version window is a cheap `Bytes` clone. Excluded from equality:
/// two diffs are equal when their structure is, cached bytes or not.
#[derive(Debug, Clone, Default)]
pub struct EncCache(Option<Arc<EncSlots>>);

/// A complete wire diff for one segment version transition.
///
/// `from_version == 0` denotes a full segment transfer (the initial cache
/// fill at first lock acquisition).
#[derive(Debug, Clone, Default)]
pub struct SegmentDiff {
    /// Version the receiver must hold for the diff to apply (0 = none).
    pub from_version: u64,
    /// Version the receiver holds after applying.
    pub to_version: u64,
    /// Type descriptors not previously known to the receiver, as
    /// `(type serial, descriptor)` pairs in ascending serial order.
    pub new_types: Vec<(u32, TypeDesc)>,
    /// Blocks created in this version range.
    pub new_blocks: Vec<NewBlock>,
    /// Modified blocks and their runs.
    pub block_diffs: Vec<BlockDiff>,
    /// Serial numbers of blocks freed in this version range.
    pub freed: Vec<u32>,
    /// Shared encoded-bytes cache (see [`EncCache`]); ignored by `==`.
    pub enc: EncCache,
}

impl PartialEq for SegmentDiff {
    fn eq(&self, other: &Self) -> bool {
        self.from_version == other.from_version
            && self.to_version == other.to_version
            && self.new_types == other.new_types
            && self.new_blocks == other.new_blocks
            && self.block_diffs == other.block_diffs
            && self.freed == other.freed
    }
}

impl SegmentDiff {
    /// Total wire payload size in bytes: run data plus new-block images.
    /// This is the quantity the bandwidth experiments report.
    pub fn payload_len(&self) -> usize {
        self.block_diffs
            .iter()
            .map(BlockDiff::diff_len)
            .sum::<usize>()
            + self.new_blocks.iter().map(|b| b.data.len()).sum::<usize>()
    }

    /// Exact v1 encoded size in bytes — a structural mirror of
    /// [`SegmentDiff::encode`], including the type-descriptor section
    /// (via [`encoded_type_len`]). Used to pre-size the encode buffer so
    /// serialization never reallocates, by transports to pre-size
    /// message frames, and by the server as the "raw bytes" term of its
    /// compression-ratio accounting (the v1-equivalent cost of a diff
    /// without ever serializing it).
    pub fn encoded_len_hint(&self) -> usize {
        let mut n = 8 + 8 + 4 + 4 + 4 + 4; // versions + four section counts
        for (_, ty) in &self.new_types {
            n += 4 + encoded_type_len(ty);
        }
        for b in &self.new_blocks {
            // serial + name flag (+ name) + type serial + count + data
            n += 4 + 1 + b.name.as_ref().map_or(0, |s| 4 + s.len()) + 4 + 4 + 4 + b.data.len();
        }
        for d in &self.block_diffs {
            // serial + declared len + run count, then per run start/count/data
            n += 4 + 4 + 4;
            for run in &d.runs {
                n += 8 + 8 + 4 + run.data.len();
            }
        }
        n + self.freed.len() * 4
    }

    /// Arms the encode-once cache (idempotent). The server calls this
    /// before parking a diff in its serve cache so that the diff, its
    /// cached clones, and every reply built from them share one set of
    /// lazily-encoded bytes per wire revision.
    pub fn arm_enc_cache(&mut self) {
        if self.enc.0.is_none() {
            self.enc.0 = Some(Arc::new(EncSlots::default()));
        }
    }

    /// `true` when [`SegmentDiff::encode_as`] for `fmt` would be served
    /// from the armed cache without serializing. Always `false` while
    /// disarmed.
    pub fn enc_cached(&self, fmt: DiffWire) -> bool {
        self.enc
            .0
            .as_ref()
            .is_some_and(|s| slot(s, fmt).get().is_some())
    }

    /// Serializes the diff in the given wire revision. With an armed
    /// cache ([`SegmentDiff::arm_enc_cache`]) the first call per
    /// revision encodes and every later call (from any clone sharing
    /// the cache) returns the same `Bytes` for free.
    pub fn encode_as(&self, fmt: DiffWire) -> Bytes {
        match &self.enc.0 {
            Some(s) => slot(s, fmt).get_or_init(|| self.encode_fresh(fmt)).clone(),
            None => self.encode_fresh(fmt),
        }
    }

    fn encode_fresh(&self, fmt: DiffWire) -> Bytes {
        match fmt {
            DiffWire::V1 => self.encode_v1(),
            DiffWire::V2 { compress } => {
                let body = self.encode_v2_body();
                let mut w = WireWriter::with_capacity(body.len() + 12);
                w.put_u8(V2_MAGIC);
                if compress && lz::likely_compressible(&body) {
                    if let Some(c) = lz::compress(&body) {
                        w.put_u8(CODEC_LZ);
                        w.put_varint(body.len() as u64);
                        w.put_varint_bytes(&c);
                        return w.finish();
                    }
                }
                w.put_u8(CODEC_RAW);
                w.put_bytes(&body);
                w.finish()
            }
        }
    }

    fn encode_v2_body(&self) -> Bytes {
        let mut w = WireWriter::with_capacity(self.encoded_len_hint());
        w.put_varint(self.from_version);
        w.put_varint(self.to_version);
        w.put_varint(self.new_types.len() as u64);
        for (serial, ty) in &self.new_types {
            w.put_varint(u64::from(*serial));
            encode_type(&mut w, ty);
        }
        w.put_varint(self.new_blocks.len() as u64);
        for b in &self.new_blocks {
            w.put_varint(u64::from(b.serial));
            match &b.name {
                Some(n) => {
                    w.put_u8(1);
                    w.put_varint_bytes(n.as_bytes());
                }
                None => w.put_u8(0),
            }
            w.put_varint(u64::from(b.type_serial));
            w.put_varint(u64::from(b.count));
            w.put_varint_bytes(&b.data);
        }
        w.put_varint(self.block_diffs.len() as u64);
        for d in &self.block_diffs {
            w.put_varint(u64::from(d.serial));
            w.put_varint(d.runs.len() as u64);
            // Run starts are stored relative to the previous run's end;
            // signed, because chain composition may dedup runs out of
            // strictly ascending order.
            let mut cursor: u64 = 0;
            for run in &d.runs {
                w.put_svarint(run.start.wrapping_sub(cursor) as i64);
                w.put_varint(run.count);
                w.put_varint_bytes(&run.data);
                cursor = run.start.saturating_add(run.count);
            }
        }
        w.put_varint(self.freed.len() as u64);
        for s in &self.freed {
            w.put_varint(u64::from(*s));
        }
        w.finish()
    }

    /// Serializes the diff in the v1 revision (the universal format).
    pub fn encode(&self) -> Bytes {
        self.encode_as(DiffWire::V1)
    }

    fn encode_v1(&self) -> Bytes {
        let mut w = WireWriter::with_capacity(self.encoded_len_hint());
        w.put_u64(self.from_version);
        w.put_u64(self.to_version);
        w.put_u32(self.new_types.len() as u32);
        for (serial, ty) in &self.new_types {
            w.put_u32(*serial);
            encode_type(&mut w, ty);
        }
        w.put_u32(self.new_blocks.len() as u32);
        for b in &self.new_blocks {
            w.put_u32(b.serial);
            match &b.name {
                Some(n) => {
                    w.put_u8(1);
                    w.put_str(n);
                }
                None => w.put_u8(0),
            }
            w.put_u32(b.type_serial);
            w.put_u32(b.count);
            w.put_len_bytes(&b.data);
        }
        w.put_u32(self.block_diffs.len() as u32);
        for d in &self.block_diffs {
            w.put_u32(d.serial);
            w.put_u32(d.diff_len() as u32);
            w.put_u32(d.runs.len() as u32);
            for run in &d.runs {
                w.put_u64(run.start);
                w.put_u64(run.count);
                w.put_len_bytes(&run.data);
            }
        }
        w.put_u32(self.freed.len() as u32);
        for s in &self.freed {
            w.put_u32(*s);
        }
        w.finish()
    }

    /// Decodes a diff in either wire revision, auto-detected by the
    /// first byte (see the module docs on the `0xD2` magic).
    ///
    /// # Errors
    ///
    /// Any [`WireError`] arising from truncation, bad tags, hostile
    /// length fields, or a corrupt compressed body.
    pub fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        if r.peek_u8() == Some(V2_MAGIC) {
            Self::decode_v2(r)
        } else {
            Self::decode_v1(r)
        }
    }

    fn decode_v2(r: &mut WireReader) -> Result<Self, WireError> {
        let _magic = r.get_u8()?;
        match r.get_u8()? {
            CODEC_RAW => Self::decode_v2_body(r),
            CODEC_LZ => {
                let raw_len = r.get_varint()?;
                if raw_len > MAX_V2_BODY {
                    return Err(WireError::LengthOverflow { len: raw_len });
                }
                let comp_len = r.get_varint()?;
                if comp_len > MAX_V2_BODY {
                    return Err(WireError::LengthOverflow { len: comp_len });
                }
                let comp = r.get_bytes(comp_len as usize)?;
                let raw = lz::decompress(&comp, raw_len as usize)?;
                let mut br = WireReader::new(Bytes::from(raw));
                let d = Self::decode_v2_body(&mut br)?;
                if !br.is_empty() {
                    return Err(WireError::BadMip(format!(
                        "v2 compressed diff body has {} trailing bytes",
                        br.remaining()
                    )));
                }
                Ok(d)
            }
            tag => Err(WireError::BadTag {
                what: "diff codec",
                tag,
            }),
        }
    }

    fn decode_v2_body(r: &mut WireReader) -> Result<Self, WireError> {
        let get_u32v = |r: &mut WireReader| -> Result<u32, WireError> {
            let v = r.get_varint()?;
            u32::try_from(v).map_err(|_| WireError::LengthOverflow { len: v })
        };
        let from_version = r.get_varint()?;
        let to_version = r.get_varint()?;
        let n_types = checked_count_v2(r)?;
        let mut new_types = Vec::with_capacity(n_types.min(r.remaining()));
        for _ in 0..n_types {
            let serial = get_u32v(r)?;
            let ty = decode_type(r)?;
            new_types.push((serial, ty));
        }
        let n_new = checked_count_v2(r)?;
        let mut new_blocks = Vec::with_capacity(n_new.min(r.remaining()));
        for _ in 0..n_new {
            let serial = get_u32v(r)?;
            let name = match r.get_u8()? {
                0 => None,
                1 => {
                    let b = r.get_varint_bytes()?;
                    Some(String::from_utf8(b.to_vec()).map_err(|_| WireError::InvalidUtf8)?)
                }
                tag => {
                    return Err(WireError::BadTag {
                        what: "block name flag",
                        tag,
                    })
                }
            };
            let type_serial = get_u32v(r)?;
            let count = get_u32v(r)?;
            let data = r.get_varint_bytes()?;
            new_blocks.push(NewBlock {
                serial,
                name,
                type_serial,
                count,
                data,
            });
        }
        let n_diffs = checked_count_v2(r)?;
        let mut block_diffs = Vec::with_capacity(n_diffs.min(r.remaining()));
        for _ in 0..n_diffs {
            let serial = get_u32v(r)?;
            let n_runs = checked_count_v2(r)?;
            let mut runs = Vec::with_capacity(n_runs.min(r.remaining()));
            let mut cursor: u64 = 0;
            for _ in 0..n_runs {
                let delta = r.get_svarint()?;
                let start = cursor.wrapping_add(delta as u64);
                let count = r.get_varint()?;
                let data = r.get_varint_bytes()?;
                cursor = start.saturating_add(count);
                runs.push(DiffRun { start, count, data });
            }
            block_diffs.push(BlockDiff { serial, runs });
        }
        let n_freed = checked_count_v2(r)?;
        let mut freed = Vec::with_capacity(n_freed.min(r.remaining()));
        for _ in 0..n_freed {
            freed.push(get_u32v(r)?);
        }
        Ok(SegmentDiff {
            from_version,
            to_version,
            new_types,
            new_blocks,
            block_diffs,
            freed,
            enc: EncCache::default(),
        })
    }

    fn decode_v1(r: &mut WireReader) -> Result<Self, WireError> {
        let from_version = r.get_u64()?;
        let to_version = r.get_u64()?;
        let n_types = checked_count(r.get_u32()?)?;
        let mut new_types = Vec::with_capacity(n_types);
        for _ in 0..n_types {
            let serial = r.get_u32()?;
            let ty = decode_type(r)?;
            new_types.push((serial, ty));
        }
        let n_new = checked_count(r.get_u32()?)?;
        let mut new_blocks = Vec::with_capacity(n_new);
        for _ in 0..n_new {
            let serial = r.get_u32()?;
            let name = match r.get_u8()? {
                0 => None,
                1 => Some(r.get_str()?),
                tag => {
                    return Err(WireError::BadTag {
                        what: "block name flag",
                        tag,
                    })
                }
            };
            let type_serial = r.get_u32()?;
            let count = r.get_u32()?;
            let data = r.get_len_bytes()?;
            new_blocks.push(NewBlock {
                serial,
                name,
                type_serial,
                count,
                data,
            });
        }
        let n_diffs = checked_count(r.get_u32()?)?;
        let mut block_diffs = Vec::with_capacity(n_diffs);
        for _ in 0..n_diffs {
            let serial = r.get_u32()?;
            let declared_len = r.get_u32()? as usize;
            let n_runs = checked_count(r.get_u32()?)?;
            let mut runs = Vec::with_capacity(n_runs);
            for _ in 0..n_runs {
                let start = r.get_u64()?;
                let count = r.get_u64()?;
                let data = r.get_len_bytes()?;
                runs.push(DiffRun { start, count, data });
            }
            let d = BlockDiff { serial, runs };
            if d.diff_len() != declared_len {
                return Err(WireError::BadMip(format!(
                    "block {serial} diff length mismatch: declared {declared_len}, actual {}",
                    d.diff_len()
                )));
            }
            block_diffs.push(d);
        }
        let n_freed = checked_count(r.get_u32()?)?;
        let mut freed = Vec::with_capacity(n_freed);
        for _ in 0..n_freed {
            freed.push(r.get_u32()?);
        }
        Ok(SegmentDiff {
            from_version,
            to_version,
            new_types,
            new_blocks,
            block_diffs,
            freed,
            enc: EncCache::default(),
        })
    }
}

/// Selects the [`EncSlots`] slot for a wire revision.
fn slot(s: &EncSlots, fmt: DiffWire) -> &OnceLock<Bytes> {
    match fmt {
        DiffWire::V1 => &s.v1,
        DiffWire::V2 { compress: false } => &s.v2,
        DiffWire::V2 { compress: true } => &s.v2_lz,
    }
}

/// Bounds element counts read off the wire so `Vec::with_capacity` cannot be
/// used as an allocation bomb.
fn checked_count(n: u32) -> Result<usize, WireError> {
    if n > 1 << 24 {
        return Err(WireError::LengthOverflow { len: u64::from(n) });
    }
    Ok(n as usize)
}

/// Varint-read counterpart of [`checked_count`] for the v2 body.
fn checked_count_v2(r: &mut WireReader) -> Result<usize, WireError> {
    let n = r.get_varint()?;
    if n > 1 << 24 {
        return Err(WireError::LengthOverflow { len: n });
    }
    Ok(n as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SegmentDiff {
        SegmentDiff {
            from_version: 3,
            to_version: 5,
            new_types: vec![(1, TypeDesc::int32()), (2, TypeDesc::string(8))],
            new_blocks: vec![NewBlock {
                serial: 10,
                name: Some("head".into()),
                type_serial: 1,
                count: 4,
                data: Bytes::from_static(&[0, 0, 0, 1, 0, 0, 0, 2, 0, 0, 0, 3, 0, 0, 0, 4]),
            }],
            block_diffs: vec![BlockDiff {
                serial: 2,
                runs: vec![
                    DiffRun {
                        start: 0,
                        count: 1,
                        data: Bytes::from_static(&[0, 0, 0, 9]),
                    },
                    DiffRun {
                        start: 7,
                        count: 2,
                        data: Bytes::from_static(&[0, 0, 0, 1, 0, 0, 0, 2]),
                    },
                ],
            }],
            freed: vec![99, 100],
            enc: EncCache::default(),
        }
    }

    #[test]
    fn roundtrip() {
        let d = sample();
        let enc = d.encode();
        let mut r = WireReader::new(enc);
        let out = SegmentDiff::decode(&mut r).unwrap();
        assert!(r.is_empty());
        assert_eq!(out, d);
    }

    #[test]
    fn lengths_and_counts() {
        let d = sample();
        assert_eq!(d.block_diffs[0].diff_len(), 12);
        assert_eq!(d.block_diffs[0].prims_changed(), 3);
        assert_eq!(d.payload_len(), 12 + 16);
    }

    #[test]
    fn len_hint_is_exact() {
        // The hint mirrors the v1 encoder structurally, descriptors
        // included, so it is exact — not merely an upper bound.
        let d = sample();
        assert_eq!(d.encoded_len_hint(), d.encode().len());
        let no_types = SegmentDiff {
            new_types: Vec::new(),
            ..sample()
        };
        assert_eq!(no_types.encoded_len_hint(), no_types.encode().len());
        assert_eq!(
            SegmentDiff::default().encoded_len_hint(),
            SegmentDiff::default().encode().len()
        );
    }

    #[test]
    fn v2_roundtrips_and_shrinks() {
        let d = sample();
        for fmt in [
            DiffWire::V2 { compress: false },
            DiffWire::V2 { compress: true },
        ] {
            let enc = d.encode_as(fmt);
            assert_eq!(enc[0], V2_MAGIC);
            let mut r = WireReader::new(enc.clone());
            let out = SegmentDiff::decode(&mut r).unwrap();
            assert!(r.is_empty());
            assert_eq!(out, d);
            assert!(
                enc.len() < d.encode().len(),
                "v2 ({fmt:?}) must be smaller than v1 on this sample"
            );
        }
    }

    #[test]
    fn v2_compresses_large_low_entropy_payloads() {
        let d = SegmentDiff {
            from_version: 1,
            to_version: 2,
            block_diffs: vec![BlockDiff {
                serial: 1,
                runs: vec![DiffRun {
                    start: 0,
                    count: 1024,
                    data: Bytes::from(vec![0u8; 4096]),
                }],
            }],
            ..Default::default()
        };
        let plain = d.encode_as(DiffWire::V2 { compress: false });
        let squeezed = d.encode_as(DiffWire::V2 { compress: true });
        assert!(squeezed.len() < plain.len() / 4);
        let mut r = WireReader::new(squeezed);
        assert_eq!(SegmentDiff::decode(&mut r).unwrap(), d);
    }

    #[test]
    fn v2_handles_non_monotonic_run_starts() {
        // Chain composition can dedup runs out of ascending order; the
        // zigzag delta encoding must survive a backwards jump.
        let d = SegmentDiff {
            from_version: 1,
            to_version: 3,
            block_diffs: vec![BlockDiff {
                serial: 4,
                runs: vec![
                    DiffRun {
                        start: 100,
                        count: 2,
                        data: Bytes::from_static(&[1; 8]),
                    },
                    DiffRun {
                        start: 0,
                        count: 1,
                        data: Bytes::from_static(&[2; 4]),
                    },
                ],
            }],
            ..Default::default()
        };
        let enc = d.encode_as(DiffWire::V2 { compress: false });
        let mut r = WireReader::new(enc);
        assert_eq!(SegmentDiff::decode(&mut r).unwrap(), d);
    }

    #[test]
    fn enc_cache_is_lazy_shared_and_ignored_by_eq() {
        let mut d = sample();
        assert!(!d.enc_cached(DiffWire::V1));
        d.encode(); // disarmed: nothing retained
        assert!(!d.enc_cached(DiffWire::V1));
        d.arm_enc_cache();
        let clone = d.clone();
        assert!(!d.enc_cached(DiffWire::V1));
        let a = clone.encode(); // the *clone* encodes…
        assert!(d.enc_cached(DiffWire::V1)); // …and the original sees it
        let b = d.encode();
        assert_eq!(a, b);
        // Other revisions fill independently.
        assert!(!d.enc_cached(DiffWire::V2 { compress: false }));
        // Equality is structural, armed or not.
        assert_eq!(d, sample());
    }

    #[test]
    fn bad_codec_tag_rejected() {
        let mut w = WireWriter::new();
        w.put_u8(V2_MAGIC);
        w.put_u8(9);
        let mut r = WireReader::new(w.finish());
        assert!(matches!(
            SegmentDiff::decode(&mut r),
            Err(WireError::BadTag {
                what: "diff codec",
                ..
            })
        ));
    }

    #[test]
    fn corrupt_compressed_body_rejected() {
        let d = SegmentDiff {
            from_version: 1,
            to_version: 2,
            block_diffs: vec![BlockDiff {
                serial: 1,
                runs: vec![DiffRun {
                    start: 0,
                    count: 256,
                    data: Bytes::from(vec![7u8; 1024]),
                }],
            }],
            ..Default::default()
        };
        let enc = d.encode_as(DiffWire::V2 { compress: true });
        assert_eq!(enc[1], 1, "sample must actually take the LZ path");
        // Truncation anywhere inside the envelope must fail cleanly.
        for cut in 0..enc.len() {
            let mut r = WireReader::new(enc.slice(..cut));
            assert!(SegmentDiff::decode(&mut r).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn empty_diff_roundtrips() {
        let d = SegmentDiff {
            from_version: 1,
            to_version: 1,
            ..Default::default()
        };
        let mut r = WireReader::new(d.encode());
        assert_eq!(SegmentDiff::decode(&mut r).unwrap(), d);
    }

    #[test]
    fn declared_length_mismatch_rejected() {
        let d = sample();
        let enc = d.encode();
        // Corrupt the declared diff length of the first block diff.
        // Layout: find it by re-encoding with a tweak instead of byte
        // surgery: craft bytes manually.
        let mut w = WireWriter::new();
        w.put_u64(0);
        w.put_u64(1);
        w.put_u32(0); // types
        w.put_u32(0); // new blocks
        w.put_u32(1); // one diff
        w.put_u32(5); // serial
        w.put_u32(999); // wrong declared length
        w.put_u32(1); // one run
        w.put_u64(0);
        w.put_u64(1);
        w.put_len_bytes(&[1, 2, 3, 4]);
        w.put_u32(0); // freed
        let mut r = WireReader::new(w.finish());
        assert!(SegmentDiff::decode(&mut r).is_err());
        // Sanity: the untampered encoding still decodes.
        let mut r = WireReader::new(enc);
        assert!(SegmentDiff::decode(&mut r).is_ok());
    }

    #[test]
    fn hostile_counts_rejected() {
        let mut w = WireWriter::new();
        w.put_u64(0);
        w.put_u64(1);
        w.put_u32(u32::MAX); // absurd type count
        let mut r = WireReader::new(w.finish());
        assert!(matches!(
            SegmentDiff::decode(&mut r),
            Err(WireError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn bad_name_flag_rejected() {
        let mut w = WireWriter::new();
        w.put_u64(0);
        w.put_u64(1);
        w.put_u32(0);
        w.put_u32(1); // one new block
        w.put_u32(7); // serial
        w.put_u8(9); // invalid name flag
        let mut r = WireReader::new(w.finish());
        assert!(matches!(
            SegmentDiff::decode(&mut r),
            Err(WireError::BadTag {
                what: "block name flag",
                ..
            })
        ));
    }
}
