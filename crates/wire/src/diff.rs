//! The wire-format diff.
//!
//! "A wire-format block diff consists of a block serial number, the length
//! of the diff (measured in bytes), and a series of run length encoded data
//! changes, each of which consists of the starting point and length of the
//! change (both measured in primitive data units), and the updated data (in
//! wire format)." (§3.1)
//!
//! A [`SegmentDiff`] bundles everything needed to move a cached copy of a
//! segment from one version to another: type-descriptor registrations, new
//! blocks (with their full wire images), per-block run diffs, and freed
//! blocks.

use bytes::Bytes;
use iw_types::desc::TypeDesc;

use crate::codec::{WireError, WireReader, WireWriter};
use crate::tdesc::{decode_type, encode_type};

/// One run-length-encoded change within a block.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRun {
    /// Starting point of the change, in primitive data units from the
    /// beginning of the block.
    pub start: u64,
    /// Length of the change, in primitive data units.
    pub count: u64,
    /// The updated data, in wire format (`count` primitives).
    pub data: Bytes,
}

/// The diff for a single block: its serial number and RLE runs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BlockDiff {
    /// Serial number of the block within its segment.
    pub serial: u32,
    /// Changed runs, in increasing `start` order.
    pub runs: Vec<DiffRun>,
}

impl BlockDiff {
    /// Total wire size of the run payloads in bytes — the paper's
    /// "length of the diff, measured in bytes".
    pub fn diff_len(&self) -> usize {
        self.runs.iter().map(|r| r.data.len()).sum()
    }

    /// Total number of changed primitive data units. The server adds this
    /// to its per-client counters for Diff coherence (§3.2).
    pub fn prims_changed(&self) -> u64 {
        self.runs.iter().map(|r| r.count).sum()
    }
}

/// A freshly created block travelling in a diff.
#[derive(Debug, Clone, PartialEq)]
pub struct NewBlock {
    /// Serial number assigned by the allocating client.
    pub serial: u32,
    /// Optional symbolic name.
    pub name: Option<String>,
    /// Segment-specific serial of the block's type descriptor.
    pub type_serial: u32,
    /// Number of elements of the type (blocks are allocated as `count`
    /// contiguous values, like `calloc`).
    pub count: u32,
    /// Full wire-format image of the block.
    pub data: Bytes,
}

/// A complete wire diff for one segment version transition.
///
/// `from_version == 0` denotes a full segment transfer (the initial cache
/// fill at first lock acquisition).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SegmentDiff {
    /// Version the receiver must hold for the diff to apply (0 = none).
    pub from_version: u64,
    /// Version the receiver holds after applying.
    pub to_version: u64,
    /// Type descriptors not previously known to the receiver, as
    /// `(type serial, descriptor)` pairs in ascending serial order.
    pub new_types: Vec<(u32, TypeDesc)>,
    /// Blocks created in this version range.
    pub new_blocks: Vec<NewBlock>,
    /// Modified blocks and their runs.
    pub block_diffs: Vec<BlockDiff>,
    /// Serial numbers of blocks freed in this version range.
    pub freed: Vec<u32>,
}

impl SegmentDiff {
    /// Total wire payload size in bytes: run data plus new-block images.
    /// This is the quantity the bandwidth experiments report.
    pub fn payload_len(&self) -> usize {
        self.block_diffs
            .iter()
            .map(BlockDiff::diff_len)
            .sum::<usize>()
            + self.new_blocks.iter().map(|b| b.data.len()).sum::<usize>()
    }

    /// Exact encoded size in bytes, excluding the type-descriptor section
    /// (descriptors are rare and variable; a generous fixed allowance per
    /// descriptor keeps the estimate a one-pass sum). Used to pre-size
    /// the encode buffer so serialization never reallocates, and by
    /// transports to pre-size message frames.
    pub fn encoded_len_hint(&self) -> usize {
        let mut n = 8 + 8 + 4 + 4 + 4 + 4; // versions + four section counts
        n += self.new_types.len() * 64;
        for b in &self.new_blocks {
            // serial + name flag (+ name) + type serial + count + data
            n += 4 + 1 + b.name.as_ref().map_or(0, |s| 4 + s.len()) + 4 + 4 + 4 + b.data.len();
        }
        for d in &self.block_diffs {
            // serial + declared len + run count, then per run start/count/data
            n += 4 + 4 + 4;
            for run in &d.runs {
                n += 8 + 8 + 4 + run.data.len();
            }
        }
        n + self.freed.len() * 4
    }

    /// Serializes the diff (including its encoded size for framing).
    pub fn encode(&self) -> Bytes {
        let mut w = WireWriter::with_capacity(self.encoded_len_hint());
        w.put_u64(self.from_version);
        w.put_u64(self.to_version);
        w.put_u32(self.new_types.len() as u32);
        for (serial, ty) in &self.new_types {
            w.put_u32(*serial);
            encode_type(&mut w, ty);
        }
        w.put_u32(self.new_blocks.len() as u32);
        for b in &self.new_blocks {
            w.put_u32(b.serial);
            match &b.name {
                Some(n) => {
                    w.put_u8(1);
                    w.put_str(n);
                }
                None => w.put_u8(0),
            }
            w.put_u32(b.type_serial);
            w.put_u32(b.count);
            w.put_len_bytes(&b.data);
        }
        w.put_u32(self.block_diffs.len() as u32);
        for d in &self.block_diffs {
            w.put_u32(d.serial);
            w.put_u32(d.diff_len() as u32);
            w.put_u32(d.runs.len() as u32);
            for run in &d.runs {
                w.put_u64(run.start);
                w.put_u64(run.count);
                w.put_len_bytes(&run.data);
            }
        }
        w.put_u32(self.freed.len() as u32);
        for s in &self.freed {
            w.put_u32(*s);
        }
        w.finish()
    }

    /// Decodes a diff previously produced by [`SegmentDiff::encode`].
    ///
    /// # Errors
    ///
    /// Any [`WireError`] arising from truncation, bad tags, or hostile
    /// length fields.
    pub fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        let from_version = r.get_u64()?;
        let to_version = r.get_u64()?;
        let n_types = checked_count(r.get_u32()?)?;
        let mut new_types = Vec::with_capacity(n_types);
        for _ in 0..n_types {
            let serial = r.get_u32()?;
            let ty = decode_type(r)?;
            new_types.push((serial, ty));
        }
        let n_new = checked_count(r.get_u32()?)?;
        let mut new_blocks = Vec::with_capacity(n_new);
        for _ in 0..n_new {
            let serial = r.get_u32()?;
            let name = match r.get_u8()? {
                0 => None,
                1 => Some(r.get_str()?),
                tag => {
                    return Err(WireError::BadTag {
                        what: "block name flag",
                        tag,
                    })
                }
            };
            let type_serial = r.get_u32()?;
            let count = r.get_u32()?;
            let data = r.get_len_bytes()?;
            new_blocks.push(NewBlock {
                serial,
                name,
                type_serial,
                count,
                data,
            });
        }
        let n_diffs = checked_count(r.get_u32()?)?;
        let mut block_diffs = Vec::with_capacity(n_diffs);
        for _ in 0..n_diffs {
            let serial = r.get_u32()?;
            let declared_len = r.get_u32()? as usize;
            let n_runs = checked_count(r.get_u32()?)?;
            let mut runs = Vec::with_capacity(n_runs);
            for _ in 0..n_runs {
                let start = r.get_u64()?;
                let count = r.get_u64()?;
                let data = r.get_len_bytes()?;
                runs.push(DiffRun { start, count, data });
            }
            let d = BlockDiff { serial, runs };
            if d.diff_len() != declared_len {
                return Err(WireError::BadMip(format!(
                    "block {serial} diff length mismatch: declared {declared_len}, actual {}",
                    d.diff_len()
                )));
            }
            block_diffs.push(d);
        }
        let n_freed = checked_count(r.get_u32()?)?;
        let mut freed = Vec::with_capacity(n_freed);
        for _ in 0..n_freed {
            freed.push(r.get_u32()?);
        }
        Ok(SegmentDiff {
            from_version,
            to_version,
            new_types,
            new_blocks,
            block_diffs,
            freed,
        })
    }
}

/// Bounds element counts read off the wire so `Vec::with_capacity` cannot be
/// used as an allocation bomb.
fn checked_count(n: u32) -> Result<usize, WireError> {
    if n > 1 << 24 {
        return Err(WireError::LengthOverflow { len: u64::from(n) });
    }
    Ok(n as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SegmentDiff {
        SegmentDiff {
            from_version: 3,
            to_version: 5,
            new_types: vec![(1, TypeDesc::int32()), (2, TypeDesc::string(8))],
            new_blocks: vec![NewBlock {
                serial: 10,
                name: Some("head".into()),
                type_serial: 1,
                count: 4,
                data: Bytes::from_static(&[0, 0, 0, 1, 0, 0, 0, 2, 0, 0, 0, 3, 0, 0, 0, 4]),
            }],
            block_diffs: vec![BlockDiff {
                serial: 2,
                runs: vec![
                    DiffRun {
                        start: 0,
                        count: 1,
                        data: Bytes::from_static(&[0, 0, 0, 9]),
                    },
                    DiffRun {
                        start: 7,
                        count: 2,
                        data: Bytes::from_static(&[0, 0, 0, 1, 0, 0, 0, 2]),
                    },
                ],
            }],
            freed: vec![99, 100],
        }
    }

    #[test]
    fn roundtrip() {
        let d = sample();
        let enc = d.encode();
        let mut r = WireReader::new(enc);
        let out = SegmentDiff::decode(&mut r).unwrap();
        assert!(r.is_empty());
        assert_eq!(out, d);
    }

    #[test]
    fn lengths_and_counts() {
        let d = sample();
        assert_eq!(d.block_diffs[0].diff_len(), 12);
        assert_eq!(d.block_diffs[0].prims_changed(), 3);
        assert_eq!(d.payload_len(), 12 + 16);
    }

    #[test]
    fn len_hint_covers_encoding() {
        let d = sample();
        assert!(d.encoded_len_hint() >= d.encode().len());
        // Without type descriptors the hint is exact.
        let no_types = SegmentDiff {
            new_types: Vec::new(),
            ..sample()
        };
        assert_eq!(no_types.encoded_len_hint(), no_types.encode().len());
    }

    #[test]
    fn empty_diff_roundtrips() {
        let d = SegmentDiff {
            from_version: 1,
            to_version: 1,
            ..Default::default()
        };
        let mut r = WireReader::new(d.encode());
        assert_eq!(SegmentDiff::decode(&mut r).unwrap(), d);
    }

    #[test]
    fn declared_length_mismatch_rejected() {
        let d = sample();
        let enc = d.encode();
        // Corrupt the declared diff length of the first block diff.
        // Layout: find it by re-encoding with a tweak instead of byte
        // surgery: craft bytes manually.
        let mut w = WireWriter::new();
        w.put_u64(0);
        w.put_u64(1);
        w.put_u32(0); // types
        w.put_u32(0); // new blocks
        w.put_u32(1); // one diff
        w.put_u32(5); // serial
        w.put_u32(999); // wrong declared length
        w.put_u32(1); // one run
        w.put_u64(0);
        w.put_u64(1);
        w.put_len_bytes(&[1, 2, 3, 4]);
        w.put_u32(0); // freed
        let mut r = WireReader::new(w.finish());
        assert!(SegmentDiff::decode(&mut r).is_err());
        // Sanity: the untampered encoding still decodes.
        let mut r = WireReader::new(enc);
        assert!(SegmentDiff::decode(&mut r).is_ok());
    }

    #[test]
    fn hostile_counts_rejected() {
        let mut w = WireWriter::new();
        w.put_u64(0);
        w.put_u64(1);
        w.put_u32(u32::MAX); // absurd type count
        let mut r = WireReader::new(w.finish());
        assert!(matches!(
            SegmentDiff::decode(&mut r),
            Err(WireError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn bad_name_flag_rejected() {
        let mut w = WireWriter::new();
        w.put_u64(0);
        w.put_u64(1);
        w.put_u32(0);
        w.put_u32(1); // one new block
        w.put_u32(7); // serial
        w.put_u8(9); // invalid name flag
        let mut r = WireReader::new(w.finish());
        assert!(matches!(
            SegmentDiff::decode(&mut r),
            Err(WireError::BadTag {
                what: "block name flag",
                ..
            })
        ));
    }
}
