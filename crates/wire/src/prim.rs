//! Translation of single primitives between local and wire format.
//!
//! Fixed-size primitives are byte-reversed as needed between the local
//! architecture's endianness and the big-endian wire format. Strings (fixed
//! local capacity, NUL-terminated) become length-prefixed byte strings.
//! Pointers are delegated to caller-supplied swizzle callbacks, because
//! converting between a local machine address and a MIP requires segment
//! metadata that only the client library holds.

use iw_types::arch::MachineArch;
use iw_types::desc::PrimKind;

use crate::codec::{WireError, WireReader, WireWriter};

/// Copies `src` into `dst` reversing byte order when `little` is `true`
/// (wire format is big-endian).
fn copy_endian(dst: &mut [u8], src: &[u8], little: bool) {
    debug_assert_eq!(dst.len(), src.len());
    if little {
        for (d, s) in dst.iter_mut().zip(src.iter().rev()) {
            *d = *s;
        }
    } else {
        dst.copy_from_slice(src);
    }
}

/// Extracts the logical contents of a local-format string field: the bytes
/// up to (not including) the first NUL, or the whole window if unterminated.
pub fn local_str_bytes(window: &[u8]) -> &[u8] {
    match window.iter().position(|&b| b == 0) {
        Some(n) => &window[..n],
        None => window,
    }
}

/// Translates one primitive from local format to wire format.
///
/// `local` must be exactly `kind.local_size(arch)` bytes — the primitive's
/// local window. Pointers call `swizzle` with the window and append the
/// returned MIP string (empty string for null).
///
/// # Errors
///
/// Propagates errors from `swizzle` (e.g. a dangling local pointer).
pub fn prim_to_wire(
    w: &mut WireWriter,
    kind: PrimKind,
    local: &[u8],
    arch: &MachineArch,
    swizzle: &mut dyn FnMut(&[u8]) -> Result<String, WireError>,
) -> Result<(), WireError> {
    debug_assert_eq!(local.len(), kind.local_size(arch) as usize);
    let little = arch.endian.is_little();
    match kind {
        PrimKind::Char => w.put_u8(local[0]),
        PrimKind::Int16 => {
            let mut b = [0u8; 2];
            copy_endian(&mut b, local, little);
            w.put_bytes(&b);
        }
        PrimKind::Int32 | PrimKind::Float32 => {
            let mut b = [0u8; 4];
            copy_endian(&mut b, local, little);
            w.put_bytes(&b);
        }
        PrimKind::Int64 | PrimKind::Float64 => {
            let mut b = [0u8; 8];
            copy_endian(&mut b, local, little);
            w.put_bytes(&b);
        }
        PrimKind::Str { .. } => {
            w.put_len_bytes(local_str_bytes(local));
        }
        PrimKind::Ptr => {
            let mip = swizzle(local)?;
            w.put_str(&mip);
        }
    }
    Ok(())
}

/// Translates one primitive from wire format into a local-format window.
///
/// `local` must be exactly `kind.local_size(arch)` bytes. String windows are
/// NUL-terminated and zero-padded so that local images are deterministic
/// (twin comparison depends on this). Pointers call `unswizzle` with the MIP
/// string and the window to fill.
///
/// # Errors
///
/// [`WireError::UnexpectedEof`] on truncated input;
/// [`WireError::LengthOverflow`] when a wire string does not fit the local
/// capacity; plus any error from `unswizzle`.
#[allow(clippy::type_complexity)]
pub fn prim_from_wire(
    r: &mut WireReader,
    kind: PrimKind,
    local: &mut [u8],
    arch: &MachineArch,
    unswizzle: &mut dyn FnMut(&str, &mut [u8]) -> Result<(), WireError>,
) -> Result<(), WireError> {
    debug_assert_eq!(local.len(), kind.local_size(arch) as usize);
    let little = arch.endian.is_little();
    match kind {
        PrimKind::Char => local[0] = r.get_u8()?,
        PrimKind::Int16 => {
            let b = r.get_bytes(2)?;
            copy_endian(local, &b, little);
        }
        PrimKind::Int32 | PrimKind::Float32 => {
            let b = r.get_bytes(4)?;
            copy_endian(local, &b, little);
        }
        PrimKind::Int64 | PrimKind::Float64 => {
            let b = r.get_bytes(8)?;
            copy_endian(local, &b, little);
        }
        PrimKind::Str { cap } => {
            let b = r.get_len_bytes()?;
            if b.len() + 1 > cap as usize {
                return Err(WireError::LengthOverflow {
                    len: b.len() as u64,
                });
            }
            local[..b.len()].copy_from_slice(&b);
            local[b.len()..].fill(0);
        }
        PrimKind::Ptr => {
            let mip = r.get_str()?;
            unswizzle(&mip, local)?;
        }
    }
    Ok(())
}

/// A swizzle callback for data that contains no pointers; panics if called.
pub fn no_pointers(_: &[u8]) -> Result<String, WireError> {
    panic!("pointer encountered in pointer-free data");
}

/// An unswizzle callback for data that contains no pointers; panics if
/// called.
pub fn no_pointers_in(_: &str, _: &mut [u8]) -> Result<(), WireError> {
    panic!("pointer encountered in pointer-free data");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{WireReader, WireWriter};
    use iw_types::arch::MachineArch;

    fn roundtrip(kind: PrimKind, local_in: &[u8], arch: &MachineArch) -> Vec<u8> {
        let mut w = WireWriter::new();
        prim_to_wire(&mut w, kind, local_in, arch, &mut no_pointers).unwrap();
        let mut r = WireReader::new(w.finish());
        let mut out = vec![0u8; kind.local_size(arch) as usize];
        prim_from_wire(&mut r, kind, &mut out, arch, &mut no_pointers_in).unwrap();
        assert!(r.is_empty());
        out
    }

    #[test]
    fn int32_le_to_wire_is_reversed() {
        let arch = MachineArch::x86();
        let local = 0x0102_0304u32.to_le_bytes();
        let mut w = WireWriter::new();
        prim_to_wire(&mut w, PrimKind::Int32, &local, &arch, &mut no_pointers).unwrap();
        assert_eq!(&w.finish()[..], &[1, 2, 3, 4]);
    }

    #[test]
    fn int32_be_to_wire_is_identity() {
        let arch = MachineArch::sparc_v9();
        let local = 0x0102_0304u32.to_be_bytes();
        let mut w = WireWriter::new();
        prim_to_wire(&mut w, PrimKind::Int32, &local, &arch, &mut no_pointers).unwrap();
        assert_eq!(&w.finish()[..], &[1, 2, 3, 4]);
    }

    #[test]
    fn cross_architecture_transfer_preserves_value() {
        // Write on little-endian x86, read on big-endian SPARC.
        let x86 = MachineArch::x86();
        let sparc = MachineArch::sparc_v9();
        let v = -123456789i32;
        let mut w = WireWriter::new();
        prim_to_wire(
            &mut w,
            PrimKind::Int32,
            &v.to_le_bytes(),
            &x86,
            &mut no_pointers,
        )
        .unwrap();
        let mut r = WireReader::new(w.finish());
        let mut out = [0u8; 4];
        prim_from_wire(
            &mut r,
            PrimKind::Int32,
            &mut out,
            &sparc,
            &mut no_pointers_in,
        )
        .unwrap();
        assert_eq!(i32::from_be_bytes(out), v);
    }

    #[test]
    fn doubles_cross_endianness() {
        let x86 = MachineArch::x86();
        let mips = MachineArch::mips32();
        let v = -2.75e17f64;
        let mut w = WireWriter::new();
        prim_to_wire(
            &mut w,
            PrimKind::Float64,
            &v.to_le_bytes(),
            &x86,
            &mut no_pointers,
        )
        .unwrap();
        let mut r = WireReader::new(w.finish());
        let mut out = [0u8; 8];
        prim_from_wire(
            &mut r,
            PrimKind::Float64,
            &mut out,
            &mips,
            &mut no_pointers_in,
        )
        .unwrap();
        assert_eq!(f64::from_be_bytes(out), v);
    }

    #[test]
    fn all_fixed_kinds_roundtrip_on_all_archs() {
        for arch in MachineArch::all() {
            for (kind, bytes) in [
                (PrimKind::Char, vec![0x7F]),
                (PrimKind::Int16, vec![1, 2]),
                (PrimKind::Int32, vec![1, 2, 3, 4]),
                (PrimKind::Int64, vec![1, 2, 3, 4, 5, 6, 7, 8]),
                (PrimKind::Float32, vec![9, 8, 7, 6]),
                (PrimKind::Float64, vec![9, 8, 7, 6, 5, 4, 3, 2]),
            ] {
                assert_eq!(
                    roundtrip(kind, &bytes, &arch),
                    bytes,
                    "{kind:?} on {}",
                    arch.name
                );
            }
        }
    }

    #[test]
    fn string_roundtrip_pads_with_zeros() {
        let arch = MachineArch::x86();
        let kind = PrimKind::Str { cap: 8 };
        let mut local = *b"hi\0AAAAA"; // garbage after NUL
        let out = roundtrip(kind, &local, &arch);
        assert_eq!(
            &out, b"hi\0\0\0\0\0\0",
            "garbage after NUL must not survive"
        );
        // Unterminated string: whole window travels.
        local = *b"ABCDEFGH";
        let mut w = WireWriter::new();
        prim_to_wire(&mut w, kind, &local, &arch, &mut no_pointers).unwrap();
        let mut r = WireReader::new(w.finish());
        let s = r.get_len_bytes().unwrap();
        assert_eq!(&s[..], b"ABCDEFGH");
    }

    #[test]
    fn oversized_wire_string_is_rejected() {
        let arch = MachineArch::x86();
        let mut w = WireWriter::new();
        w.put_len_bytes(b"way too long");
        let mut r = WireReader::new(w.finish());
        let mut out = [0u8; 4];
        let err = prim_from_wire(
            &mut r,
            PrimKind::Str { cap: 4 },
            &mut out,
            &arch,
            &mut no_pointers_in,
        )
        .unwrap_err();
        assert!(matches!(err, WireError::LengthOverflow { .. }));
    }

    #[test]
    fn pointers_use_callbacks() {
        let x86 = MachineArch::x86();
        let local = 0xDEAD_F00Du32.to_le_bytes();
        let mut w = WireWriter::new();
        let mut seen = None;
        prim_to_wire(&mut w, PrimKind::Ptr, &local, &x86, &mut |bytes| {
            seen = Some(bytes.to_vec());
            Ok("seg#blk#3".to_string())
        })
        .unwrap();
        assert_eq!(seen.unwrap(), local);
        let mut r = WireReader::new(w.finish());
        let mut out = [0u8; 4];
        prim_from_wire(&mut r, PrimKind::Ptr, &mut out, &x86, &mut |mip, dst| {
            assert_eq!(mip, "seg#blk#3");
            dst.copy_from_slice(&0x1234u32.to_le_bytes());
            Ok(())
        })
        .unwrap();
        assert_eq!(u32::from_le_bytes(out), 0x1234);
    }

    #[test]
    fn swizzle_errors_propagate() {
        let x86 = MachineArch::x86();
        let mut w = WireWriter::new();
        let err = prim_to_wire(&mut w, PrimKind::Ptr, &[0; 4], &x86, &mut |_| {
            Err(WireError::BadMip("dangling".into()))
        })
        .unwrap_err();
        assert!(matches!(err, WireError::BadMip(_)));
    }

    #[test]
    fn local_str_bytes_variants() {
        assert_eq!(local_str_bytes(b"abc\0xx"), b"abc");
        assert_eq!(local_str_bytes(b"\0"), b"");
        assert_eq!(local_str_bytes(b"full"), b"full");
    }
}
