//! Wire encoding of type descriptors.
//!
//! "Unlike the InterWeave client library, which obtains its type descriptors
//! from the application program, the InterWeave server must obtain its type
//! descriptors from clients" (§3.2). Clients therefore ship descriptor trees
//! to the server in machine-independent form when they first use a type in a
//! segment; this module defines that form.

use iw_types::desc::{Field, PrimKind, TypeDesc, TypeKind};

use crate::codec::{WireError, WireReader, WireWriter};

const TAG_PRIM: u8 = 0x01;
const TAG_ARRAY: u8 = 0x02;
const TAG_STRUCT: u8 = 0x03;

const KIND_CHAR: u8 = 0x01;
const KIND_INT16: u8 = 0x02;
const KIND_INT32: u8 = 0x03;
const KIND_INT64: u8 = 0x04;
const KIND_FLOAT32: u8 = 0x05;
const KIND_FLOAT64: u8 = 0x06;
const KIND_STR: u8 = 0x07;
const KIND_PTR: u8 = 0x08;

/// Maximum nesting depth accepted when decoding (guards against hostile or
/// corrupt input).
pub const MAX_TYPE_DEPTH: u32 = 64;

/// Appends the wire encoding of `ty` to `w`.
pub fn encode_type(w: &mut WireWriter, ty: &TypeDesc) {
    match ty.kind() {
        TypeKind::Prim(p) => {
            w.put_u8(TAG_PRIM);
            match p {
                PrimKind::Char => w.put_u8(KIND_CHAR),
                PrimKind::Int16 => w.put_u8(KIND_INT16),
                PrimKind::Int32 => w.put_u8(KIND_INT32),
                PrimKind::Int64 => w.put_u8(KIND_INT64),
                PrimKind::Float32 => w.put_u8(KIND_FLOAT32),
                PrimKind::Float64 => w.put_u8(KIND_FLOAT64),
                PrimKind::Str { cap } => {
                    w.put_u8(KIND_STR);
                    w.put_u32(*cap);
                }
                PrimKind::Ptr => w.put_u8(KIND_PTR),
            }
        }
        TypeKind::Array { elem, len } => {
            w.put_u8(TAG_ARRAY);
            w.put_u32(*len);
            encode_type(w, elem);
        }
        TypeKind::Struct { name, fields } => {
            w.put_u8(TAG_STRUCT);
            w.put_str(name);
            w.put_u32(fields.len() as u32);
            for f in fields {
                w.put_str(&f.name);
                encode_type(w, &f.ty);
            }
        }
    }
}

/// Exact number of bytes [`encode_type`] emits for `ty` — a structural
/// mirror of the encoder, so [`crate::SegmentDiff::encoded_len_hint`]
/// can be exact without serializing anything.
pub fn encoded_type_len(ty: &TypeDesc) -> usize {
    match ty.kind() {
        TypeKind::Prim(PrimKind::Str { .. }) => 2 + 4,
        TypeKind::Prim(_) => 2,
        TypeKind::Array { elem, .. } => 1 + 4 + encoded_type_len(elem),
        TypeKind::Struct { name, fields } => {
            1 + 4
                + name.len()
                + 4
                + fields
                    .iter()
                    .map(|f| 4 + f.name.len() + encoded_type_len(&f.ty))
                    .sum::<usize>()
        }
    }
}

/// Decodes a type descriptor from `r`.
///
/// # Errors
///
/// [`WireError::BadTag`] on unknown tags, [`WireError::LengthOverflow`] when
/// nesting exceeds [`MAX_TYPE_DEPTH`] or a struct declares an absurd field
/// count, plus truncation errors from the underlying reader.
pub fn decode_type(r: &mut WireReader) -> Result<TypeDesc, WireError> {
    decode_at_depth(r, 0)
}

fn decode_at_depth(r: &mut WireReader, depth: u32) -> Result<TypeDesc, WireError> {
    if depth > MAX_TYPE_DEPTH {
        return Err(WireError::LengthOverflow {
            len: u64::from(depth),
        });
    }
    match r.get_u8()? {
        TAG_PRIM => {
            let kind = match r.get_u8()? {
                KIND_CHAR => PrimKind::Char,
                KIND_INT16 => PrimKind::Int16,
                KIND_INT32 => PrimKind::Int32,
                KIND_INT64 => PrimKind::Int64,
                KIND_FLOAT32 => PrimKind::Float32,
                KIND_FLOAT64 => PrimKind::Float64,
                KIND_STR => {
                    let cap = r.get_u32()?;
                    if cap == 0 {
                        return Err(WireError::LengthOverflow { len: 0 });
                    }
                    PrimKind::Str { cap }
                }
                KIND_PTR => PrimKind::Ptr,
                tag => {
                    return Err(WireError::BadTag {
                        what: "primitive kind",
                        tag,
                    })
                }
            };
            Ok(TypeDesc::new(TypeKind::Prim(kind)))
        }
        TAG_ARRAY => {
            let len = r.get_u32()?;
            let elem = decode_at_depth(r, depth + 1)?;
            Ok(TypeDesc::new(TypeKind::Array { elem, len }))
        }
        TAG_STRUCT => {
            let name = r.get_str()?;
            let n = r.get_u32()?;
            if n > 1 << 16 {
                return Err(WireError::LengthOverflow { len: u64::from(n) });
            }
            let mut fields = Vec::with_capacity(n as usize);
            for _ in 0..n {
                let fname = r.get_str()?;
                let fty = decode_at_depth(r, depth + 1)?;
                fields.push(Field {
                    name: fname,
                    ty: fty,
                });
            }
            Ok(TypeDesc::new(TypeKind::Struct { name, fields }))
        }
        tag => Err(WireError::BadTag {
            what: "type descriptor",
            tag,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn roundtrip(ty: &TypeDesc) -> TypeDesc {
        let mut w = WireWriter::new();
        encode_type(&mut w, ty);
        assert_eq!(w.len(), encoded_type_len(ty), "encoded_type_len is exact");
        let mut r = WireReader::new(w.finish());
        let out = decode_type(&mut r).unwrap();
        assert!(r.is_empty());
        out
    }

    #[test]
    fn primitives_roundtrip() {
        for ty in [
            TypeDesc::char8(),
            TypeDesc::int16(),
            TypeDesc::int32(),
            TypeDesc::int64(),
            TypeDesc::float32(),
            TypeDesc::float64(),
            TypeDesc::string(77),
            TypeDesc::pointer(),
        ] {
            assert_eq!(roundtrip(&ty), ty);
        }
    }

    #[test]
    fn nested_types_roundtrip() {
        let ty = TypeDesc::structure(
            "outer",
            vec![
                ("a", TypeDesc::array(TypeDesc::int32(), 10)),
                (
                    "b",
                    TypeDesc::structure(
                        "inner",
                        vec![("s", TypeDesc::string(4)), ("p", TypeDesc::pointer())],
                    ),
                ),
            ],
        );
        assert_eq!(roundtrip(&ty), ty);
    }

    #[test]
    fn unknown_tags_rejected() {
        let mut r = WireReader::new(Bytes::from_static(&[0x99]));
        assert!(matches!(
            decode_type(&mut r),
            Err(WireError::BadTag {
                what: "type descriptor",
                ..
            })
        ));
        let mut r = WireReader::new(Bytes::from_static(&[TAG_PRIM, 0x77]));
        assert!(matches!(
            decode_type(&mut r),
            Err(WireError::BadTag {
                what: "primitive kind",
                ..
            })
        ));
    }

    #[test]
    fn zero_cap_string_rejected() {
        let mut w = WireWriter::new();
        w.put_u8(TAG_PRIM);
        w.put_u8(KIND_STR);
        w.put_u32(0);
        let mut r = WireReader::new(w.finish());
        assert!(decode_type(&mut r).is_err());
    }

    #[test]
    fn deep_nesting_rejected() {
        // 100 nested arrays exceed MAX_TYPE_DEPTH.
        let mut w = WireWriter::new();
        for _ in 0..100 {
            w.put_u8(TAG_ARRAY);
            w.put_u32(1);
        }
        w.put_u8(TAG_PRIM);
        w.put_u8(KIND_CHAR);
        let mut r = WireReader::new(w.finish());
        assert!(decode_type(&mut r).is_err());
    }

    #[test]
    fn absurd_field_count_rejected() {
        let mut w = WireWriter::new();
        w.put_u8(TAG_STRUCT);
        w.put_str("evil");
        w.put_u32(u32::MAX);
        let mut r = WireReader::new(w.finish());
        assert!(matches!(
            decode_type(&mut r),
            Err(WireError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn truncated_input_rejected() {
        let mut w = WireWriter::new();
        w.put_u8(TAG_ARRAY);
        let mut r = WireReader::new(w.finish());
        assert!(matches!(
            decode_type(&mut r),
            Err(WireError::UnexpectedEof { .. })
        ));
    }
}
