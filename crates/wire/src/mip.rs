//! Machine-independent pointers (MIPs).
//!
//! "By concatenating the segment URL with a block name or number and
//! optional offset (delimited by pound signs), we obtain a machine-
//! independent pointer: `foo.org/path#block#offset`. To accommodate
//! heterogeneous data formats, offsets are measured in primitive data
//! units — characters, integers, floats, etc. — rather than in bytes."
//! (§2.1)
//!
//! On the wire a pointer travels as its MIP string (the empty string for a
//! null pointer); the server stores MIPs verbatim and never swizzles.

use std::fmt;
use std::str::FromStr;

use crate::codec::WireError;

/// Identifies a block within a segment: by serial number or by its optional
/// symbolic name.
///
/// All-digit path components parse as serial numbers, so symbolic names must
/// contain at least one non-digit (enforced by the client at naming time).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BlockRef {
    /// The block's serial number within its segment.
    Serial(u32),
    /// The block's symbolic name.
    Name(String),
}

impl fmt::Display for BlockRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockRef::Serial(n) => write!(f, "{n}"),
            BlockRef::Name(s) => f.write_str(s),
        }
    }
}

impl From<u32> for BlockRef {
    fn from(n: u32) -> Self {
        BlockRef::Serial(n)
    }
}

impl From<&str> for BlockRef {
    fn from(s: &str) -> Self {
        match s.parse::<u32>() {
            Ok(n) => BlockRef::Serial(n),
            Err(_) => BlockRef::Name(s.to_string()),
        }
    }
}

/// A machine-independent pointer: segment URL, block reference, and offset
/// in primitive data units.
///
/// # Examples
///
/// ```
/// use iw_wire::mip::{BlockRef, Mip};
///
/// let m: Mip = "foo.org/list#head".parse()?;
/// assert_eq!(m.segment, "foo.org/list");
/// assert_eq!(m.block, BlockRef::Name("head".into()));
/// assert_eq!(m.offset, 0);
///
/// let m: Mip = "foo.org/db#42#17".parse()?;
/// assert_eq!(m.block, BlockRef::Serial(42));
/// assert_eq!(m.offset, 17);
/// assert_eq!(m.to_string(), "foo.org/db#42#17");
/// # Ok::<(), iw_wire::codec::WireError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Mip {
    /// The segment URL (`host/path`).
    pub segment: String,
    /// The block within the segment.
    pub block: BlockRef,
    /// Offset into the block, in primitive data units.
    pub offset: u64,
}

impl Mip {
    /// Builds a MIP from parts.
    pub fn new(segment: impl Into<String>, block: impl Into<BlockRef>, offset: u64) -> Self {
        Mip {
            segment: segment.into(),
            block: block.into(),
            offset,
        }
    }

    /// A MIP to the start of a block.
    pub fn to_block(segment: impl Into<String>, block: impl Into<BlockRef>) -> Self {
        Mip::new(segment, block, 0)
    }
}

impl fmt::Display for Mip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.segment, self.block)?;
        if self.offset != 0 {
            write!(f, "#{}", self.offset)?;
        }
        Ok(())
    }
}

impl FromStr for Mip {
    type Err = WireError;

    fn from_str(s: &str) -> Result<Self, WireError> {
        let bad = || WireError::BadMip(s.to_string());
        let mut parts = s.split('#');
        let segment = parts.next().filter(|p| !p.is_empty()).ok_or_else(bad)?;
        let block = parts.next().filter(|p| !p.is_empty()).ok_or_else(bad)?;
        let offset = match parts.next() {
            Some(off) => off.parse::<u64>().map_err(|_| bad())?,
            None => 0,
        };
        if parts.next().is_some() {
            return Err(bad());
        }
        Ok(Mip {
            segment: segment.to_string(),
            block: BlockRef::from(block),
            offset,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_block_name() {
        let m: Mip = "host/list#head".parse().unwrap();
        assert_eq!(m, Mip::to_block("host/list", "head"));
    }

    #[test]
    fn parse_serial_and_offset() {
        let m: Mip = "h/s#7#123".parse().unwrap();
        assert_eq!(m.block, BlockRef::Serial(7));
        assert_eq!(m.offset, 123);
    }

    #[test]
    fn display_omits_zero_offset() {
        assert_eq!(Mip::to_block("a/b", "blk").to_string(), "a/b#blk");
        assert_eq!(Mip::new("a/b", 3u32, 9).to_string(), "a/b#3#9");
    }

    #[test]
    fn roundtrip() {
        for s in ["x.org/seg#0", "x.org/seg#name", "x.org/seg#12#9999999999"] {
            let m: Mip = s.parse().unwrap();
            assert_eq!(m.to_string(), s);
        }
    }

    #[test]
    fn malformed_mips_rejected() {
        for s in ["", "noseg", "#blk", "seg#", "a#b#c", "a#b#1#2", "a#b#-1"] {
            assert!(s.parse::<Mip>().is_err(), "{s} should fail");
        }
    }

    #[test]
    fn digit_names_parse_as_serials() {
        assert_eq!(BlockRef::from("42"), BlockRef::Serial(42));
        assert_eq!(BlockRef::from("4x2"), BlockRef::Name("4x2".into()));
        // Serial overflow falls back to a name; client naming rules forbid
        // this, and parsing must not panic.
        assert_eq!(
            BlockRef::from("99999999999999"),
            BlockRef::Name("99999999999999".into())
        );
    }

    #[test]
    fn blockref_display() {
        assert_eq!(BlockRef::Serial(5).to_string(), "5");
        assert_eq!(BlockRef::Name("head".into()).to_string(), "head");
    }
}
