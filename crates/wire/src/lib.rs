//! # iw-wire — the InterWeave wire format
//!
//! InterWeave's wire format is what lets heterogeneous machines share
//! pointer-rich data: it "captures not only data but also diffs in a machine
//! and language-independent form" (paper abstract). This crate implements:
//!
//! - [`codec`] — the low-level big-endian codec ([`WireWriter`],
//!   [`WireReader`]);
//! - [`prim`] — translation of individual primitives between a machine's
//!   local format and wire format, with caller-supplied pointer swizzling;
//! - [`mip`] — machine-independent pointers
//!   (`segment#block#offset-in-primitive-units`);
//! - [`tdesc`] — wire encoding of type descriptors (how servers learn
//!   types from clients);
//! - [`diff`] — the run-length-encoded wire diff ([`SegmentDiff`]), in
//!   two negotiable revisions (fixed-width v1 and varint/delta v2);
//! - [`lz`] — the dependency-free LZ compressor the v2 envelope uses
//!   when its entropy heuristic predicts a win;
//! - [`wal`] — CRC-protected log-record framing for the durable diff
//!   store (`iw-durable`).
//!
//! # Examples
//!
//! ```
//! use iw_wire::mip::Mip;
//!
//! let mip: Mip = "data.org/weather#temps#12".parse()?;
//! assert_eq!(mip.offset, 12); // primitive units, not bytes
//! # Ok::<(), iw_wire::codec::WireError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod diff;
pub mod lz;
pub mod mip;
pub mod prim;
pub mod tdesc;
pub mod wal;

pub use codec::{WireError, WireReader, WireWriter};
pub use diff::{BlockDiff, DiffRun, DiffWire, NewBlock, SegmentDiff};
pub use mip::{BlockRef, Mip};
