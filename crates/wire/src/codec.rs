//! Low-level wire codec.
//!
//! All multi-byte quantities on the wire are big-endian ("network order"),
//! floats are IEEE 754, strings are `u32` length-prefixed UTF-8. This is the
//! canonical format every InterWeave client translates its local format to
//! and from; it never depends on any machine architecture.

use std::error::Error;
use std::fmt;

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// An error while decoding wire-format bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the expected datum.
    UnexpectedEof {
        /// How many bytes the decoder wanted.
        wanted: usize,
        /// How many were available.
        available: usize,
    },
    /// A length-prefixed string was not valid UTF-8.
    InvalidUtf8,
    /// An enumeration tag byte had no defined meaning.
    BadTag {
        /// The decoder context (e.g. `"type descriptor"`).
        what: &'static str,
        /// The offending tag value.
        tag: u8,
    },
    /// A declared length exceeded a sanity bound.
    LengthOverflow {
        /// The declared length.
        len: u64,
    },
    /// A MIP string failed to parse.
    BadMip(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof { wanted, available } => write!(
                f,
                "unexpected end of wire data (wanted {wanted} bytes, {available} available)"
            ),
            WireError::InvalidUtf8 => f.write_str("wire string is not valid UTF-8"),
            WireError::BadTag { what, tag } => {
                write!(f, "invalid {what} tag {tag:#04x}")
            }
            WireError::LengthOverflow { len } => {
                write!(f, "declared length {len} exceeds sanity bound")
            }
            WireError::BadMip(s) => write!(f, "malformed MIP `{s}`"),
        }
    }
}

impl Error for WireError {}

/// Maximum length accepted for any single length-prefixed item (64 MiB).
/// Protects decoders from corrupt or hostile length fields.
pub const MAX_ITEM_LEN: u64 = 64 << 20;

/// An append-only wire-format writer.
///
/// # Examples
///
/// ```
/// use iw_wire::codec::{WireReader, WireWriter};
///
/// let mut w = WireWriter::new();
/// w.put_u32(7);
/// w.put_str("hello");
/// let bytes = w.finish();
///
/// let mut r = WireReader::new(bytes);
/// assert_eq!(r.get_u32()?, 7);
/// assert_eq!(r.get_str()?, "hello");
/// assert!(r.is_empty());
/// # Ok::<(), iw_wire::codec::WireError>(())
/// ```
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: BytesMut,
}

impl WireWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        WireWriter {
            buf: BytesMut::new(),
        }
    }

    /// Creates a writer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        WireWriter {
            buf: BytesMut::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Appends a big-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.put_u16(v);
    }

    /// Appends a big-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32(v);
    }

    /// Appends a big-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64(v);
    }

    /// Appends a big-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.put_i64(v);
    }

    /// Appends a big-endian IEEE 754 `f64`.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.put_f64(v);
    }

    /// Appends raw bytes with no length prefix.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.put_slice(v);
    }

    /// Appends `u32` length-prefixed raw bytes.
    pub fn put_len_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.put_bytes(v);
    }

    /// Appends a `u32` length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_len_bytes(v.as_bytes());
    }

    /// Appends an LEB128 unsigned varint (7 data bits per byte,
    /// little-endian groups, high bit = continuation). Values below 128
    /// cost one byte; a full `u64` costs at most ten.
    pub fn put_varint(&mut self, mut v: u64) {
        while v >= 0x80 {
            self.buf.put_u8((v as u8 & 0x7F) | 0x80);
            v >>= 7;
        }
        self.buf.put_u8(v as u8);
    }

    /// Appends a zigzag-mapped signed varint: small magnitudes of either
    /// sign encode to few bytes (`0 → 0`, `-1 → 1`, `1 → 2`, …).
    pub fn put_svarint(&mut self, v: i64) {
        self.put_varint(((v << 1) ^ (v >> 63)) as u64);
    }

    /// Appends varint length-prefixed raw bytes.
    pub fn put_varint_bytes(&mut self, v: &[u8]) {
        self.put_varint(v.len() as u64);
        self.put_bytes(v);
    }

    /// Finalizes the writer into immutable bytes.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

/// A wire-format reader over immutable bytes.
#[derive(Debug, Clone)]
pub struct WireReader {
    buf: Bytes,
}

impl WireReader {
    /// Wraps `buf` for reading.
    pub fn new(buf: Bytes) -> Self {
        WireReader { buf }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// `true` when all bytes have been consumed.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    fn need(&self, n: usize) -> Result<(), WireError> {
        if self.buf.len() < n {
            return Err(WireError::UnexpectedEof {
                wanted: n,
                available: self.buf.len(),
            });
        }
        Ok(())
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEof`] when the buffer is exhausted.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        self.need(1)?;
        Ok(self.buf.get_u8())
    }

    /// Reads a big-endian `u16`.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEof`] when fewer than 2 bytes remain.
    pub fn get_u16(&mut self) -> Result<u16, WireError> {
        self.need(2)?;
        Ok(self.buf.get_u16())
    }

    /// Reads a big-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEof`] when fewer than 4 bytes remain.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        self.need(4)?;
        Ok(self.buf.get_u32())
    }

    /// Reads a big-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEof`] when fewer than 8 bytes remain.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        self.need(8)?;
        Ok(self.buf.get_u64())
    }

    /// Reads a big-endian `i64`.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEof`] when fewer than 8 bytes remain.
    pub fn get_i64(&mut self) -> Result<i64, WireError> {
        self.need(8)?;
        Ok(self.buf.get_i64())
    }

    /// Reads a big-endian IEEE 754 `f64`.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEof`] when fewer than 8 bytes remain.
    pub fn get_f64(&mut self) -> Result<f64, WireError> {
        self.need(8)?;
        Ok(self.buf.get_f64())
    }

    /// Reads `n` raw bytes (zero-copy slice of the underlying buffer).
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEof`] when fewer than `n` bytes remain.
    pub fn get_bytes(&mut self, n: usize) -> Result<Bytes, WireError> {
        self.need(n)?;
        Ok(self.buf.split_to(n))
    }

    /// Copies exactly `dst.len()` bytes into `dst`, advancing the reader.
    /// The allocation-free fast path for bulk fixed-size decoding.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEof`] when fewer bytes remain.
    pub fn copy_into(&mut self, dst: &mut [u8]) -> Result<(), WireError> {
        self.need(dst.len())?;
        self.buf.copy_to_slice(dst);
        Ok(())
    }

    /// Reads `u32` length-prefixed raw bytes.
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEof`] on truncation;
    /// [`WireError::LengthOverflow`] when the declared length exceeds
    /// [`MAX_ITEM_LEN`].
    pub fn get_len_bytes(&mut self) -> Result<Bytes, WireError> {
        let n = self.get_u32()?;
        if u64::from(n) > MAX_ITEM_LEN {
            return Err(WireError::LengthOverflow { len: u64::from(n) });
        }
        self.get_bytes(n as usize)
    }

    /// Reads a `u32` length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// As [`WireReader::get_len_bytes`], plus [`WireError::InvalidUtf8`].
    pub fn get_str(&mut self) -> Result<String, WireError> {
        let b = self.get_len_bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| WireError::InvalidUtf8)
    }

    /// Peeks at the next byte without consuming it, or `None` at EOF.
    pub fn peek_u8(&self) -> Option<u8> {
        self.buf.first().copied()
    }

    /// Reads an LEB128 unsigned varint (see [`WireWriter::put_varint`]).
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEof`] on truncation;
    /// [`WireError::LengthOverflow`] on an encoding longer than ten bytes
    /// or whose tenth byte carries bits a `u64` cannot hold (overlong or
    /// overflowing encodings are rejected, never wrapped).
    pub fn get_varint(&mut self) -> Result<u64, WireError> {
        let mut v: u64 = 0;
        for i in 0..10 {
            let b = self.get_u8()?;
            if i == 9 && b > 1 {
                return Err(WireError::LengthOverflow { len: u64::MAX });
            }
            v |= u64::from(b & 0x7F) << (7 * i);
            if b & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(WireError::LengthOverflow { len: u64::MAX })
    }

    /// Reads a zigzag-mapped signed varint (see [`WireWriter::put_svarint`]).
    ///
    /// # Errors
    ///
    /// As [`WireReader::get_varint`].
    pub fn get_svarint(&mut self) -> Result<i64, WireError> {
        let z = self.get_varint()?;
        Ok((z >> 1) as i64 ^ -((z & 1) as i64))
    }

    /// Reads varint length-prefixed raw bytes (zero-copy).
    ///
    /// # Errors
    ///
    /// [`WireError::UnexpectedEof`] on truncation;
    /// [`WireError::LengthOverflow`] when the declared length exceeds
    /// [`MAX_ITEM_LEN`].
    pub fn get_varint_bytes(&mut self) -> Result<Bytes, WireError> {
        let n = self.get_varint()?;
        if n > MAX_ITEM_LEN {
            return Err(WireError::LengthOverflow { len: n });
        }
        self.get_bytes(n as usize)
    }
}

/// Number of bytes [`WireWriter::put_varint`] emits for `v`.
pub fn varint_len(v: u64) -> usize {
    (64 - (v | 1).leading_zeros() as usize).div_ceil(7).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        let mut w = WireWriter::new();
        w.put_u8(0xAB);
        w.put_u16(0x1234);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(0x0102_0304_0506_0708);
        w.put_i64(-42);
        w.put_f64(6.5);
        let mut r = WireReader::new(w.finish());
        assert_eq!(r.get_u8().unwrap(), 0xAB);
        assert_eq!(r.get_u16().unwrap(), 0x1234);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), 0x0102_0304_0506_0708);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_f64().unwrap(), 6.5);
        assert!(r.is_empty());
    }

    #[test]
    fn wire_is_big_endian() {
        let mut w = WireWriter::new();
        w.put_u32(0x0102_0304);
        let b = w.finish();
        assert_eq!(&b[..], &[1, 2, 3, 4]);
    }

    #[test]
    fn strings_and_bytes() {
        let mut w = WireWriter::new();
        w.put_str("héllo");
        w.put_len_bytes(&[9, 8, 7]);
        w.put_bytes(&[1, 2]);
        let mut r = WireReader::new(w.finish());
        assert_eq!(r.get_str().unwrap(), "héllo");
        assert_eq!(&r.get_len_bytes().unwrap()[..], &[9, 8, 7]);
        assert_eq!(&r.get_bytes(2).unwrap()[..], &[1, 2]);
    }

    #[test]
    fn eof_is_detected() {
        let mut r = WireReader::new(Bytes::from_static(&[1, 2]));
        let err = r.get_u32().unwrap_err();
        assert_eq!(
            err,
            WireError::UnexpectedEof {
                wanted: 4,
                available: 2
            }
        );
        assert!(err.to_string().contains("unexpected end"));
    }

    #[test]
    fn bad_utf8_is_detected() {
        let mut w = WireWriter::new();
        w.put_len_bytes(&[0xFF, 0xFE]);
        let mut r = WireReader::new(w.finish());
        assert_eq!(r.get_str().unwrap_err(), WireError::InvalidUtf8);
    }

    #[test]
    fn hostile_length_is_rejected() {
        let mut w = WireWriter::new();
        w.put_u32(u32::MAX);
        let mut r = WireReader::new(w.finish());
        assert!(matches!(
            r.get_len_bytes().unwrap_err(),
            WireError::LengthOverflow { .. }
        ));
    }

    #[test]
    fn truncated_len_bytes() {
        let mut w = WireWriter::new();
        w.put_u32(10);
        w.put_bytes(&[1, 2, 3]);
        let mut r = WireReader::new(w.finish());
        assert!(matches!(
            r.get_len_bytes().unwrap_err(),
            WireError::UnexpectedEof {
                wanted: 10,
                available: 3
            }
        ));
    }

    #[test]
    fn varint_roundtrip_and_lengths() {
        let cases = [
            (0u64, 1usize),
            (1, 1),
            (127, 1),
            (128, 2),
            (16_383, 2),
            (16_384, 3),
            (u64::from(u32::MAX), 5),
            (u64::MAX, 10),
        ];
        for (v, want_len) in cases {
            let mut w = WireWriter::new();
            w.put_varint(v);
            assert_eq!(w.len(), want_len, "encoded length of {v}");
            assert_eq!(varint_len(v), want_len, "varint_len of {v}");
            let mut r = WireReader::new(w.finish());
            assert_eq!(r.get_varint().unwrap(), v);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn svarint_zigzag_roundtrip() {
        for v in [0i64, -1, 1, -2, 63, -64, 64, i64::MAX, i64::MIN] {
            let mut w = WireWriter::new();
            w.put_svarint(v);
            let mut r = WireReader::new(w.finish());
            assert_eq!(r.get_svarint().unwrap(), v);
        }
        // Small magnitudes of either sign stay single-byte.
        let mut w = WireWriter::new();
        w.put_svarint(-1);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn varint_overflow_and_truncation_rejected() {
        // Eleven continuation bytes: longer than any valid u64 varint.
        let mut r = WireReader::new(Bytes::from_static(&[0xFF; 11]));
        assert!(matches!(
            r.get_varint().unwrap_err(),
            WireError::LengthOverflow { .. }
        ));
        // Tenth byte carrying bits beyond 2^64.
        let mut bytes = vec![0x80u8; 9];
        bytes.push(0x7F);
        let mut r = WireReader::new(Bytes::from(bytes));
        assert!(matches!(
            r.get_varint().unwrap_err(),
            WireError::LengthOverflow { .. }
        ));
        // Truncated mid-varint.
        let mut r = WireReader::new(Bytes::from_static(&[0x80]));
        assert!(matches!(
            r.get_varint().unwrap_err(),
            WireError::UnexpectedEof { .. }
        ));
    }

    #[test]
    fn varint_bytes_roundtrip_and_bounds() {
        let mut w = WireWriter::new();
        w.put_varint_bytes(&[1, 2, 3]);
        let mut r = WireReader::new(w.finish());
        assert_eq!(&r.get_varint_bytes().unwrap()[..], &[1, 2, 3]);
        let mut w = WireWriter::new();
        w.put_varint(MAX_ITEM_LEN + 1);
        let mut r = WireReader::new(w.finish());
        assert!(matches!(
            r.get_varint_bytes().unwrap_err(),
            WireError::LengthOverflow { .. }
        ));
    }

    #[test]
    fn peek_does_not_consume() {
        let mut r = WireReader::new(Bytes::from_static(&[9, 8]));
        assert_eq!(r.peek_u8(), Some(9));
        assert_eq!(r.get_u8().unwrap(), 9);
        assert_eq!(r.peek_u8(), Some(8));
        assert_eq!(r.get_u8().unwrap(), 8);
        assert_eq!(r.peek_u8(), None);
    }

    #[test]
    fn writer_capacity_and_len() {
        let mut w = WireWriter::with_capacity(64);
        assert!(w.is_empty());
        w.put_u8(1);
        assert_eq!(w.len(), 1);
    }
}
