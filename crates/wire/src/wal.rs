//! Log-record framing for the durable diff store (`iw-durable`).
//!
//! A write-ahead log is a byte stream that must survive being cut at an
//! arbitrary point (`kill -9` mid-`write`), so every record travels in a
//! self-checking frame:
//!
//! ```text
//! u32 len   — byte length of kind+body
//! u32 crc   — CRC-32 (IEEE) over kind+body
//! u8  kind  — record discriminator (owned by the log's user)
//! body      — len-1 bytes, opaque to the framing layer
//! ```
//!
//! [`FrameReader`] walks a buffer frame by frame and classifies the first
//! defect it meets as either a **torn tail** (the stream ends inside a
//! frame — the normal result of a crash mid-append, recovered by
//! truncation) or **corruption** (a CRC or length-field mismatch on a
//! complete frame — bit rot or a misdirected write, reported loudly).
//! Either way scanning stops at the defect: nothing after the first bad
//! record is trusted, because record boundaries downstream of it are
//! unknowable.
//!
//! The framing knows nothing about what the records mean; `iw-durable`
//! layers segment-diff and checkpoint-marker records on top.

/// Upper bound on one frame's `len` field. Nothing legitimate comes close
/// (the largest payload is one segment diff); anything larger is treated
/// as corruption rather than a reason to wait for gigabytes of "body".
pub const MAX_FRAME_LEN: u32 = 1 << 30;

/// Bytes of framing overhead per record (len + crc fields).
pub const FRAME_HEADER_LEN: usize = 8;

/// The 1 KiB CRC-32 lookup table — a pure function of the polynomial,
/// built once.
fn crc_table() -> &'static [u32; 256] {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        t
    })
}

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB8_8320`) — the classic
/// zlib/gzip checksum, computed bytewise from a lazily built table.
pub fn crc32(bytes: &[u8]) -> u32 {
    !crc32_raw(!0u32, bytes)
}

fn crc32_raw(mut c: u32, bytes: &[u8]) -> u32 {
    let table = crc_table();
    for &b in bytes {
        c = table[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c
}

/// Frames one record (`kind` + `body`) for appending to a log.
pub fn encode_frame(kind: u8, body: &[u8]) -> Vec<u8> {
    let len = (body.len() + 1) as u32;
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + 1 + body.len());
    out.extend_from_slice(&len.to_be_bytes());
    // CRC over kind+body; computed over the contiguous tail we are about
    // to write, so no intermediate buffer is needed.
    let mut crc = crc32(&[kind]);
    crc = crc32_continue(crc, body);
    out.extend_from_slice(&crc.to_be_bytes());
    out.push(kind);
    out.extend_from_slice(body);
    out
}

/// Continues a CRC-32 over more bytes (so `kind` and `body` need not be
/// copied into one buffer just to checksum them).
fn crc32_continue(crc: u32, bytes: &[u8]) -> u32 {
    !crc32_raw(!crc, bytes)
}

/// Why a [`FrameReader`] stopped before the end of its buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameDefect {
    /// The buffer ends inside a frame (header or body cut short): the
    /// expected result of a crash mid-append. Recovery truncates here.
    TornTail,
    /// A complete frame failed its CRC, or a length field is absurd:
    /// corruption rather than a torn write.
    Corrupt,
}

impl std::fmt::Display for FrameDefect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameDefect::TornTail => write!(f, "torn tail (stream ends mid-frame)"),
            FrameDefect::Corrupt => write!(f, "corrupt frame (crc or length mismatch)"),
        }
    }
}

/// One decoded frame: its kind byte, body, and the byte offset of the
/// *end* of the frame (i.e. where the valid prefix of the log extends to
/// if this is the last good record).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame<'a> {
    /// Record discriminator.
    pub kind: u8,
    /// Record body (opaque to the framing layer).
    pub body: &'a [u8],
    /// Offset one past this frame in the scanned buffer.
    pub end: usize,
}

/// Sequential frame scanner over an in-memory log image.
#[derive(Debug)]
pub struct FrameReader<'a> {
    buf: &'a [u8],
    pos: usize,
    defect: Option<FrameDefect>,
}

impl<'a> FrameReader<'a> {
    /// Scans `buf` from its first byte (callers strip any file header
    /// first).
    pub fn new(buf: &'a [u8]) -> Self {
        FrameReader {
            buf,
            pos: 0,
            defect: None,
        }
    }

    /// Current offset: end of the last good frame (the truncation point
    /// when a defect stopped the scan).
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// The defect that stopped the scan, if any.
    pub fn defect(&self) -> Option<FrameDefect> {
        self.defect
    }

    /// Returns the next frame, or `None` at the end of the valid prefix.
    /// After the first defect every further call returns `None`; consult
    /// [`FrameReader::defect`] to distinguish a clean end from a stop.
    #[allow(clippy::should_implement_trait)] // borrow of self.buf: not an Iterator
    pub fn next(&mut self) -> Option<Frame<'a>> {
        if self.defect.is_some() || self.pos == self.buf.len() {
            return None;
        }
        let rest = &self.buf[self.pos..];
        if rest.len() < FRAME_HEADER_LEN {
            self.defect = Some(FrameDefect::TornTail);
            return None;
        }
        let len = u32::from_be_bytes(rest[0..4].try_into().expect("4 bytes"));
        let crc = u32::from_be_bytes(rest[4..8].try_into().expect("4 bytes"));
        if len == 0 || len > MAX_FRAME_LEN {
            self.defect = Some(FrameDefect::Corrupt);
            return None;
        }
        let total = FRAME_HEADER_LEN + len as usize;
        if rest.len() < total {
            self.defect = Some(FrameDefect::TornTail);
            return None;
        }
        let payload = &rest[FRAME_HEADER_LEN..total];
        if crc32(payload) != crc {
            self.defect = Some(FrameDefect::Corrupt);
            return None;
        }
        self.pos += total;
        Some(Frame {
            kind: payload[0],
            body: &payload[1..],
            end: self.pos,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn crc32_continue_matches_one_shot() {
        let all = b"abcdefgh";
        for split in 0..all.len() {
            let c = crc32(&all[..split]);
            assert_eq!(crc32_continue(c, &all[split..]), crc32(all));
        }
    }

    fn log_of(records: &[(u8, &[u8])]) -> Vec<u8> {
        let mut out = Vec::new();
        for (kind, body) in records {
            out.extend_from_slice(&encode_frame(*kind, body));
        }
        out
    }

    #[test]
    fn roundtrip_multiple_frames() {
        let log = log_of(&[(1, b"hello"), (2, b""), (7, &[0xFF; 300])]);
        let mut r = FrameReader::new(&log);
        let f = r.next().unwrap();
        assert_eq!((f.kind, f.body), (1, &b"hello"[..]));
        let f = r.next().unwrap();
        assert_eq!((f.kind, f.body), (2, &b""[..]));
        let f = r.next().unwrap();
        assert_eq!(f.kind, 7);
        assert_eq!(f.body.len(), 300);
        assert_eq!(f.end, log.len());
        assert!(r.next().is_none());
        assert_eq!(r.defect(), None);
        assert_eq!(r.offset(), log.len());
    }

    #[test]
    fn torn_tail_truncates_cleanly() {
        let log = log_of(&[(1, b"first"), (2, b"second")]);
        let first_end = encode_frame(1, b"first").len();
        // Every cut inside the second frame yields exactly the first
        // record and a TornTail defect at the first frame's end.
        for cut in first_end + 1..log.len() {
            let mut r = FrameReader::new(&log[..cut]);
            assert!(r.next().is_some());
            assert!(r.next().is_none());
            assert_eq!(r.defect(), Some(FrameDefect::TornTail), "cut at {cut}");
            assert_eq!(r.offset(), first_end);
        }
    }

    #[test]
    fn bit_flip_detected_as_corrupt() {
        let log = log_of(&[(1, b"payload-bytes")]);
        // Flip every bit position in turn; the frame must never decode
        // to different contents without being flagged.
        for pos in 0..log.len() {
            for bit in 0..8 {
                let mut bad = log.clone();
                bad[pos] ^= 1 << bit;
                let mut r = FrameReader::new(&bad);
                match r.next() {
                    None => assert!(r.defect().is_some(), "flip at {pos}:{bit} undetected"),
                    Some(f) => panic!("flip at {pos}:{bit} decoded as {:?}", f.kind),
                }
            }
        }
    }

    #[test]
    fn absurd_length_is_corrupt_not_torn() {
        let mut log = encode_frame(1, b"x");
        log[0..4].copy_from_slice(&(MAX_FRAME_LEN + 1).to_be_bytes());
        let mut r = FrameReader::new(&log);
        assert!(r.next().is_none());
        assert_eq!(r.defect(), Some(FrameDefect::Corrupt));
    }

    #[test]
    fn nothing_after_first_defect_is_trusted() {
        let mut log = log_of(&[(1, b"good"), (2, b"bad"), (3, b"unreachable")]);
        let first_end = encode_frame(1, b"good").len();
        log[first_end + FRAME_HEADER_LEN + 1] ^= 0x01; // corrupt record 2's body
        let mut r = FrameReader::new(&log);
        assert_eq!(r.next().unwrap().kind, 1);
        assert!(r.next().is_none());
        assert_eq!(r.defect(), Some(FrameDefect::Corrupt));
        assert!(r.next().is_none(), "scan must stay stopped");
        assert_eq!(r.offset(), first_end);
    }

    #[test]
    fn empty_log_is_clean() {
        let mut r = FrameReader::new(&[]);
        assert!(r.next().is_none());
        assert_eq!(r.defect(), None);
    }
}
