//! Dependency-free LZ77 byte compressor for diff payloads.
//!
//! The format is LZ4-block-shaped: a stream of sequences, each a token
//! byte (high nibble = literal length, low nibble = match length − 4,
//! value 15 in either nibble means "more length bytes follow, 255 per
//! byte"), the literals, then a big-endian `u16` back-reference offset
//! (1..=65535). The final sequence is literals-only — the decoder stops
//! when input is exhausted after copying literals. Matches are found
//! greedily through a 4-byte rolling hash table; compression aborts
//! early ([`compress`] returns `None`) the moment output would reach
//! input size, so callers only ever ship a compressed body that is a
//! strict win.
//!
//! This is a private transport codec, not an interchange format: both
//! sides of the wire are this module, negotiated by a capability bit,
//! and the decompressor is fully bounds-checked against hostile input
//! (bad offsets, declared-length mismatches, output bombs).

use crate::codec::WireError;

/// Minimum back-reference length worth encoding (the token's match
/// nibble stores `len - MIN_MATCH`).
const MIN_MATCH: usize = 4;

/// log2 of the match-finder hash table size. 4096 entries keeps the
/// table cache-resident while still finding nearly all repeats within
/// the 64 KiB offset window on diff-sized payloads.
const HASH_BITS: u32 = 12;

/// Hashes the 4 bytes at `src[i..i+4]` into a table index.
#[inline]
fn hash4(src: &[u8], i: usize) -> usize {
    let v = u32::from_le_bytes([src[i], src[i + 1], src[i + 2], src[i + 3]]);
    (v.wrapping_mul(2_654_435_761) >> (32 - HASH_BITS)) as usize
}

/// Appends an LZ length (token nibble already holds `min(n, 15)`) as
/// 255-run extension bytes when `n >= 15`.
fn put_ext_len(out: &mut Vec<u8>, mut n: usize) {
    while n >= 255 {
        out.push(255);
        n -= 255;
    }
    out.push(n as u8);
}

/// Emits one sequence: `literals` then, unless this is the final
/// sequence, a match of `mlen` bytes at `offset` back.
fn put_sequence(out: &mut Vec<u8>, literals: &[u8], m: Option<(usize, usize)>) {
    let lit_nib = literals.len().min(15) as u8;
    let match_nib = m.map_or(0, |(mlen, _)| (mlen - MIN_MATCH).min(15) as u8);
    out.push((lit_nib << 4) | match_nib);
    if literals.len() >= 15 {
        put_ext_len(out, literals.len() - 15);
    }
    out.extend_from_slice(literals);
    if let Some((mlen, offset)) = m {
        out.extend_from_slice(&(offset as u16).to_be_bytes());
        if mlen - MIN_MATCH >= 15 {
            put_ext_len(out, mlen - MIN_MATCH - 15);
        }
    }
}

/// Compresses `src`, or returns `None` when the result would be no
/// smaller than the input (including all incompressible and tiny
/// inputs). The encoder aborts as soon as output size catches up with
/// input size, so a `None` costs at most one wasted pass.
pub fn compress(src: &[u8]) -> Option<Vec<u8>> {
    if src.len() < MIN_MATCH + 1 {
        return None;
    }
    let mut out = Vec::with_capacity(src.len());
    let mut table = vec![u32::MAX; 1 << HASH_BITS];
    let mut anchor = 0usize; // start of pending literals
    let mut i = 0usize;
    // Leave room so hash4/match extension never read past the end.
    let end = src.len() - MIN_MATCH;
    while i <= end {
        let h = hash4(src, i);
        let cand = table[h] as usize;
        table[h] = i as u32;
        let found = cand != u32::MAX as usize
            && i - cand <= u16::MAX as usize
            && i != cand
            && src[cand..cand + MIN_MATCH] == src[i..i + MIN_MATCH];
        if !found {
            i += 1;
            continue;
        }
        let mut mlen = MIN_MATCH;
        while i + mlen < src.len() && src[cand + mlen] == src[i + mlen] {
            mlen += 1;
        }
        put_sequence(&mut out, &src[anchor..i], Some((mlen, i - cand)));
        if out.len() >= src.len() {
            return None;
        }
        i += mlen;
        anchor = i;
    }
    // No empty trailing sequence: a stream may end at a match boundary,
    // so every emitted byte stays load-bearing under truncation.
    if anchor < src.len() {
        put_sequence(&mut out, &src[anchor..], None);
    }
    (out.len() < src.len()).then_some(out)
}

/// Reads an extended length run (`255*` then a terminator byte).
fn get_ext_len(src: &[u8], pos: &mut usize) -> Result<usize, WireError> {
    let mut n = 0usize;
    loop {
        let b = *src.get(*pos).ok_or(WireError::UnexpectedEof {
            wanted: *pos + 1,
            available: src.len(),
        })?;
        *pos += 1;
        n += b as usize;
        if b != 255 {
            return Ok(n);
        }
        if n > MAX_DECOMPRESSED {
            return Err(WireError::LengthOverflow { len: n as u64 });
        }
    }
}

/// Hard ceiling on a single decompressed payload (1 GiB) — backstop
/// against corrupt extension-length runs before the `expected_len`
/// check can engage.
const MAX_DECOMPRESSED: usize = 1 << 30;

/// Decompresses `src` into exactly `expected_len` bytes.
///
/// # Errors
///
/// [`WireError`] on any malformed stream: truncated sequences, an
/// offset of zero or beyond the bytes produced so far, or output that
/// over- or under-runs `expected_len`. Never reads or writes out of
/// bounds.
pub fn decompress(src: &[u8], expected_len: usize) -> Result<Vec<u8>, WireError> {
    if expected_len > MAX_DECOMPRESSED {
        return Err(WireError::LengthOverflow {
            len: expected_len as u64,
        });
    }
    let mut out = Vec::with_capacity(expected_len.min(src.len().saturating_mul(256)));
    let mut pos = 0usize;
    let eof = |wanted: usize| WireError::UnexpectedEof {
        wanted,
        available: src.len(),
    };
    while pos < src.len() {
        let token = src[pos];
        pos += 1;
        let mut lit = (token >> 4) as usize;
        if lit == 15 {
            lit += get_ext_len(src, &mut pos)?;
        }
        if pos + lit > src.len() {
            return Err(eof(pos + lit));
        }
        out.extend_from_slice(&src[pos..pos + lit]);
        pos += lit;
        if out.len() > expected_len {
            return Err(WireError::LengthOverflow {
                len: out.len() as u64,
            });
        }
        if pos == src.len() {
            break; // final, literals-only sequence
        }
        if pos + 2 > src.len() {
            return Err(eof(pos + 2));
        }
        let offset = u16::from_be_bytes([src[pos], src[pos + 1]]) as usize;
        pos += 2;
        let mut mlen = (token & 0x0F) as usize + MIN_MATCH;
        if mlen - MIN_MATCH == 15 {
            mlen += get_ext_len(src, &mut pos)?;
        }
        if offset == 0 || offset > out.len() {
            return Err(WireError::BadTag {
                what: "lz back-reference offset",
                tag: (offset & 0xFF) as u8,
            });
        }
        if out.len() + mlen > expected_len {
            return Err(WireError::LengthOverflow {
                len: (out.len() + mlen) as u64,
            });
        }
        // Byte-by-byte: matches may overlap their own output (RLE-style).
        let start = out.len() - offset;
        for k in 0..mlen {
            let b = out[start + k];
            out.push(b);
        }
    }
    if out.len() != expected_len {
        return Err(WireError::UnexpectedEof {
            wanted: expected_len,
            available: out.len(),
        });
    }
    Ok(out)
}

/// Payloads below this size never engage compression: the codec tag and
/// length headers eat any plausible win and the entropy sample is too
/// small to mean anything.
pub const MIN_COMPRESS_LEN: usize = 64;

/// Cheap pre-filter: samples up to 512 evenly-strided bytes and
/// estimates Shannon entropy over the sample. Returns `false` for
/// payloads that look incompressible (near-random bytes, already
/// compressed or encrypted data) so [`compress`]'s full pass is only
/// spent where a win is plausible. High-entropy false negatives merely
/// cost ratio, never correctness.
pub fn likely_compressible(data: &[u8]) -> bool {
    if data.len() < MIN_COMPRESS_LEN {
        return false;
    }
    const SAMPLES: usize = 512;
    let stride = (data.len() / SAMPLES).max(1);
    let mut hist = [0u32; 256];
    let mut n = 0u32;
    let mut i = 0;
    while i < data.len() && (n as usize) < SAMPLES {
        hist[data[i] as usize] += 1;
        n += 1;
        i += stride;
    }
    let mut entropy = 0.0f64;
    for &c in &hist {
        if c > 0 {
            let p = f64::from(c) / f64::from(n);
            entropy -= p * p.log2();
        }
    }
    entropy < 7.2
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &[u8]) -> bool {
        match compress(src) {
            Some(c) => {
                assert!(c.len() < src.len(), "compressed output must shrink");
                assert_eq!(decompress(&c, src.len()).unwrap(), src);
                true
            }
            None => false,
        }
    }

    #[test]
    fn compressible_payloads_roundtrip_and_shrink() {
        assert!(roundtrip(&[0u8; 4096]));
        // Struct-shaped data: a small field cycling inside zero padding,
        // like sparse dirty runs of big-endian integers.
        let records: Vec<u8> = (0..2048u32).flat_map(|v| (v % 5).to_be_bytes()).collect();
        assert!(roundtrip(&records));
        let repeats: Vec<u8> = b"hello interweave wire diff "
            .iter()
            .copied()
            .cycle()
            .take(2000)
            .collect();
        assert!(roundtrip(&repeats));
    }

    #[test]
    fn overlapping_match_rle_roundtrips() {
        // A long run compresses to a self-overlapping match (offset 1).
        let mut v = vec![7u8; 1000];
        v[0] = 3;
        assert!(roundtrip(&v));
    }

    #[test]
    fn incompressible_input_returns_none() {
        // A permutation of 0..=255 repeated twice has no 4-byte repeats
        // close enough to win; a pseudo-random stream surely doesn't.
        let mut x = 0x12345678u32;
        let noise: Vec<u8> = (0..2048)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 17;
                x ^= x << 5;
                (x >> 24) as u8
            })
            .collect();
        assert_eq!(compress(&noise), None);
        assert_eq!(compress(b"tiny"), None);
        assert_eq!(compress(b""), None);
    }

    #[test]
    fn decompress_rejects_bad_offsets() {
        // Token: 1 literal, match nibble 0 (match len 4), offset 0.
        let stream = [0x10, b'a', 0x00, 0x00, 0x00];
        assert!(matches!(
            decompress(&stream, 5),
            Err(WireError::BadTag { .. })
        ));
        // Offset beyond bytes produced so far.
        let stream = [0x10, b'a', 0x00, 0x09, 0x00];
        assert!(matches!(
            decompress(&stream, 5),
            Err(WireError::BadTag { .. })
        ));
    }

    #[test]
    fn decompress_rejects_truncation_everywhere() {
        let src: Vec<u8> = b"abcdabcdabcdabcdabcdabcd".to_vec();
        let c = compress(&src).unwrap();
        for cut in 0..c.len() {
            assert!(
                decompress(&c[..cut], src.len()).is_err(),
                "truncation at {cut} must not decode"
            );
        }
    }

    #[test]
    fn decompress_rejects_wrong_expected_len() {
        let src = vec![5u8; 300];
        let c = compress(&src).unwrap();
        assert!(decompress(&c, 299).is_err());
        assert!(decompress(&c, 301).is_err());
        assert!(decompress(&c, 0).is_err());
    }

    #[test]
    fn decompress_bounds_output_bombs() {
        assert!(matches!(
            decompress(&[0x00], MAX_DECOMPRESSED + 1),
            Err(WireError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn heuristic_separates_structured_from_random() {
        let zeros = vec![0u8; 1024];
        assert!(likely_compressible(&zeros));
        let structured: Vec<u8> = (0..512u32).flat_map(|v| v.to_be_bytes()).collect();
        assert!(likely_compressible(&structured));
        let mut x = 0x9E3779B9u32;
        let noise: Vec<u8> = (0..4096)
            .map(|_| {
                x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                (x >> 24) as u8
            })
            .collect();
        assert!(!likely_compressible(&noise));
        assert!(!likely_compressible(&[1, 2, 3]));
    }
}
