//! Chaos soak harness: N clients against a degraded 2-node cluster.
//!
//! [`run_soak`] builds an in-process primary/backup pair, degrades the
//! client links and the primary→backup ship link with independent
//! [`FaultPlan`]s, runs a slot-writing workload, and then checks the
//! standing invariants once the faults stop:
//!
//! - **Convergence against a fault-free oracle.** Each client `c`
//!   writes `round * 1000 + c` into its own slot of a shared segment,
//!   so the fault-free end state is a pure function of `(clients,
//!   ops)`: slot `c` holds `(ops-1) * 1000 + c`. A run converged when
//!   every slot matches — byte-for-byte what the identical run under
//!   [`FaultPlan::none`] produces (versions may differ: recovered
//!   rounds legitimately re-commit).
//! - **Versions never regress.** Every client asserts its observed
//!   segment version is monotone across acquisitions, failovers
//!   included.
//! - **Backup convergence.** Once faults stop (and the backup
//!   re-attaches, if its link was killed mid-run), the backup's
//!   segment must be byte-identical to the primary's checkpoint
//!   encoding.
//!
//! Both clients in a replica group point at the *same* primary: the
//! backup is a bare [`Server`] that would accept writes, so failing
//! over to it mid-run would split the brain. What the group buys here
//! is recovery from transient link faults — reconnect, old-id
//! retirement, cache reconciliation — which is exactly the machinery
//! under test. (Genuine kill-the-primary failover is covered by the
//! cluster e2e tests.)

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use iw_cluster::{Backup, Primary};
use iw_core::{Connector, CoreError, Session, SessionOptions};
use iw_proto::{Coherence, Handler, Loopback, Transport};
use iw_server::{checkpoint, Server};
use iw_types::desc::TypeDesc;
use iw_types::MachineArch;

use crate::{splitmix64, FaultInjector, FaultLog, FaultPlan};

/// Everything a soak run needs; fully determines the run together with
/// thread scheduling (single-client runs are fully deterministic).
#[derive(Clone)]
pub struct SoakConfig {
    /// Base PRNG seed; client links and the ship link derive distinct
    /// streams from it.
    pub seed: u64,
    /// Concurrent writer sessions (must be < 1000: the workload encodes
    /// the client id in the low three decimal digits).
    pub clients: usize,
    /// Write rounds per client.
    pub ops: usize,
    /// Fault plan worn by every client link.
    pub client_plan: FaultPlan,
    /// Fault plan worn by the primary→backup ship link.
    pub ship_plan: FaultPlan,
    /// Acquire/write/release attempts per round before a client gives
    /// up and reports a failure.
    pub max_attempts: usize,
}

impl SoakConfig {
    /// A small soak with recoverable fault plans on both links —
    /// the CI configuration.
    pub fn quick(seed: u64) -> SoakConfig {
        SoakConfig {
            seed,
            clients: 3,
            ops: 12,
            client_plan: FaultPlan::recoverable(400),
            ship_plan: FaultPlan::recoverable(400),
            max_attempts: 25,
        }
    }
}

/// What a soak run observed.
#[derive(Debug)]
pub struct SoakReport {
    /// Every slot matched the fault-free oracle and no client reported
    /// a failure.
    pub converged: bool,
    /// Backup checkpoint bytes equal the primary's after faults
    /// stopped.
    pub backup_identical: bool,
    /// Human-readable invariant violations and given-up rounds.
    pub failures: Vec<String>,
    /// Injections on client links / the ship link.
    pub client_injections: usize,
    /// Injections on the ship link.
    pub ship_injections: usize,
    /// `seq:msg:fault` trace of the client links (the determinism
    /// comparison unit; meaningful for single-client runs).
    pub client_trace: String,
    /// `seq:msg:fault` trace of the ship link.
    pub ship_trace: String,
    /// Final version of the shared segment at the primary.
    pub final_version: u64,
    /// Final slot values read back through a clean session.
    pub final_slots: Vec<i64>,
    /// Total successful client reconnects (recoveries from injected
    /// channel faults).
    pub client_reconnects: u64,
    /// The primary's final checkpoint-encoded segment image. When the
    /// soak ran on a durable server, a restart from the same data dir
    /// must recover to exactly these bytes.
    pub primary_image: Option<Vec<u8>>,
    /// Wall time of the fault-injected client phase.
    pub elapsed: std::time::Duration,
    /// Diff payload the primary accounted at the raw (v1) size.
    pub diff_bytes_raw: u64,
    /// Diff payload the primary actually put on the wire.
    pub diff_bytes_sent: u64,
}

impl SoakReport {
    /// Diff wire bytes per second of chaos-phase time.
    pub fn wire_bytes_per_sec(&self) -> f64 {
        if self.elapsed.as_secs_f64() > 0.0 {
            self.diff_bytes_sent as f64 / self.elapsed.as_secs_f64()
        } else {
            0.0
        }
    }
}

const SEGMENT: &str = "chaos/slots";
const BLOCK_MIP: &str = "chaos/slots#slots";

fn derive_seed(base: u64, stream: u64) -> u64 {
    let mut s = base ^ stream.wrapping_mul(0xA076_1D64_78BD_642F);
    splitmix64(&mut s)
}

/// A connector producing loopback links to `primary`, each wearing a
/// fresh injector whose seed is derived from the connection ordinal —
/// a single-threaded session's fault stream is a pure function of the
/// base seed, across however many reconnects it burns through.
fn faulty_connector(
    primary: &Arc<Primary>,
    base_seed: u64,
    plan: &FaultPlan,
    log: &FaultLog,
    conn_counter: &Arc<AtomicU64>,
) -> Connector {
    let primary = primary.clone();
    let plan = plan.clone();
    let log = log.clone();
    let conn_counter = conn_counter.clone();
    Box::new(move || {
        let n = conn_counter.fetch_add(1, Ordering::SeqCst);
        let mut t = Loopback::new(primary.clone());
        t.set_fault_layer(Box::new(FaultInjector::new(
            derive_seed(base_seed, n),
            plan.clone(),
            log.clone(),
        )));
        Ok(Box::new(t) as Box<dyn Transport>)
    })
}

fn soak_options() -> SessionOptions {
    SessionOptions {
        // Short, bounded backoffs: chaos rounds retry at the harness
        // level, so per-call patience just slows the soak down.
        lock_retries: 2_000,
        lock_backoff_us: 10,
        lock_backoff_cap_us: 200,
        failover_rounds: 3,
        failover_backoff_ms: 1,
        ..SessionOptions::default()
    }
}

/// Creates the shared segment with one i64 slot per client, through a
/// clean (fault-free) link — setup is scaffolding, not the code under
/// test.
fn setup_segment(primary: &Arc<Primary>, clients: usize) -> Result<(), CoreError> {
    let mut s = Session::with_options(
        MachineArch::x86(),
        Box::new(Loopback::new(primary.clone())),
        soak_options(),
    )?;
    let h = s.open_segment(SEGMENT)?;
    s.wl_acquire(&h)?;
    let slots = s.malloc(&h, &TypeDesc::int64(), clients.max(1) as u32, Some("slots"))?;
    for c in 0..clients {
        let slot = s.index(&slots, c as u32)?;
        s.write_i64(&slot, -1)?;
    }
    s.wl_release(&h)?;
    Ok(())
}

struct ClientOutcome {
    failures: Vec<String>,
    reconnects: u64,
}

/// One chaos client: `ops` rounds of acquire → write own slot →
/// release, retrying each round until it commits (or `max_attempts` is
/// spent), asserting version monotonicity along the way.
fn run_client(primary: &Arc<Primary>, cfg: &SoakConfig, c: usize, log: &FaultLog) -> ClientOutcome {
    let mut failures = Vec::new();
    let conn_counter = Arc::new(AtomicU64::new(0));
    let base_seed = derive_seed(cfg.seed, 1_000 + c as u64);
    let connectors: Vec<Connector> = (0..2)
        .map(|_| faulty_connector(primary, base_seed, &cfg.client_plan, log, &conn_counter))
        .collect();

    let mut session = match Session::with_options(
        MachineArch::x86(),
        Box::new(Loopback::new(primary.clone())),
        soak_options(),
    )
    .and_then(|mut s| {
        s.add_server_group("chaos", connectors)?;
        Ok(s)
    }) {
        Ok(s) => s,
        Err(e) => {
            failures.push(format!("client {c}: session setup failed: {e}"));
            return ClientOutcome {
                failures,
                reconnects: 0,
            };
        }
    };
    let h = match session.open_segment(SEGMENT) {
        Ok(h) => h,
        Err(e) => {
            failures.push(format!("client {c}: open failed: {e}"));
            return ClientOutcome {
                failures,
                reconnects: 0,
            };
        }
    };

    let mut last_version = 0u64;
    // `locked` survives failed attempts: when a release fails because a
    // failover itself failed (every replica momentarily unreachable),
    // the session — and the server — still hold the write lock, and the
    // retry must resume at the release, not re-acquire.
    let mut locked = false;
    'rounds: for r in 0..cfg.ops {
        for _attempt in 0..cfg.max_attempts {
            if !locked {
                match session.wl_acquire(&h) {
                    Ok(()) => locked = true,
                    // Recoverable outcomes: the lock died in a failover
                    // (local writes already rolled back), the retry
                    // budget ran out, or the round trip failed — redo.
                    Err(CoreError::LockLost { .. } | CoreError::LockTimeout(_)) => continue,
                    Err(CoreError::Proto(_) | CoreError::Server(_)) => continue,
                    Err(e) => {
                        failures.push(format!("client {c} round {r}: acquire: {e}"));
                        continue;
                    }
                }
                // Invariant: the version observed under the lock never
                // regresses, reconnects and rollbacks included.
                match session.segment_version(&h) {
                    Ok(v) if v < last_version => {
                        failures.push(format!(
                            "client {c} round {r}: version regressed {last_version} -> {v}"
                        ));
                    }
                    Ok(v) => last_version = v,
                    Err(_) => {}
                }
            }
            let wrote = session
                .mip_to_ptr(BLOCK_MIP)
                .and_then(|base| session.index(&base, c as u32))
                .and_then(|slot| session.write_i64(&slot, (r as i64) * 1000 + c as i64));
            if let Err(e) = &wrote {
                failures.push(format!("client {c} round {r}: write: {e}"));
            }
            match session.wl_release(&h) {
                // Committed (an empty failed-write round commits
                // nothing, and the retry below re-runs it).
                Ok(()) if wrote.is_ok() => {
                    locked = false;
                    continue 'rounds;
                }
                Ok(()) => locked = false,
                // Rolled back in a failover: this round never landed.
                Err(CoreError::LockLost { .. }) => locked = false,
                // The failover behind this release failed outright: the
                // lock (local and server-side) is still ours; retry the
                // release once a replica answers again.
                Err(CoreError::Proto(_) | CoreError::Server(_)) => {}
                Err(e) => {
                    failures.push(format!("client {c} round {r}: release: {e}"));
                    locked = false;
                }
            }
        }
        failures.push(format!(
            "client {c} round {r}: gave up after {} attempts",
            cfg.max_attempts
        ));
        break;
    }
    let reconnects = session
        .metrics_snapshot()
        .counter("client.reconnects_total")
        .unwrap_or(0);
    ClientOutcome {
        failures,
        reconnects,
    }
}

/// Runs one soak: build the degraded cluster, run the workload, stop
/// the faults, verify convergence and backup identity.
pub fn run_soak(cfg: &SoakConfig) -> SoakReport {
    run_soak_on(cfg, Server::new())
}

/// [`run_soak`] with a caller-built primary server — the hook the
/// recovery harness uses to run the identical chaos workload on a
/// durable (`Server::with_durability`) primary, then restart it from
/// disk and compare against [`SoakReport::primary_image`].
pub fn run_soak_on(cfg: &SoakConfig, primary_server: Server) -> SoakReport {
    let client_log = FaultLog::new();
    let ship_log = FaultLog::new();
    let mut failures = Vec::new();

    let backup = Arc::new(Server::new());
    let primary = Arc::new(Primary::new(primary_server));
    let mut ship_t = Loopback::new(backup.clone());
    ship_t.set_fault_layer(Box::new(FaultInjector::new(
        derive_seed(cfg.seed, 2),
        cfg.ship_plan.clone(),
        ship_log.clone(),
    )));
    // Ship-link injections land in the primary's registry: one iwstat
    // scrape shows faults next to the recovery counters they cause.
    ship_t.bind_registry(primary.server().registry());
    primary.add_backup(Box::new(ship_t));
    primary.drain();

    if let Err(e) = setup_segment(&primary, cfg.clients) {
        failures.push(format!("setup failed: {e}"));
    }

    let mut reconnects = 0u64;
    let chaos_started = std::time::Instant::now();
    if failures.is_empty() {
        let outcomes: Vec<ClientOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..cfg.clients)
                .map(|c| {
                    let primary = &primary;
                    let cfg = &*cfg;
                    let log = &client_log;
                    scope.spawn(move || run_client(primary, cfg, c, log))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|_| ClientOutcome {
                        failures: vec!["client thread panicked".into()],
                        reconnects: 0,
                    })
                })
                .collect()
        });
        for o in outcomes {
            failures.extend(o.failures);
            reconnects += o.reconnects;
        }
    }
    let elapsed = chaos_started.elapsed();

    // Fault phase over: freeze both links and let replication settle.
    client_log.set_enabled(false);
    ship_log.set_enabled(false);
    primary.drain();
    // A ship link killed mid-run leaves the backup behind with no one
    // streaming to it; re-attach a clean link (the attach-time full
    // sync is the recovery path a rejoining backup uses in production).
    let snap = primary.server().metrics_snapshot();
    if snap.gauge("cluster.backups") != Some(1) {
        primary.add_backup(Box::new(Loopback::new(backup.clone())));
        primary.drain();
    }

    let primary_image = primary
        .server()
        .with_segment_mut(SEGMENT, checkpoint::encode_segment)
        .and_then(Result::ok)
        .map(|b| b.to_vec());
    let backup_identical = match (
        &primary_image,
        backup.with_segment_mut(SEGMENT, checkpoint::encode_segment),
    ) {
        (Some(p), Some(Ok(b))) => p[..] == b[..],
        _ => false,
    };
    if !backup_identical {
        failures.push("backup checkpoint differs from primary after faults stopped".into());
    }

    // Read the end state through a clean session and compare with the
    // fault-free oracle: slot c == (ops-1)*1000 + c.
    let mut final_slots = Vec::new();
    let read = (|| -> Result<(), CoreError> {
        let mut s = Session::with_options(
            MachineArch::x86(),
            Box::new(Loopback::new(primary.clone())),
            soak_options(),
        )?;
        let h = s.open_segment(SEGMENT)?;
        s.rl_acquire(&h)?;
        let base = s.mip_to_ptr(BLOCK_MIP)?;
        for c in 0..cfg.clients {
            let slot = s.index(&base, c as u32)?;
            final_slots.push(s.read_i64(&slot)?);
        }
        s.rl_release(&h)?;
        Ok(())
    })();
    if let Err(e) = read {
        failures.push(format!("end-state read failed: {e}"));
    }
    if cfg.ops > 0 {
        for (c, &got) in final_slots.iter().enumerate() {
            let expected = (cfg.ops as i64 - 1) * 1000 + c as i64;
            if got != expected {
                failures.push(format!(
                    "slot {c}: expected {expected} (fault-free oracle), got {got}"
                ));
            }
        }
    }

    SoakReport {
        converged: failures.is_empty(),
        backup_identical,
        failures,
        client_injections: client_log.len(),
        ship_injections: ship_log.len(),
        client_trace: client_log.trace(),
        ship_trace: ship_log.trace(),
        final_version: primary.server().segment_version(SEGMENT).unwrap_or(0),
        final_slots,
        client_reconnects: reconnects,
        primary_image,
        elapsed,
        diff_bytes_raw: snap.counter("wire.diff_bytes_raw_total").unwrap_or(0),
        diff_bytes_sent: snap.counter("wire.diff_bytes_sent_total").unwrap_or(0),
    }
}

/// The shared segment's checkpoint-encoded image on `server`, if it
/// exists and encodes (the recovery harness compares this against
/// [`SoakReport::primary_image`] after a restart-from-disk).
pub fn soak_segment_image(server: &Server) -> Option<Vec<u8>> {
    server
        .with_segment_mut(SEGMENT, checkpoint::encode_segment)
        .and_then(Result::ok)
        .map(|b| b.to_vec())
}

// ----------------------------------------------------------------------
// Replica-read soak
// ----------------------------------------------------------------------

const FEED: &str = "chaos/feed";
const FEED_MIP: &str = "chaos/feed#x";

/// Configuration for [`run_replica_soak`]: one writer streams versions
/// through the primary while reader sessions pinned to a backup read
/// under relaxed coherence, with the primary→backup ship link degraded
/// by a seeded fault plan. The client↔primary links stay clean — the
/// chaos under test is the *replica lag* the faulty ship link creates,
/// racing the staleness floors the readers carry.
#[derive(Clone)]
pub struct ReplicaSoakConfig {
    /// Base PRNG seed for the ship-link fault stream.
    pub seed: u64,
    /// Concurrent reader sessions, alternating Delta and Temporal
    /// coherence.
    pub readers: usize,
    /// Versions the writer commits while the readers run.
    pub writes: usize,
    /// Locked reads each reader performs.
    pub reads_per_reader: usize,
    /// Fault plan worn by the primary→backup ship link.
    pub ship_plan: FaultPlan,
}

impl ReplicaSoakConfig {
    /// A small soak with a recoverable ship-fault plan — the CI
    /// configuration.
    pub fn quick(seed: u64) -> ReplicaSoakConfig {
        ReplicaSoakConfig {
            seed,
            readers: 4,
            writes: 40,
            reads_per_reader: 50,
            ship_plan: FaultPlan::recoverable(600),
        }
    }
}

/// What a replica-read soak observed.
#[derive(Debug)]
pub struct ReplicaSoakReport {
    /// No invariant violations, the staleness battery stayed clean and
    /// the backup actually served reads.
    pub converged: bool,
    /// Human-readable invariant violations.
    pub failures: Vec<String>,
    /// Injections on the ship link.
    pub ship_injections: usize,
    /// `seq:msg:fault` trace of the ship link (determinism unit).
    pub ship_trace: String,
    /// Reads served by the backup, across all readers (including the
    /// settled probe).
    pub replica_reads: u64,
    /// Reads that fell back to the primary.
    pub replica_fallbacks: u64,
    /// Replica refusals (`NotFresh`) observed client-side.
    pub replica_not_fresh: u64,
    /// Replica-served reads below the client's floor — any non-zero
    /// value is a coherence-protocol bug.
    pub predicate_violations: u64,
    /// Final version of the feed segment at the primary.
    pub final_version: u64,
}

fn clean_connector(handler: &Arc<dyn Handler>) -> Connector {
    let handler = handler.clone();
    Box::new(move || Ok(Box::new(Loopback::new(handler.clone())) as Box<dyn Transport>))
}

/// Seeds `chaos/feed#x = 1` (the value always equals the version that
/// committed it) through a clean link.
fn setup_feed(primary: &Arc<Primary>) -> Result<(), CoreError> {
    let mut s = Session::with_options(
        MachineArch::x86(),
        Box::new(Loopback::new(primary.clone())),
        soak_options(),
    )?;
    let h = s.open_segment(FEED)?;
    s.wl_acquire(&h)?;
    let p = s.malloc(&h, &TypeDesc::int64(), 1, Some("x"))?;
    s.write_i64(&p, 1)?;
    s.wl_release(&h)?;
    Ok(())
}

struct ReaderOutcome {
    failures: Vec<String>,
    replica_reads: u64,
    fallbacks: u64,
    not_fresh: u64,
    violations: u64,
}

fn session_counters(s: &Session) -> (u64, u64, u64, u64) {
    let snap = s.metrics_snapshot();
    let c = |name: &str| snap.counter(name).unwrap_or(0);
    (
        c("cluster.replica_reads_total"),
        c("cluster.replica_read_fallbacks_total"),
        c("cluster.replica_not_fresh_total"),
        c("cluster.replica_read_violations_total"),
    )
}

/// One soak reader: `reads_per_reader` locked reads pinned to the
/// backup, checking the `value == version` oracle and per-session
/// version monotonicity on every one.
fn run_replica_reader(
    primary: &Arc<Primary>,
    backup: &Arc<dyn Handler>,
    cfg: &ReplicaSoakConfig,
    r: usize,
) -> ReaderOutcome {
    let mut failures = Vec::new();
    // Alternate the two time-like models; vary the bounds so the floors
    // race the replica lag differently per reader.
    let coherence = if r.is_multiple_of(2) {
        Coherence::Delta(1 + (r as u32 / 2) % 3)
    } else {
        Coherence::Temporal(5 * (1 + (r as u64 / 2) % 4))
    };
    let built = Session::with_options(
        MachineArch::x86(),
        Box::new(Loopback::new(primary.clone())),
        soak_options(),
    )
    .and_then(|mut s| {
        let ph: Arc<dyn Handler> = primary.clone();
        s.add_server_group("chaos", vec![clean_connector(&ph)])?;
        s.add_read_replicas("chaos", vec![clean_connector(backup)])?;
        let h = s.open_segment(FEED)?;
        s.set_coherence(&h, coherence)?;
        Ok((s, h))
    });
    let (mut s, h) = match built {
        Ok(sh) => sh,
        Err(e) => {
            failures.push(format!("reader {r}: setup failed: {e}"));
            return ReaderOutcome {
                failures,
                replica_reads: 0,
                fallbacks: 0,
                not_fresh: 0,
                violations: 0,
            };
        }
    };
    let mut last = 0u64;
    for i in 0..cfg.reads_per_reader {
        let read = (|| -> Result<(i64, u64), CoreError> {
            s.rl_acquire(&h)?;
            let p = s.mip_to_ptr(FEED_MIP)?;
            let value = s.read_i64(&p)?;
            let version = s.segment_version(&h)?;
            s.rl_release(&h)?;
            Ok((value, version))
        })();
        match read {
            Ok((value, version)) => {
                if value != version as i64 {
                    failures.push(format!(
                        "reader {r} read {i}: torn read — value {value} at version {version}"
                    ));
                }
                if version < last {
                    failures.push(format!(
                        "reader {r} read {i}: version regressed {last} -> {version}"
                    ));
                }
                last = version;
            }
            Err(e) => failures.push(format!("reader {r} read {i}: {e}")),
        }
        std::thread::yield_now();
    }
    let (replica_reads, fallbacks, not_fresh, violations) = session_counters(&s);
    ReaderOutcome {
        failures,
        replica_reads,
        fallbacks,
        not_fresh,
        violations,
    }
}

/// Runs one replica-read soak: degraded ship link, one writer, readers
/// pinned to the backup, then a settled probe that must be
/// replica-served once the faults stop.
pub fn run_replica_soak(cfg: &ReplicaSoakConfig) -> ReplicaSoakReport {
    let ship_log = FaultLog::new();
    let mut failures = Vec::new();

    let backup_srv = Arc::new(Server::new());
    let primary = Arc::new(Primary::new(Server::new()));
    let mut ship_t = Loopback::new(backup_srv.clone());
    ship_t.set_fault_layer(Box::new(FaultInjector::new(
        derive_seed(cfg.seed, 3),
        cfg.ship_plan.clone(),
        ship_log.clone(),
    )));
    ship_t.bind_registry(primary.server().registry());
    primary.add_backup(Box::new(ship_t));
    primary.drain();
    let backup: Arc<dyn Handler> = Arc::new(Backup::new(backup_srv.clone(), None));

    if let Err(e) = setup_feed(&primary) {
        failures.push(format!("setup failed: {e}"));
    }

    let mut replica_reads = 0u64;
    let mut fallbacks = 0u64;
    let mut not_fresh = 0u64;
    let mut violations = 0u64;
    if failures.is_empty() {
        let outcomes: Vec<ReaderOutcome> = std::thread::scope(|scope| {
            let writer = scope.spawn(|| -> Vec<String> {
                let run = (|| -> Result<(), CoreError> {
                    let mut s = Session::with_options(
                        MachineArch::x86(),
                        Box::new(Loopback::new(primary.clone())),
                        soak_options(),
                    )?;
                    let h = s.open_segment(FEED)?;
                    for _ in 0..cfg.writes {
                        s.wl_acquire(&h)?;
                        let committing = s.segment_version(&h)? + 1;
                        let p = s.mip_to_ptr(FEED_MIP)?;
                        s.write_i64(&p, committing as i64)?;
                        s.wl_release(&h)?;
                        std::thread::yield_now();
                    }
                    Ok(())
                })();
                match run {
                    Ok(()) => Vec::new(),
                    Err(e) => vec![format!("writer failed: {e}")],
                }
            });
            let handles: Vec<_> = (0..cfg.readers)
                .map(|r| {
                    let primary = &primary;
                    let backup = &backup;
                    let cfg = &*cfg;
                    scope.spawn(move || run_replica_reader(primary, backup, cfg, r))
                })
                .collect();
            let outcomes = handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|_| ReaderOutcome {
                        failures: vec!["reader thread panicked".into()],
                        replica_reads: 0,
                        fallbacks: 0,
                        not_fresh: 0,
                        violations: 0,
                    })
                })
                .collect();
            if let Ok(wf) = writer.join() {
                failures.extend(wf);
            } else {
                failures.push("writer thread panicked".into());
            }
            outcomes
        });
        for o in outcomes {
            failures.extend(o.failures);
            replica_reads += o.replica_reads;
            fallbacks += o.fallbacks;
            not_fresh += o.not_fresh;
            violations += o.violations;
        }
    }

    // Fault phase over: freeze the ship link and let replication
    // settle; re-attach a clean link if the faulty one died.
    ship_log.set_enabled(false);
    primary.drain();
    let snap = primary.server().metrics_snapshot();
    if snap.gauge("cluster.backups") != Some(1) {
        primary.add_backup(Box::new(Loopback::new(backup_srv.clone())));
        primary.drain();
    }

    // Settled probe: with the backup caught up, a fresh Delta reader's
    // floor is satisfiable there, so the read *must* be replica-served
    // and must carry the final version's value.
    let probe = (|| -> Result<(Session, i64, u64), CoreError> {
        let mut s = Session::with_options(
            MachineArch::x86(),
            Box::new(Loopback::new(primary.clone())),
            soak_options(),
        )?;
        let ph: Arc<dyn Handler> = primary.clone();
        s.add_server_group("chaos", vec![clean_connector(&ph)])?;
        s.add_read_replicas("chaos", vec![clean_connector(&backup)])?;
        let h = s.open_segment(FEED)?;
        s.set_coherence(&h, Coherence::Delta(1))?;
        s.rl_acquire(&h)?;
        let p = s.mip_to_ptr(FEED_MIP)?;
        let value = s.read_i64(&p)?;
        let version = s.segment_version(&h)?;
        s.rl_release(&h)?;
        Ok((s, value, version))
    })();
    let final_version = primary.server().segment_version(FEED).unwrap_or(0);
    match probe {
        Ok((s, value, version)) => {
            let (pr, pf, pn, pv) = session_counters(&s);
            replica_reads += pr;
            fallbacks += pf;
            not_fresh += pn;
            violations += pv;
            if pr != 1 {
                failures.push(format!(
                    "settled probe was not replica-served ({pr} replica reads, {pf} fallbacks)"
                ));
            }
            if version != final_version || value != final_version as i64 {
                failures.push(format!(
                    "settled probe read v{version} (value {value}); primary is at v{final_version}"
                ));
            }
        }
        Err(e) => failures.push(format!("settled probe failed: {e}")),
    }
    if violations > 0 {
        failures.push(format!(
            "{violations} replica-served reads violated their coherence predicate"
        ));
    }

    ReplicaSoakReport {
        converged: failures.is_empty(),
        failures,
        ship_injections: ship_log.len(),
        ship_trace: ship_log.trace(),
        replica_reads,
        replica_fallbacks: fallbacks,
        replica_not_fresh: not_fresh,
        predicate_violations: violations,
        final_version,
    }
}
