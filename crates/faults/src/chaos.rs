//! Chaos soak harness: N clients against a degraded 2-node cluster.
//!
//! [`run_soak`] builds an in-process primary/backup pair, degrades the
//! client links and the primary→backup ship link with independent
//! [`FaultPlan`]s, runs a slot-writing workload, and then checks the
//! standing invariants once the faults stop:
//!
//! - **Convergence against a fault-free oracle.** Each client `c`
//!   writes `round * 1000 + c` into its own slot of a shared segment,
//!   so the fault-free end state is a pure function of `(clients,
//!   ops)`: slot `c` holds `(ops-1) * 1000 + c`. A run converged when
//!   every slot matches — byte-for-byte what the identical run under
//!   [`FaultPlan::none`] produces (versions may differ: recovered
//!   rounds legitimately re-commit).
//! - **Versions never regress.** Every client asserts its observed
//!   segment version is monotone across acquisitions, failovers
//!   included.
//! - **Backup convergence.** Once faults stop (and the backup
//!   re-attaches, if its link was killed mid-run), the backup's
//!   segment must be byte-identical to the primary's checkpoint
//!   encoding.
//!
//! Both clients in a replica group point at the *same* primary: the
//! backup is a bare [`Server`] that would accept writes, so failing
//! over to it mid-run would split the brain. What the group buys here
//! is recovery from transient link faults — reconnect, old-id
//! retirement, cache reconciliation — which is exactly the machinery
//! under test. (Genuine kill-the-primary failover is covered by the
//! cluster e2e tests.)

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use iw_cluster::Primary;
use iw_core::{Connector, CoreError, Session, SessionOptions};
use iw_proto::{Loopback, Transport};
use iw_server::{checkpoint, Server};
use iw_types::desc::TypeDesc;
use iw_types::MachineArch;

use crate::{splitmix64, FaultInjector, FaultLog, FaultPlan};

/// Everything a soak run needs; fully determines the run together with
/// thread scheduling (single-client runs are fully deterministic).
#[derive(Clone)]
pub struct SoakConfig {
    /// Base PRNG seed; client links and the ship link derive distinct
    /// streams from it.
    pub seed: u64,
    /// Concurrent writer sessions (must be < 1000: the workload encodes
    /// the client id in the low three decimal digits).
    pub clients: usize,
    /// Write rounds per client.
    pub ops: usize,
    /// Fault plan worn by every client link.
    pub client_plan: FaultPlan,
    /// Fault plan worn by the primary→backup ship link.
    pub ship_plan: FaultPlan,
    /// Acquire/write/release attempts per round before a client gives
    /// up and reports a failure.
    pub max_attempts: usize,
}

impl SoakConfig {
    /// A small soak with recoverable fault plans on both links —
    /// the CI configuration.
    pub fn quick(seed: u64) -> SoakConfig {
        SoakConfig {
            seed,
            clients: 3,
            ops: 12,
            client_plan: FaultPlan::recoverable(400),
            ship_plan: FaultPlan::recoverable(400),
            max_attempts: 25,
        }
    }
}

/// What a soak run observed.
#[derive(Debug)]
pub struct SoakReport {
    /// Every slot matched the fault-free oracle and no client reported
    /// a failure.
    pub converged: bool,
    /// Backup checkpoint bytes equal the primary's after faults
    /// stopped.
    pub backup_identical: bool,
    /// Human-readable invariant violations and given-up rounds.
    pub failures: Vec<String>,
    /// Injections on client links / the ship link.
    pub client_injections: usize,
    /// Injections on the ship link.
    pub ship_injections: usize,
    /// `seq:msg:fault` trace of the client links (the determinism
    /// comparison unit; meaningful for single-client runs).
    pub client_trace: String,
    /// `seq:msg:fault` trace of the ship link.
    pub ship_trace: String,
    /// Final version of the shared segment at the primary.
    pub final_version: u64,
    /// Final slot values read back through a clean session.
    pub final_slots: Vec<i64>,
    /// Total successful client reconnects (recoveries from injected
    /// channel faults).
    pub client_reconnects: u64,
    /// The primary's final checkpoint-encoded segment image. When the
    /// soak ran on a durable server, a restart from the same data dir
    /// must recover to exactly these bytes.
    pub primary_image: Option<Vec<u8>>,
}

const SEGMENT: &str = "chaos/slots";
const BLOCK_MIP: &str = "chaos/slots#slots";

fn derive_seed(base: u64, stream: u64) -> u64 {
    let mut s = base ^ stream.wrapping_mul(0xA076_1D64_78BD_642F);
    splitmix64(&mut s)
}

/// A connector producing loopback links to `primary`, each wearing a
/// fresh injector whose seed is derived from the connection ordinal —
/// a single-threaded session's fault stream is a pure function of the
/// base seed, across however many reconnects it burns through.
fn faulty_connector(
    primary: &Arc<Primary>,
    base_seed: u64,
    plan: &FaultPlan,
    log: &FaultLog,
    conn_counter: &Arc<AtomicU64>,
) -> Connector {
    let primary = primary.clone();
    let plan = plan.clone();
    let log = log.clone();
    let conn_counter = conn_counter.clone();
    Box::new(move || {
        let n = conn_counter.fetch_add(1, Ordering::SeqCst);
        let mut t = Loopback::new(primary.clone());
        t.set_fault_layer(Box::new(FaultInjector::new(
            derive_seed(base_seed, n),
            plan.clone(),
            log.clone(),
        )));
        Ok(Box::new(t) as Box<dyn Transport>)
    })
}

fn soak_options() -> SessionOptions {
    SessionOptions {
        // Short, bounded backoffs: chaos rounds retry at the harness
        // level, so per-call patience just slows the soak down.
        lock_retries: 2_000,
        lock_backoff_us: 10,
        lock_backoff_cap_us: 200,
        failover_rounds: 3,
        failover_backoff_ms: 1,
        ..SessionOptions::default()
    }
}

/// Creates the shared segment with one i64 slot per client, through a
/// clean (fault-free) link — setup is scaffolding, not the code under
/// test.
fn setup_segment(primary: &Arc<Primary>, clients: usize) -> Result<(), CoreError> {
    let mut s = Session::with_options(
        MachineArch::x86(),
        Box::new(Loopback::new(primary.clone())),
        soak_options(),
    )?;
    let h = s.open_segment(SEGMENT)?;
    s.wl_acquire(&h)?;
    let slots = s.malloc(&h, &TypeDesc::int64(), clients.max(1) as u32, Some("slots"))?;
    for c in 0..clients {
        let slot = s.index(&slots, c as u32)?;
        s.write_i64(&slot, -1)?;
    }
    s.wl_release(&h)?;
    Ok(())
}

struct ClientOutcome {
    failures: Vec<String>,
    reconnects: u64,
}

/// One chaos client: `ops` rounds of acquire → write own slot →
/// release, retrying each round until it commits (or `max_attempts` is
/// spent), asserting version monotonicity along the way.
fn run_client(primary: &Arc<Primary>, cfg: &SoakConfig, c: usize, log: &FaultLog) -> ClientOutcome {
    let mut failures = Vec::new();
    let conn_counter = Arc::new(AtomicU64::new(0));
    let base_seed = derive_seed(cfg.seed, 1_000 + c as u64);
    let connectors: Vec<Connector> = (0..2)
        .map(|_| faulty_connector(primary, base_seed, &cfg.client_plan, log, &conn_counter))
        .collect();

    let mut session = match Session::with_options(
        MachineArch::x86(),
        Box::new(Loopback::new(primary.clone())),
        soak_options(),
    )
    .and_then(|mut s| {
        s.add_server_group("chaos", connectors)?;
        Ok(s)
    }) {
        Ok(s) => s,
        Err(e) => {
            failures.push(format!("client {c}: session setup failed: {e}"));
            return ClientOutcome {
                failures,
                reconnects: 0,
            };
        }
    };
    let h = match session.open_segment(SEGMENT) {
        Ok(h) => h,
        Err(e) => {
            failures.push(format!("client {c}: open failed: {e}"));
            return ClientOutcome {
                failures,
                reconnects: 0,
            };
        }
    };

    let mut last_version = 0u64;
    // `locked` survives failed attempts: when a release fails because a
    // failover itself failed (every replica momentarily unreachable),
    // the session — and the server — still hold the write lock, and the
    // retry must resume at the release, not re-acquire.
    let mut locked = false;
    'rounds: for r in 0..cfg.ops {
        for _attempt in 0..cfg.max_attempts {
            if !locked {
                match session.wl_acquire(&h) {
                    Ok(()) => locked = true,
                    // Recoverable outcomes: the lock died in a failover
                    // (local writes already rolled back), the retry
                    // budget ran out, or the round trip failed — redo.
                    Err(CoreError::LockLost { .. } | CoreError::LockTimeout(_)) => continue,
                    Err(CoreError::Proto(_) | CoreError::Server(_)) => continue,
                    Err(e) => {
                        failures.push(format!("client {c} round {r}: acquire: {e}"));
                        continue;
                    }
                }
                // Invariant: the version observed under the lock never
                // regresses, reconnects and rollbacks included.
                match session.segment_version(&h) {
                    Ok(v) if v < last_version => {
                        failures.push(format!(
                            "client {c} round {r}: version regressed {last_version} -> {v}"
                        ));
                    }
                    Ok(v) => last_version = v,
                    Err(_) => {}
                }
            }
            let wrote = session
                .mip_to_ptr(BLOCK_MIP)
                .and_then(|base| session.index(&base, c as u32))
                .and_then(|slot| session.write_i64(&slot, (r as i64) * 1000 + c as i64));
            if let Err(e) = &wrote {
                failures.push(format!("client {c} round {r}: write: {e}"));
            }
            match session.wl_release(&h) {
                // Committed (an empty failed-write round commits
                // nothing, and the retry below re-runs it).
                Ok(()) if wrote.is_ok() => {
                    locked = false;
                    continue 'rounds;
                }
                Ok(()) => locked = false,
                // Rolled back in a failover: this round never landed.
                Err(CoreError::LockLost { .. }) => locked = false,
                // The failover behind this release failed outright: the
                // lock (local and server-side) is still ours; retry the
                // release once a replica answers again.
                Err(CoreError::Proto(_) | CoreError::Server(_)) => {}
                Err(e) => {
                    failures.push(format!("client {c} round {r}: release: {e}"));
                    locked = false;
                }
            }
        }
        failures.push(format!(
            "client {c} round {r}: gave up after {} attempts",
            cfg.max_attempts
        ));
        break;
    }
    let reconnects = session
        .metrics_snapshot()
        .counter("client.reconnects_total")
        .unwrap_or(0);
    ClientOutcome {
        failures,
        reconnects,
    }
}

/// Runs one soak: build the degraded cluster, run the workload, stop
/// the faults, verify convergence and backup identity.
pub fn run_soak(cfg: &SoakConfig) -> SoakReport {
    run_soak_on(cfg, Server::new())
}

/// [`run_soak`] with a caller-built primary server — the hook the
/// recovery harness uses to run the identical chaos workload on a
/// durable (`Server::with_durability`) primary, then restart it from
/// disk and compare against [`SoakReport::primary_image`].
pub fn run_soak_on(cfg: &SoakConfig, primary_server: Server) -> SoakReport {
    let client_log = FaultLog::new();
    let ship_log = FaultLog::new();
    let mut failures = Vec::new();

    let backup = Arc::new(Server::new());
    let primary = Arc::new(Primary::new(primary_server));
    let mut ship_t = Loopback::new(backup.clone());
    ship_t.set_fault_layer(Box::new(FaultInjector::new(
        derive_seed(cfg.seed, 2),
        cfg.ship_plan.clone(),
        ship_log.clone(),
    )));
    // Ship-link injections land in the primary's registry: one iwstat
    // scrape shows faults next to the recovery counters they cause.
    ship_t.bind_registry(primary.server().registry());
    primary.add_backup(Box::new(ship_t));
    primary.drain();

    if let Err(e) = setup_segment(&primary, cfg.clients) {
        failures.push(format!("setup failed: {e}"));
    }

    let mut reconnects = 0u64;
    if failures.is_empty() {
        let outcomes: Vec<ClientOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..cfg.clients)
                .map(|c| {
                    let primary = &primary;
                    let cfg = &*cfg;
                    let log = &client_log;
                    scope.spawn(move || run_client(primary, cfg, c, log))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|_| ClientOutcome {
                        failures: vec!["client thread panicked".into()],
                        reconnects: 0,
                    })
                })
                .collect()
        });
        for o in outcomes {
            failures.extend(o.failures);
            reconnects += o.reconnects;
        }
    }

    // Fault phase over: freeze both links and let replication settle.
    client_log.set_enabled(false);
    ship_log.set_enabled(false);
    primary.drain();
    // A ship link killed mid-run leaves the backup behind with no one
    // streaming to it; re-attach a clean link (the attach-time full
    // sync is the recovery path a rejoining backup uses in production).
    let snap = primary.server().metrics_snapshot();
    if snap.gauge("cluster.backups") != Some(1) {
        primary.add_backup(Box::new(Loopback::new(backup.clone())));
        primary.drain();
    }

    let primary_image = primary
        .server()
        .with_segment_mut(SEGMENT, checkpoint::encode_segment)
        .and_then(Result::ok)
        .map(|b| b.to_vec());
    let backup_identical = match (
        &primary_image,
        backup.with_segment_mut(SEGMENT, checkpoint::encode_segment),
    ) {
        (Some(p), Some(Ok(b))) => p[..] == b[..],
        _ => false,
    };
    if !backup_identical {
        failures.push("backup checkpoint differs from primary after faults stopped".into());
    }

    // Read the end state through a clean session and compare with the
    // fault-free oracle: slot c == (ops-1)*1000 + c.
    let mut final_slots = Vec::new();
    let read = (|| -> Result<(), CoreError> {
        let mut s = Session::with_options(
            MachineArch::x86(),
            Box::new(Loopback::new(primary.clone())),
            soak_options(),
        )?;
        let h = s.open_segment(SEGMENT)?;
        s.rl_acquire(&h)?;
        let base = s.mip_to_ptr(BLOCK_MIP)?;
        for c in 0..cfg.clients {
            let slot = s.index(&base, c as u32)?;
            final_slots.push(s.read_i64(&slot)?);
        }
        s.rl_release(&h)?;
        Ok(())
    })();
    if let Err(e) = read {
        failures.push(format!("end-state read failed: {e}"));
    }
    if cfg.ops > 0 {
        for (c, &got) in final_slots.iter().enumerate() {
            let expected = (cfg.ops as i64 - 1) * 1000 + c as i64;
            if got != expected {
                failures.push(format!(
                    "slot {c}: expected {expected} (fault-free oracle), got {got}"
                ));
            }
        }
    }

    SoakReport {
        converged: failures.is_empty(),
        backup_identical,
        failures,
        client_injections: client_log.len(),
        ship_injections: ship_log.len(),
        client_trace: client_log.trace(),
        ship_trace: ship_log.trace(),
        final_version: primary.server().segment_version(SEGMENT).unwrap_or(0),
        final_slots,
        client_reconnects: reconnects,
        primary_image,
    }
}

/// The shared segment's checkpoint-encoded image on `server`, if it
/// exists and encodes (the recovery harness compares this against
/// [`SoakReport::primary_image`] after a restart-from-disk).
pub fn soak_segment_image(server: &Server) -> Option<Vec<u8>> {
    server
        .with_segment_mut(SEGMENT, checkpoint::encode_segment)
        .and_then(Result::ok)
        .map(|b| b.to_vec())
}
