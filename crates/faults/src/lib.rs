//! # iw-faults — deterministic fault injection for InterWeave-rs
//!
//! The failover and replication paths (client→replica-group reconnects,
//! primary→backup diff shipping with catch-up) are the system's
//! hardest-to-trust code, and hand-scripted kill tests only reach a few
//! of their branches. This crate makes *every* recovery branch
//! reachable on demand, reproducibly:
//!
//! - [`FaultInjector`] implements [`iw_proto::FaultLayer`], so any
//!   transport ([`iw_proto::Loopback`] or [`iw_proto::TcpTransport`])
//!   can wear it. Per message it decides — from a splitmix64 PRNG
//!   seeded by the caller, plus an optional scripted schedule — whether
//!   to deliver, delay, drop with connection reset, lose only the
//!   reply, corrupt a byte, truncate the frame mid-stream, or deliver
//!   twice.
//! - Decisions are a pure function of `(seed, message sequence)`: the
//!   same seed over the same request trace injects the same faults, so
//!   any chaos failure reproduces from a logged `seed=…` one-liner.
//! - [`FaultRule`] targets faults by decoded message type ("fail the
//!   3rd `replicate`"), turning one-off regression scenarios — a
//!   truncated `SyncFull` mid-catch-up, a lost `Release` reply — into
//!   two-line schedules.
//! - [`FaultLog`] records every injection (shared across reconnects, so
//!   a trace spans the transports a failing-over session burns through)
//!   and doubles as the kill switch that ends the fault phase of a soak.
//! - [`FaultyHandler`] is the server-side twin: a [`Handler`] ingress
//!   wrapper behind `iwsrv --chaos <seed>`, degrading a whole server
//!   rather than one client's link.
//!
//! The [`chaos`] module builds on these to run whole degraded clusters
//! against a fault-free oracle. The [`kill`] module covers the one
//! fault class no in-process injector can: SIGKILLing a real `iwsrv`
//! mid-commit and proving restart-from-disk recovers byte-identical
//! state.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod kill;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use iw_proto::msg::{Reply, Request};
use iw_proto::{FaultAction, FaultLayer, Handler};
use iw_telemetry::{Counter, Registry};
use parking_lot::Mutex;

/// The injectable fault classes, in the fixed order probability draws
/// consult them (order matters for determinism: same seed, same trace).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Connection reset before the request reaches the peer.
    Drop,
    /// The peer processes the request but the reply is lost
    /// (mid-stream disconnect after delivery).
    DropReply,
    /// One byte of the encoded request is flipped.
    Corrupt,
    /// The peer sees only a prefix of the frame (torn write), then the
    /// connection dies.
    Truncate,
    /// The request is delivered twice; the caller sees one reply.
    Duplicate,
    /// Delivery is delayed.
    Delay,
}

impl FaultKind {
    /// Every kind, in draw order.
    pub const ALL: [FaultKind; 6] = [
        FaultKind::Drop,
        FaultKind::DropReply,
        FaultKind::Corrupt,
        FaultKind::Truncate,
        FaultKind::Duplicate,
        FaultKind::Delay,
    ];

    /// Stable lowercase name (metric label, trace entry).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::DropReply => "drop_reply",
            FaultKind::Corrupt => "corrupt",
            FaultKind::Truncate => "truncate",
            FaultKind::Duplicate => "duplicate",
            FaultKind::Delay => "delay",
        }
    }
}

/// One scripted injection: fire `fault` on the `nth` message of kind
/// `kind` (1-based), or the `nth` message overall when `kind` is `None`.
/// Each rule fires at most once.
#[derive(Debug, Clone)]
pub struct FaultRule {
    /// Decoded message kind to match ([`Request::kind`] name, e.g.
    /// `"replicate"`, `"syncfull"`, `"release"`); `None` matches any.
    pub kind: Option<&'static str>,
    /// Which matching message to hit, 1-based.
    pub nth: u64,
    /// The fault to inject.
    pub fault: FaultKind,
}

/// Per-message fault probabilities (out of 10 000) plus scripted rules.
///
/// Scripted rules are consulted first; the probability draws only run
/// when no rule fires. Classes with rate 0 consume **no** PRNG draws,
/// so e.g. adding a delay rate later does not reshuffle which messages
/// an existing seed drops.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Rate of [`FaultKind::Drop`] per 10 000 messages.
    pub drop_per_10k: u32,
    /// Rate of [`FaultKind::DropReply`] per 10 000 messages.
    pub drop_reply_per_10k: u32,
    /// Rate of [`FaultKind::Corrupt`] per 10 000 messages.
    pub corrupt_per_10k: u32,
    /// Rate of [`FaultKind::Truncate`] per 10 000 messages.
    pub truncate_per_10k: u32,
    /// Rate of [`FaultKind::Duplicate`] per 10 000 messages.
    pub duplicate_per_10k: u32,
    /// Rate of [`FaultKind::Delay`] per 10 000 messages.
    pub delay_per_10k: u32,
    /// Upper bound (exclusive, microseconds) for injected delays.
    pub max_delay_us: u64,
    /// Scripted one-shot injections, consulted before the dice.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// No faults at all (the fault-free oracle's plan).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// A plan of only *recoverable* client-link faults at `per_10k`
    /// each: drops, lost replies, truncations and duplicates — the
    /// classes a correct client must survive — plus short delays.
    /// Corruption is excluded: a corrupted request that still decodes
    /// can poison state in ways no client-side recovery contract
    /// covers (see DESIGN.md §7).
    pub fn recoverable(per_10k: u32) -> FaultPlan {
        FaultPlan {
            drop_per_10k: per_10k,
            drop_reply_per_10k: per_10k,
            truncate_per_10k: per_10k,
            duplicate_per_10k: per_10k,
            delay_per_10k: per_10k,
            max_delay_us: 300,
            ..FaultPlan::default()
        }
    }

    /// Adds a scripted rule (builder style).
    #[must_use]
    pub fn with_rule(mut self, rule: FaultRule) -> FaultPlan {
        self.rules.push(rule);
        self
    }

    fn rate(&self, kind: FaultKind) -> u32 {
        match kind {
            FaultKind::Drop => self.drop_per_10k,
            FaultKind::DropReply => self.drop_reply_per_10k,
            FaultKind::Corrupt => self.corrupt_per_10k,
            FaultKind::Truncate => self.truncate_per_10k,
            FaultKind::Duplicate => self.duplicate_per_10k,
            FaultKind::Delay => self.delay_per_10k,
        }
    }
}

/// One recorded injection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Injection {
    /// Global message sequence number (every leg counts, faulted or
    /// not), so a trace pinpoints *which* message was hit.
    pub seq: u64,
    /// Decoded request kind ([`Request::kind`]).
    pub msg: &'static str,
    /// Injected fault ([`FaultKind::name`]).
    pub fault: &'static str,
}

struct LogInner {
    seq: AtomicU64,
    enabled: AtomicBool,
    entries: Mutex<Vec<Injection>>,
}

/// Shared injection log and kill switch.
///
/// Clones share state: hand one log to every injector on a link (a
/// failing-over session builds fresh transports mid-run, and their
/// injections belong to the same trace), keep a clone to read the trace
/// and to end the fault phase with [`FaultLog::set_enabled`].
#[derive(Clone)]
pub struct FaultLog {
    inner: Arc<LogInner>,
}

impl Default for FaultLog {
    fn default() -> Self {
        FaultLog::new()
    }
}

impl FaultLog {
    /// A fresh, enabled log.
    pub fn new() -> FaultLog {
        FaultLog {
            inner: Arc::new(LogInner {
                seq: AtomicU64::new(0),
                enabled: AtomicBool::new(true),
                entries: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Turns injection on or off for every injector sharing this log.
    /// Sequence numbers keep advancing while disabled (so re-enabling
    /// continues the same numbering).
    pub fn set_enabled(&self, enabled: bool) {
        self.inner.enabled.store(enabled, Ordering::SeqCst);
    }

    /// Whether injection is currently enabled.
    pub fn enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::SeqCst)
    }

    /// Snapshot of every recorded injection.
    pub fn entries(&self) -> Vec<Injection> {
        self.inner.entries.lock().clone()
    }

    /// Number of recorded injections.
    pub fn len(&self) -> usize {
        self.inner.entries.lock().len()
    }

    /// Whether nothing was injected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Compact textual trace, one `seq:msg:fault` term per injection —
    /// the unit of same-seed-same-trace comparison.
    pub fn trace(&self) -> String {
        self.inner
            .entries
            .lock()
            .iter()
            .map(|i| format!("{}:{}:{}", i.seq, i.msg, i.fault))
            .collect::<Vec<_>>()
            .join(",")
    }

    fn next_seq(&self) -> u64 {
        self.inner.seq.fetch_add(1, Ordering::SeqCst)
    }

    fn record(&self, entry: Injection) {
        self.inner.entries.lock().push(entry);
    }
}

/// `faults.injected_total` plus one `faults.injected.<kind>_total` per
/// class, re-homeable into a server or session registry so `iwstat`
/// shows them next to the recovery counters they cause.
struct FaultMetrics {
    total: Arc<Counter>,
    per_kind: Vec<Arc<Counter>>,
}

impl FaultMetrics {
    fn new(registry: &Registry) -> FaultMetrics {
        FaultMetrics {
            total: registry.counter("faults.injected_total"),
            per_kind: FaultKind::ALL
                .iter()
                .map(|k| registry.counter(&format!("faults.injected.{}_total", k.name())))
                .collect(),
        }
    }

    fn count(&self, kind: FaultKind) {
        self.total.inc();
        self.per_kind[FaultKind::ALL.iter().position(|k| *k == kind).unwrap_or(0)].inc();
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The deterministic fault layer: a [`FaultPlan`] driven by splitmix64.
///
/// Install on a transport with `set_fault_layer`. Every decision is a
/// pure function of the construction seed and the sequence of messages
/// offered, so a single-threaded request trace replays bit-identically
/// under the same seed.
pub struct FaultInjector {
    plan: FaultPlan,
    log: FaultLog,
    state: u64,
    /// Messages seen per kind (indexed like [`Request::KINDS`]) and
    /// overall, for `nth`-targeted rules.
    seen_by_kind: [u64; Request::KINDS.len()],
    seen_any: u64,
    fired: Vec<bool>,
    metrics: FaultMetrics,
}

impl FaultInjector {
    /// An injector over `plan`, drawing from `seed`, recording into
    /// `log`.
    pub fn new(seed: u64, plan: FaultPlan, log: FaultLog) -> FaultInjector {
        let fired = vec![false; plan.rules.len()];
        FaultInjector {
            plan,
            log,
            state: seed,
            seen_by_kind: [0; Request::KINDS.len()],
            seen_any: 0,
            fired,
            metrics: FaultMetrics::new(&Registry::new()),
        }
    }

    fn draw(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Materializes `kind` into a concrete action against `encoded`,
    /// recording and counting it. Degenerate cases (truncating or
    /// corrupting an empty frame) deliver unharmed.
    fn action_for(&mut self, kind: FaultKind, req: &Request, encoded: &Bytes) -> FaultAction {
        let action = match kind {
            FaultKind::Drop => FaultAction::Drop,
            FaultKind::DropReply => FaultAction::DropReply,
            FaultKind::Corrupt => {
                if encoded.is_empty() {
                    return FaultAction::Deliver;
                }
                let at = (self.draw() as usize) % encoded.len();
                let mask = (self.draw() % 255) as u8 + 1; // never a no-op flip
                let mut bytes = encoded.to_vec();
                bytes[at] ^= mask;
                FaultAction::Corrupt(Bytes::from(bytes))
            }
            FaultKind::Truncate => {
                if encoded.is_empty() {
                    return FaultAction::Deliver;
                }
                FaultAction::Truncate((self.draw() as usize) % encoded.len())
            }
            FaultKind::Duplicate => FaultAction::Duplicate,
            FaultKind::Delay => {
                let us = self.draw() % self.plan.max_delay_us.max(1);
                FaultAction::Delay(std::time::Duration::from_micros(us))
            }
        };
        self.log.record(Injection {
            seq: self.seen_any - 1,
            msg: req.kind(),
            fault: kind.name(),
        });
        self.metrics.count(kind);
        action
    }
}

impl FaultLayer for FaultInjector {
    fn plan(&mut self, req: &Request, encoded: &Bytes) -> FaultAction {
        // Keep local and global numbering advancing even while disabled,
        // so a re-enabled phase continues the same trace coordinates.
        self.seen_any = self.log.next_seq() + 1;
        self.seen_by_kind[req.kind_index()] += 1;
        if !self.log.enabled() {
            return FaultAction::Deliver;
        }
        // Scripted rules outrank the dice and are one-shot.
        for i in 0..self.plan.rules.len() {
            if self.fired[i] {
                continue;
            }
            let rule = &self.plan.rules[i];
            let n = match rule.kind {
                Some(k) if k == req.kind() => self.seen_by_kind[req.kind_index()],
                Some(_) => continue,
                None => self.seen_any,
            };
            if n == rule.nth {
                self.fired[i] = true;
                let fault = rule.fault;
                return self.action_for(fault, req, encoded);
            }
        }
        for kind in FaultKind::ALL {
            let rate = self.plan.rate(kind);
            if rate == 0 {
                continue; // zero-rate classes consume no draws
            }
            if self.draw() % 10_000 < u64::from(rate) {
                return self.action_for(kind, req, encoded);
            }
        }
        FaultAction::Deliver
    }

    fn bind_registry(&mut self, registry: &Arc<Registry>) {
        self.metrics = FaultMetrics::new(registry);
    }
}

/// Server-side chaos ingress (`iwsrv --chaos <seed>`): wraps any
/// [`Handler`] and subjects every incoming request to a [`FaultPlan`],
/// degrading the whole server rather than one client's link.
///
/// In-process delivery has no connection to reset, so connection faults
/// map to their observable effect: [`FaultKind::Drop`] and
/// [`FaultKind::DropReply`] answer with a `Reply::Error` (clients treat
/// server errors as fatal per-call, like a torn reply), truncation and
/// corruption hand the inner handler a damaged frame (it answers
/// `bad request`), duplication calls the inner handler twice.
pub struct FaultyHandler {
    inner: Arc<dyn Handler>,
    injector: Mutex<FaultInjector>,
}

impl FaultyHandler {
    /// Wraps `inner` with an injector over `plan` seeded by `seed`.
    pub fn new(
        inner: Arc<dyn Handler>,
        seed: u64,
        plan: FaultPlan,
        log: FaultLog,
    ) -> FaultyHandler {
        FaultyHandler {
            inner,
            injector: Mutex::new(FaultInjector::new(seed, plan, log)),
        }
    }

    /// Re-homes the injector's counters (typically into the wrapped
    /// server's registry, so `iwstat` scrapes them).
    pub fn bind_registry(&self, registry: &Arc<Registry>) {
        self.injector.lock().bind_registry(registry);
    }
}

impl Handler for FaultyHandler {
    fn handle(&self, request: Bytes) -> Bytes {
        let Ok(req) = Request::decode(request.clone()) else {
            return self.inner.handle(request);
        };
        let action = self.injector.lock().plan(&req, &request);
        match action {
            FaultAction::Deliver => self.inner.handle(request),
            FaultAction::Delay(d) => {
                std::thread::sleep(d);
                self.inner.handle(request)
            }
            FaultAction::Drop | FaultAction::DropReply => Reply::Error {
                message: "injected: request dropped by chaos ingress".into(),
            }
            .encode(),
            FaultAction::Corrupt(bytes) => self.inner.handle(bytes),
            FaultAction::Truncate(n) => {
                let keep = n.min(request.len());
                self.inner.handle(request.slice(0..keep))
            }
            FaultAction::Duplicate => {
                let first = self.inner.handle(request.clone());
                let _ = self.inner.handle(request);
                first
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hello() -> (Request, Bytes) {
        let req = Request::Hello {
            info: "chaos".into(),
        };
        let encoded = req.encode();
        (req, encoded)
    }

    /// Feeds `n` identical messages and returns the trace.
    fn run_trace(seed: u64, plan: &FaultPlan, n: usize) -> String {
        let log = FaultLog::new();
        let mut inj = FaultInjector::new(seed, plan.clone(), log.clone());
        let (req, encoded) = hello();
        for _ in 0..n {
            let _ = FaultLayer::plan(&mut inj, &req, &encoded);
        }
        log.trace()
    }

    #[test]
    fn same_seed_same_trace() {
        let plan = FaultPlan::recoverable(900);
        let a = run_trace(42, &plan, 500);
        let b = run_trace(42, &plan, 500);
        assert!(!a.is_empty(), "a 9% plan over 500 messages injects");
        assert_eq!(a, b);
        let c = run_trace(43, &plan, 500);
        assert_ne!(a, c, "different seeds diverge");
    }

    #[test]
    fn zero_rate_classes_do_not_shift_the_stream() {
        // Adding a zero-rate class later must not consume draws and
        // reshuffle which messages an existing seed hits.
        let only_drop = FaultPlan {
            drop_per_10k: 500,
            ..FaultPlan::default()
        };
        let drop_and_zero_delay = FaultPlan {
            drop_per_10k: 500,
            delay_per_10k: 0,
            max_delay_us: 1000,
            ..FaultPlan::default()
        };
        assert_eq!(
            run_trace(7, &only_drop, 400),
            run_trace(7, &drop_and_zero_delay, 400)
        );
    }

    #[test]
    fn rules_target_nth_message_of_kind() {
        let plan = FaultPlan::none().with_rule(FaultRule {
            kind: Some("replicate"),
            nth: 2,
            fault: FaultKind::Drop,
        });
        let log = FaultLog::new();
        let mut inj = FaultInjector::new(1, plan, log.clone());
        let rep = Request::Replicate {
            segment: "h/s".into(),
            from_version: 0,
            diff: iw_wire::diff::SegmentDiff::default(),
        };
        let enc = rep.encode();
        let (hello_req, hello_enc) = hello();
        // hello, replicate#1 pass; replicate#2 is dropped; #3 passes.
        assert!(matches!(
            FaultLayer::plan(&mut inj, &hello_req, &hello_enc),
            FaultAction::Deliver
        ));
        assert!(matches!(
            FaultLayer::plan(&mut inj, &rep, &enc),
            FaultAction::Deliver
        ));
        assert!(matches!(
            FaultLayer::plan(&mut inj, &rep, &enc),
            FaultAction::Drop
        ));
        assert!(matches!(
            FaultLayer::plan(&mut inj, &rep, &enc),
            FaultAction::Deliver
        ));
        let entries = log.entries();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].msg, "replicate");
        assert_eq!(entries[0].fault, "drop");
        assert_eq!(entries[0].seq, 2, "hit the third message overall");
    }

    #[test]
    fn kill_switch_stops_injection_but_keeps_numbering() {
        let plan = FaultPlan::none().with_rule(FaultRule {
            kind: None,
            nth: 3,
            fault: FaultKind::Drop,
        });
        let log = FaultLog::new();
        let mut inj = FaultInjector::new(1, plan, log.clone());
        let (req, enc) = hello();
        let _ = FaultLayer::plan(&mut inj, &req, &enc);
        log.set_enabled(false);
        // Message #2 passes silently; #3 would match the rule but the
        // switch is off.
        assert!(matches!(
            FaultLayer::plan(&mut inj, &req, &enc),
            FaultAction::Deliver
        ));
        assert!(matches!(
            FaultLayer::plan(&mut inj, &req, &enc),
            FaultAction::Deliver
        ));
        assert!(log.is_empty());
        // Re-enabled: numbering continued, so the rule's moment passed.
        log.set_enabled(true);
        assert!(matches!(
            FaultLayer::plan(&mut inj, &req, &enc),
            FaultAction::Deliver
        ));
    }

    #[test]
    fn corrupt_always_changes_the_frame() {
        let plan = FaultPlan {
            corrupt_per_10k: 10_000,
            ..FaultPlan::default()
        };
        let mut inj = FaultInjector::new(99, plan, FaultLog::new());
        let (req, enc) = hello();
        for _ in 0..50 {
            match FaultLayer::plan(&mut inj, &req, &enc) {
                FaultAction::Corrupt(bytes) => {
                    assert_eq!(bytes.len(), enc.len());
                    assert_ne!(&bytes[..], &enc[..]);
                }
                other => panic!("expected Corrupt, got {other:?}"),
            }
        }
    }

    #[test]
    fn injected_faults_surface_in_a_bound_registry() {
        let registry = Arc::new(Registry::new());
        let plan = FaultPlan::none().with_rule(FaultRule {
            kind: None,
            nth: 1,
            fault: FaultKind::Drop,
        });
        let mut inj = FaultInjector::new(1, plan, FaultLog::new());
        inj.bind_registry(&registry);
        let (req, enc) = hello();
        let _ = FaultLayer::plan(&mut inj, &req, &enc);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("faults.injected_total"), Some(1));
        assert_eq!(snap.counter("faults.injected.drop_total"), Some(1));
    }
}
