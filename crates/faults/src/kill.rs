//! Process-kill chaos: SIGKILL a real `iwsrv` mid-commit, restart it
//! from its data directory, and byte-compare the recovered segment
//! against a fault-free oracle.
//!
//! This is the one fault class the in-process harness cannot inject —
//! the process dying with its memory. The harness:
//!
//! 1. spawns `iwsrv --data-dir <tmp> --listen 127.0.0.1:0 --port-file …`
//!    and learns the ephemeral port through the port file;
//! 2. runs a synchronous writer over real TCP: round `r` commits the
//!    deterministic diff `r → r+1` (round 0 allocates one `int64` block,
//!    later rounds overwrite it with `r`), counting acknowledged rounds;
//! 3. a killer thread SIGKILLs the server the moment the seeded target
//!    ack count is reached — the writer is already inside its *next*
//!    commit, so the kill lands mid-commit, tearing whatever the server
//!    was doing (including, at the right seeds, a half-written WAL
//!    append);
//! 4. restarts `iwsrv` on the same data dir and reads the segment back.
//!
//! **Invariants checked** — `A` = rounds acknowledged before the kill,
//! `V` = recovered version:
//!
//! - *acked ⇒ durable*: `V ≥ A` (an acknowledged release survived the
//!   SIGKILL, because the fsync happened before the reply);
//! - *no invented commits*: `V ≤ A + 1` (at most the single in-flight
//!   commit may have landed without its ack being seen);
//! - *byte-identical state*: the full-transfer update a fresh client
//!   receives from the recovered server equals, byte for byte on the
//!   wire, the one produced by a fault-free in-process server fed
//!   exactly `V` rounds.

use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use iw_proto::msg::{LockMode, Reply, Request};
use iw_proto::{Coherence, TcpTransport, Transport};
use iw_server::Server;
use iw_types::desc::TypeDesc;
use iw_wire::diff::{BlockDiff, DiffRun, NewBlock, SegmentDiff};

use crate::splitmix64;

/// Segment the kill workload writes.
const SEGMENT: &str = "kill/slots";

/// A kill/restart run's parameters.
#[derive(Debug, Clone)]
pub struct KillConfig {
    /// Seed for the kill point (which ack count triggers the SIGKILL).
    pub seed: u64,
    /// Rounds the writer attempts; the kill lands strictly before the
    /// last one so there is always an in-flight commit to tear.
    pub rounds: u64,
    /// Path to the `iwsrv` binary.
    pub iwsrv: PathBuf,
    /// Data directory for the victim server (created; removed on a
    /// successful run).
    pub data_dir: PathBuf,
}

/// What a kill/restart run observed.
#[derive(Debug)]
pub struct KillReport {
    /// Rounds acknowledged before the SIGKILL landed.
    pub acked: u64,
    /// Segment version after restart-from-disk.
    pub recovered_version: u64,
    /// Recovered full-transfer bytes equal the fault-free oracle's.
    pub identical: bool,
    /// Diff records the restarted server replayed from its WAL.
    pub replayed_records: u64,
    /// Human-readable invariant violations.
    pub failures: Vec<String>,
}

impl KillReport {
    /// `true` when every invariant held.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The deterministic diff committed in round `r` (version `r → r+1`).
fn round_diff(r: u64) -> SegmentDiff {
    let mut d = SegmentDiff {
        from_version: r,
        to_version: r + 1,
        ..Default::default()
    };
    if r == 0 {
        d.new_types = vec![(0, TypeDesc::int64())];
        d.new_blocks = vec![NewBlock {
            serial: 0,
            name: Some("slot".into()),
            type_serial: 0,
            count: 1,
            data: Bytes::from(0i64.to_be_bytes().to_vec()),
        }];
    } else {
        d.block_diffs = vec![BlockDiff {
            serial: 0,
            runs: vec![DiffRun {
                start: 0,
                count: 1,
                data: Bytes::from((r as i64).to_be_bytes().to_vec()),
            }],
        }];
    }
    d
}

/// A spawned `iwsrv` child that is SIGKILLed (if still alive) and
/// reaped on drop, so an early harness failure never leaks a server.
struct Victim {
    child: Child,
    addr: SocketAddr,
}

impl Drop for Victim {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_iwsrv(iwsrv: &Path, data_dir: &Path) -> Result<Victim, String> {
    let port_file = data_dir.join("port");
    let _ = std::fs::remove_file(&port_file);
    std::fs::create_dir_all(data_dir).map_err(|e| format!("create {}: {e}", data_dir.display()))?;
    let child = Command::new(iwsrv)
        .arg("--listen")
        .arg("127.0.0.1:0")
        .arg("--data-dir")
        .arg(data_dir)
        .arg("--port-file")
        .arg(&port_file)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", iwsrv.display()))?;
    // Port handshake: iwsrv writes its bound address once serving.
    let deadline = Instant::now() + Duration::from_secs(15);
    let addr = loop {
        if let Ok(s) = std::fs::read_to_string(&port_file) {
            if let Ok(addr) = s.trim().parse::<SocketAddr>() {
                break addr;
            }
        }
        if Instant::now() > deadline {
            return Err("iwsrv never wrote its port file".to_string());
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    Ok(Victim { child, addr })
}

fn connect(addr: SocketAddr) -> Result<(TcpTransport, u64), String> {
    let mut t = TcpTransport::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let Ok(Reply::Welcome { client, .. }) = t.request(&Request::Hello {
        info: "kill-harness".into(),
    }) else {
        return Err("no Welcome from iwsrv".to_string());
    };
    let _ = t.request(&Request::Open {
        client,
        segment: SEGMENT.into(),
    });
    Ok((t, client))
}

/// One acquire-write-release round against a live transport. Returns
/// `false` when the server stopped answering (the kill landed).
fn commit_round(t: &mut TcpTransport, client: u64, r: u64) -> bool {
    let acq = t.request(&Request::Acquire {
        client,
        segment: SEGMENT.into(),
        mode: LockMode::Write,
        have_version: r,
        coherence: Coherence::Full,
    });
    if !matches!(acq, Ok(Reply::Granted { .. })) {
        return false;
    }
    let rel = t.request(&Request::Release {
        client,
        segment: SEGMENT.into(),
        diff: Some(round_diff(r)),
    });
    matches!(rel, Ok(Reply::Released { .. }))
}

/// The full-transfer wire bytes a fresh reader receives for the
/// segment: acquire-read at version 0, encode the update diff.
fn full_transfer(t: &mut TcpTransport, client: u64) -> Result<(u64, Vec<u8>), String> {
    match t.request(&Request::Acquire {
        client,
        segment: SEGMENT.into(),
        mode: LockMode::Read,
        have_version: 0,
        coherence: Coherence::Full,
    }) {
        Ok(Reply::Granted {
            version,
            update: Some(diff),
            ..
        }) => Ok((version, diff.encode().to_vec())),
        Ok(Reply::Granted {
            version: 0,
            update: None,
            ..
        }) => Ok((0, Vec::new())),
        other => Err(format!("full transfer failed: {other:?}")),
    }
}

/// The fault-free oracle: a fresh in-process server fed exactly
/// `version` rounds, read back through the same request shapes.
fn oracle_transfer(version: u64) -> (u64, Vec<u8>) {
    let s = Server::new();
    let c = s.hello("oracle");
    s.open(SEGMENT);
    for r in 0..version {
        let acq = s.handle_request(&Request::Acquire {
            client: c,
            segment: SEGMENT.into(),
            mode: LockMode::Write,
            have_version: r,
            coherence: Coherence::Full,
        });
        assert!(
            matches!(acq, Reply::Granted { .. }),
            "oracle acquire: {acq:?}"
        );
        let rel = s.handle_request(&Request::Release {
            client: c,
            segment: SEGMENT.into(),
            diff: Some(round_diff(r)),
        });
        assert!(
            matches!(rel, Reply::Released { .. }),
            "oracle release: {rel:?}"
        );
    }
    match s.handle_request(&Request::Acquire {
        client: c,
        segment: SEGMENT.into(),
        mode: LockMode::Read,
        have_version: 0,
        coherence: Coherence::Full,
    }) {
        Reply::Granted {
            version,
            update: Some(diff),
            ..
        } => (version, diff.encode().to_vec()),
        Reply::Granted {
            version,
            update: None,
            ..
        } => (version, Vec::new()),
        other => panic!("oracle full transfer failed: {other:?}"),
    }
}

/// Runs one SIGKILL-mid-commit cycle: spawn, write, kill at a seeded
/// ack count, restart, verify the three invariants.
///
/// # Errors
///
/// A `String` describing scaffolding failures (cannot spawn or
/// reach `iwsrv`); invariant *violations* are reported in the
/// [`KillReport`], not as errors.
pub fn run_kill_restart(cfg: &KillConfig) -> Result<KillReport, String> {
    let mut failures = Vec::new();
    let _ = std::fs::remove_dir_all(&cfg.data_dir);

    // Phase 1: victim serves, writer commits, killer strikes.
    let acked = Arc::new(AtomicU64::new(0));
    let victim = spawn_iwsrv(&cfg.iwsrv, &cfg.data_dir)?;
    let (mut t, client) = connect(victim.addr)?;
    // Kill after `target` acks — seeded into the middle of the run so
    // there is always a next commit in flight to tear.
    let mut s = cfg.seed;
    let target = 1 + splitmix64(&mut s) % cfg.rounds.saturating_sub(1).max(1);
    let killer = {
        let acked = acked.clone();
        // The Child handle stays on this thread (Drop reaps it); the
        // killer only needs the pid to deliver the signal.
        let pid = victim.child.id();
        std::thread::spawn(move || {
            while acked.load(Ordering::SeqCst) < target {
                std::thread::yield_now();
            }
            // SIGKILL: the process dies now, wherever it is.
            #[cfg(unix)]
            {
                let _ = Command::new("kill").args(["-9", &pid.to_string()]).status();
            }
            #[cfg(not(unix))]
            let _ = pid;
        })
    };
    let mut acked_n = 0;
    for r in 0..cfg.rounds {
        if !commit_round(&mut t, client, r) {
            break; // the kill landed
        }
        acked_n += 1;
        acked.fetch_add(1, Ordering::SeqCst);
    }
    // Unblock the killer even if the writer stopped short of the
    // target (its extra SIGKILL just hits the already-dying victim).
    acked.store(u64::MAX, Ordering::SeqCst);
    let acked = acked_n;
    killer.join().ok();
    drop(t);
    drop(victim); // reap (already dead unless the workload outran the killer)

    if acked >= cfg.rounds {
        failures.push(format!(
            "kill never landed: all {acked} rounds acked (target was {target})"
        ));
    }

    // Phase 2: restart from disk, read back, compare.
    let victim = spawn_iwsrv(&cfg.iwsrv, &cfg.data_dir)?;
    let (mut t, client) = connect(victim.addr)?;
    let (recovered_version, recovered_bytes) = full_transfer(&mut t, client)?;
    let replayed_records = match t.request(&Request::Stats { client }) {
        Ok(Reply::Stats { snapshot }) => snapshot
            .counter("durable.recovery_replayed_records")
            .unwrap_or(0),
        _ => 0,
    };
    drop(t);
    drop(victim);

    if recovered_version < acked {
        failures.push(format!(
            "durability violated: {acked} rounds were acked but only v{recovered_version} recovered"
        ));
    }
    if recovered_version > acked + 1 {
        failures.push(format!(
            "recovered v{recovered_version} but only {acked} rounds were acked (+1 in flight max)"
        ));
    }
    let (oracle_version, oracle_bytes) = oracle_transfer(recovered_version);
    let identical = oracle_version == recovered_version && oracle_bytes == recovered_bytes;
    if !identical {
        failures.push(format!(
            "recovered segment differs from the fault-free oracle at v{recovered_version} \
             ({} vs {} bytes)",
            recovered_bytes.len(),
            oracle_bytes.len()
        ));
    }
    if failures.is_empty() {
        let _ = std::fs::remove_dir_all(&cfg.data_dir);
    }
    Ok(KillReport {
        acked,
        recovered_version,
        identical,
        replayed_records,
        failures,
    })
}
