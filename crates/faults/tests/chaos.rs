//! Chaos suite: the standing invariants of the failover and
//! replication paths, exercised under every injected fault class.
//!
//! Every scenario is seeded — a failure reproduces from the seed in its
//! assertion message.

use std::sync::Arc;

use iw_cluster::Primary;
use iw_core::{Connector, CoreError, Session, SessionOptions};
use iw_faults::chaos::{run_replica_soak, run_soak, ReplicaSoakConfig, SoakConfig};
use iw_faults::{FaultInjector, FaultKind, FaultLog, FaultPlan, FaultRule};
use iw_proto::{Loopback, TcpServer, TcpTransport, Transport};
use iw_server::{checkpoint, Server};
use iw_types::desc::TypeDesc;
use iw_types::MachineArch;

fn options() -> SessionOptions {
    SessionOptions {
        lock_retries: 500,
        lock_backoff_us: 10,
        lock_backoff_cap_us: 200,
        failover_rounds: 3,
        failover_backoff_ms: 1,
        ..SessionOptions::default()
    }
}

/// A connector to `handler` wearing `plan` (fresh injector per
/// connection, shared log).
fn connector_with(
    handler: Arc<dyn iw_proto::Handler>,
    seed: u64,
    plan: FaultPlan,
    log: FaultLog,
) -> Connector {
    let mut n = 0u64;
    Box::new(move || {
        n += 1;
        let mut t = Loopback::new(handler.clone());
        t.set_fault_layer(Box::new(FaultInjector::new(
            seed.wrapping_add(n.wrapping_mul(0x9E37_79B9)),
            plan.clone(),
            log.clone(),
        )));
        Ok(Box::new(t) as Box<dyn Transport>)
    })
}

/// The CI seed set: `ci.sh` runs exactly these, so a regression in a
/// recovery path fails the build with the seed in the test output.
const CI_SEEDS: [u64; 3] = [1, 7, 42];

#[test]
fn soak_converges_for_ci_seed_set() {
    for seed in CI_SEEDS {
        let report = run_soak(&SoakConfig::quick(seed));
        assert!(
            report.converged,
            "seed={seed}: not converged: {:?}\nclient trace: {}\nship trace: {}",
            report.failures, report.client_trace, report.ship_trace
        );
        assert!(report.backup_identical, "seed={seed}: backup diverged");
        assert!(
            report.client_injections + report.ship_injections > 0,
            "seed={seed}: the chaos run injected nothing — the plans are not exercising anything"
        );
    }
}

/// The staleness-bound battery under a degraded ship link: readers
/// pinned to a lagging backup must never see a torn value, a version
/// regression, or a predicate violation — and once the faults stop the
/// backup must actually serve.
#[test]
fn replica_soak_keeps_staleness_bounds_for_ci_seed_set() {
    for seed in CI_SEEDS {
        let report = run_replica_soak(&ReplicaSoakConfig::quick(seed));
        assert!(
            report.converged,
            "seed={seed}: not converged: {:?}\nship trace: {}",
            report.failures, report.ship_trace
        );
        assert_eq!(
            report.predicate_violations, 0,
            "seed={seed}: coherence predicate violated"
        );
        assert!(
            report.replica_reads > 0,
            "seed={seed}: the backup never served a read — the fan-out path is dead"
        );
        assert!(
            report.ship_injections > 0,
            "seed={seed}: the ship plan injected nothing — the soak is not exercising lag"
        );
    }
}

#[test]
fn same_seed_same_fault_trace() {
    // Single client: the request trace, and therefore the injection
    // trace, is a pure function of the seed.
    let cfg = SoakConfig {
        clients: 1,
        ops: 20,
        ..SoakConfig::quick(1234)
    };
    let a = run_soak(&cfg);
    let b = run_soak(&cfg);
    assert!(a.converged, "seed=1234: {:?}", a.failures);
    assert!(
        a.client_injections > 0,
        "seed=1234 injected nothing on the client link"
    );
    assert_eq!(
        a.client_trace, b.client_trace,
        "client trace not reproducible"
    );
    assert_eq!(a.ship_trace, b.ship_trace, "ship trace not reproducible");
    let c = run_soak(&SoakConfig { seed: 1235, ..cfg });
    assert!(
        a.client_trace != c.client_trace || a.ship_trace != c.ship_trace,
        "different seeds produced identical traces"
    );
}

/// A lost `Release` (dropped before delivery) surfaces as `LockLost`,
/// the twin rollback discards the uncommitted write, and the server
/// never sees the diff.
#[test]
fn lock_lost_rolls_back_twin_writes() {
    let server = Arc::new(Server::new());
    let log = FaultLog::new();
    let plan = FaultPlan::none().with_rule(FaultRule {
        kind: Some("release"),
        nth: 2, // release #1 publishes the block; #2 carries the write under test
        fault: FaultKind::Drop,
    });
    let mut s = Session::with_options(
        MachineArch::x86(),
        Box::new(Loopback::new(server.clone())),
        options(),
    )
    .unwrap();
    s.add_server_group(
        "h",
        vec![
            connector_with(server.clone(), 5, plan.clone(), log.clone()),
            connector_with(server.clone(), 6, plan, log.clone()),
        ],
    )
    .unwrap();
    let h = s.open_segment("h/s").unwrap();
    s.wl_acquire(&h).unwrap();
    let vals = s.malloc(&h, &TypeDesc::int64(), 4, Some("vals")).unwrap();
    let slot = s.index(&vals, 0).unwrap();
    s.write_i64(&slot, 100).unwrap();
    s.wl_release(&h).unwrap();

    s.wl_acquire(&h).unwrap();
    s.write_i64(&slot, 999).unwrap();
    let err = s
        .wl_release(&h)
        .expect_err("the dropped release must not succeed");
    assert!(
        matches!(err, CoreError::LockLost { .. }),
        "expected LockLost, got {err:?}"
    );
    assert_eq!(
        log.len(),
        1,
        "exactly the scripted drop fired: {}",
        log.trace()
    );

    // The uncommitted 999 was rolled back locally and never committed
    // remotely: a fresh read sees the committed 100.
    s.rl_acquire(&h).unwrap();
    assert_eq!(s.read_i64(&slot).unwrap(), 100);
    s.rl_release(&h).unwrap();
    assert_eq!(
        server.segment_version("h/s"),
        Some(1),
        "the dropped diff must not land"
    );

    // And the recovery is observable.
    let snap = s.metrics_snapshot();
    assert!(snap.counter("client.reconnects_total").unwrap() >= 1);
    assert_eq!(snap.counter("faults.injected.drop_total"), Some(1));
}

/// Failover reconciliation never serves a torn image: when the client's
/// cache is *ahead* of the surviving replica (the asynchronous
/// replication window), the whole cached segment is invalidated and
/// refetched — reads after failover see one consistent version, never a
/// mix of new and old blocks.
#[test]
fn failover_reconciliation_never_serves_torn_state() {
    let backup = Arc::new(Server::new());
    let primary = Arc::new(Primary::new(Server::new()));
    // Ship link that the test kills on demand: zero rates while the
    // log is disabled, drops everything once enabled.
    let ship_log = FaultLog::new();
    ship_log.set_enabled(false);
    let always_drop = FaultPlan {
        drop_per_10k: 10_000,
        ..FaultPlan::default()
    };
    let mut ship_t = Loopback::new(backup.clone());
    ship_t.set_fault_layer(Box::new(FaultInjector::new(
        1,
        always_drop.clone(),
        ship_log.clone(),
    )));
    primary.add_backup(Box::new(ship_t));
    primary.drain();

    // Client link: connector 0 is the primary (killable, same switch
    // pattern), connector 1 the backup server, clean.
    let client_log = FaultLog::new();
    client_log.set_enabled(false);
    let mut s = Session::with_options(
        MachineArch::x86(),
        Box::new(Loopback::new(primary.clone())),
        options(),
    )
    .unwrap();
    let primary_handler: Arc<dyn iw_proto::Handler> = primary.clone();
    let backup_handler: Arc<dyn iw_proto::Handler> = backup.clone();
    let clean = FaultPlan::none();
    s.add_server_group(
        "h",
        vec![
            connector_with(primary_handler, 7, always_drop.clone(), client_log.clone()),
            connector_with(backup_handler, 8, clean, FaultLog::new()),
        ],
    )
    .unwrap();

    let h = s.open_segment("h/s").unwrap();
    s.wl_acquire(&h).unwrap();
    let vals = s.malloc(&h, &TypeDesc::int64(), 4, Some("vals")).unwrap();
    for i in 0..4 {
        let slot = s.index(&vals, i).unwrap();
        s.write_i64(&slot, 100 + i64::from(i)).unwrap();
    }
    s.wl_release(&h).unwrap();
    primary.drain(); // backup holds version 1: [100, 101, 102, 103]

    // Cut replication, then commit version 2 — the backup stays at 1.
    ship_log.set_enabled(true);
    s.wl_acquire(&h).unwrap();
    for i in 0..4 {
        let slot = s.index(&vals, i).unwrap();
        s.write_i64(&slot, 200 + i64::from(i)).unwrap();
    }
    s.wl_release(&h).unwrap();
    primary.drain();
    assert_eq!(primary.server().segment_version("h/s"), Some(2));
    assert_eq!(backup.segment_version("h/s"), Some(1));

    // Kill the primary link: the next round trip fails over to the
    // backup, whose chain is *behind* the client's cached version 2.
    client_log.set_enabled(true);
    s.rl_acquire(&h).unwrap();
    let got: Vec<i64> = (0..4)
        .map(|i| {
            let slot = s.index(&vals, i).unwrap();
            s.read_i64(&slot).unwrap()
        })
        .collect();
    s.rl_release(&h).unwrap();
    // One consistent image — all version-1 values, no 200s bleeding in.
    assert_eq!(
        got,
        vec![100, 101, 102, 103],
        "torn image served after failover"
    );
    assert_eq!(s.segment_version(&h).unwrap(), 1);
    assert!(
        s.metrics_snapshot()
            .counter("client.failovers_total")
            .unwrap()
            >= 1
    );
}

/// Satellite regression: a `SyncFull` truncated mid-stream on the real
/// TCP wire kills the ship link but leaves the backup clean, and a
/// retried attach converges byte-identically.
#[test]
fn truncated_syncfull_over_tcp_retries_and_converges() {
    let backup = Arc::new(Server::new());
    let srv = TcpServer::spawn("127.0.0.1:0".parse().unwrap(), backup.clone()).unwrap();
    let primary = Arc::new(Primary::new(Server::new()));

    // Two committed versions before any backup exists, so the attach
    // must catch up with a SyncFull.
    let mut s = Session::with_options(
        MachineArch::x86(),
        Box::new(Loopback::new(primary.clone())),
        options(),
    )
    .unwrap();
    let h = s.open_segment("h/s").unwrap();
    s.wl_acquire(&h).unwrap();
    let vals = s.malloc(&h, &TypeDesc::int64(), 8, Some("vals")).unwrap();
    s.wl_release(&h).unwrap();
    s.wl_acquire(&h).unwrap();
    let slot = s.index(&vals, 0).unwrap();
    s.write_i64(&slot, 7).unwrap();
    s.wl_release(&h).unwrap();

    // First attach: the catch-up SyncFull is torn mid-frame.
    let log = FaultLog::new();
    let plan = FaultPlan::none().with_rule(FaultRule {
        kind: Some("syncfull"),
        nth: 1,
        fault: FaultKind::Truncate,
    });
    let mut t = TcpTransport::connect(srv.addr()).unwrap();
    t.set_fault_layer(Box::new(FaultInjector::new(11, plan, log.clone())));
    primary.add_backup(Box::new(t));
    primary.drain();
    assert_eq!(
        log.len(),
        1,
        "the scripted truncation fired: {}",
        log.trace()
    );
    // The torn frame never decoded server-side: the backup is untouched,
    // not half-written.
    assert_eq!(backup.segment_version("h/s"), None);
    let snap = primary.server().metrics_snapshot();
    assert!(snap.counter("cluster.ship_errors_total").unwrap() >= 1);
    // The link died during attach, so it was never registered — no live
    // backups remain.
    assert_eq!(snap.gauge("cluster.backups"), Some(0));

    // Retry the attach over a clean connection: full catch-up, then the
    // diff stream resumes, byte-identical state.
    let t = TcpTransport::connect(srv.addr()).unwrap();
    primary.add_backup(Box::new(t));
    primary.drain();
    assert_eq!(backup.segment_version("h/s"), Some(2));
    s.wl_acquire(&h).unwrap();
    s.write_i64(&slot, 8).unwrap();
    s.wl_release(&h).unwrap();
    primary.drain();
    assert_eq!(backup.segment_version("h/s"), Some(3));
    let p = primary
        .server()
        .with_segment_mut("h/s", |seg| checkpoint::encode_segment(seg).unwrap())
        .unwrap();
    let b = backup
        .with_segment_mut("h/s", |seg| checkpoint::encode_segment(seg).unwrap())
        .unwrap();
    assert_eq!(
        p[..],
        b[..],
        "backup not byte-identical after retried attach"
    );
}

/// Every fault-reachable `CoreError` recovery path, on demand from a
/// two-line schedule.
#[test]
fn scripted_faults_reach_core_error_paths() {
    let server = Arc::new(Server::new());

    // Channel error with a single connector (no replica to fail over
    // to) surfaces as CoreError::Proto.
    let log = FaultLog::new();
    let mut t = Loopback::new(server.clone());
    t.set_fault_layer(Box::new(FaultInjector::new(
        3,
        FaultPlan::none().with_rule(FaultRule {
            kind: Some("open"),
            nth: 1,
            fault: FaultKind::Drop,
        }),
        log,
    )));
    let mut s = Session::with_options(MachineArch::x86(), Box::new(t), options()).unwrap();
    let err = s.open_segment("h/s").expect_err("dropped open must error");
    assert!(matches!(err, CoreError::Proto(_)), "got {err:?}");

    // A corrupted frame is answered with a server error
    // (CoreError::Server). A single byte flip can still decode as a
    // *valid* request — even an Acquire for a phantom client id that
    // takes the lock and never releases it (the reason recoverable()
    // plans exclude corruption). Sweep a few seeds on fresh servers and
    // require that the error path was reached — every failure must be a
    // clean per-call error, never a wedged session.
    let mut server_errors = 0;
    for seed in 0..16u64 {
        let mut t = Loopback::new(Arc::new(Server::new()));
        t.set_fault_layer(Box::new(FaultInjector::new(
            seed,
            FaultPlan::none().with_rule(FaultRule {
                kind: Some("acquire"),
                nth: 1,
                fault: FaultKind::Corrupt,
            }),
            FaultLog::new(),
        )));
        let mut s = Session::with_options(MachineArch::x86(), Box::new(t), options()).unwrap();
        let h = s.open_segment("h/s").unwrap();
        match s.wl_acquire(&h) {
            Ok(()) => {
                s.wl_release(&h).unwrap();
            }
            Err(CoreError::Server(_)) => server_errors += 1,
            // Undecodable frame, or a phantom-client grant starving the
            // real acquire until its retry budget runs out.
            Err(CoreError::Proto(_) | CoreError::LockTimeout(_)) => {}
            Err(e) => panic!("corrupted acquire must fail cleanly, got {e:?}"),
        }
    }
    assert!(
        server_errors > 0,
        "no seed in the sweep reached the server-error path"
    );
}
