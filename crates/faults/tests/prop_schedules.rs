//! Property tests over randomized fault schedules: any recoverable
//! plan, at any rate, under any seed, must leave the soak converged —
//! the oracle slots correct, versions monotonic, and the backup
//! byte-identical once faults stop.
//!
//! Case counts are deliberately low (each case is a full soak run);
//! a failing case prints its seed, which `iwchaos --seed` replays.

use iw_faults::chaos::{run_soak, SoakConfig};
use iw_faults::FaultPlan;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 8 })]

    #[test]
    fn random_recoverable_schedules_converge(
        seed in any::<u64>(),
        client_rate in 0u32..600,
        ship_rate in 0u32..600,
    ) {
        let cfg = SoakConfig {
            seed,
            clients: 2,
            ops: 6,
            client_plan: FaultPlan::recoverable(client_rate),
            ship_plan: FaultPlan::recoverable(ship_rate),
            max_attempts: 60,
        };
        let report = run_soak(&cfg);
        prop_assert!(
            report.converged,
            "seed {seed} rates {client_rate}/{ship_rate}: {:?}",
            report.failures
        );
        prop_assert!(
            report.backup_identical,
            "seed {seed}: backup diverged after faults stopped"
        );
    }

    /// The degenerate corner stays exact: a zero-rate plan must inject
    /// nothing and land precisely `clients × ops` commits.
    #[test]
    fn zero_rate_plans_inject_nothing(seed in any::<u64>()) {
        let cfg = SoakConfig {
            seed,
            clients: 2,
            ops: 4,
            client_plan: FaultPlan::none(),
            ship_plan: FaultPlan::none(),
            max_attempts: 5,
        };
        let report = run_soak(&cfg);
        prop_assert!(report.converged, "{:?}", report.failures);
        prop_assert_eq!(report.client_injections, 0);
        prop_assert_eq!(report.ship_injections, 0);
        prop_assert_eq!(report.final_version, 2 * 4 + 1);
    }
}
