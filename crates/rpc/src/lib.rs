//! # iw-rpc — the RPC/XDR baseline
//!
//! A faithful reimplementation of the marshaling discipline of
//! rpcgen-generated Sun RPC stubs (RFC 4506 XDR), used as the comparison
//! baseline in the paper's Figure 4 and Figure 7 experiments. See
//! [`xdr`] for the semantics reproduced (4-byte widening/padding,
//! deep-copy pointers, non-inlined double marshaling), and [`rmi`] for
//! the Java-RMI-style serialization baseline behind the paper's "20
//! times faster than Java RMI" claim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rmi;
pub mod xdr;

pub use rmi::rmi_serialize;
pub use xdr::{marshal, unmarshal, FlatMem, MemSource, XdrArena, XdrError, XdrType};
