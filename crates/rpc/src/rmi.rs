//! A Java-RMI-style object-serialization baseline.
//!
//! The paper's introduction claims InterWeave translation is "20 times
//! faster than Java RMI" (measured in the companion workshop paper \[4\]).
//! To make that comparison reproducible without a JVM, this module
//! implements the *wire discipline* that makes Java serialization slow
//! and fat, following the Java Object Serialization Stream Protocol in
//! miniature:
//!
//! - every object is written with a **class descriptor**: the first
//!   occurrence spells out the class name and every field name and type
//!   signature as UTF strings; later occurrences use a back-handle;
//! - every object (and string) is assigned a **handle** in a growing
//!   table, looked up by identity on write and by index on read;
//! - primitive fields go through per-field tagged writes (as
//!   `ObjectOutputStream.writeInt` etc. do), not bulk copies;
//! - references serialize the referent inline the first time (deep copy)
//!   and as a handle afterwards.
//!
//! The result is a faithful cost model: descriptor overhead per class,
//! per-object bookkeeping, and per-field dispatch — the three things the
//! paper's 20× gap consists of.

use std::collections::HashMap;

use iw_types::arch::MachineArch;
use iw_types::layout::Layout;

use crate::xdr::{MemSource, XdrError, XdrType};

const TC_OBJECT: u8 = 0x73;
const TC_CLASSDESC: u8 = 0x72;
const TC_REFERENCE: u8 = 0x71;
const TC_NULL: u8 = 0x70;
const TC_STRING: u8 = 0x74;
const TC_ARRAY: u8 = 0x75;

/// Serializes one local-format value of XDR type `ty` in RMI style.
///
/// The XDR type language is reused for the comparison to be apples to
/// apples (same local images, same pointee resolution through
/// [`MemSource`]).
///
/// # Errors
///
/// [`XdrError::BadPointer`] when a non-null reference cannot be resolved.
pub fn rmi_serialize(
    ty: &XdrType,
    local: &[u8],
    arch: &MachineArch,
    mem: &dyn MemSource,
) -> Result<Vec<u8>, XdrError> {
    let mut out = Vec::with_capacity(local.len() * 2);
    let mut st = RmiState::default();
    write_value(ty, local, arch, mem, &mut out, &mut st)?;
    Ok(out)
}

#[derive(Default)]
struct RmiState {
    /// Class-descriptor handles by a synthetic class key.
    classes: HashMap<String, u32>,
    /// Object handles by referent address (identity map).
    objects: HashMap<u64, u32>,
    next_handle: u32,
}

impl RmiState {
    fn new_handle(&mut self) -> u32 {
        let h = self.next_handle;
        self.next_handle += 1;
        h
    }
}

fn class_key(ty: &XdrType) -> String {
    // A compact synthetic "class name"; the cost model only needs its
    // length to be realistic.
    match ty {
        XdrType::Char => "C".into(),
        XdrType::Short => "S".into(),
        XdrType::Int => "I".into(),
        XdrType::Hyper => "J".into(),
        XdrType::Float => "F".into(),
        XdrType::Double => "D".into(),
        XdrType::String { .. } => "Ljava/lang/String;".into(),
        XdrType::Pointer { pointee } => format!("L{};", class_key(pointee)),
        XdrType::Array { elem, .. } => format!("[{}", class_key(elem)),
        XdrType::Struct { fields } => {
            let mut k = String::from("Lcom/example/Rec");
            k.push_str(&fields.len().to_string());
            for f in fields {
                k.push('_');
                k.push_str(&class_key(f));
            }
            k.push(';');
            k
        }
    }
}

fn write_utf(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u16).to_be_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Writes a class descriptor (or a back-reference to one).
fn write_class_desc(ty: &XdrType, out: &mut Vec<u8>, st: &mut RmiState) {
    let key = class_key(ty);
    if let Some(&h) = st.classes.get(&key) {
        out.push(TC_REFERENCE);
        out.extend_from_slice(&h.to_be_bytes());
        return;
    }
    out.push(TC_CLASSDESC);
    write_utf(out, &key);
    out.extend_from_slice(&0x1122_3344_5566_7788u64.to_be_bytes()); // serialVersionUID
    out.push(0x02); // SC_SERIALIZABLE
    if let XdrType::Struct { fields } = ty {
        out.extend_from_slice(&(fields.len() as u16).to_be_bytes());
        for (i, f) in fields.iter().enumerate() {
            out.push(b'f');
            write_utf(out, &format!("field{i}"));
            write_utf(out, &class_key(f));
        }
    } else {
        out.extend_from_slice(&0u16.to_be_bytes());
    }
    let h = st.new_handle();
    st.classes.insert(key, h);
}

fn read_word(window: &[u8], arch: &MachineArch) -> u64 {
    let little = arch.endian.is_little();
    match window.len() {
        1 => window[0] as u64,
        2 => {
            let b: [u8; 2] = window.try_into().expect("2B");
            if little {
                u16::from_le_bytes(b) as u64
            } else {
                u16::from_be_bytes(b) as u64
            }
        }
        4 => {
            let b: [u8; 4] = window.try_into().expect("4B");
            if little {
                u32::from_le_bytes(b) as u64
            } else {
                u32::from_be_bytes(b) as u64
            }
        }
        8 => {
            let b: [u8; 8] = window.try_into().expect("8B");
            if little {
                u64::from_le_bytes(b)
            } else {
                u64::from_be_bytes(b)
            }
        }
        _ => unreachable!(),
    }
}

/// `ObjectOutputStream`-style per-field primitive writes, out of line as
/// the JVM's are virtual calls.
#[inline(never)]
fn write_prim_field(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(bytes);
}

fn write_value(
    ty: &XdrType,
    local: &[u8],
    arch: &MachineArch,
    mem: &dyn MemSource,
    out: &mut Vec<u8>,
    st: &mut RmiState,
) -> Result<(), XdrError> {
    match ty {
        XdrType::Char => write_prim_field(out, &[local[0]]),
        XdrType::Short => {
            write_prim_field(out, &(read_word(&local[..2], arch) as u16).to_be_bytes())
        }
        XdrType::Int | XdrType::Float => {
            write_prim_field(out, &(read_word(&local[..4], arch) as u32).to_be_bytes())
        }
        XdrType::Hyper | XdrType::Double => {
            write_prim_field(out, &read_word(&local[..8], arch).to_be_bytes())
        }
        XdrType::String { cap } => {
            let window = &local[..*cap as usize];
            let s = match window.iter().position(|&b| b == 0) {
                Some(n) => &window[..n],
                None => window,
            };
            out.push(TC_STRING);
            out.extend_from_slice(&(s.len() as u16).to_be_bytes());
            out.extend_from_slice(s);
            let _ = st.new_handle(); // strings get handles too
        }
        XdrType::Pointer { pointee } => {
            let va = read_word(&local[..arch.pointer_size as usize], arch);
            if va == 0 {
                out.push(TC_NULL);
            } else if let Some(&h) = st.objects.get(&va) {
                out.push(TC_REFERENCE);
                out.extend_from_slice(&h.to_be_bytes());
            } else {
                out.push(TC_OBJECT);
                write_class_desc(pointee, out, st);
                let h = st.new_handle();
                st.objects.insert(va, h);
                let pl = pointee.layout(arch);
                let bytes = mem
                    .bytes(va, pl.size as usize)
                    .ok_or(XdrError::BadPointer { va })?;
                write_value(pointee, bytes, arch, mem, out, st)?;
            }
        }
        XdrType::Array { elem, len } => {
            out.push(TC_ARRAY);
            write_class_desc(ty, out, st);
            let _ = st.new_handle();
            out.extend_from_slice(&len.to_be_bytes());
            let el = elem.layout(arch);
            for i in 0..*len {
                let off = (i * el.size) as usize;
                write_value(
                    elem,
                    &local[off..off + el.size as usize],
                    arch,
                    mem,
                    out,
                    st,
                )?;
            }
        }
        XdrType::Struct { fields } => {
            out.push(TC_OBJECT);
            write_class_desc(ty, out, st);
            let _ = st.new_handle();
            let mut off = 0u32;
            for f in fields {
                let fl = f.layout(arch);
                off = Layout::align_up(off, fl.align);
                write_value(
                    f,
                    &local[off as usize..(off + fl.size) as usize],
                    arch,
                    mem,
                    out,
                    st,
                )?;
                off += fl.size;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xdr::FlatMem;

    struct NoMem;
    impl MemSource for NoMem {
        fn bytes(&self, _: u64, _: usize) -> Option<&[u8]> {
            None
        }
    }

    fn x86() -> MachineArch {
        MachineArch::x86()
    }

    #[test]
    fn struct_stream_carries_class_descriptor_once() {
        let ty = XdrType::Struct {
            fields: vec![XdrType::Int, XdrType::Int],
        };
        let arr = XdrType::array(ty, 3);
        let local = [0u8; 24];
        let wire = rmi_serialize(&arr, &local, &x86(), &NoMem).unwrap();
        // The struct's field list is spelled out exactly once (the
        // array descriptor embeds the class *name* again, but field
        // descriptions only appear in the full class descriptor); later
        // elements use TC_REFERENCE.
        let desc_count = wire
            .windows(b"field0".len())
            .filter(|w| *w == b"field0")
            .count();
        assert_eq!(desc_count, 1, "field descriptions must be written once");
        assert!(wire.iter().filter(|&&b| b == TC_REFERENCE).count() >= 2);
    }

    #[test]
    fn rmi_wire_is_fatter_than_xdr() {
        let ty = XdrType::Struct {
            fields: vec![XdrType::Int, XdrType::Double, XdrType::String { cap: 16 }],
        };
        let arr = XdrType::array(ty, 50);
        let layout = arr.layout(&x86());
        let local = vec![0u8; layout.size as usize];
        let rmi = rmi_serialize(&arr, &local, &x86(), &NoMem).unwrap();
        let xdr = crate::xdr::marshal(&arr, &local, &x86(), &NoMem).unwrap();
        assert!(
            rmi.len() > xdr.len(),
            "rmi {} should exceed xdr {}",
            rmi.len(),
            xdr.len()
        );
    }

    #[test]
    fn shared_referents_become_back_references() {
        // Two pointers to the same int: the second is a 5-byte handle,
        // not a second deep copy.
        let pointee = 9i32.to_le_bytes();
        let mem = FlatMem::new(0x2000, &pointee);
        let ty = XdrType::array(XdrType::pointer(XdrType::Int), 2);
        let mut local = Vec::new();
        local.extend_from_slice(&0x2000u32.to_le_bytes());
        local.extend_from_slice(&0x2000u32.to_le_bytes());
        let wire = rmi_serialize(&ty, &local, &x86(), &mem).unwrap();
        assert_eq!(
            wire.iter().filter(|&&b| b == TC_OBJECT).count(),
            1,
            "only one deep copy"
        );
        assert!(wire.contains(&TC_REFERENCE));
    }

    #[test]
    fn null_pointers_and_dangling() {
        let ty = XdrType::pointer(XdrType::Int);
        let wire = rmi_serialize(&ty, &[0; 4], &x86(), &NoMem).unwrap();
        assert_eq!(wire, vec![TC_NULL]);
        let local = 0xBEEFu32.to_le_bytes();
        assert!(matches!(
            rmi_serialize(&ty, &local, &x86(), &NoMem),
            Err(XdrError::BadPointer { .. })
        ));
    }
}
