//! XDR marshaling with rpcgen semantics.
//!
//! The paper's Figure 4 compares InterWeave translation against "RPC
//! parameter marshaling functions generated with the standard Linux
//! `rpcgen` tool". This module reimplements that exact wire discipline
//! (RFC 4506):
//!
//! - every item occupies a multiple of 4 bytes on the wire (chars and
//!   shorts widen to 4; strings pad to 4);
//! - pointers use **deep-copy semantics**: a 4-byte presence flag followed
//!   by the marshaled pointee ("when RPC marshals a pointer, deep copy
//!   semantics require that the pointed-to data … be marshaled along with
//!   the pointer", §4.1);
//! - doubles are marshaled through a non-inlined call, reproducing the
//!   rpcgen behaviour the paper calls out ("the RPC overhead for
//!   structures with doubles inside is high in part because rpcgen does
//!   not inline the marshaling routine for doubles").
//!
//! Marshal/unmarshal operate on the same architecture-specific local
//! images the InterWeave client uses, so the comparison is apples to
//! apples.

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use iw_types::arch::MachineArch;
use iw_types::layout::Layout;

/// The XDR-side type language. Unlike InterWeave descriptors, pointers
/// carry their pointee type — rpcgen stubs know it statically and deep
/// copy through it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XdrType {
    /// 8-bit char (widens to 4 bytes on the wire).
    Char,
    /// 16-bit short (widens to 4 bytes on the wire).
    Short,
    /// 32-bit int.
    Int,
    /// 64-bit hyper.
    Hyper,
    /// 32-bit float.
    Float,
    /// 64-bit double.
    Double,
    /// NUL-terminated string with fixed local capacity.
    String {
        /// Local capacity in bytes including the NUL.
        cap: u32,
    },
    /// Pointer with deep-copy marshaling.
    Pointer {
        /// The pointed-to type.
        pointee: Arc<XdrType>,
    },
    /// Fixed-length array.
    Array {
        /// Element type.
        elem: Arc<XdrType>,
        /// Element count.
        len: u32,
    },
    /// Structure.
    Struct {
        /// Fields in declaration order.
        fields: Vec<XdrType>,
    },
}

impl XdrType {
    /// A pointer to `pointee`.
    pub fn pointer(pointee: XdrType) -> Self {
        XdrType::Pointer {
            pointee: Arc::new(pointee),
        }
    }

    /// An array of `len` elements.
    pub fn array(elem: XdrType, len: u32) -> Self {
        XdrType::Array {
            elem: Arc::new(elem),
            len,
        }
    }

    /// Local-format size and alignment on `arch` (identical rules to the
    /// InterWeave layout engine).
    pub fn layout(&self, arch: &MachineArch) -> Layout {
        match self {
            XdrType::Char => Layout { size: 1, align: 1 },
            XdrType::Short => Layout {
                size: 2,
                align: arch.int16_align,
            },
            XdrType::Int => Layout {
                size: 4,
                align: arch.int32_align,
            },
            XdrType::Hyper => Layout {
                size: 8,
                align: arch.int64_align,
            },
            XdrType::Float => Layout {
                size: 4,
                align: arch.float32_align,
            },
            XdrType::Double => Layout {
                size: 8,
                align: arch.float64_align,
            },
            XdrType::String { cap } => Layout {
                size: *cap,
                align: 1,
            },
            XdrType::Pointer { .. } => Layout {
                size: arch.pointer_size,
                align: arch.pointer_align,
            },
            XdrType::Array { elem, len } => {
                let el = elem.layout(arch);
                Layout {
                    size: el.size * len,
                    align: el.align,
                }
            }
            XdrType::Struct { fields } => {
                let mut off = 0u32;
                let mut align = 1u32;
                for f in fields {
                    let fl = f.layout(arch);
                    off = Layout::align_up(off, fl.align) + fl.size;
                    align = align.max(fl.align);
                }
                Layout {
                    size: Layout::align_up(off.max(1), align),
                    align,
                }
            }
        }
    }
}

/// Errors from XDR marshaling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XdrError {
    /// The wire data ended early or a length field was corrupt.
    Truncated,
    /// A pointer's local word referenced memory the [`MemSource`] cannot
    /// resolve.
    BadPointer {
        /// The unresolvable address.
        va: u64,
    },
    /// A wire string exceeded its declared local capacity.
    StringOverflow,
    /// The unmarshal arena ran out of space for deep-copied pointees.
    ArenaFull,
}

impl fmt::Display for XdrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XdrError::Truncated => f.write_str("truncated XDR data"),
            XdrError::BadPointer { va } => write!(f, "unresolvable pointer {va:#x}"),
            XdrError::StringOverflow => f.write_str("XDR string exceeds capacity"),
            XdrError::ArenaFull => f.write_str("XDR unmarshal arena exhausted"),
        }
    }
}

impl Error for XdrError {}

/// Resolves pointer words during deep-copy marshaling (the stand-in for
/// rpcgen stubs chasing real C pointers).
pub trait MemSource {
    /// Returns `len` bytes at `va`, or `None` when unmapped.
    fn bytes(&self, va: u64, len: usize) -> Option<&[u8]>;
}

/// A trivial flat-buffer memory: address 0 is null; addresses are
/// `base + offset` into one buffer.
#[derive(Debug)]
pub struct FlatMem<'a> {
    base: u64,
    data: &'a [u8],
}

impl<'a> FlatMem<'a> {
    /// Wraps `data` mapped at `base`.
    pub fn new(base: u64, data: &'a [u8]) -> Self {
        FlatMem { base, data }
    }
}

impl MemSource for FlatMem<'_> {
    fn bytes(&self, va: u64, len: usize) -> Option<&[u8]> {
        let off = va.checked_sub(self.base)? as usize;
        self.data.get(off..off + len)
    }
}

fn read_word(window: &[u8], arch: &MachineArch) -> u64 {
    let little = arch.endian.is_little();
    match window.len() {
        1 => window[0] as u64,
        2 => {
            let b: [u8; 2] = window.try_into().unwrap();
            if little {
                u16::from_le_bytes(b) as u64
            } else {
                u16::from_be_bytes(b) as u64
            }
        }
        4 => {
            let b: [u8; 4] = window.try_into().unwrap();
            if little {
                u32::from_le_bytes(b) as u64
            } else {
                u32::from_be_bytes(b) as u64
            }
        }
        8 => {
            let b: [u8; 8] = window.try_into().unwrap();
            if little {
                u64::from_le_bytes(b)
            } else {
                u64::from_be_bytes(b)
            }
        }
        _ => unreachable!(),
    }
}

fn write_word(window: &mut [u8], arch: &MachineArch, v: u64) {
    let little = arch.endian.is_little();
    match window.len() {
        1 => window[0] = v as u8,
        2 => window.copy_from_slice(&if little {
            (v as u16).to_le_bytes()
        } else {
            (v as u16).to_be_bytes()
        }),
        4 => window.copy_from_slice(&if little {
            (v as u32).to_le_bytes()
        } else {
            (v as u32).to_be_bytes()
        }),
        8 => window.copy_from_slice(&if little {
            v.to_le_bytes()
        } else {
            v.to_be_bytes()
        }),
        _ => unreachable!(),
    }
}

/// rpcgen marshals doubles through `xdr_double`, an out-of-line call.
#[inline(never)]
fn xdr_put_double(out: &mut Vec<u8>, bits: u64) {
    out.extend_from_slice(&bits.to_be_bytes());
}

/// rpcgen chases pointers through `xdr_pointer` → `xdr_reference`, an
/// out-of-line call per pointee. Kept non-inlined to reproduce that call
/// structure.
#[inline(never)]
fn xdr_reference(
    pointee: &XdrType,
    bytes: &[u8],
    arch: &MachineArch,
    mem: &dyn MemSource,
    out: &mut Vec<u8>,
) -> Result<(), XdrError> {
    marshal_into(pointee, bytes, arch, mem, out)
}

/// rpcgen decodes strings through `xdr_string`, which `mem_alloc`s a
/// buffer for the decoded bytes; the transient allocation and the
/// out-of-line call are reproduced here.
#[inline(never)]
fn xdr_string_decode(src: &[u8]) -> Vec<u8> {
    src.to_vec()
}

#[inline(never)]
fn xdr_get_double(wire: &[u8], pos: &mut usize) -> Result<u64, XdrError> {
    let b: [u8; 8] = wire
        .get(*pos..*pos + 8)
        .ok_or(XdrError::Truncated)?
        .try_into()
        .unwrap();
    *pos += 8;
    Ok(u64::from_be_bytes(b))
}

/// Marshals a local-format value of type `ty` into XDR wire bytes.
///
/// # Errors
///
/// [`XdrError::BadPointer`] when a non-null pointer cannot be resolved
/// through `mem`.
pub fn marshal(
    ty: &XdrType,
    local: &[u8],
    arch: &MachineArch,
    mem: &dyn MemSource,
) -> Result<Vec<u8>, XdrError> {
    let mut out = Vec::with_capacity(local.len() + local.len() / 2);
    marshal_into(ty, local, arch, mem, &mut out)?;
    Ok(out)
}

fn marshal_into(
    ty: &XdrType,
    local: &[u8],
    arch: &MachineArch,
    mem: &dyn MemSource,
    out: &mut Vec<u8>,
) -> Result<(), XdrError> {
    match ty {
        XdrType::Char => {
            // Chars widen to a 4-byte XDR int.
            out.extend_from_slice(&(local[0] as i8 as i32).to_be_bytes());
        }
        XdrType::Short => {
            let v = read_word(&local[..2], arch) as u16 as i16;
            out.extend_from_slice(&(v as i32).to_be_bytes());
        }
        XdrType::Int | XdrType::Float => {
            let v = read_word(&local[..4], arch) as u32;
            out.extend_from_slice(&v.to_be_bytes());
        }
        XdrType::Hyper => {
            let v = read_word(&local[..8], arch);
            out.extend_from_slice(&v.to_be_bytes());
        }
        XdrType::Double => {
            let bits = read_word(&local[..8], arch);
            xdr_put_double(out, bits);
        }
        XdrType::String { cap } => {
            let window = &local[..*cap as usize];
            let s = match window.iter().position(|&b| b == 0) {
                Some(n) => &window[..n],
                None => window,
            };
            out.extend_from_slice(&(s.len() as u32).to_be_bytes());
            out.extend_from_slice(s);
            // XDR pads byte arrays to a 4-byte boundary.
            let pad = (4 - s.len() % 4) % 4;
            out.extend_from_slice(&[0u8; 3][..pad]);
        }
        XdrType::Pointer { pointee } => {
            let va = read_word(&local[..arch.pointer_size as usize], arch);
            if va == 0 {
                out.extend_from_slice(&0u32.to_be_bytes());
            } else {
                out.extend_from_slice(&1u32.to_be_bytes());
                let pl = pointee.layout(arch);
                let bytes = mem
                    .bytes(va, pl.size as usize)
                    .ok_or(XdrError::BadPointer { va })?;
                // Deep copy: the pointee travels inline.
                xdr_reference(pointee, bytes, arch, mem, out)?;
            }
        }
        XdrType::Array { elem, len } => {
            let el = elem.layout(arch);
            for i in 0..*len {
                let off = (i * el.size) as usize;
                marshal_into(elem, &local[off..off + el.size as usize], arch, mem, out)?;
            }
        }
        XdrType::Struct { fields } => {
            let mut off = 0u32;
            for f in fields {
                let fl = f.layout(arch);
                off = Layout::align_up(off, fl.align);
                marshal_into(
                    f,
                    &local[off as usize..(off + fl.size) as usize],
                    arch,
                    mem,
                    out,
                )?;
                off += fl.size;
            }
        }
    }
    Ok(())
}

/// An arena receiving deep-copied pointees during unmarshal (rpcgen stubs
/// `malloc` these; we bump-allocate).
#[derive(Debug)]
pub struct XdrArena {
    base: u64,
    data: Vec<u8>,
    cap: usize,
}

impl XdrArena {
    /// An arena mapped at `base` with capacity `cap` bytes.
    pub fn new(base: u64, cap: usize) -> Self {
        XdrArena {
            base,
            data: Vec::with_capacity(cap),
            cap,
        }
    }

    /// Bytes allocated so far.
    pub fn used(&self) -> usize {
        self.data.len()
    }

    fn alloc(&mut self, size: usize, align: u32) -> Result<(u64, usize), XdrError> {
        let off = Layout::align_up(self.data.len() as u32, align) as usize;
        if off + size > self.cap {
            return Err(XdrError::ArenaFull);
        }
        self.data.resize(off + size, 0);
        Ok((self.base + off as u64, off))
    }

    /// The arena contents (for verifying deep-copied pointees).
    pub fn data(&self) -> &[u8] {
        &self.data
    }
}

impl MemSource for XdrArena {
    fn bytes(&self, va: u64, len: usize) -> Option<&[u8]> {
        let off = va.checked_sub(self.base)? as usize;
        self.data.get(off..off + len)
    }
}

/// Unmarshals XDR wire bytes into a local-format image. Deep-copied
/// pointees are placed in `arena` and the local pointer words set to
/// their arena addresses.
///
/// # Errors
///
/// [`XdrError::Truncated`], [`XdrError::StringOverflow`],
/// [`XdrError::ArenaFull`].
pub fn unmarshal(
    ty: &XdrType,
    wire: &[u8],
    local: &mut [u8],
    arch: &MachineArch,
    arena: &mut XdrArena,
) -> Result<usize, XdrError> {
    let mut pos = 0usize;
    unmarshal_at(ty, wire, &mut pos, local, arch, arena)?;
    Ok(pos)
}

fn take<'a>(wire: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], XdrError> {
    let s = wire.get(*pos..*pos + n).ok_or(XdrError::Truncated)?;
    *pos += n;
    Ok(s)
}

fn unmarshal_at(
    ty: &XdrType,
    wire: &[u8],
    pos: &mut usize,
    local: &mut [u8],
    arch: &MachineArch,
    arena: &mut XdrArena,
) -> Result<(), XdrError> {
    match ty {
        XdrType::Char => {
            let b: [u8; 4] = take(wire, pos, 4)?.try_into().unwrap();
            local[0] = i32::from_be_bytes(b) as u8;
        }
        XdrType::Short => {
            let b: [u8; 4] = take(wire, pos, 4)?.try_into().unwrap();
            write_word(&mut local[..2], arch, i32::from_be_bytes(b) as u16 as u64);
        }
        XdrType::Int | XdrType::Float => {
            let b: [u8; 4] = take(wire, pos, 4)?.try_into().unwrap();
            write_word(&mut local[..4], arch, u32::from_be_bytes(b) as u64);
        }
        XdrType::Hyper => {
            let b: [u8; 8] = take(wire, pos, 8)?.try_into().unwrap();
            write_word(&mut local[..8], arch, u64::from_be_bytes(b));
        }
        XdrType::Double => {
            let bits = xdr_get_double(wire, pos)?;
            write_word(&mut local[..8], arch, bits);
        }
        XdrType::String { cap } => {
            let b: [u8; 4] = take(wire, pos, 4)?.try_into().unwrap();
            let len = u32::from_be_bytes(b) as usize;
            if len + 1 > *cap as usize {
                return Err(XdrError::StringOverflow);
            }
            let s = take(wire, pos, len)?;
            let decoded = xdr_string_decode(s); // rpcgen mem_alloc emulation
            local[..len].copy_from_slice(&decoded);
            local[len..*cap as usize].fill(0);
            let pad = (4 - len % 4) % 4;
            take(wire, pos, pad)?;
        }
        XdrType::Pointer { pointee } => {
            let b: [u8; 4] = take(wire, pos, 4)?.try_into().unwrap();
            let flag = u32::from_be_bytes(b);
            let psize = arch.pointer_size as usize;
            if flag == 0 {
                write_word(&mut local[..psize], arch, 0);
            } else {
                let pl = pointee.layout(arch);
                let (va, off) = arena.alloc(pl.size as usize, pl.align)?;
                // Decode into a scratch image, then install it (the arena
                // is also the MemSource for nested pointers).
                let mut scratch = vec![0u8; pl.size as usize];
                unmarshal_at(pointee, wire, pos, &mut scratch, arch, arena)?;
                arena.data[off..off + pl.size as usize].copy_from_slice(&scratch);
                write_word(&mut local[..psize], arch, va);
            }
        }
        XdrType::Array { elem, len } => {
            let el = elem.layout(arch);
            for i in 0..*len {
                let off = (i * el.size) as usize;
                unmarshal_at(
                    elem,
                    wire,
                    pos,
                    &mut local[off..off + el.size as usize],
                    arch,
                    arena,
                )?;
            }
        }
        XdrType::Struct { fields } => {
            let mut off = 0u32;
            for f in fields {
                let fl = f.layout(arch);
                off = Layout::align_up(off, fl.align);
                unmarshal_at(
                    f,
                    wire,
                    pos,
                    &mut local[off as usize..(off + fl.size) as usize],
                    arch,
                    arena,
                )?;
                off += fl.size;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    struct NoMem;
    impl MemSource for NoMem {
        fn bytes(&self, _: u64, _: usize) -> Option<&[u8]> {
            None
        }
    }

    fn x86() -> MachineArch {
        MachineArch::x86()
    }

    #[test]
    fn ints_and_chars_widen_to_four_bytes() {
        let wire = marshal(&XdrType::Char, &[0xFF], &x86(), &NoMem).unwrap();
        assert_eq!(wire, (-1i32).to_be_bytes());
        let wire = marshal(&XdrType::Short, &(-2i16).to_le_bytes(), &x86(), &NoMem).unwrap();
        assert_eq!(wire, (-2i32).to_be_bytes());
        let wire = marshal(&XdrType::Int, &7i32.to_le_bytes(), &x86(), &NoMem).unwrap();
        assert_eq!(wire.len(), 4);
    }

    #[test]
    fn strings_pad_to_four() {
        let ty = XdrType::String { cap: 16 };
        let mut local = [0u8; 16];
        local[..5].copy_from_slice(b"hello");
        let wire = marshal(&ty, &local, &x86(), &NoMem).unwrap();
        // 4 (len) + 5 (bytes) + 3 (pad) = 12
        assert_eq!(wire.len(), 12);
        assert_eq!(&wire[..4], &5u32.to_be_bytes());
        assert_eq!(&wire[4..9], b"hello");
        assert_eq!(&wire[9..], &[0, 0, 0]);
    }

    #[test]
    fn null_pointer_is_zero_flag() {
        let ty = XdrType::pointer(XdrType::Int);
        let wire = marshal(&ty, &[0; 4], &x86(), &NoMem).unwrap();
        assert_eq!(wire, 0u32.to_be_bytes());
    }

    #[test]
    fn pointer_deep_copies_pointee() {
        let ty = XdrType::pointer(XdrType::Int);
        // Memory: an int 99 at va 0x1000.
        let pointee = 99i32.to_le_bytes();
        let mem = FlatMem::new(0x1000, &pointee);
        let local = 0x1000u32.to_le_bytes();
        let wire = marshal(&ty, &local, &x86(), &mem).unwrap();
        assert_eq!(wire.len(), 8); // flag + int
        assert_eq!(&wire[..4], &1u32.to_be_bytes());
        assert_eq!(&wire[4..], &99i32.to_be_bytes());
    }

    #[test]
    fn dangling_pointer_errors() {
        let ty = XdrType::pointer(XdrType::Int);
        let local = 0xBEEFu32.to_le_bytes();
        assert!(matches!(
            marshal(&ty, &local, &x86(), &NoMem),
            Err(XdrError::BadPointer { va: 0xBEEF })
        ));
    }

    #[test]
    fn roundtrip_struct_across_archs() {
        let ty = XdrType::Struct {
            fields: vec![
                XdrType::Char,
                XdrType::Int,
                XdrType::Double,
                XdrType::String { cap: 8 },
            ],
        };
        for src in MachineArch::all() {
            for dst in MachineArch::all() {
                let sl = ty.layout(&src);
                let mut local = vec![0u8; sl.size as usize];
                // c=5 at 0, int at 4, double at (x86:8 / natural:8), str…
                local[0] = 5;
                // Fill via marshal from a hand-built image is tedious;
                // instead roundtrip zeros + char and compare wire forms.
                let wire = marshal(&ty, &local, &src, &NoMem).unwrap();
                let dl = ty.layout(&dst);
                let mut out = vec![0u8; dl.size as usize];
                let mut arena = XdrArena::new(0x10_000, 1024);
                let used = unmarshal(&ty, &wire, &mut out, &dst, &mut arena).unwrap();
                assert_eq!(used, wire.len());
                // Re-marshal from dst: identical wire bytes.
                let wire2 = marshal(&ty, &out, &dst, &NoMem).unwrap();
                assert_eq!(wire, wire2, "{} -> {}", src.name, dst.name);
            }
        }
    }

    #[test]
    fn unmarshal_allocates_pointees_in_arena() {
        let ty = XdrType::pointer(XdrType::Int);
        let mut wire = Vec::new();
        wire.extend_from_slice(&1u32.to_be_bytes());
        wire.extend_from_slice(&77i32.to_be_bytes());
        let arch = x86();
        let mut local = [0u8; 4];
        let mut arena = XdrArena::new(0x5000, 64);
        unmarshal(&ty, &wire, &mut local, &arch, &mut arena).unwrap();
        let va = u32::from_le_bytes(local) as u64;
        assert_eq!(va, 0x5000);
        assert_eq!(arena.used(), 4);
        assert_eq!(arena.data(), &77i32.to_le_bytes());
    }

    #[test]
    fn truncation_and_overflow_detected() {
        let mut arena = XdrArena::new(0, 0);
        let mut local = [0u8; 4];
        assert!(matches!(
            unmarshal(&XdrType::Int, &[0, 0], &mut local, &x86(), &mut arena),
            Err(XdrError::Truncated)
        ));
        let ty = XdrType::String { cap: 2 };
        let mut wire = Vec::new();
        wire.extend_from_slice(&9u32.to_be_bytes());
        wire.extend_from_slice(b"too long hi 1234");
        let mut local = [0u8; 2];
        assert!(matches!(
            unmarshal(&ty, &wire, &mut local, &x86(), &mut arena),
            Err(XdrError::StringOverflow)
        ));
        // Arena exhaustion.
        let ty = XdrType::pointer(XdrType::Int);
        let mut wire = Vec::new();
        wire.extend_from_slice(&1u32.to_be_bytes());
        wire.extend_from_slice(&1i32.to_be_bytes());
        let mut local = [0u8; 4];
        assert!(matches!(
            unmarshal(&ty, &wire, &mut local, &x86(), &mut arena),
            Err(XdrError::ArenaFull)
        ));
    }

    #[test]
    fn array_of_shorts_is_4n_bytes_on_wire() {
        let ty = XdrType::array(XdrType::Short, 5);
        let local = [0u8; 10];
        let wire = marshal(&ty, &local, &x86(), &NoMem).unwrap();
        assert_eq!(wire.len(), 20, "shorts widen on the wire");
    }

    #[test]
    fn big_endian_local_formats() {
        let sparc = MachineArch::sparc_v9();
        let local = 0x0102_0304u32.to_be_bytes();
        let wire = marshal(&XdrType::Int, &local, &sparc, &NoMem).unwrap();
        assert_eq!(wire, local, "BE local == wire for ints");
    }
}
