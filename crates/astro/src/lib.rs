//! # iw-astro — on-line visualization and steering of a simulation
//!
//! The Astroflow scenario of paper §4.5: a stellar-fluid [`sim`]ulation
//! engine shares its frames through an InterWeave segment ([`shared`]),
//! visualization clients read them under relaxed (temporal) coherence and
//! steer the simulation by writing a steering segment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod shared;
pub mod sim;

pub use shared::{read_frame, write_steering, FrameChannel, FrameView};
pub use sim::Simulation;
