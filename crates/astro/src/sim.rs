//! The stellar-fluid simulation engine.
//!
//! "Astroflow is a computational fluid dynamics system used to study the
//! birth and death of stars. The simulation engine is written in Fortran,
//! and runs on a cluster … As originally implemented, it dumps its
//! results to a file, which is subsequently read by a visualization tool"
//! (§4.5). The original is not available; this engine is a compact 2-D
//! explicit solver with the same sharing profile: a dense double grid
//! that evolves every step, plus a handful of scalar diagnostics.
//!
//! Physics: diffusion + swirl advection + a central injection source with
//! gravity-like decay toward the core — enough structure that frames are
//! visually meaningful and *every* cell changes every step (which is what
//! pushes InterWeave's no-diff adaptation, exactly as a real simulation
//! would).

/// A 2-D density grid with a steerable injection source.
#[derive(Debug, Clone)]
pub struct Simulation {
    width: u32,
    height: u32,
    step: u64,
    time: f64,
    dt: f64,
    /// Gas density per cell, row-major.
    density: Vec<f64>,
    scratch: Vec<f64>,
    /// Diffusion coefficient (steerable).
    pub diffusion: f64,
    /// Mass injected at the core per step (steerable).
    pub injection: f64,
    /// Swirl strength (steerable).
    pub swirl: f64,
}

impl Simulation {
    /// Creates a `width × height` grid seeded with a central proto-star.
    ///
    /// # Panics
    ///
    /// Panics when either dimension is zero.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "grid must be non-empty");
        let mut sim = Simulation {
            width,
            height,
            step: 0,
            time: 0.0,
            dt: 0.05,
            density: vec![0.0; (width * height) as usize],
            scratch: vec![0.0; (width * height) as usize],
            diffusion: 0.15,
            injection: 1.0,
            swirl: 0.4,
        };
        // Seed: a dense core.
        let (cx, cy) = (width as f64 / 2.0, height as f64 / 2.0);
        for y in 0..height {
            for x in 0..width {
                let d2 = ((x as f64 - cx).powi(2) + (y as f64 - cy).powi(2))
                    / (width.min(height) as f64).powi(2);
                sim.density[(y * width + x) as usize] = (1.0 - d2 * 8.0).max(0.0);
            }
        }
        sim
    }

    /// Grid width.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Grid height.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Steps taken.
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// Simulated time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// The density grid, row-major.
    pub fn cells(&self) -> &[f64] {
        &self.density
    }

    /// Total mass (a conserved-ish diagnostic the visualizer displays).
    pub fn total_mass(&self) -> f64 {
        self.density.iter().sum()
    }

    /// Peak density and its cell index.
    pub fn peak(&self) -> (f64, usize) {
        self.density
            .iter()
            .enumerate()
            .fold(
                (f64::MIN, 0),
                |(best, bi), (i, &v)| {
                    if v > best {
                        (v, i)
                    } else {
                        (best, bi)
                    }
                },
            )
    }

    /// Advances one time step.
    pub fn step(&mut self) {
        let (w, h) = (self.width as usize, self.height as usize);
        let idx = |x: usize, y: usize| y * w + x;
        // Diffusion (5-point stencil) + swirl advection (semi-Lagrangian
        // nearest sample) + decay.
        let (cx, cy) = (w as f64 / 2.0, h as f64 / 2.0);
        for y in 0..h {
            for x in 0..w {
                let c = self.density[idx(x, y)];
                let left = self.density[idx(x.saturating_sub(1), y)];
                let right = self.density[idx((x + 1).min(w - 1), y)];
                let up = self.density[idx(x, y.saturating_sub(1))];
                let down = self.density[idx(x, (y + 1).min(h - 1))];
                let lap = left + right + up + down - 4.0 * c;
                // Swirl: sample upstream along the rotational flow.
                let (dx, dy) = (x as f64 - cx, y as f64 - cy);
                let sx = (x as f64 - self.swirl * -dy * self.dt).round();
                let sy = (y as f64 - self.swirl * dx * self.dt).round();
                let sx = sx.clamp(0.0, (w - 1) as f64) as usize;
                let sy = sy.clamp(0.0, (h - 1) as f64) as usize;
                let advected = self.density[idx(sx, sy)];
                self.scratch[idx(x, y)] = (advected + self.diffusion * self.dt * lap) * 0.999;
            }
        }
        std::mem::swap(&mut self.density, &mut self.scratch);
        // Inject mass at the core.
        let core = idx(w / 2, h / 2);
        self.density[core] += self.injection * self.dt;
        self.step += 1;
        self.time += self.dt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_with_central_core() {
        let sim = Simulation::new(16, 16);
        let (peak, at) = sim.peak();
        assert!(peak > 0.9);
        let (x, y) = (at % 16, at / 16);
        assert!(
            (7..=9).contains(&x) && (7..=9).contains(&y),
            "core at {x},{y}"
        );
    }

    #[test]
    fn stepping_advances_time_and_changes_cells() {
        let mut sim = Simulation::new(12, 12);
        let before = sim.cells().to_vec();
        sim.step();
        assert_eq!(sim.step_count(), 1);
        assert!(sim.time() > 0.0);
        let changed = sim
            .cells()
            .iter()
            .zip(&before)
            .filter(|(a, b)| a != b)
            .count();
        assert!(
            changed > before.len() / 2,
            "most cells should change each step ({changed})"
        );
    }

    #[test]
    fn mass_stays_bounded_and_positiveish() {
        let mut sim = Simulation::new(10, 10);
        let m0 = sim.total_mass();
        for _ in 0..100 {
            sim.step();
        }
        let m = sim.total_mass();
        assert!(m.is_finite());
        assert!(m > 0.0);
        assert!(m < m0 * 10.0, "no blow-up: {m0} -> {m}");
    }

    #[test]
    fn injection_steering_takes_effect() {
        let mut a = Simulation::new(10, 10);
        let mut b = Simulation::new(10, 10);
        b.injection = 10.0;
        for _ in 0..20 {
            a.step();
            b.step();
        }
        assert!(b.total_mass() > a.total_mass());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_grid_rejected() {
        let _ = Simulation::new(0, 4);
    }
}
