//! Sharing simulation frames and steering parameters through InterWeave.
//!
//! "We used InterWeave to connect the simulator and visualization tool
//! directly, to support on-line visualization and steering. … We wrote an
//! IDL specification to describe the shared data structures and replaced
//! the original file operations with access to shared segments. …
//! the visualization front end can control the frequency of updates from
//! the simulator simply by specifying a temporal bound on relaxed
//! coherence." (§4.5)
//!
//! Two segments: a *frame* segment (step counter, clock, and the whole
//! density grid) written by the simulator, and a *steering* segment
//! written by visualization clients and read by the simulator.

use iw_core::{CoreError, Ptr, SegHandle, Session};
use iw_types::desc::TypeDesc;
use iw_types::idl;

use crate::sim::Simulation;

/// The IDL for the frame header (the grid travels as a separate
/// double-array block so its size can depend on the run configuration).
pub const ASTRO_IDL: &str = "\
struct frame_hdr {\n\
    int step;\n\
    double time;\n\
    int width;\n\
    int height;\n\
    double total_mass;\n\
};\n\
struct steering {\n\
    double diffusion;\n\
    double injection;\n\
    double swirl;\n\
    int paused;\n\
};\n";

fn frame_hdr_type() -> TypeDesc {
    idl::compile(ASTRO_IDL)
        .expect("static IDL")
        .get("frame_hdr")
        .unwrap()
        .clone()
}

fn steering_type() -> TypeDesc {
    idl::compile(ASTRO_IDL)
        .expect("static IDL")
        .get("steering")
        .unwrap()
        .clone()
}

/// Simulator-side publisher for frames, plus steering readback.
#[derive(Debug)]
pub struct FrameChannel {
    frame_seg: SegHandle,
    steer_seg: SegHandle,
    hdr: Ptr,
    grid: Ptr,
    steer: Ptr,
    cells: u32,
}

impl FrameChannel {
    /// Creates the frame and steering segments for a `sim`-shaped run.
    ///
    /// # Errors
    ///
    /// Lock/allocation errors from the session.
    pub fn create(session: &mut Session, base: &str, sim: &Simulation) -> Result<Self, CoreError> {
        let frame_name = format!("{base}/frame");
        let steer_name = format!("{base}/steering");
        let frame_seg = session.open_segment(&frame_name)?;
        let steer_seg = session.open_segment(&steer_name)?;
        let cells = sim.width() * sim.height();

        session.wl_acquire(&frame_seg)?;
        let hdr = session.malloc(&frame_seg, &frame_hdr_type(), 1, Some("hdr"))?;
        let grid = session.malloc(&frame_seg, &TypeDesc::float64(), cells, Some("grid"))?;
        session.write_i32(&session.field(&hdr, "width")?, sim.width() as i32)?;
        session.write_i32(&session.field(&hdr, "height")?, sim.height() as i32)?;
        session.wl_release(&frame_seg)?;

        session.wl_acquire(&steer_seg)?;
        let steer = session.malloc(&steer_seg, &steering_type(), 1, Some("params"))?;
        session.write_f64(&session.field(&steer, "diffusion")?, sim.diffusion)?;
        session.write_f64(&session.field(&steer, "injection")?, sim.injection)?;
        session.write_f64(&session.field(&steer, "swirl")?, sim.swirl)?;
        session.wl_release(&steer_seg)?;

        Ok(FrameChannel {
            frame_seg,
            steer_seg,
            hdr,
            grid,
            steer,
            cells,
        })
    }

    /// The frame segment handle.
    pub fn frame_handle(&self) -> &SegHandle {
        &self.frame_seg
    }

    /// The steering segment handle.
    pub fn steering_handle(&self) -> &SegHandle {
        &self.steer_seg
    }

    /// Publishes the simulator's current state into the frame segment.
    ///
    /// # Errors
    ///
    /// Lock/access errors from the session.
    pub fn publish(&mut self, session: &mut Session, sim: &Simulation) -> Result<(), CoreError> {
        session.wl_acquire(&self.frame_seg)?;
        session.write_i32(&session.field(&self.hdr, "step")?, sim.step_count() as i32)?;
        session.write_f64(&session.field(&self.hdr, "time")?, sim.time())?;
        session.write_f64(&session.field(&self.hdr, "total_mass")?, sim.total_mass())?;
        for (i, &v) in sim.cells().iter().enumerate() {
            let cell = session.index(&self.grid, i as u32)?;
            session.write_f64(&cell, v)?;
        }
        session.wl_release(&self.frame_seg)?;
        Ok(())
    }

    /// Applies any steering changes written by visualization clients.
    ///
    /// # Errors
    ///
    /// Lock/access errors from the session.
    pub fn absorb_steering(
        &mut self,
        session: &mut Session,
        sim: &mut Simulation,
    ) -> Result<bool, CoreError> {
        session.rl_acquire(&self.steer_seg)?;
        let diffusion = session.read_f64(&session.field(&self.steer, "diffusion")?)?;
        let injection = session.read_f64(&session.field(&self.steer, "injection")?)?;
        let swirl = session.read_f64(&session.field(&self.steer, "swirl")?)?;
        let paused = session.read_i32(&session.field(&self.steer, "paused")?)? != 0;
        session.rl_release(&self.steer_seg)?;
        sim.diffusion = diffusion;
        sim.injection = injection;
        sim.swirl = swirl;
        Ok(paused)
    }

    /// Number of grid cells in the shared frame.
    pub fn cells(&self) -> u32 {
        self.cells
    }
}

/// A frame as observed by a visualization client.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameView {
    /// Simulation step the frame belongs to.
    pub step: i32,
    /// Simulated time.
    pub time: f64,
    /// Grid width.
    pub width: i32,
    /// Grid height.
    pub height: i32,
    /// Total mass diagnostic.
    pub total_mass: f64,
    /// The density grid, row-major.
    pub cells: Vec<f64>,
}

impl FrameView {
    /// Renders the frame as coarse ASCII art (the "visualization").
    pub fn ascii_art(&self, out_w: usize, out_h: usize) -> String {
        let ramp = b" .:-=+*#%@";
        let peak = self
            .cells
            .iter()
            .cloned()
            .fold(f64::MIN, f64::max)
            .max(1e-12);
        let mut art = String::with_capacity(out_w * out_h + out_h);
        for ry in 0..out_h {
            for rx in 0..out_w {
                let x = rx * self.width as usize / out_w;
                let y = ry * self.height as usize / out_h;
                let v = self.cells[y * self.width as usize + x] / peak;
                let i = ((v * (ramp.len() - 1) as f64).round() as usize).min(ramp.len() - 1);
                art.push(ramp[i] as char);
            }
            art.push('\n');
        }
        art
    }
}

/// Reads the current frame under the session's coherence model.
///
/// # Errors
///
/// Lock/access errors from the session.
pub fn read_frame(session: &mut Session, base: &str) -> Result<FrameView, CoreError> {
    let name = format!("{base}/frame");
    let h = session.open_segment(&name)?;
    session.rl_acquire(&h)?;
    let hdr = session.mip_to_ptr(&format!("{name}#hdr"))?;
    let grid = session.mip_to_ptr(&format!("{name}#grid"))?;
    let width = session.read_i32(&session.field(&hdr, "width")?)?;
    let height = session.read_i32(&session.field(&hdr, "height")?)?;
    let mut cells = Vec::with_capacity((width * height).max(0) as usize);
    for i in 0..(width * height).max(0) as u32 {
        cells.push(session.read_f64(&session.index(&grid, i)?)?);
    }
    let view = FrameView {
        step: session.read_i32(&session.field(&hdr, "step")?)?,
        time: session.read_f64(&session.field(&hdr, "time")?)?,
        width,
        height,
        total_mass: session.read_f64(&session.field(&hdr, "total_mass")?)?,
        cells,
    };
    session.rl_release(&h)?;
    Ok(view)
}

/// Writes steering parameters from a visualization client.
///
/// # Errors
///
/// Lock/access errors from the session.
pub fn write_steering(
    session: &mut Session,
    base: &str,
    diffusion: f64,
    injection: f64,
    swirl: f64,
) -> Result<(), CoreError> {
    let name = format!("{base}/steering");
    let h = session.open_segment(&name)?;
    session.wl_acquire(&h)?;
    let p = session.mip_to_ptr(&format!("{name}#params"))?;
    session.write_f64(&session.field(&p, "diffusion")?, diffusion)?;
    session.write_f64(&session.field(&p, "injection")?, injection)?;
    session.write_f64(&session.field(&p, "swirl")?, swirl)?;
    session.wl_release(&h)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use iw_proto::{Coherence, Handler, Loopback};
    use iw_server::Server;
    use iw_types::MachineArch;
    use std::sync::Arc;

    fn sessions() -> (Session, Session) {
        let srv: Arc<dyn Handler> = Arc::new(Server::new());
        (
            Session::new(MachineArch::alpha(), Box::new(Loopback::new(srv.clone()))).unwrap(),
            Session::new(MachineArch::x86(), Box::new(Loopback::new(srv))).unwrap(),
        )
    }

    #[test]
    fn frames_flow_simulator_to_visualizer() {
        let (mut simclient, mut viz) = sessions();
        let mut sim = Simulation::new(8, 8);
        let mut chan = FrameChannel::create(&mut simclient, "astro/run1", &sim).unwrap();
        sim.step();
        chan.publish(&mut simclient, &sim).unwrap();

        let frame = read_frame(&mut viz, "astro/run1").unwrap();
        assert_eq!(frame.step, 1);
        assert_eq!(frame.width, 8);
        assert_eq!(frame.cells.len(), 64);
        assert!((frame.total_mass - sim.total_mass()).abs() < 1e-9);
        // Grid matches bit for bit despite the architecture change.
        for (a, b) in frame.cells.iter().zip(sim.cells()) {
            assert_eq!(a, b);
        }
        let art = frame.ascii_art(8, 4);
        assert_eq!(art.lines().count(), 4);
    }

    #[test]
    fn steering_flows_visualizer_to_simulator() {
        let (mut simclient, mut viz) = sessions();
        let mut sim = Simulation::new(6, 6);
        let mut chan = FrameChannel::create(&mut simclient, "astro/run2", &sim).unwrap();
        write_steering(&mut viz, "astro/run2", 0.01, 5.5, 0.9).unwrap();
        let paused = chan.absorb_steering(&mut simclient, &mut sim).unwrap();
        assert!(!paused);
        assert_eq!(sim.injection, 5.5);
        assert_eq!(sim.diffusion, 0.01);
        assert_eq!(sim.swirl, 0.9);
    }

    #[test]
    fn temporal_coherence_throttles_frame_updates() {
        let (mut simclient, mut viz) = sessions();
        let mut sim = Simulation::new(6, 6);
        let mut chan = FrameChannel::create(&mut simclient, "astro/run3", &sim).unwrap();
        chan.publish(&mut simclient, &sim).unwrap();

        let h = viz.open_segment("astro/run3/frame").unwrap();
        viz.set_coherence(&h, Coherence::Temporal(60_000)).unwrap();
        let f1 = read_frame(&mut viz, "astro/run3").unwrap();
        let reqs_after_first = viz.transport_stats().requests;

        // Simulator keeps producing.
        for _ in 0..3 {
            sim.step();
            chan.publish(&mut simclient, &sim).unwrap();
        }
        // Within the temporal window the visualizer re-reads its cache.
        let f2 = read_frame(&mut viz, "astro/run3").unwrap();
        assert_eq!(
            f1.step, f2.step,
            "stale frame acceptable under temporal bound"
        );
        assert_eq!(
            viz.transport_stats().requests,
            reqs_after_first,
            "no server traffic while fresh"
        );
    }
}
