//! Relaxed coherence models.
//!
//! "Among the relaxed coherence models currently supported by InterWeave,
//! *Delta* coherence guarantees that the segment is no more than x versions
//! out-of-date; *Temporal* coherence guarantees that it is no more than x
//! time units out of date; and *Diff-based* coherence guarantees that no
//! more than x% of the primitive data elements in the segment are out of
//! date. In all cases, x can be specified dynamically by the process."
//! (§3.2)

use std::fmt;

use iw_wire::codec::{WireError, WireReader, WireWriter};

/// The coherence requirement a client attaches to a read-lock acquisition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Coherence {
    /// Always fetch the most recent version (the strictest model; what
    /// plain RPC-by-value would give you).
    #[default]
    Full,
    /// The cached copy may be up to `x` versions out of date.
    Delta(u32),
    /// The cached copy may be up to `x` milliseconds out of date. The
    /// client library enforces this with a per-segment real-time stamp.
    Temporal(u64),
    /// At most `x` *basis points* (hundredths of a percent) of the
    /// segment's primitive data may be out of date. The server enforces
    /// this with a conservative per-client modification counter.
    Diff(u32),
}

impl Coherence {
    /// Convenience constructor for Diff coherence given a percentage.
    ///
    /// # Examples
    ///
    /// ```
    /// use iw_proto::coherence::Coherence;
    /// assert_eq!(Coherence::diff_percent(2.5), Coherence::Diff(250));
    /// ```
    pub fn diff_percent(pct: f64) -> Self {
        Coherence::Diff((pct * 100.0).round() as u32)
    }

    /// Serializes onto a wire writer.
    pub fn encode(&self, w: &mut WireWriter) {
        match self {
            Coherence::Full => w.put_u8(0),
            Coherence::Delta(x) => {
                w.put_u8(1);
                w.put_u32(*x);
            }
            Coherence::Temporal(ms) => {
                w.put_u8(2);
                w.put_u64(*ms);
            }
            Coherence::Diff(bp) => {
                w.put_u8(3);
                w.put_u32(*bp);
            }
        }
    }

    /// Minimum version (`floor`) a read replica must have reached to
    /// serve a read under this model, given `best_known` — the newest
    /// version of the segment the client has confirmed at the primary.
    ///
    /// `None` means reads under this model must always go to the
    /// primary: `Full`, and every zero-bound relaxed model (a bound of
    /// zero collapses to "exactly current", which only the primary can
    /// attest).
    ///
    /// The floor is *knowledge-relative*: `Delta(x)` tolerates a replica
    /// up to `x` versions behind the client's observed frontier, while
    /// `Temporal`/`Diff` require the replica to have caught up to the
    /// frontier itself — Temporal's wall-clock bound is then enforced by
    /// the freshness of the frontier observation (see
    /// [`Coherence::replica_eligible`]), and Diff's divergence bound by
    /// the replica's own modification counters.
    pub fn replica_floor(&self, best_known: u64) -> Option<u64> {
        match *self {
            Coherence::Full => None,
            Coherence::Delta(0) | Coherence::Temporal(0) | Coherence::Diff(0) => None,
            Coherence::Delta(x) => Some(best_known.saturating_sub(u64::from(x))),
            Coherence::Temporal(_) | Coherence::Diff(_) => Some(best_known),
        }
    }

    /// Client-side eligibility check: may a replica whose last known
    /// version is `replica_version` serve a read under this model?
    ///
    /// `best_known` is the newest version the client has confirmed at
    /// the primary and `age_ms` is how long ago that confirmation
    /// happened. Only `Temporal` consults the age: every version the
    /// replica might be missing relative to a confirmation made `age_ms`
    /// ago was committed *after* that confirmation, so data at or above
    /// the confirmed frontier is at most `age_ms` stale — the read is
    /// legal exactly while `age_ms` stays within the bound.
    pub fn replica_eligible(&self, replica_version: u64, best_known: u64, age_ms: u64) -> bool {
        match self.replica_floor(best_known) {
            None => false,
            Some(floor) => {
                replica_version >= floor
                    && match *self {
                        Coherence::Temporal(ms) => age_ms <= ms,
                        _ => true,
                    }
            }
        }
    }

    /// Deserializes from a wire reader.
    ///
    /// # Errors
    ///
    /// [`WireError::BadTag`] on an unknown model tag, plus truncation
    /// errors.
    pub fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        Ok(match r.get_u8()? {
            0 => Coherence::Full,
            1 => Coherence::Delta(r.get_u32()?),
            2 => Coherence::Temporal(r.get_u64()?),
            3 => Coherence::Diff(r.get_u32()?),
            tag => {
                return Err(WireError::BadTag {
                    what: "coherence model",
                    tag,
                })
            }
        })
    }
}

impl fmt::Display for Coherence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Coherence::Full => f.write_str("full"),
            Coherence::Delta(x) => write!(f, "delta({x})"),
            Coherence::Temporal(ms) => write!(f, "temporal({ms}ms)"),
            Coherence::Diff(bp) => write!(f, "diff({}%)", *bp as f64 / 100.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_models() {
        for c in [
            Coherence::Full,
            Coherence::Delta(3),
            Coherence::Temporal(1500),
            Coherence::Diff(250),
        ] {
            let mut w = WireWriter::new();
            c.encode(&mut w);
            let mut r = WireReader::new(w.finish());
            assert_eq!(Coherence::decode(&mut r).unwrap(), c);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn bad_tag_rejected() {
        let mut w = WireWriter::new();
        w.put_u8(9);
        let mut r = WireReader::new(w.finish());
        assert!(matches!(
            Coherence::decode(&mut r),
            Err(WireError::BadTag {
                what: "coherence model",
                ..
            })
        ));
    }

    #[test]
    fn display_and_default() {
        assert_eq!(Coherence::default(), Coherence::Full);
        assert_eq!(Coherence::Delta(2).to_string(), "delta(2)");
        assert_eq!(Coherence::Diff(250).to_string(), "diff(2.5%)");
        assert_eq!(Coherence::Temporal(9).to_string(), "temporal(9ms)");
        assert_eq!(Coherence::Full.to_string(), "full");
    }

    #[test]
    fn diff_percent_conversion() {
        assert_eq!(Coherence::diff_percent(0.0), Coherence::Diff(0));
        assert_eq!(Coherence::diff_percent(100.0), Coherence::Diff(10_000));
    }

    #[test]
    fn full_never_replica_eligible() {
        assert_eq!(Coherence::Full.replica_floor(0), None);
        assert_eq!(Coherence::Full.replica_floor(u64::MAX), None);
        assert!(!Coherence::Full.replica_eligible(u64::MAX, 0, 0));
    }

    #[test]
    fn zero_bound_models_always_hit_primary() {
        // A zero bound means "exactly current" — only the primary can
        // attest that, so a replica is never eligible even when it is
        // (as far as the client knows) fully caught up.
        for c in [
            Coherence::Delta(0),
            Coherence::Temporal(0),
            Coherence::Diff(0),
        ] {
            assert_eq!(c.replica_floor(42), None, "{c}");
            assert!(!c.replica_eligible(42, 42, 0), "{c}");
            assert!(!c.replica_eligible(u64::MAX, 0, 0), "{c}");
        }
        assert_eq!(Coherence::diff_percent(0.0).replica_floor(7), None);
    }

    #[test]
    fn delta_floor_saturates_at_version_distance_overflow() {
        // Bound wider than the whole version history: floor saturates to
        // 0 instead of wrapping below it.
        assert_eq!(Coherence::Delta(u32::MAX).replica_floor(5), Some(0));
        assert!(Coherence::Delta(u32::MAX).replica_eligible(0, 5, u64::MAX));
        // Frontier at the u64 ceiling: the subtraction must not panic
        // and the floor lands exactly `x` below the ceiling.
        assert_eq!(
            Coherence::Delta(3).replica_floor(u64::MAX),
            Some(u64::MAX - 3)
        );
        assert!(Coherence::Delta(3).replica_eligible(u64::MAX - 3, u64::MAX, 0));
        assert!(!Coherence::Delta(3).replica_eligible(u64::MAX - 4, u64::MAX, 0));
    }

    #[test]
    fn delta_distance_measured_from_best_known() {
        let c = Coherence::Delta(2);
        assert_eq!(c.replica_floor(10), Some(8));
        assert!(c.replica_eligible(8, 10, u64::MAX)); // age ignored
        assert!(c.replica_eligible(10, 10, 0));
        assert!(c.replica_eligible(11, 10, 0)); // replica ahead of us: fine
        assert!(!c.replica_eligible(7, 10, 0));
    }

    #[test]
    fn temporal_age_at_clock_granularity_boundaries() {
        let c = Coherence::Temporal(50);
        // Exactly at the bound is still legal (<=, not <): a clock that
        // ticks in whole milliseconds must not flap at the boundary.
        assert!(c.replica_eligible(10, 10, 50));
        assert!(!c.replica_eligible(10, 10, 51));
        // Age 0 (confirmation this very tick) with a caught-up replica.
        assert!(c.replica_eligible(10, 10, 0));
        // A caught-up frontier observation that is too old is useless no
        // matter how fresh the replica claims to be.
        assert!(!c.replica_eligible(u64::MAX, 10, u64::MAX));
        // Temporal requires the replica at (or past) the frontier.
        assert!(!c.replica_eligible(9, 10, 0));
        // 1 ms bound at the granularity edge: 0 and 1 pass, 2 fails.
        let tight = Coherence::Temporal(1);
        assert!(tight.replica_eligible(3, 3, 0));
        assert!(tight.replica_eligible(3, 3, 1));
        assert!(!tight.replica_eligible(3, 3, 2));
    }

    #[test]
    fn diff_requires_caught_up_replica() {
        let c = Coherence::Diff(250);
        assert_eq!(c.replica_floor(9), Some(9));
        assert!(c.replica_eligible(9, 9, u64::MAX)); // age ignored
        assert!(!c.replica_eligible(8, 9, 0));
        assert!(c.replica_eligible(u64::MAX, u64::MAX, 0));
    }
}
