//! Relaxed coherence models.
//!
//! "Among the relaxed coherence models currently supported by InterWeave,
//! *Delta* coherence guarantees that the segment is no more than x versions
//! out-of-date; *Temporal* coherence guarantees that it is no more than x
//! time units out of date; and *Diff-based* coherence guarantees that no
//! more than x% of the primitive data elements in the segment are out of
//! date. In all cases, x can be specified dynamically by the process."
//! (§3.2)

use std::fmt;

use iw_wire::codec::{WireError, WireReader, WireWriter};

/// The coherence requirement a client attaches to a read-lock acquisition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Coherence {
    /// Always fetch the most recent version (the strictest model; what
    /// plain RPC-by-value would give you).
    #[default]
    Full,
    /// The cached copy may be up to `x` versions out of date.
    Delta(u32),
    /// The cached copy may be up to `x` milliseconds out of date. The
    /// client library enforces this with a per-segment real-time stamp.
    Temporal(u64),
    /// At most `x` *basis points* (hundredths of a percent) of the
    /// segment's primitive data may be out of date. The server enforces
    /// this with a conservative per-client modification counter.
    Diff(u32),
}

impl Coherence {
    /// Convenience constructor for Diff coherence given a percentage.
    ///
    /// # Examples
    ///
    /// ```
    /// use iw_proto::coherence::Coherence;
    /// assert_eq!(Coherence::diff_percent(2.5), Coherence::Diff(250));
    /// ```
    pub fn diff_percent(pct: f64) -> Self {
        Coherence::Diff((pct * 100.0).round() as u32)
    }

    /// Serializes onto a wire writer.
    pub fn encode(&self, w: &mut WireWriter) {
        match self {
            Coherence::Full => w.put_u8(0),
            Coherence::Delta(x) => {
                w.put_u8(1);
                w.put_u32(*x);
            }
            Coherence::Temporal(ms) => {
                w.put_u8(2);
                w.put_u64(*ms);
            }
            Coherence::Diff(bp) => {
                w.put_u8(3);
                w.put_u32(*bp);
            }
        }
    }

    /// Deserializes from a wire reader.
    ///
    /// # Errors
    ///
    /// [`WireError::BadTag`] on an unknown model tag, plus truncation
    /// errors.
    pub fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        Ok(match r.get_u8()? {
            0 => Coherence::Full,
            1 => Coherence::Delta(r.get_u32()?),
            2 => Coherence::Temporal(r.get_u64()?),
            3 => Coherence::Diff(r.get_u32()?),
            tag => {
                return Err(WireError::BadTag {
                    what: "coherence model",
                    tag,
                })
            }
        })
    }
}

impl fmt::Display for Coherence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Coherence::Full => f.write_str("full"),
            Coherence::Delta(x) => write!(f, "delta({x})"),
            Coherence::Temporal(ms) => write!(f, "temporal({ms}ms)"),
            Coherence::Diff(bp) => write!(f, "diff({}%)", *bp as f64 / 100.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_models() {
        for c in [
            Coherence::Full,
            Coherence::Delta(3),
            Coherence::Temporal(1500),
            Coherence::Diff(250),
        ] {
            let mut w = WireWriter::new();
            c.encode(&mut w);
            let mut r = WireReader::new(w.finish());
            assert_eq!(Coherence::decode(&mut r).unwrap(), c);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn bad_tag_rejected() {
        let mut w = WireWriter::new();
        w.put_u8(9);
        let mut r = WireReader::new(w.finish());
        assert!(matches!(
            Coherence::decode(&mut r),
            Err(WireError::BadTag {
                what: "coherence model",
                ..
            })
        ));
    }

    #[test]
    fn display_and_default() {
        assert_eq!(Coherence::default(), Coherence::Full);
        assert_eq!(Coherence::Delta(2).to_string(), "delta(2)");
        assert_eq!(Coherence::Diff(250).to_string(), "diff(2.5%)");
        assert_eq!(Coherence::Temporal(9).to_string(), "temporal(9ms)");
        assert_eq!(Coherence::Full.to_string(), "full");
    }

    #[test]
    fn diff_percent_conversion() {
        assert_eq!(Coherence::diff_percent(0.0), Coherence::Diff(0));
        assert_eq!(Coherence::diff_percent(100.0), Coherence::Diff(10_000));
    }
}
