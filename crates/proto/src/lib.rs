//! # iw-proto — the InterWeave client/server protocol
//!
//! Request/reply messages ([`msg`]), relaxed coherence models
//! ([`coherence`]), and transports ([`transport`], [`tcp`]) for
//! InterWeave-rs (the ICDCS'03 InterWeave reproduction).
//!
//! Every transport — including the in-process [`transport::Loopback`] —
//! moves fully *encoded* messages and counts their bytes, so bandwidth
//! measurements (paper Figure 7) are transport-independent.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod caps;
pub mod coherence;
pub mod msg;
pub mod tcp;
pub mod transport;

pub use caps::PeerCaps;
pub use coherence::Coherence;
pub use msg::{LockMode, Reply, Request};
pub use tcp::{TcpServer, TcpTransport};
pub use transport::{
    FaultAction, FaultLayer, Handler, Loopback, ProtoError, Transport, TransportStats,
};
