//! TCP transport: the same protocol over real sockets.
//!
//! Frames are `u32` big-endian length prefixes followed by the encoded
//! message. The paper's clients cache one TCP connection per segment table
//! entry; here a [`TcpTransport`] is one such cached connection.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use bytes::Bytes;
use iw_telemetry::{Counter, Registry};

use crate::caps::PeerCaps;
use crate::msg::{Reply, Request};
use crate::transport::{
    FaultAction, FaultLayer, Handler, ProtoError, Transport, TransportMetrics, TransportStats,
};

/// Writes one length-prefixed frame as a single vectored write, so the
/// length prefix and the body leave in one syscall (and, with Nagle off,
/// one TCP segment for small frames) instead of two `write_all` calls.
/// Short writes fall back to plain writes of the remainder.
///
/// Generic over the stream so the blocking transports and test
/// harnesses (in-memory cursors, instrumented sockets) share one
/// codec.
///
/// # Errors
///
/// Propagates I/O errors from the underlying stream.
pub fn write_frame<S: Write>(stream: &mut S, body: &[u8]) -> io::Result<()> {
    let prefix = (body.len() as u32).to_be_bytes();
    let total = prefix.len() + body.len();
    let mut done = 0usize;
    while done < total {
        let n = if done < prefix.len() {
            stream.write_vectored(&[io::IoSlice::new(&prefix[done..]), io::IoSlice::new(body)])?
        } else {
            stream.write(&body[done - prefix.len()..])?
        };
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "failed to write whole frame",
            ));
        }
        done += n;
    }
    stream.flush()
}

/// Reads one length-prefixed frame; `Ok(None)` on clean EOF at a frame
/// boundary.
///
/// Generic over the stream (see [`write_frame`]); `iw-net`'s
/// incremental decoder is property-tested byte-for-byte against this
/// function.
///
/// # Errors
///
/// Propagates I/O errors; a frame longer than 256 MiB is rejected as
/// `InvalidData`.
pub fn read_frame<S: Read>(stream: &mut S) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match stream.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > 256 << 20 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame too large",
        ));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    Ok(Some(body))
}

/// The accept backoff after `errs` consecutive fd-exhaustion failures:
/// 10 ms doubling to a ~1 s cap. Keeps a process at `EMFILE` serving
/// its existing connections instead of spinning on (or abandoning) the
/// accept loop. Shared by both server front ends.
pub fn accept_retry_delay(errs: u32) -> Duration {
    Duration::from_millis(10u64.saturating_mul(1 << errs.min(7)))
}

/// `true` for errno values meaning the process or system ran out of
/// file descriptors (`ENFILE` / `EMFILE`).
pub fn is_fd_exhaustion(e: &io::Error) -> bool {
    matches!(e.raw_os_error(), Some(23) | Some(24))
}

/// Default connect/read/write timeout for client connections: long enough
/// for any healthy round trip, short enough that a hung or partitioned
/// server surfaces as a transport error the failover machinery can act
/// on, instead of blocking in `read_frame` forever.
pub const DEFAULT_IO_TIMEOUT: Duration = Duration::from_secs(5);

/// A client connection to an InterWeave server over TCP.
pub struct TcpTransport {
    stream: TcpStream,
    metrics: TransportMetrics,
    /// Optional per-message fault layer (see `iw-faults`).
    faults: Option<Box<dyn FaultLayer>>,
    /// Capabilities advertised on Hello.
    local_caps: PeerCaps,
    /// Capabilities the server's Welcome agreed to (v1 until then).
    negotiated: PeerCaps,
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("stream", &self.stream)
            .field("faulty", &self.faults.is_some())
            .finish()
    }
}

impl TcpTransport {
    /// Connects to a server with [`DEFAULT_IO_TIMEOUT`] applied to the
    /// connect itself and to every subsequent read and write.
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        TcpTransport::connect_with_timeout(addr, Some(DEFAULT_IO_TIMEOUT))
    }

    /// Connects to a server with an explicit I/O timeout (`None` =
    /// block indefinitely, the pre-cluster behavior).
    ///
    /// # Errors
    ///
    /// Propagates connection errors, including a connect timeout.
    pub fn connect_with_timeout(addr: SocketAddr, timeout: Option<Duration>) -> io::Result<Self> {
        let stream = match timeout {
            Some(t) => TcpStream::connect_timeout(&addr, t)?,
            None => TcpStream::connect(addr)?,
        };
        stream.set_nodelay(true)?;
        stream.set_read_timeout(timeout)?;
        stream.set_write_timeout(timeout)?;
        Ok(TcpTransport {
            stream,
            metrics: TransportMetrics::default(),
            faults: None,
            local_caps: PeerCaps::ALL,
            negotiated: PeerCaps::NONE,
        })
    }

    /// Caps what this client advertises on Hello ([`PeerCaps::NONE`]
    /// simulates a pre-v2 client against a modern server).
    pub fn set_local_caps(&mut self, caps: PeerCaps) {
        self.local_caps = caps;
        self.negotiated = self.negotiated.intersect(caps);
    }

    /// The capabilities negotiated with the server so far.
    pub fn negotiated_caps(&self) -> PeerCaps {
        self.negotiated
    }

    /// Changes the read/write timeouts on the live connection.
    ///
    /// # Errors
    ///
    /// Propagates `setsockopt` errors.
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)
    }

    /// Installs a per-message [`FaultLayer`] consulted on every round
    /// trip. Connection-breaking faults (`Drop`, `DropReply`,
    /// `Truncate`) shut the real socket down, so later requests on this
    /// transport fail exactly like they would after a genuine reset.
    pub fn set_fault_layer(&mut self, layer: Box<dyn FaultLayer>) {
        self.faults = Some(layer);
    }

    fn read_reply(&mut self) -> Result<Reply, ProtoError> {
        let bytes = read_frame(&mut self.stream)
            .map_err(|e| ProtoError::Channel(e.to_string()))?
            .ok_or_else(|| ProtoError::Channel("server closed connection".into()))?;
        self.metrics.received(bytes.len() as u64);
        let (reply, caps) = Reply::decode_full(Bytes::from(bytes))?;
        if matches!(reply, Reply::Welcome { .. }) {
            self.negotiated = caps.intersect(self.local_caps);
        }
        Ok(reply)
    }
}

impl Transport for TcpTransport {
    fn request(&mut self, req: &Request) -> Result<Reply, ProtoError> {
        let body = match req {
            Request::Hello { .. } => req.encode_caps(self.local_caps),
            _ => req.encode_caps(self.negotiated),
        };
        self.metrics.sent(req, body.len() as u64);
        let action = match &mut self.faults {
            Some(layer) => layer.plan(req, &body),
            None => FaultAction::Deliver,
        };
        let sent: Bytes = match action {
            FaultAction::Deliver => body,
            FaultAction::Delay(d) => {
                std::thread::sleep(d);
                body
            }
            FaultAction::Drop => {
                let _ = self.stream.shutdown(Shutdown::Both);
                return Err(ProtoError::Channel(
                    "injected: connection reset before delivery".into(),
                ));
            }
            FaultAction::DropReply => {
                write_frame(&mut self.stream, &body)
                    .map_err(|e| ProtoError::Channel(e.to_string()))?;
                let _ = self.stream.shutdown(Shutdown::Both);
                return Err(ProtoError::Channel(
                    "injected: connection lost awaiting reply".into(),
                ));
            }
            FaultAction::Corrupt(bytes) => bytes,
            FaultAction::Truncate(n) => {
                // Announce the full frame but deliver only a prefix,
                // then die: the peer observes a torn frame mid-stream.
                let keep = n.min(body.len());
                let announce = (body.len() as u32).to_be_bytes();
                let _ = self
                    .stream
                    .write_all(&announce)
                    .and_then(|()| self.stream.write_all(&body[..keep]))
                    .and_then(|()| self.stream.flush());
                let _ = self.stream.shutdown(Shutdown::Both);
                return Err(ProtoError::Channel("injected: truncated write".into()));
            }
            FaultAction::Duplicate => {
                write_frame(&mut self.stream, &body)
                    .map_err(|e| ProtoError::Channel(e.to_string()))?;
                write_frame(&mut self.stream, &body)
                    .map_err(|e| ProtoError::Channel(e.to_string()))?;
                let first = self.read_reply()?;
                // Drain the duplicate's reply so the stream stays in
                // request/reply sync for the next round trip.
                let _ = read_frame(&mut self.stream);
                return Ok(first);
            }
        };
        write_frame(&mut self.stream, &sent).map_err(|e| ProtoError::Channel(e.to_string()))?;
        self.read_reply()
    }

    fn stats(&self) -> TransportStats {
        self.metrics.view()
    }

    fn reset_stats(&mut self) {
        self.metrics.reset();
    }

    fn bind_registry(&mut self, registry: &Arc<Registry>) {
        self.metrics = TransportMetrics::new(registry);
        if let Some(layer) = &mut self.faults {
            layer.bind_registry(registry);
        }
    }
}

/// A running TCP server loop wrapping a [`Handler`].
///
/// One worker thread per connection, all calling the shared handler
/// concurrently — requests only serialize where the handler's own locks
/// say they must. Dropping the value shuts the listener down and joins
/// its threads.
#[derive(Debug)]
pub struct TcpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

/// Serves one connection until EOF or a write failure.
///
/// A panic escaping the handler is caught here: the worker logs it,
/// counts it (`tcp.worker_panics_total`), answers the offending request
/// with a `Reply::Error`, and keeps serving the connection — one poison
/// request must not silently kill the worker (the pre-catch behavior)
/// or take the accept loop with it.
fn serve_connection(stream: &mut TcpStream, handler: &Arc<dyn Handler>, panics: &Counter) {
    while let Ok(Some(body)) = read_frame(stream) {
        let reply = match catch_unwind(AssertUnwindSafe(|| handler.handle(Bytes::from(body)))) {
            Ok(reply) => reply,
            Err(cause) => {
                panics.inc();
                let msg = cause
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| cause.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "<non-string panic payload>".into());
                eprintln!("iw-tcp: handler panicked while serving a request: {msg}");
                Reply::Error {
                    message: format!("internal server error: request handler panicked: {msg}"),
                }
                .encode()
            }
        };
        if write_frame(stream, &reply).is_err() {
            break;
        }
    }
}

impl TcpServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and serves
    /// `handler` on connection-per-thread, with worker telemetry kept in
    /// a private registry. See [`TcpServer::spawn_with_registry`].
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn spawn(addr: SocketAddr, handler: Arc<dyn Handler>) -> io::Result<TcpServer> {
        TcpServer::spawn_with_registry(addr, handler, &Arc::new(Registry::new()))
    }

    /// Binds `addr` and serves `handler` on connection-per-thread,
    /// homing worker telemetry (`tcp.worker_panics_total`) in `registry`
    /// so a server-side scrape (`Request::Stats` via the handler's own
    /// registry) surfaces transport health alongside server metrics.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn spawn_with_registry(
        addr: SocketAddr,
        handler: Arc<dyn Handler>,
        registry: &Arc<Registry>,
    ) -> io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let panics = registry.counter("tcp.worker_panics_total");
        let accepted = registry.counter("tcp.accepted_total");
        let accept_errors = registry.counter("tcp.accept_errors_total");
        let open = registry.gauge("tcp.open_connections");
        // Register the remaining front-end metrics so a scrape of this
        // front end is shape-compatible with `iw-net`'s (they stay zero
        // here: blocking I/O never stalls a readiness loop and this
        // front end has no admission cap or idle sweep).
        let _ = registry.counter("tcp.rejected_total");
        let _ = registry.counter("tcp.read_stalls_total");
        let _ = registry.counter("tcp.write_stalls_total");
        let _ = registry.counter("tcp.idle_closed_total");
        let accept_thread = std::thread::Builder::new()
            .name("iw-tcp-accept".into())
            .spawn(move || {
                let mut workers = Vec::new();
                let mut accept_errs: u32 = 0;
                loop {
                    match listener.accept() {
                        Ok((mut stream, _)) => {
                            accept_errs = 0;
                            if stop2.load(Ordering::SeqCst) {
                                break;
                            }
                            accepted.inc();
                            open.add(1);
                            // Request/reply framing interacts badly with
                            // Nagle + delayed ACK: the tail segment of a
                            // large reply can stall ~40 ms waiting for the
                            // client's ACK. The client side already
                            // disables Nagle (see `connect`).
                            let _ = stream.set_nodelay(true);
                            let handler = handler.clone();
                            let panics = panics.clone();
                            let open = open.clone();
                            workers.push(std::thread::spawn(move || {
                                serve_connection(&mut stream, &handler, &panics);
                                open.sub(1);
                            }));
                        }
                        Err(e) => {
                            if stop2.load(Ordering::SeqCst) {
                                break;
                            }
                            accept_errors.inc();
                            if is_fd_exhaustion(&e) {
                                // Out of fds: back off, keep serving the
                                // connections we already have, try again.
                                std::thread::sleep(accept_retry_delay(accept_errs));
                                accept_errs = accept_errs.saturating_add(1);
                            }
                        }
                    }
                }
                for w in workers {
                    let _ = w.join();
                }
            })?;
        Ok(TcpServer {
            addr: local,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (with the actual port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock accept with a dummy connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn handler() -> Arc<dyn Handler> {
        Arc::new(|req: Bytes| match Request::decode(req) {
            Ok(Request::Hello { info }) => Reply::welcome(info.len() as u64).encode(),
            _ => Reply::Error {
                message: "unexpected".into(),
            }
            .encode(),
        })
    }

    #[test]
    fn tcp_roundtrip() {
        let server = TcpServer::spawn("127.0.0.1:0".parse().unwrap(), handler()).unwrap();
        let mut t = TcpTransport::connect(server.addr()).unwrap();
        let reply = t
            .request(&Request::Hello {
                info: "abcd".into(),
            })
            .unwrap();
        assert_eq!(reply, Reply::welcome(4));
        assert_eq!(t.stats().requests, 1);
        assert!(t.stats().bytes_sent > 0);
        assert!(t.stats().bytes_received > 0);
    }

    #[test]
    fn multiple_clients_share_one_server() {
        let server = TcpServer::spawn("127.0.0.1:0".parse().unwrap(), handler()).unwrap();
        let threads: Vec<_> = (0..4)
            .map(|i| {
                let addr = server.addr();
                std::thread::spawn(move || {
                    let mut t = TcpTransport::connect(addr).unwrap();
                    for _ in 0..10 {
                        let reply = t
                            .request(&Request::Hello {
                                info: "x".repeat(i + 1),
                            })
                            .unwrap();
                        assert_eq!(reply, Reply::welcome((i + 1) as u64));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
    }

    #[test]
    fn hung_server_times_out_as_channel_error() {
        // A listener that accepts connections but never answers: without
        // read timeouts the client would block in read_frame forever.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let hold = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            std::thread::sleep(Duration::from_secs(2));
            drop(stream);
        });
        let mut t =
            TcpTransport::connect_with_timeout(addr, Some(Duration::from_millis(200))).unwrap();
        let started = std::time::Instant::now();
        let err = t.request(&Request::Hello {
            info: "probe".into(),
        });
        assert!(matches!(err, Err(ProtoError::Channel(_))), "{err:?}");
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "timed out via the socket timeout, not the server's sleep"
        );
        hold.join().unwrap();
    }

    #[test]
    fn worker_panic_is_caught_counted_and_connection_survives() {
        // A poison request (Hello with info "poison") panics the handler.
        let poison: Arc<dyn Handler> = Arc::new(|req: Bytes| match Request::decode(req) {
            Ok(Request::Hello { info }) if info == "poison" => {
                panic!("poison request reached the handler")
            }
            Ok(Request::Hello { info }) => Reply::welcome(info.len() as u64).encode(),
            _ => Reply::Error {
                message: "unexpected".into(),
            }
            .encode(),
        });
        let registry = Arc::new(Registry::new());
        let server =
            TcpServer::spawn_with_registry("127.0.0.1:0".parse().unwrap(), poison, &registry)
                .unwrap();
        let mut t = TcpTransport::connect(server.addr()).unwrap();
        // The poison request is answered with an error, not a dead socket.
        let reply = t
            .request(&Request::Hello {
                info: "poison".into(),
            })
            .unwrap();
        let Reply::Error { message } = reply else {
            panic!("want Error, got {reply:?}");
        };
        assert!(message.contains("panicked"), "{message}");
        assert_eq!(
            registry.snapshot().counter("tcp.worker_panics_total"),
            Some(1)
        );
        // The same connection keeps serving…
        let reply = t.request(&Request::Hello { info: "ok".into() }).unwrap();
        assert_eq!(reply, Reply::welcome(2));
        // …and the accept loop still takes new connections.
        let mut t2 = TcpTransport::connect(server.addr()).unwrap();
        let reply = t2
            .request(&Request::Hello {
                info: "fresh".into(),
            })
            .unwrap();
        assert_eq!(reply, Reply::welcome(5));
        assert_eq!(
            registry.snapshot().counter("tcp.worker_panics_total"),
            Some(1)
        );
    }

    #[test]
    fn server_shutdown_is_clean() {
        let server = TcpServer::spawn("127.0.0.1:0".parse().unwrap(), handler()).unwrap();
        let addr = server.addr();
        drop(server);
        // After drop the port no longer accepts our protocol.
        // (A connect may still succeed briefly on some platforms, but a
        // request must fail.)
        if let Ok(mut t) = TcpTransport::connect(addr) {
            let _ = t.request(&Request::Hello {
                info: String::new(),
            });
        }
    }
}
