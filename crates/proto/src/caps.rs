//! Wire-capability negotiation.
//!
//! Capabilities travel as a single byte appended *after* the encoded
//! Hello request (client → server) and Welcome reply (server → client).
//! Both decoders have always ignored trailing bytes, so the scheme is
//! invisible to old peers: an old client sends no byte and is read as
//! [`PeerCaps::NONE`]; an old server appends no byte to Welcome and the
//! client falls back to v1 likewise. No protocol flag day, no new enum
//! fields — negotiation is pure intersection of advertised bitmasks,
//! and unknown bits are masked off so future capabilities stay free.

use iw_wire::DiffWire;

/// A peer's advertised (or negotiated) wire capabilities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PeerCaps(u8);

/// Bit: the peer decodes the v2 (varint/delta) diff revision.
const DIFF_V2: u8 = 1 << 0;
/// Bit: the peer decodes LZ-compressed v2 diff bodies.
const COMPRESS: u8 = 1 << 1;

impl PeerCaps {
    /// No capabilities — the v1 baseline every peer speaks.
    pub const NONE: PeerCaps = PeerCaps(0);
    /// Everything this build supports.
    pub const ALL: PeerCaps = PeerCaps(DIFF_V2 | COMPRESS);
    /// The v2 revision without the compression codec.
    pub const V2_ONLY: PeerCaps = PeerCaps(DIFF_V2);

    /// Parses a capability byte off the wire, masking unknown bits.
    pub fn from_byte(b: u8) -> PeerCaps {
        PeerCaps(b & (DIFF_V2 | COMPRESS))
    }

    /// The byte to append after a Hello or Welcome.
    pub fn byte(self) -> u8 {
        self.0
    }

    /// Negotiation: the capabilities both sides hold.
    #[must_use]
    pub fn intersect(self, other: PeerCaps) -> PeerCaps {
        PeerCaps(self.0 & other.0)
    }

    /// The diff wire revision these capabilities permit sending.
    pub fn diff_wire(self) -> DiffWire {
        if self.0 & DIFF_V2 != 0 {
            DiffWire::V2 {
                compress: self.0 & COMPRESS != 0,
            }
        } else {
            DiffWire::V1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negotiation_is_intersection_with_unknown_bits_masked() {
        assert_eq!(PeerCaps::ALL.intersect(PeerCaps::NONE), PeerCaps::NONE);
        assert_eq!(
            PeerCaps::ALL.intersect(PeerCaps::V2_ONLY),
            PeerCaps::V2_ONLY
        );
        assert_eq!(PeerCaps::from_byte(0xFF), PeerCaps::ALL);
        assert_eq!(PeerCaps::from_byte(0xFC), PeerCaps::NONE);
    }

    #[test]
    fn caps_map_to_diff_wire() {
        assert_eq!(PeerCaps::NONE.diff_wire(), DiffWire::V1);
        assert_eq!(
            PeerCaps::V2_ONLY.diff_wire(),
            DiffWire::V2 { compress: false }
        );
        assert_eq!(PeerCaps::ALL.diff_wire(), DiffWire::V2 { compress: true });
        assert_eq!(PeerCaps::default(), PeerCaps::NONE);
    }
}
