//! Protocol messages between InterWeave clients and servers.
//!
//! The protocol is request/reply. A client first sends [`Request::Hello`]
//! to obtain a client id (servers keep per-client state for Diff coherence
//! and lock bookkeeping), then opens segments and acquires/releases locks.
//! Lock acquisition piggybacks the coherence check and, when the cached
//! copy is not recent enough, the wire diff that brings it up to date —
//! one round trip does it all, as in the paper.
//!
//! Lock grants are non-blocking at the protocol level: a busy lock yields
//! [`Reply::Busy`] and the client library retries, so a single transport
//! thread can never deadlock behind a queued lock.

use bytes::Bytes;

use iw_telemetry::{HistogramSnapshot, Snapshot};
use iw_wire::codec::{WireError, WireReader, WireWriter};
use iw_wire::diff::{DiffWire, SegmentDiff};

use crate::caps::PeerCaps;
use crate::coherence::Coherence;

/// Lock mode requested by a client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockMode {
    /// Shared reader lock.
    Read,
    /// Exclusive writer lock.
    Write,
}

/// A client→server request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Introduces a client; the reply carries its id.
    Hello {
        /// Human-readable client description (architecture name etc.),
        /// for diagnostics.
        info: String,
    },
    /// Opens (or creates) a segment.
    Open {
        /// Requesting client.
        client: u64,
        /// Segment name (`host/path`).
        segment: String,
    },
    /// Acquires a lock, piggybacking the coherence check.
    Acquire {
        /// Requesting client.
        client: u64,
        /// Segment name.
        segment: String,
        /// Read or write.
        mode: LockMode,
        /// Version of the client's cached copy (0 = nothing cached).
        have_version: u64,
        /// Coherence requirement for read locks.
        coherence: Coherence,
    },
    /// Releases a lock; write releases carry the update diff.
    Release {
        /// Requesting client.
        client: u64,
        /// Segment name.
        segment: String,
        /// `Some(diff)` for a write release that modified the segment.
        diff: Option<SegmentDiff>,
    },
    /// Atomically commits write-lock releases for several segments
    /// (transaction support — the paper's §6 future work). The server
    /// validates every entry (writer lock held, base version current)
    /// before applying any of them.
    Commit {
        /// Requesting client.
        client: u64,
        /// `(segment, diff)` pairs; a `None` diff releases the lock with
        /// no changes.
        entries: Vec<(String, Option<SegmentDiff>)>,
    },
    /// Read-only fetch of an update without locking (used by the
    /// adaptive polling path, and by replica reads).
    Poll {
        /// Requesting client.
        client: u64,
        /// Segment name.
        segment: String,
        /// Version of the client's cached copy.
        have_version: u64,
        /// Coherence requirement.
        coherence: Coherence,
        /// Minimum segment version the answering server must have
        /// reached to serve this poll; a server that is behind answers
        /// [`Reply::NotFresh`] instead of silently serving stale data.
        /// `0` (no floor) is what polls to the primary use — the primary
        /// is by definition current. Replica reads set it to the
        /// coherence predicate's floor (see
        /// `Coherence::replica_floor`), making the staleness bound a
        /// per-request server-side check rather than a client guess.
        floor: u64,
    },
    /// Fetches the server's metrics snapshot (used by `iwstat`).
    Stats {
        /// Requesting client.
        client: u64,
    },
    /// Primary→backup (cluster replication): apply one committed
    /// write-release diff through the backup's normal version chain.
    Replicate {
        /// Segment name.
        segment: String,
        /// The version the diff starts from. Duplicates
        /// `diff.from_version` so a backup can refuse a stale or
        /// inconsistent stream without touching the payload.
        from_version: u64,
        /// The committed diff, exactly as the writer shipped it.
        diff: SegmentDiff,
    },
    /// Primary→backup (cluster replication): install a full segment
    /// image — the catch-up path for backups that join late or fall
    /// behind the diff stream.
    SyncFull {
        /// Segment name.
        segment: String,
        /// Checkpoint-encoded segment image (see
        /// `iw-server::checkpoint`), machine-independent like every
        /// other payload.
        image: Bytes,
    },
    /// Backup→primary (cluster replication): register the sender's
    /// listen address so the primary streams diffs to it.
    AttachBackup {
        /// Address the primary should connect back to.
        addr: String,
    },
    /// Retires a client id: releases every lock it holds and drops its
    /// per-client coherence state. A client that failed over sends this
    /// best-effort with its *old* id — when the "dead" replica was in
    /// fact alive (a transient transport fault), the locks orphaned
    /// under the old id must not outlive the reconnect. A server that
    /// never saw the id treats this as a no-op.
    Goodbye {
        /// The client id to retire.
        client: u64,
    },
    /// Cheap version probe: asks a server for its per-segment version
    /// frontier (no diff payload). Clients use it against the primary to
    /// refresh `best_known` (the Temporal staleness anchor) and against
    /// replicas to refresh routing tables; the primary's reply also
    /// re-advertises the live replica set.
    Frontier {
        /// Requesting client.
        client: u64,
    },
}

impl Request {
    /// Short lowercase names of every request kind, indexed by
    /// [`Request::kind_index`] (used for per-kind transport counters).
    pub const KINDS: [&'static str; 12] = [
        "hello",
        "open",
        "acquire",
        "release",
        "poll",
        "commit",
        "stats",
        "replicate",
        "syncfull",
        "attach",
        "goodbye",
        "frontier",
    ];

    /// Index of this request's kind in [`Request::KINDS`].
    pub fn kind_index(&self) -> usize {
        match self {
            Request::Hello { .. } => 0,
            Request::Open { .. } => 1,
            Request::Acquire { .. } => 2,
            Request::Release { .. } => 3,
            Request::Poll { .. } => 4,
            Request::Commit { .. } => 5,
            Request::Stats { .. } => 6,
            Request::Replicate { .. } => 7,
            Request::SyncFull { .. } => 8,
            Request::AttachBackup { .. } => 9,
            Request::Goodbye { .. } => 10,
            Request::Frontier { .. } => 11,
        }
    }

    /// Short lowercase name of this request's kind.
    pub fn kind(&self) -> &'static str {
        Request::KINDS[self.kind_index()]
    }
}

/// A server→client reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Reply to [`Request::Hello`].
    Welcome {
        /// The id the client must present in subsequent requests.
        client: u64,
        /// Addresses of the live read replicas this server advertises
        /// (cluster primaries only; empty elsewhere). Clients may route
        /// relaxed-coherence reads to these; a pruned backup disappears
        /// from the list, so clients stop routing to it without waiting
        /// for a connect timeout.
        replicas: Vec<String>,
    },
    /// Reply to [`Request::Open`].
    Opened {
        /// Current version of the segment (0 for a fresh segment).
        version: u64,
    },
    /// Lock granted.
    Granted {
        /// Segment version after any piggybacked update.
        version: u64,
        /// Update diff when the cached copy was not recent enough
        /// (`None` = recent enough, keep using it).
        update: Option<SegmentDiff>,
        /// For write locks: the serial the client must use for its next
        /// new block (serials are segment-global).
        next_serial: u32,
        /// For write locks: the serial for the next new type descriptor.
        next_type_serial: u32,
    },
    /// The lock is held incompatibly; retry later.
    Busy,
    /// Reply to [`Request::Release`].
    Released {
        /// The segment version after the release.
        version: u64,
    },
    /// Reply to [`Request::Commit`]: per-entry post-commit versions.
    Committed {
        /// Segment versions in entry order.
        versions: Vec<u64>,
    },
    /// Reply to [`Request::Poll`]: the cached copy is recent enough.
    UpToDate,
    /// Reply to [`Request::Poll`]: an update is needed and included.
    Update {
        /// The update diff.
        diff: SegmentDiff,
    },
    /// Reply to [`Request::Stats`]: the server's metrics snapshot.
    Stats {
        /// Every counter, gauge and histogram the server exposes.
        snapshot: Snapshot,
    },
    /// Reply to [`Request::Replicate`], [`Request::SyncFull`], and
    /// [`Request::AttachBackup`]: the replica's segment version after the
    /// operation (0 for an attach, which names no segment).
    Replicated {
        /// The backup's version of the segment after applying.
        acked_version: u64,
    },
    /// The request failed.
    Error {
        /// Human-readable reason.
        message: String,
    },
    /// The server is at its connection cap and refused this session
    /// (admission control). Unlike [`Reply::Busy`] — a per-lock,
    /// retry-soon condition — `Overloaded` means the whole front end
    /// declined the connection; the server closes it after this reply.
    Overloaded,
    /// A write-path request (write acquire, release-with-diff, commit)
    /// landed on a read replica. The write path never touches backups —
    /// the client must redirect to the primary.
    NotPrimary {
        /// The primary's address, when the replica knows it.
        primary: Option<String>,
    },
    /// Reply to [`Request::Poll`] with a nonzero `floor`: this server's
    /// copy is behind the floor and may not serve the read. Carries the
    /// server's current version so the client refreshes its routing
    /// frontier for free.
    NotFresh {
        /// The answering server's current version of the segment.
        version: u64,
    },
    /// Reply to [`Request::Frontier`].
    Frontier {
        /// Every segment the server holds, with its current version.
        segments: Vec<(String, u64)>,
        /// Live advertised read replicas (primaries only; see
        /// [`Reply::Welcome`]).
        replicas: Vec<String>,
    },
}

impl Request {
    /// Serializes the request into framed wire bytes (v1 diffs, no
    /// capability trailer — the universal form any peer decodes).
    pub fn encode(&self) -> Bytes {
        self.encode_inner(DiffWire::V1, None)
    }

    /// Serializes with negotiated capabilities: embedded diffs use the
    /// revision `caps` permits, and a Hello carries `caps` as its
    /// trailing advertisement byte.
    pub fn encode_caps(&self, caps: PeerCaps) -> Bytes {
        self.encode_inner(caps.diff_wire(), Some(caps))
    }

    fn encode_inner(&self, fmt: DiffWire, trailer: Option<PeerCaps>) -> Bytes {
        // Pre-size the writer for the payload-bearing variants so
        // serializing a large diff or image never regrows the buffer;
        // control messages stay on the default small allocation.
        let cap = match self {
            Request::Release {
                segment,
                diff: Some(d),
                ..
            } => 64 + segment.len() + d.encoded_len_hint(),
            Request::Commit { entries, .. } => {
                64 + entries
                    .iter()
                    .map(|(s, d)| {
                        16 + s.len() + d.as_ref().map_or(0, SegmentDiff::encoded_len_hint)
                    })
                    .sum::<usize>()
            }
            Request::Replicate { segment, diff, .. } => {
                64 + segment.len() + diff.encoded_len_hint()
            }
            Request::SyncFull { segment, image } => 64 + segment.len() + image.len(),
            _ => 0,
        };
        let mut w = if cap > 0 {
            WireWriter::with_capacity(cap)
        } else {
            WireWriter::new()
        };
        match self {
            Request::Hello { info } => {
                w.put_u8(0);
                w.put_str(info);
            }
            Request::Open { client, segment } => {
                w.put_u8(1);
                w.put_u64(*client);
                w.put_str(segment);
            }
            Request::Acquire {
                client,
                segment,
                mode,
                have_version,
                coherence,
            } => {
                w.put_u8(2);
                w.put_u64(*client);
                w.put_str(segment);
                w.put_u8(match mode {
                    LockMode::Read => 0,
                    LockMode::Write => 1,
                });
                w.put_u64(*have_version);
                coherence.encode(&mut w);
            }
            Request::Release {
                client,
                segment,
                diff,
            } => {
                w.put_u8(3);
                w.put_u64(*client);
                w.put_str(segment);
                match diff {
                    None => w.put_u8(0),
                    Some(d) => {
                        w.put_u8(1);
                        w.put_len_bytes(&d.encode_as(fmt));
                    }
                }
            }
            Request::Commit { client, entries } => {
                w.put_u8(5);
                w.put_u64(*client);
                w.put_u32(entries.len() as u32);
                for (segment, diff) in entries {
                    w.put_str(segment);
                    match diff {
                        None => w.put_u8(0),
                        Some(d) => {
                            w.put_u8(1);
                            w.put_len_bytes(&d.encode_as(fmt));
                        }
                    }
                }
            }
            Request::Poll {
                client,
                segment,
                have_version,
                coherence,
                floor,
            } => {
                w.put_u8(4);
                w.put_u64(*client);
                w.put_str(segment);
                w.put_u64(*have_version);
                coherence.encode(&mut w);
                w.put_u64(*floor);
            }
            Request::Stats { client } => {
                w.put_u8(6);
                w.put_u64(*client);
            }
            Request::Replicate {
                segment,
                from_version,
                diff,
            } => {
                w.put_u8(7);
                w.put_str(segment);
                w.put_u64(*from_version);
                w.put_len_bytes(&diff.encode_as(fmt));
            }
            Request::SyncFull { segment, image } => {
                w.put_u8(8);
                w.put_str(segment);
                w.put_len_bytes(image);
            }
            Request::AttachBackup { addr } => {
                w.put_u8(9);
                w.put_str(addr);
            }
            Request::Goodbye { client } => {
                w.put_u8(10);
                w.put_u64(*client);
            }
            Request::Frontier { client } => {
                w.put_u8(11);
                w.put_u64(*client);
            }
        }
        if let (Some(caps), Request::Hello { .. }) = (trailer, self) {
            w.put_u8(caps.byte());
        }
        w.finish()
    }

    /// The session id a request acts for, when it carries one. The
    /// server uses it to look up the connection's negotiated wire
    /// capabilities; replication-plane requests (`Replicate`,
    /// `SyncFull`, `AttachBackup`) and `Hello` itself have none.
    pub fn client_id(&self) -> Option<u64> {
        match self {
            Request::Open { client, .. }
            | Request::Acquire { client, .. }
            | Request::Release { client, .. }
            | Request::Commit { client, .. }
            | Request::Poll { client, .. }
            | Request::Stats { client }
            | Request::Goodbye { client }
            | Request::Frontier { client } => Some(*client),
            Request::Hello { .. }
            | Request::Replicate { .. }
            | Request::SyncFull { .. }
            | Request::AttachBackup { .. } => None,
        }
    }

    /// Decodes a request from wire bytes.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] from malformed input.
    pub fn decode(bytes: Bytes) -> Result<Self, WireError> {
        Ok(Self::decode_full(bytes)?.0)
    }

    /// Decodes a request plus, for a Hello, the client's advertised
    /// capability byte ([`PeerCaps::NONE`] when absent — an old peer).
    ///
    /// # Errors
    ///
    /// Any [`WireError`] from malformed input.
    pub fn decode_full(bytes: Bytes) -> Result<(Self, PeerCaps), WireError> {
        let mut r = WireReader::new(bytes);
        let req = match r.get_u8()? {
            0 => Request::Hello { info: r.get_str()? },
            1 => Request::Open {
                client: r.get_u64()?,
                segment: r.get_str()?,
            },
            2 => {
                let client = r.get_u64()?;
                let segment = r.get_str()?;
                let mode = match r.get_u8()? {
                    0 => LockMode::Read,
                    1 => LockMode::Write,
                    tag => {
                        return Err(WireError::BadTag {
                            what: "lock mode",
                            tag,
                        })
                    }
                };
                let have_version = r.get_u64()?;
                let coherence = Coherence::decode(&mut r)?;
                Request::Acquire {
                    client,
                    segment,
                    mode,
                    have_version,
                    coherence,
                }
            }
            3 => {
                let client = r.get_u64()?;
                let segment = r.get_str()?;
                let diff = match r.get_u8()? {
                    0 => None,
                    1 => {
                        let body = r.get_len_bytes()?;
                        let mut dr = WireReader::new(body);
                        Some(SegmentDiff::decode(&mut dr)?)
                    }
                    tag => {
                        return Err(WireError::BadTag {
                            what: "release diff flag",
                            tag,
                        })
                    }
                };
                Request::Release {
                    client,
                    segment,
                    diff,
                }
            }
            4 => {
                let client = r.get_u64()?;
                let segment = r.get_str()?;
                let have_version = r.get_u64()?;
                let coherence = Coherence::decode(&mut r)?;
                let floor = r.get_u64()?;
                Request::Poll {
                    client,
                    segment,
                    have_version,
                    coherence,
                    floor,
                }
            }
            5 => {
                let client = r.get_u64()?;
                let n = r.get_u32()?;
                if n > 1 << 16 {
                    return Err(WireError::LengthOverflow { len: u64::from(n) });
                }
                let mut entries = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    let segment = r.get_str()?;
                    let diff = match r.get_u8()? {
                        0 => None,
                        1 => {
                            let body = r.get_len_bytes()?;
                            let mut dr = WireReader::new(body);
                            Some(SegmentDiff::decode(&mut dr)?)
                        }
                        tag => {
                            return Err(WireError::BadTag {
                                what: "commit diff flag",
                                tag,
                            })
                        }
                    };
                    entries.push((segment, diff));
                }
                Request::Commit { client, entries }
            }
            6 => Request::Stats {
                client: r.get_u64()?,
            },
            7 => {
                let segment = r.get_str()?;
                let from_version = r.get_u64()?;
                let body = r.get_len_bytes()?;
                let mut dr = WireReader::new(body);
                Request::Replicate {
                    segment,
                    from_version,
                    diff: SegmentDiff::decode(&mut dr)?,
                }
            }
            8 => Request::SyncFull {
                segment: r.get_str()?,
                image: r.get_len_bytes()?,
            },
            9 => Request::AttachBackup { addr: r.get_str()? },
            10 => Request::Goodbye {
                client: r.get_u64()?,
            },
            11 => Request::Frontier {
                client: r.get_u64()?,
            },
            tag => {
                return Err(WireError::BadTag {
                    what: "request",
                    tag,
                })
            }
        };
        let caps = match (&req, r.is_empty()) {
            (Request::Hello { .. }, false) => PeerCaps::from_byte(r.get_u8()?),
            _ => PeerCaps::NONE,
        };
        Ok((req, caps))
    }
}

impl Reply {
    /// A [`Reply::Welcome`] with no advertised replicas — what every
    /// non-clustered server answers.
    pub fn welcome(client: u64) -> Reply {
        Reply::Welcome {
            client,
            replicas: Vec::new(),
        }
    }

    /// Serializes the reply into framed wire bytes (v1 diffs, no
    /// capability trailer — the universal form any peer decodes).
    pub fn encode(&self) -> Bytes {
        self.encode_inner(DiffWire::V1, None)
    }

    /// Serializes with negotiated capabilities: embedded diffs use the
    /// revision `caps` permits, and a Welcome carries `caps` as its
    /// trailing negotiation byte.
    pub fn encode_caps(&self, caps: PeerCaps) -> Bytes {
        self.encode_inner(caps.diff_wire(), Some(caps))
    }

    fn encode_inner(&self, fmt: DiffWire, trailer: Option<PeerCaps>) -> Bytes {
        // As with requests: pre-size for the diff-bearing replies.
        let cap = match self {
            Reply::Granted {
                update: Some(d), ..
            } => 64 + d.encoded_len_hint(),
            Reply::Update { diff } => 64 + diff.encoded_len_hint(),
            _ => 0,
        };
        let mut w = if cap > 0 {
            WireWriter::with_capacity(cap)
        } else {
            WireWriter::new()
        };
        match self {
            Reply::Welcome { client, replicas } => {
                w.put_u8(0);
                w.put_u64(*client);
                w.put_u32(replicas.len() as u32);
                for addr in replicas {
                    w.put_str(addr);
                }
            }
            Reply::Opened { version } => {
                w.put_u8(1);
                w.put_u64(*version);
            }
            Reply::Granted {
                version,
                update,
                next_serial,
                next_type_serial,
            } => {
                w.put_u8(2);
                w.put_u64(*version);
                match update {
                    None => w.put_u8(0),
                    Some(d) => {
                        w.put_u8(1);
                        w.put_len_bytes(&d.encode_as(fmt));
                    }
                }
                w.put_u32(*next_serial);
                w.put_u32(*next_type_serial);
            }
            Reply::Busy => w.put_u8(3),
            Reply::Released { version } => {
                w.put_u8(4);
                w.put_u64(*version);
            }
            Reply::UpToDate => w.put_u8(5),
            Reply::Committed { versions } => {
                w.put_u8(8);
                w.put_u32(versions.len() as u32);
                for v in versions {
                    w.put_u64(*v);
                }
            }
            Reply::Update { diff } => {
                w.put_u8(6);
                w.put_len_bytes(&diff.encode_as(fmt));
            }
            Reply::Error { message } => {
                w.put_u8(7);
                w.put_str(message);
            }
            Reply::Stats { snapshot } => {
                w.put_u8(9);
                encode_snapshot(&mut w, snapshot);
            }
            Reply::Replicated { acked_version } => {
                w.put_u8(10);
                w.put_u64(*acked_version);
            }
            Reply::Overloaded => w.put_u8(11),
            Reply::NotPrimary { primary } => {
                w.put_u8(12);
                match primary {
                    None => w.put_u8(0),
                    Some(addr) => {
                        w.put_u8(1);
                        w.put_str(addr);
                    }
                }
            }
            Reply::NotFresh { version } => {
                w.put_u8(13);
                w.put_u64(*version);
            }
            Reply::Frontier { segments, replicas } => {
                w.put_u8(14);
                w.put_u32(segments.len() as u32);
                for (name, version) in segments {
                    w.put_str(name);
                    w.put_u64(*version);
                }
                w.put_u32(replicas.len() as u32);
                for addr in replicas {
                    w.put_str(addr);
                }
            }
        }
        if let (Some(caps), Reply::Welcome { .. }) = (trailer, self) {
            w.put_u8(caps.byte());
        }
        w.finish()
    }

    /// Decodes a reply from wire bytes.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] from malformed input.
    pub fn decode(bytes: Bytes) -> Result<Self, WireError> {
        Ok(Self::decode_full(bytes)?.0)
    }

    /// Decodes a reply plus, for a Welcome, the server's negotiated
    /// capability byte ([`PeerCaps::NONE`] when absent — an old peer).
    ///
    /// # Errors
    ///
    /// Any [`WireError`] from malformed input.
    pub fn decode_full(bytes: Bytes) -> Result<(Self, PeerCaps), WireError> {
        let mut r = WireReader::new(bytes);
        let reply = match r.get_u8()? {
            0 => {
                let client = r.get_u64()?;
                let n = checked_len(r.get_u32()?)?;
                let mut replicas = Vec::with_capacity(n);
                for _ in 0..n {
                    replicas.push(r.get_str()?);
                }
                Reply::Welcome { client, replicas }
            }
            1 => Reply::Opened {
                version: r.get_u64()?,
            },
            2 => {
                let version = r.get_u64()?;
                let update = match r.get_u8()? {
                    0 => None,
                    1 => {
                        let body = r.get_len_bytes()?;
                        let mut dr = WireReader::new(body);
                        Some(SegmentDiff::decode(&mut dr)?)
                    }
                    tag => {
                        return Err(WireError::BadTag {
                            what: "grant diff flag",
                            tag,
                        })
                    }
                };
                let next_serial = r.get_u32()?;
                let next_type_serial = r.get_u32()?;
                Reply::Granted {
                    version,
                    update,
                    next_serial,
                    next_type_serial,
                }
            }
            3 => Reply::Busy,
            4 => Reply::Released {
                version: r.get_u64()?,
            },
            5 => Reply::UpToDate,
            6 => {
                let body = r.get_len_bytes()?;
                let mut dr = WireReader::new(body);
                Reply::Update {
                    diff: SegmentDiff::decode(&mut dr)?,
                }
            }
            7 => Reply::Error {
                message: r.get_str()?,
            },
            8 => {
                let n = r.get_u32()?;
                if n > 1 << 16 {
                    return Err(WireError::LengthOverflow { len: u64::from(n) });
                }
                let mut versions = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    versions.push(r.get_u64()?);
                }
                Reply::Committed { versions }
            }
            9 => Reply::Stats {
                snapshot: decode_snapshot(&mut r)?,
            },
            10 => Reply::Replicated {
                acked_version: r.get_u64()?,
            },
            11 => Reply::Overloaded,
            12 => {
                let primary = match r.get_u8()? {
                    0 => None,
                    1 => Some(r.get_str()?),
                    tag => {
                        return Err(WireError::BadTag {
                            what: "not-primary addr flag",
                            tag,
                        })
                    }
                };
                Reply::NotPrimary { primary }
            }
            13 => Reply::NotFresh {
                version: r.get_u64()?,
            },
            14 => {
                let n = checked_len(r.get_u32()?)?;
                let mut segments = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = r.get_str()?;
                    segments.push((name, r.get_u64()?));
                }
                let n = checked_len(r.get_u32()?)?;
                let mut replicas = Vec::with_capacity(n);
                for _ in 0..n {
                    replicas.push(r.get_str()?);
                }
                Reply::Frontier { segments, replicas }
            }
            tag => return Err(WireError::BadTag { what: "reply", tag }),
        };
        let caps = match (&reply, r.is_empty()) {
            (Reply::Welcome { .. }, false) => PeerCaps::from_byte(r.get_u8()?),
            _ => PeerCaps::NONE,
        };
        Ok((reply, caps))
    }
}

/// Most entries a decoded snapshot section may carry (names, buckets…):
/// a sanity cap against hostile lengths, far above any real registry.
const SNAPSHOT_CAP: u32 = 1 << 16;

fn checked_len(n: u32) -> Result<usize, WireError> {
    if n > SNAPSHOT_CAP {
        return Err(WireError::LengthOverflow { len: u64::from(n) });
    }
    Ok(n as usize)
}

fn encode_snapshot(w: &mut WireWriter, snap: &Snapshot) {
    w.put_u32(snap.counters.len() as u32);
    for (name, value) in &snap.counters {
        w.put_str(name);
        w.put_u64(*value);
    }
    w.put_u32(snap.gauges.len() as u32);
    for (name, value) in &snap.gauges {
        w.put_str(name);
        w.put_i64(*value);
    }
    w.put_u32(snap.histograms.len() as u32);
    for (name, h) in &snap.histograms {
        w.put_str(name);
        w.put_u32(h.bounds.len() as u32);
        for b in &h.bounds {
            w.put_u64(*b);
        }
        w.put_u32(h.counts.len() as u32);
        for c in &h.counts {
            w.put_u64(*c);
        }
        w.put_u64(h.sum);
        w.put_u64(h.count);
    }
}

fn decode_snapshot(r: &mut WireReader) -> Result<Snapshot, WireError> {
    let mut snap = Snapshot::default();
    let n = checked_len(r.get_u32()?)?;
    snap.counters.reserve(n);
    for _ in 0..n {
        let name = r.get_str()?;
        snap.counters.push((name, r.get_u64()?));
    }
    let n = checked_len(r.get_u32()?)?;
    snap.gauges.reserve(n);
    for _ in 0..n {
        let name = r.get_str()?;
        snap.gauges.push((name, r.get_i64()?));
    }
    let n = checked_len(r.get_u32()?)?;
    snap.histograms.reserve(n);
    for _ in 0..n {
        let name = r.get_str()?;
        let mut h = HistogramSnapshot::default();
        let nb = checked_len(r.get_u32()?)?;
        h.bounds.reserve(nb);
        for _ in 0..nb {
            h.bounds.push(r.get_u64()?);
        }
        let nc = checked_len(r.get_u32()?)?;
        h.counts.reserve(nc);
        for _ in 0..nc {
            h.counts.push(r.get_u64()?);
        }
        h.sum = r.get_u64()?;
        h.count = r.get_u64()?;
        snap.histograms.push((name, h));
    }
    Ok(snap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iw_wire::diff::{BlockDiff, DiffRun};

    fn sample_diff() -> SegmentDiff {
        SegmentDiff {
            from_version: 1,
            to_version: 2,
            block_diffs: vec![BlockDiff {
                serial: 0,
                runs: vec![DiffRun {
                    start: 2,
                    count: 1,
                    data: Bytes::from_static(&[0, 0, 0, 5]),
                }],
            }],
            ..Default::default()
        }
    }

    #[test]
    fn requests_roundtrip() {
        let reqs = [
            Request::Hello {
                info: "x86 test client".into(),
            },
            Request::Open {
                client: 7,
                segment: "h/s".into(),
            },
            Request::Acquire {
                client: 7,
                segment: "h/s".into(),
                mode: LockMode::Write,
                have_version: 3,
                coherence: Coherence::Delta(2),
            },
            Request::Release {
                client: 7,
                segment: "h/s".into(),
                diff: None,
            },
            Request::Release {
                client: 7,
                segment: "h/s".into(),
                diff: Some(sample_diff()),
            },
            Request::Poll {
                client: 7,
                segment: "h/s".into(),
                have_version: 1,
                coherence: Coherence::Diff(100),
                floor: 4,
            },
            Request::Replicate {
                segment: "h/s".into(),
                from_version: 1,
                diff: sample_diff(),
            },
            Request::SyncFull {
                segment: "h/s".into(),
                image: Bytes::from_static(b"IWCK-image-bytes"),
            },
            Request::AttachBackup {
                addr: "127.0.0.1:7475".into(),
            },
            Request::Goodbye { client: 7 },
            Request::Frontier { client: 7 },
        ];
        for req in reqs {
            assert_eq!(Request::decode(req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn replies_roundtrip() {
        let replies = [
            Reply::Welcome {
                client: 9,
                replicas: vec![],
            },
            Reply::Welcome {
                client: 9,
                replicas: vec!["127.0.0.1:7475".into(), "127.0.0.1:7476".into()],
            },
            Reply::Opened { version: 4 },
            Reply::Granted {
                version: 5,
                update: Some(sample_diff()),
                next_serial: 17,
                next_type_serial: 3,
            },
            Reply::Granted {
                version: 5,
                update: None,
                next_serial: 0,
                next_type_serial: 0,
            },
            Reply::Busy,
            Reply::Released { version: 6 },
            Reply::UpToDate,
            Reply::Update {
                diff: sample_diff(),
            },
            Reply::Error {
                message: "no such segment".into(),
            },
            Reply::Replicated { acked_version: 12 },
            Reply::Overloaded,
            Reply::NotPrimary { primary: None },
            Reply::NotPrimary {
                primary: Some("127.0.0.1:7474".into()),
            },
            Reply::NotFresh { version: 17 },
            Reply::Frontier {
                segments: vec![],
                replicas: vec![],
            },
            Reply::Frontier {
                segments: vec![("h/a".into(), 3), ("h/b".into(), 0)],
                replicas: vec!["127.0.0.1:7475".into()],
            },
        ];
        for reply in replies {
            assert_eq!(Reply::decode(reply.encode()).unwrap(), reply);
        }
    }

    #[test]
    fn commit_roundtrips() {
        let req = Request::Commit {
            client: 3,
            entries: vec![("a/b".into(), Some(sample_diff())), ("c/d".into(), None)],
        };
        assert_eq!(Request::decode(req.encode()).unwrap(), req);
        let reply = Reply::Committed {
            versions: vec![4, 9],
        };
        assert_eq!(Reply::decode(reply.encode()).unwrap(), reply);
    }

    #[test]
    fn stats_roundtrip() {
        let req = Request::Stats { client: 42 };
        assert_eq!(Request::decode(req.encode()).unwrap(), req);

        let snapshot = Snapshot {
            counters: vec![
                ("server.diff_cache.hits_total".into(), 17),
                ("server.requests_total".into(), 0),
            ],
            gauges: vec![("server.lock.queue_depth".into(), -3)],
            histograms: vec![(
                "server.checkpoint_us".into(),
                HistogramSnapshot {
                    bounds: vec![1, 2, 4, 8],
                    counts: vec![0, 1, 2, 0, 5],
                    sum: 99,
                    count: 8,
                },
            )],
        };
        let reply = Reply::Stats { snapshot };
        assert_eq!(Reply::decode(reply.encode()).unwrap(), reply);

        let empty = Reply::Stats {
            snapshot: Snapshot::default(),
        };
        assert_eq!(Reply::decode(empty.encode()).unwrap(), empty);
    }

    #[test]
    fn oversized_snapshot_rejected() {
        let mut w = WireWriter::new();
        w.put_u8(9); // Reply::Stats
        w.put_u32(u32::MAX); // hostile counter count
        assert!(matches!(
            Reply::decode(w.finish()),
            Err(WireError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn request_kinds_cover_every_variant() {
        let reqs = [
            Request::Hello {
                info: String::new(),
            },
            Request::Open {
                client: 0,
                segment: "s".into(),
            },
            Request::Acquire {
                client: 0,
                segment: "s".into(),
                mode: LockMode::Read,
                have_version: 0,
                coherence: Coherence::Full,
            },
            Request::Release {
                client: 0,
                segment: "s".into(),
                diff: None,
            },
            Request::Poll {
                client: 0,
                segment: "s".into(),
                have_version: 0,
                coherence: Coherence::Full,
                floor: 0,
            },
            Request::Commit {
                client: 0,
                entries: vec![],
            },
            Request::Stats { client: 0 },
            Request::Replicate {
                segment: "s".into(),
                from_version: 0,
                diff: SegmentDiff::default(),
            },
            Request::SyncFull {
                segment: "s".into(),
                image: Bytes::new(),
            },
            Request::AttachBackup { addr: "a".into() },
            Request::Goodbye { client: 0 },
            Request::Frontier { client: 0 },
        ];
        let mut seen = std::collections::HashSet::new();
        for req in reqs {
            assert_eq!(Request::KINDS[req.kind_index()], req.kind());
            assert!(seen.insert(req.kind_index()), "duplicate kind index");
        }
        assert_eq!(seen.len(), Request::KINDS.len());
    }

    #[test]
    fn garbage_rejected() {
        assert!(Request::decode(Bytes::from_static(&[0xFF])).is_err());
        assert!(Reply::decode(Bytes::from_static(&[0xEE])).is_err());
        assert!(Request::decode(Bytes::new()).is_err());
    }

    #[test]
    fn bad_lock_mode_rejected() {
        let mut w = WireWriter::new();
        w.put_u8(2); // Acquire
        w.put_u64(1);
        w.put_str("s");
        w.put_u8(7); // invalid mode
        assert!(matches!(
            Request::decode(w.finish()),
            Err(WireError::BadTag {
                what: "lock mode",
                ..
            })
        ));
    }
}
