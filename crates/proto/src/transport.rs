//! Transports carrying protocol messages, with byte accounting.
//!
//! All transports move *encoded* messages, even the in-process loopback,
//! so the byte counters reflect exactly what would cross a network. The
//! bandwidth results (paper Figure 7) are computed from these counters.

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use bytes::Bytes;
use iw_telemetry::{Counter, Registry};

use crate::caps::PeerCaps;
use crate::msg::{Reply, Request};

/// Errors raised by transports and protocol handling.
#[derive(Debug)]
pub enum ProtoError {
    /// A message failed to encode or decode.
    Wire(iw_wire::codec::WireError),
    /// The underlying channel failed (connection reset, handler died…).
    Channel(String),
    /// The server reported an error.
    Server(String),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Wire(e) => write!(f, "wire format error: {e}"),
            ProtoError::Channel(m) => write!(f, "transport failure: {m}"),
            ProtoError::Server(m) => write!(f, "server error: {m}"),
        }
    }
}

impl Error for ProtoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ProtoError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<iw_wire::codec::WireError> for ProtoError {
    fn from(e: iw_wire::codec::WireError) -> Self {
        ProtoError::Wire(e)
    }
}

/// Byte and message counters for a transport.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Bytes sent (requests).
    pub bytes_sent: u64,
    /// Bytes received (replies).
    pub bytes_received: u64,
    /// Number of round trips.
    pub requests: u64,
}

impl TransportStats {
    /// Total bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_sent + self.bytes_received
    }
}

/// Pre-resolved traffic counters living in a [`Registry`].
///
/// A transport starts with a private registry; [`Transport::bind_registry`]
/// re-homes the counters into a shared one (typically the session's) so a
/// single scrape sees traffic alongside the client metrics. Names:
/// `proto.requests_total`, `proto.bytes_sent_total`,
/// `proto.bytes_received_total`, and per message kind
/// `proto.req.<kind>_total` / `proto.req.<kind>_bytes_total`.
#[derive(Debug)]
pub(crate) struct TransportMetrics {
    requests: Arc<Counter>,
    bytes_sent: Arc<Counter>,
    bytes_received: Arc<Counter>,
    per_kind: Vec<PerKind>,
}

#[derive(Debug)]
struct PerKind {
    count: Arc<Counter>,
    bytes: Arc<Counter>,
}

impl TransportMetrics {
    pub fn new(registry: &Arc<Registry>) -> Self {
        let per_kind = Request::KINDS
            .iter()
            .map(|k| PerKind {
                count: registry.counter(&format!("proto.req.{k}_total")),
                bytes: registry.counter(&format!("proto.req.{k}_bytes_total")),
            })
            .collect();
        TransportMetrics {
            requests: registry.counter("proto.requests_total"),
            bytes_sent: registry.counter("proto.bytes_sent_total"),
            bytes_received: registry.counter("proto.bytes_received_total"),
            per_kind,
        }
    }

    /// Accounts the request leg of one round trip.
    pub fn sent(&self, req: &Request, bytes: u64) {
        self.requests.inc();
        self.bytes_sent.add(bytes);
        let k = &self.per_kind[req.kind_index()];
        k.count.inc();
        k.bytes.add(bytes);
    }

    /// Accounts the reply leg of one round trip.
    pub fn received(&self, bytes: u64) {
        self.bytes_received.add(bytes);
    }

    /// The aggregate counters as a plain [`TransportStats`] value.
    pub fn view(&self) -> TransportStats {
        TransportStats {
            bytes_sent: self.bytes_sent.get(),
            bytes_received: self.bytes_received.get(),
            requests: self.requests.get(),
        }
    }

    /// Zeroes every counter (between experiment phases).
    pub fn reset(&self) {
        self.requests.reset();
        self.bytes_sent.reset();
        self.bytes_received.reset();
        for k in &self.per_kind {
            k.count.reset();
            k.bytes.reset();
        }
    }
}

impl Default for TransportMetrics {
    fn default() -> Self {
        TransportMetrics::new(&Arc::new(Registry::default()))
    }
}

/// A synchronous request/reply transport to one InterWeave server.
///
/// Implementations must count encoded bytes in [`Transport::stats`].
pub trait Transport: Send {
    /// Performs one round trip.
    ///
    /// # Errors
    ///
    /// [`ProtoError::Channel`] on transport failure, [`ProtoError::Wire`]
    /// on undecodable replies.
    fn request(&mut self, req: &Request) -> Result<Reply, ProtoError>;

    /// Cumulative traffic counters.
    fn stats(&self) -> TransportStats;

    /// Resets the traffic counters (between experiment phases).
    fn reset_stats(&mut self);

    /// Re-homes the transport's traffic counters into `registry`, so one
    /// scrape covers transport and application metrics together. Call
    /// before traffic flows: counts accumulated earlier stay behind in
    /// the private registry. Default: no-op for transports that keep no
    /// counters.
    fn bind_registry(&mut self, _registry: &Arc<Registry>) {}
}

/// A message handler: something that can answer encoded requests with
/// encoded replies (in practice, an `iw-server` instance).
///
/// `handle` takes `&self`: handlers are internally synchronized, so a
/// multi-threaded transport front-end (one thread per TCP connection,
/// or many loopback clients) calls straight into the handler with no
/// global serialization. Requests touching disjoint server state run
/// fully in parallel; what still excludes what is the handler's own
/// (fine-grained) locking decision.
pub trait Handler: Send + Sync {
    /// Handles one encoded request, returning the encoded reply.
    fn handle(&self, request: Bytes) -> Bytes;
}

impl<F: Fn(Bytes) -> Bytes + Send + Sync> Handler for F {
    fn handle(&self, request: Bytes) -> Bytes {
        self(request)
    }
}

/// The fate a [`FaultLayer`] chose for one request leg.
///
/// Every variant corresponds to a failure a real network can produce;
/// the transport wearing the layer acts the decision out so the rest of
/// the system sees exactly what it would see in production.
#[derive(Debug)]
pub enum FaultAction {
    /// Pass the message through untouched.
    Deliver,
    /// Sleep, then deliver normally (latency, head-of-line blocking).
    Delay(std::time::Duration),
    /// Never deliver; fail the round trip like a reset connection.
    Drop,
    /// Deliver the request but lose the reply — the connection died
    /// after the server acted, the hardest case for exactly-once
    /// assumptions.
    DropReply,
    /// Deliver these bytes instead of the encoded request (corruption
    /// in flight; the reply path is left intact).
    Corrupt(Bytes),
    /// Partial write: the peer observes only the first `n` encoded
    /// bytes of a frame that announced more, and the caller sees a
    /// channel error (a torn frame from a mid-stream death).
    Truncate(usize),
    /// Deliver the request twice; the first reply wins (retry storms,
    /// at-least-once delivery layers).
    Duplicate,
}

/// A per-message fault-injection layer any [`Transport`] can wear.
///
/// The layer is consulted once per round trip with the decoded request
/// and its encoded bytes, and returns the [`FaultAction`] the transport
/// must act out. Implementations live in `iw-faults` (seeded PRNG plus
/// scripted schedules); transports carry `Option<Box<dyn FaultLayer>>`
/// so the default configuration pays nothing.
pub trait FaultLayer: Send {
    /// Decides the fate of one request leg.
    fn plan(&mut self, req: &Request, encoded: &Bytes) -> FaultAction;

    /// Re-homes any telemetry counters the layer keeps (same contract
    /// as [`Transport::bind_registry`]). Default: no-op.
    fn bind_registry(&mut self, _registry: &Arc<Registry>) {}
}

/// An in-process loopback transport: requests are encoded, handed to a
/// shared [`Handler`], and the encoded reply is decoded — byte-for-byte
/// what a socket would carry, without the socket.
///
/// Cloning produces another client connection to the same handler.
/// Concurrent connections invoke the handler concurrently, exactly like
/// per-connection TCP worker threads.
pub struct Loopback {
    handler: Arc<dyn Handler>,
    metrics: TransportMetrics,
    /// Round trips attempted on this connection (drives fault injection;
    /// unlike the metrics counters, never shared with other connections).
    attempts: u64,
    /// Optional fault injection: drop every Nth request (for failure
    /// tests). 0 = disabled.
    drop_every: u64,
    /// Optional per-message fault layer (see `iw-faults`).
    faults: Option<Box<dyn FaultLayer>>,
    /// Capabilities this client advertises on Hello.
    local_caps: PeerCaps,
    /// Capabilities negotiated with the server (Welcome ∩ local); v1
    /// until the first Welcome proves the peer speaks better.
    negotiated: PeerCaps,
}

impl fmt::Debug for Loopback {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Loopback")
            .field("stats", &self.stats())
            .finish()
    }
}

impl Loopback {
    /// Wraps a handler.
    pub fn new(handler: Arc<dyn Handler>) -> Self {
        Loopback {
            handler,
            metrics: TransportMetrics::default(),
            attempts: 0,
            drop_every: 0,
            faults: None,
            local_caps: PeerCaps::ALL,
            negotiated: PeerCaps::NONE,
        }
    }

    /// Returns a second connection to the same handler (its own counters).
    /// The new connection inherits the advertised capabilities but must
    /// run its own Hello to negotiate them.
    pub fn another(&self) -> Self {
        let mut t = Loopback::new(self.handler.clone());
        t.local_caps = self.local_caps;
        t
    }

    /// Caps what this client advertises on Hello ([`PeerCaps::NONE`]
    /// simulates a pre-v2 client against a modern server).
    pub fn set_local_caps(&mut self, caps: PeerCaps) {
        self.local_caps = caps;
        self.negotiated = self.negotiated.intersect(caps);
    }

    /// The capabilities negotiated with the server so far.
    pub fn negotiated_caps(&self) -> PeerCaps {
        self.negotiated
    }

    /// Decodes a reply, adopting the capability trailer a Welcome
    /// carries (intersected with our own — never more than we speak).
    fn accept(&mut self, reply_bytes: Bytes) -> Result<Reply, ProtoError> {
        let (reply, caps) = Reply::decode_full(reply_bytes)?;
        if matches!(reply, Reply::Welcome { .. }) {
            self.negotiated = caps.intersect(self.local_caps);
        }
        Ok(reply)
    }

    /// Enables fault injection: every `n`-th request is dropped and
    /// surfaces as a channel error, as a lost TCP connection would.
    /// (The crude predecessor of [`Loopback::set_fault_layer`]; kept for
    /// tests that only need an unconditional periodic drop.)
    pub fn drop_every(&mut self, n: u64) {
        self.drop_every = n;
    }

    /// Installs a per-message [`FaultLayer`] consulted on every round
    /// trip (see `iw-faults` for the seeded implementation).
    pub fn set_fault_layer(&mut self, layer: Box<dyn FaultLayer>) {
        self.faults = Some(layer);
    }
}

impl Transport for Loopback {
    fn request(&mut self, req: &Request) -> Result<Reply, ProtoError> {
        // Hello advertises everything we speak; all other traffic uses
        // whatever the server's Welcome agreed to (v1 until then).
        let encoded = match req {
            Request::Hello { .. } => req.encode_caps(self.local_caps),
            _ => req.encode_caps(self.negotiated),
        };
        self.attempts += 1;
        self.metrics.sent(req, encoded.len() as u64);
        if self.drop_every != 0 && self.attempts.is_multiple_of(self.drop_every) {
            return Err(ProtoError::Channel("injected message drop".into()));
        }
        let action = match &mut self.faults {
            Some(layer) => layer.plan(req, &encoded),
            None => FaultAction::Deliver,
        };
        let delivered = match action {
            FaultAction::Deliver => encoded,
            FaultAction::Delay(d) => {
                std::thread::sleep(d);
                encoded
            }
            FaultAction::Drop => {
                return Err(ProtoError::Channel(
                    "injected: connection reset before delivery".into(),
                ));
            }
            FaultAction::DropReply => {
                let _ = self.handler.handle(encoded);
                return Err(ProtoError::Channel(
                    "injected: connection lost awaiting reply".into(),
                ));
            }
            FaultAction::Corrupt(bytes) => bytes,
            FaultAction::Truncate(n) => {
                // The handler observes the torn prefix (as a TCP peer
                // would before the connection died); the caller only
                // learns the write failed.
                let keep = n.min(encoded.len());
                let _ = self.handler.handle(encoded.slice(0..keep));
                return Err(ProtoError::Channel("injected: truncated write".into()));
            }
            FaultAction::Duplicate => {
                let first = self.handler.handle(encoded.clone());
                let _ = self.handler.handle(encoded);
                self.metrics.received(first.len() as u64);
                return self.accept(first);
            }
        };
        let reply_bytes = self.handler.handle(delivered);
        self.metrics.received(reply_bytes.len() as u64);
        self.accept(reply_bytes)
    }

    fn stats(&self) -> TransportStats {
        self.metrics.view()
    }

    fn reset_stats(&mut self) {
        self.metrics.reset();
    }

    fn bind_registry(&mut self, registry: &Arc<Registry>) {
        self.metrics = TransportMetrics::new(registry);
        if let Some(layer) = &mut self.faults {
            layer.bind_registry(registry);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_handler() -> Arc<dyn Handler> {
        Arc::new(|req: Bytes| {
            // Parrot a Welcome whose id is the request length.
            Reply::Welcome {
                client: req.len() as u64,
                replicas: vec![],
            }
            .encode()
        })
    }

    #[test]
    fn loopback_counts_encoded_bytes() {
        let mut t = Loopback::new(echo_handler());
        let req = Request::Hello { info: "abc".into() };
        // A Hello leaves the transport with the capability trailer on.
        let expect_len = req.encode_caps(PeerCaps::ALL).len() as u64;
        let reply = t.request(&req).unwrap();
        assert_eq!(
            reply,
            Reply::Welcome {
                client: expect_len,
                replicas: vec![]
            }
        );
        let s = t.stats();
        assert_eq!(s.requests, 1);
        assert_eq!(s.bytes_sent, expect_len);
        assert!(s.bytes_received > 0);
        assert_eq!(s.total_bytes(), s.bytes_sent + s.bytes_received);
    }

    #[test]
    fn reset_clears_counters() {
        let mut t = Loopback::new(echo_handler());
        t.request(&Request::Hello {
            info: String::new(),
        })
        .unwrap();
        t.reset_stats();
        assert_eq!(t.stats(), TransportStats::default());
    }

    #[test]
    fn cloned_connections_share_handler_not_stats() {
        let mut a = Loopback::new(echo_handler());
        let mut b = a.another();
        a.request(&Request::Hello { info: "x".into() }).unwrap();
        a.request(&Request::Hello { info: "x".into() }).unwrap();
        b.request(&Request::Hello { info: "x".into() }).unwrap();
        assert_eq!(a.stats().requests, 2);
        assert_eq!(b.stats().requests, 1);
    }

    #[test]
    fn fault_injection_drops_requests() {
        let mut t = Loopback::new(echo_handler());
        t.drop_every(2);
        assert!(t
            .request(&Request::Hello {
                info: String::new()
            })
            .is_ok());
        assert!(matches!(
            t.request(&Request::Hello {
                info: String::new()
            }),
            Err(ProtoError::Channel(_))
        ));
        assert!(t
            .request(&Request::Hello {
                info: String::new()
            })
            .is_ok());
    }

    #[test]
    fn fault_layer_scripts_per_message_actions() {
        /// Deterministic script: drop the 2nd leg, duplicate the 4th,
        /// deliver everything else.
        struct Script {
            n: u64,
        }
        impl FaultLayer for Script {
            fn plan(&mut self, _req: &Request, _encoded: &Bytes) -> FaultAction {
                self.n += 1;
                match self.n {
                    2 => FaultAction::Drop,
                    4 => FaultAction::Duplicate,
                    _ => FaultAction::Deliver,
                }
            }
        }
        let mut t = Loopback::new(echo_handler());
        t.set_fault_layer(Box::new(Script { n: 0 }));
        let hello = Request::Hello {
            info: String::new(),
        };
        assert!(t.request(&hello).is_ok());
        assert!(matches!(t.request(&hello), Err(ProtoError::Channel(_))));
        assert!(t.request(&hello).is_ok());
        // The duplicate leg still yields exactly one reply to the caller.
        assert!(t.request(&hello).is_ok());
        assert_eq!(t.stats().requests, 4);
    }

    #[test]
    fn undecodable_reply_is_wire_error() {
        let garbage: Arc<dyn Handler> = Arc::new(|_req: Bytes| Bytes::from_static(&[0xFF, 0x00]));
        let mut t = Loopback::new(garbage);
        assert!(matches!(
            t.request(&Request::Hello {
                info: String::new()
            }),
            Err(ProtoError::Wire(_))
        ));
    }

    #[test]
    fn proto_error_display_and_source() {
        let e = ProtoError::Server("nope".into());
        assert!(e.to_string().contains("nope"));
        assert!(e.source().is_none());
        let w = ProtoError::Wire(iw_wire::codec::WireError::InvalidUtf8);
        assert!(w.source().is_some());
    }
}
