//! Property tests for protocol message codecs and TCP framing.

use bytes::Bytes;
use iw_proto::coherence::Coherence;
use iw_proto::msg::{LockMode, Reply, Request};
use iw_telemetry::{HistogramSnapshot, Snapshot};
use iw_wire::diff::{BlockDiff, DiffRun, SegmentDiff};
use proptest::prelude::*;

fn arb_coherence() -> impl Strategy<Value = Coherence> {
    prop_oneof![
        Just(Coherence::Full),
        any::<u32>().prop_map(Coherence::Delta),
        any::<u64>().prop_map(Coherence::Temporal),
        any::<u32>().prop_map(Coherence::Diff),
    ]
}

fn arb_diff() -> impl Strategy<Value = SegmentDiff> {
    (
        any::<u64>(),
        prop::collection::vec((any::<u32>(), 0u64..1000, 1u64..8), 0..4),
        prop::collection::vec(any::<u8>(), 0..16),
    )
        .prop_map(|(from, runs, payload)| SegmentDiff {
            from_version: from,
            to_version: from.wrapping_add(1),
            block_diffs: runs
                .into_iter()
                .map(|(serial, start, count)| BlockDiff {
                    serial,
                    runs: vec![DiffRun {
                        start,
                        count,
                        data: Bytes::from(payload.clone()),
                    }],
                })
                .collect(),
            ..Default::default()
        })
}

fn arb_histogram_snapshot() -> impl Strategy<Value = HistogramSnapshot> {
    (
        prop::collection::vec(any::<u64>(), 0..5),
        prop::collection::vec(any::<u64>(), 0..6),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(|(bounds, counts, sum, count)| HistogramSnapshot {
            bounds,
            counts,
            sum,
            count,
        })
}

fn arb_snapshot() -> impl Strategy<Value = Snapshot> {
    (
        prop::collection::vec(("[a-z._/]{1,24}", any::<u64>()), 0..6),
        prop::collection::vec(("[a-z._/]{1,24}", any::<i64>()), 0..4),
        prop::collection::vec(("[a-z._/]{1,24}", arb_histogram_snapshot()), 0..3),
    )
        .prop_map(|(counters, gauges, histograms)| Snapshot {
            counters,
            gauges,
            histograms,
        })
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        "[ -~]{0,40}".prop_map(|info| Request::Hello { info }),
        (any::<u64>(), "[a-z./#0-9]{1,30}")
            .prop_map(|(client, segment)| Request::Open { client, segment }),
        (
            any::<u64>(),
            "[a-z./]{1,20}",
            any::<bool>(),
            any::<u64>(),
            arb_coherence()
        )
            .prop_map(|(client, segment, write, have_version, coherence)| {
                Request::Acquire {
                    client,
                    segment,
                    mode: if write {
                        LockMode::Write
                    } else {
                        LockMode::Read
                    },
                    have_version,
                    coherence,
                }
            }),
        (any::<u64>(), "[a-z./]{1,20}", prop::option::of(arb_diff())).prop_map(
            |(client, segment, diff)| Request::Release {
                client,
                segment,
                diff
            }
        ),
        (
            any::<u64>(),
            prop::collection::vec(("[a-z./]{1,12}", prop::option::of(arb_diff())), 0..3)
        )
            .prop_map(|(client, entries)| Request::Commit { client, entries }),
        (
            any::<u64>(),
            "[a-z./]{1,20}",
            any::<u64>(),
            arb_coherence(),
            any::<u64>()
        )
            .prop_map(|(client, segment, have_version, coherence, floor)| {
                Request::Poll {
                    client,
                    segment,
                    have_version,
                    coherence,
                    floor,
                }
            }),
        any::<u64>().prop_map(|client| Request::Stats { client }),
        any::<u64>().prop_map(|client| Request::Frontier { client }),
    ]
}

fn arb_reply() -> impl Strategy<Value = Reply> {
    prop_oneof![
        (any::<u64>(), prop::collection::vec("[0-9.:]{1,21}", 0..3))
            .prop_map(|(client, replicas)| Reply::Welcome { client, replicas }),
        any::<u64>().prop_map(|version| Reply::Opened { version }),
        (
            any::<u64>(),
            prop::option::of(arb_diff()),
            any::<u32>(),
            any::<u32>()
        )
            .prop_map(|(version, update, next_serial, next_type_serial)| {
                Reply::Granted {
                    version,
                    update,
                    next_serial,
                    next_type_serial,
                }
            }),
        Just(Reply::Busy),
        any::<u64>().prop_map(|version| Reply::Released { version }),
        prop::collection::vec(any::<u64>(), 0..5)
            .prop_map(|versions| Reply::Committed { versions }),
        Just(Reply::UpToDate),
        arb_diff().prop_map(|diff| Reply::Update { diff }),
        arb_snapshot().prop_map(|snapshot| Reply::Stats { snapshot }),
        "[ -~]{0,60}".prop_map(|message| Reply::Error { message }),
        prop::option::of("[0-9.:]{1,21}").prop_map(|primary| Reply::NotPrimary { primary }),
        any::<u64>().prop_map(|version| Reply::NotFresh { version }),
        (
            prop::collection::vec(("[a-z./]{1,20}", any::<u64>()), 0..4),
            prop::collection::vec("[0-9.:]{1,21}", 0..3)
        )
            .prop_map(|(segments, replicas)| Reply::Frontier { segments, replicas }),
    ]
}

proptest! {
    #[test]
    fn requests_roundtrip(req in arb_request()) {
        prop_assert_eq!(Request::decode(req.encode()).unwrap(), req);
    }

    #[test]
    fn replies_roundtrip(reply in arb_reply()) {
        prop_assert_eq!(Reply::decode(reply.encode()).unwrap(), reply);
    }

    #[test]
    fn request_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let _ = Request::decode(Bytes::from(bytes));
    }

    #[test]
    fn reply_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let _ = Reply::decode(Bytes::from(bytes));
    }

    #[test]
    fn truncated_encodings_error_not_panic(req in arb_request(), cut in 0usize..64) {
        let full = req.encode();
        if cut < full.len() {
            let truncated = full.slice(..full.len() - cut - 1);
            if truncated.len() < full.len() {
                // Either decodes to something (a prefix that happens to be
                // valid) or errors; never panics.
                let _ = Request::decode(truncated);
            }
        }
    }
}

mod tcp_frames {
    use iw_proto::tcp::{read_frame, write_frame};
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn frames_roundtrip() {
        let (mut a, mut b) = pair();
        write_frame(&mut a, b"hello").unwrap();
        write_frame(&mut a, &[]).unwrap();
        assert_eq!(read_frame(&mut b).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut b).unwrap().unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn clean_eof_yields_none() {
        let (a, mut b) = pair();
        drop(a);
        assert_eq!(read_frame(&mut b).unwrap(), None);
    }

    #[test]
    fn oversized_frame_rejected() {
        let (mut a, mut b) = pair();
        // Declare a 1 GiB frame without sending it.
        a.write_all(&(1u32 << 30).to_be_bytes()).unwrap();
        a.flush().unwrap();
        let err = read_frame(&mut b).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn partial_frame_is_an_error_not_a_hang() {
        let (mut a, mut b) = pair();
        a.write_all(&8u32.to_be_bytes()).unwrap();
        a.write_all(b"1234").unwrap(); // 4 of 8 bytes
        drop(a);
        assert!(read_frame(&mut b).is_err(), "mid-frame EOF must error");
    }
}
