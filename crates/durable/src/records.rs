//! Typed log records and the checkpoint-file envelope.
//!
//! The framing layer ([`iw_wire::wal`]) moves opaque `(kind, body)` pairs;
//! this module gives the kinds meaning:
//!
//! - **Diff** (`kind = 1`): a committed [`SegmentDiff`] for one segment —
//!   the workhorse record, one per acknowledged release.
//! - **Checkpoint** (`kind = 2`): a marker that segment X's image at
//!   version V was durably written to the `ck/` directory. Recovery does
//!   not depend on markers (it trusts the checkpoint files themselves);
//!   they exist so a log is self-describing when inspected offline.
//!
//! Checkpoint **files** carry their own envelope (`IWDC` magic, version,
//! CRC) around the server's opaque segment image, so recovery can order
//! images against log records without understanding the image encoding.

use bytes::Bytes;
use iw_wire::codec::{WireError, WireReader, WireWriter};
use iw_wire::wal::{crc32, encode_frame};
use iw_wire::{DiffWire, SegmentDiff};

/// Record kind: one committed segment diff.
pub const KIND_DIFF: u8 = 1;
/// Record kind: checkpoint-written marker (informational).
pub const KIND_CHECKPOINT: u8 = 2;

/// Magic prefixing every durable checkpoint file.
const CK_MAGIC: &[u8; 4] = b"IWDC";
/// Checkpoint-file envelope format version.
const CK_FORMAT: u32 = 1;

/// A decoded write-ahead-log record.
#[derive(Debug, Clone, PartialEq)]
pub enum LogRecord {
    /// A committed diff for `segment`.
    Diff {
        /// Segment name.
        segment: String,
        /// The committed wire diff.
        diff: SegmentDiff,
    },
    /// Segment `segment`'s image at `version` was checkpointed.
    Checkpoint {
        /// Segment name.
        segment: String,
        /// Version the image captures.
        version: u64,
    },
}

impl LogRecord {
    /// Frames this record (header + CRC + kind + body) ready to append.
    pub fn encode_frame(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        let kind = match self {
            LogRecord::Diff { segment, diff } => {
                w.put_str(segment);
                // The WAL needs no capability negotiation — records are
                // self-describing, so new logs always take the compact
                // compressed revision while old logs (v1 bodies) keep
                // replaying through the same auto-detecting decode.
                w.put_bytes(&diff.encode_as(DiffWire::V2 { compress: true }));
                KIND_DIFF
            }
            LogRecord::Checkpoint { segment, version } => {
                w.put_str(segment);
                w.put_u64(*version);
                KIND_CHECKPOINT
            }
        };
        encode_frame(kind, &w.finish())
    }

    /// Decodes a record from a frame's kind byte and body.
    ///
    /// # Errors
    ///
    /// [`WireError`] on an unknown kind or a malformed body. With CRC
    /// framing underneath, either indicates an encoder bug or a
    /// corrupted-but-CRC-colliding record — callers treat both as a stop.
    pub fn decode(kind: u8, body: &[u8]) -> Result<LogRecord, WireError> {
        let mut r = WireReader::new(Bytes::copy_from_slice(body));
        match kind {
            KIND_DIFF => {
                let segment = r.get_str()?;
                let diff = SegmentDiff::decode(&mut r)?;
                Ok(LogRecord::Diff { segment, diff })
            }
            KIND_CHECKPOINT => {
                let segment = r.get_str()?;
                let version = r.get_u64()?;
                Ok(LogRecord::Checkpoint { segment, version })
            }
            tag => Err(WireError::BadTag {
                what: "durable log record",
                tag,
            }),
        }
    }
}

/// Wraps an opaque segment image in the checkpoint-file envelope: magic,
/// format, then a CRC-protected payload of segment name, captured
/// version, and the image bytes. The segment name travels *inside* the
/// file (the escaped file name is a write-only convenience), so recovery
/// never needs to reverse the escaping.
pub fn encode_checkpoint_file(segment: &str, version: u64, image: &[u8]) -> Vec<u8> {
    let mut w = WireWriter::with_capacity(4 + 4 + 4 + 4 + segment.len() + 8 + 4 + image.len());
    w.put_str(segment);
    w.put_u64(version);
    w.put_len_bytes(image);
    let payload = w.finish();
    let mut out = Vec::with_capacity(12 + payload.len());
    out.extend_from_slice(CK_MAGIC);
    out.extend_from_slice(&CK_FORMAT.to_be_bytes());
    out.extend_from_slice(&crc32(&payload).to_be_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Unwraps a checkpoint file into `(segment, captured version, image)`.
///
/// # Errors
///
/// A human-readable reason when the envelope is malformed or the payload
/// fails its CRC. Recovery reports these as warnings and falls back to
/// replaying that segment's log from version 0.
pub fn decode_checkpoint_file(bytes: &[u8]) -> Result<(String, u64, Bytes), String> {
    if bytes.len() < 12 {
        return Err(format!("checkpoint file too short ({} bytes)", bytes.len()));
    }
    if &bytes[0..4] != CK_MAGIC {
        return Err("bad checkpoint magic".into());
    }
    let format = u32::from_be_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if format != CK_FORMAT {
        return Err(format!("unsupported checkpoint format {format}"));
    }
    let crc = u32::from_be_bytes(bytes[8..12].try_into().expect("4 bytes"));
    let payload = &bytes[12..];
    if crc32(payload) != crc {
        return Err("checkpoint payload crc mismatch".into());
    }
    let mut r = WireReader::new(Bytes::copy_from_slice(payload));
    let parse = |r: &mut WireReader| -> Result<(String, u64, Bytes), WireError> {
        let segment = r.get_str()?;
        let version = r.get_u64()?;
        let image = r.get_len_bytes()?;
        Ok((segment, version, image))
    };
    let (segment, version, image) =
        parse(&mut r).map_err(|e| format!("malformed checkpoint payload: {e}"))?;
    if !r.is_empty() {
        return Err(format!(
            "checkpoint payload has {} trailing bytes",
            r.remaining()
        ));
    }
    Ok((segment, version, image))
}

#[cfg(test)]
mod tests {
    use super::*;
    use iw_wire::wal::FrameReader;

    fn sample_diff(from: u64, to: u64) -> SegmentDiff {
        SegmentDiff {
            from_version: from,
            to_version: to,
            new_types: Vec::new(),
            new_blocks: Vec::new(),
            block_diffs: Vec::new(),
            freed: vec![3, 9],
            ..Default::default()
        }
    }

    #[test]
    fn diff_record_roundtrips_through_framing() {
        let rec = LogRecord::Diff {
            segment: "org/seg".into(),
            diff: sample_diff(4, 5),
        };
        let frame = rec.encode_frame();
        let mut r = FrameReader::new(&frame);
        let f = r.next().unwrap();
        assert_eq!(LogRecord::decode(f.kind, f.body).unwrap(), rec);
        assert_eq!(r.defect(), None);
    }

    #[test]
    fn checkpoint_record_roundtrips() {
        let rec = LogRecord::Checkpoint {
            segment: "a/b".into(),
            version: 77,
        };
        let frame = rec.encode_frame();
        let mut r = FrameReader::new(&frame);
        let f = r.next().unwrap();
        assert_eq!(LogRecord::decode(f.kind, f.body).unwrap(), rec);
    }

    /// The WAL's switch to the compressed v2 diff body must halve the
    /// log for representative commits: a typical small-run update
    /// (structural headers dominate) and a payload-heavy commit of
    /// structured data (the compressor dominates). Frame sizes are
    /// compared against the same records with v1 diff bodies.
    #[test]
    fn diff_records_halve_versus_v1_bodies() {
        let v1_frame = |segment: &str, diff: &SegmentDiff| {
            let mut w = WireWriter::new();
            w.put_str(segment);
            w.put_bytes(&diff.encode_as(DiffWire::V1));
            encode_frame(KIND_DIFF, &w.finish()).len()
        };
        // Case 1: sixteen single-prim runs — the steady-state shape.
        let mut runs = Vec::new();
        for i in 0..16u64 {
            runs.push(iw_wire::diff::DiffRun {
                start: i * 32,
                count: 1,
                data: Bytes::from((i as i64).to_be_bytes().to_vec()),
            });
        }
        let sparse = SegmentDiff {
            from_version: 41,
            to_version: 42,
            block_diffs: vec![iw_wire::diff::BlockDiff { serial: 0, runs }],
            ..Default::default()
        };
        // Case 2: a 4 KiB struct-shaped payload (repeating records).
        let mut data = Vec::with_capacity(4096);
        for i in 0..512u64 {
            data.extend_from_slice(&((i % 7) as i64).to_be_bytes());
        }
        let bulky = SegmentDiff {
            from_version: 42,
            to_version: 43,
            block_diffs: vec![iw_wire::diff::BlockDiff {
                serial: 0,
                runs: vec![iw_wire::diff::DiffRun {
                    start: 0,
                    count: 512,
                    data: Bytes::from(data),
                }],
            }],
            ..Default::default()
        };
        for (name, diff) in [("sparse", &sparse), ("bulky", &bulky)] {
            let rec = LogRecord::Diff {
                segment: "org/seg".into(),
                diff: diff.clone(),
            };
            let now = rec.encode_frame().len();
            let v1 = v1_frame("org/seg", diff);
            println!("wal {name}: v1 body {v1} B, current {now} B");
            assert!(
                now * 2 <= v1,
                "{name}: WAL record must halve: v1 {v1} B vs current {now} B"
            );
            // And it still replays.
            let frame = rec.encode_frame();
            let mut r = FrameReader::new(&frame);
            let f = r.next().unwrap();
            assert_eq!(LogRecord::decode(f.kind, f.body).unwrap(), rec);
        }
    }

    #[test]
    fn unknown_kind_is_rejected() {
        assert!(matches!(
            LogRecord::decode(0x7F, b""),
            Err(WireError::BadTag { tag: 0x7F, .. })
        ));
    }

    #[test]
    fn checkpoint_file_roundtrips() {
        let image = b"opaque server image bytes";
        let file = encode_checkpoint_file("org/seg", 42, image);
        let (seg, v, img) = decode_checkpoint_file(&file).unwrap();
        assert_eq!(seg, "org/seg");
        assert_eq!(v, 42);
        assert_eq!(&img[..], image);
    }

    #[test]
    fn checkpoint_file_detects_damage() {
        let mut file = encode_checkpoint_file("s", 42, b"image");
        let last = file.len() - 1;
        file[last] ^= 0x40;
        assert!(decode_checkpoint_file(&file)
            .unwrap_err()
            .contains("crc mismatch"));
        assert!(decode_checkpoint_file(b"IW").unwrap_err().contains("short"));
        let mut wrong_magic = encode_checkpoint_file("s", 1, b"x");
        wrong_magic[0] = b'X';
        assert!(decode_checkpoint_file(&wrong_magic)
            .unwrap_err()
            .contains("magic"));
        let mut truncated = encode_checkpoint_file("s", 1, b"image");
        truncated.pop();
        assert!(decode_checkpoint_file(&truncated)
            .unwrap_err()
            .contains("crc mismatch"));
    }
}
