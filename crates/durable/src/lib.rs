//! # iw-durable — log-structured durable diff store
//!
//! Server state was memory-only: the paper's periodic checkpoints (§2.2)
//! give "partial protection against server failure", but everything
//! since the last checkpoint dies with the process. This crate closes
//! the gap with the classic checkpoint-plus-log design, built around the
//! release-consistency model's natural durability unit — the committed
//! per-segment wire diff:
//!
//! - **Write-ahead log.** Every committed diff is appended to the active
//!   log file as a CRC-framed record ([`iw_wire::wal`]) and fsynced
//!   before the release is acknowledged. Appends from concurrent segment
//!   shards are batched into one `fdatasync` (group commit): the first
//!   appender in a batch becomes the sync leader, everyone who appended
//!   before the leader's sync began rides the same barrier.
//! - **Incremental checkpoints.** Per segment, every
//!   [`DurableOptions::checkpoint_interval`] versions the server writes
//!   a full image (the existing checkpoint codec — unchanged) into the
//!   store's `ck/` directory. A checkpoint makes every older log record
//!   for that segment dead weight.
//! - **Compaction.** When the live log exceeds
//!   [`DurableOptions::compact_threshold_bytes`], the log is rotated and
//!   every segment's outstanding diff chain is folded into a fresh
//!   checkpoint image; the rotated files are then deleted. Recovery
//!   afterwards reads only the newest images plus the (short) new tail.
//! - **Recovery.** On restart the store loads the newest checkpoint per
//!   segment and replays the log tail in append order. A torn tail
//!   (crash mid-append) is truncated, not fatal; a CRC mismatch stops
//!   the scan at the last good record, loudly.
//!
//! The store is deliberately ignorant of server internals: checkpoint
//! images and diff payloads are opaque bytes plus the version metadata
//! needed to order them ([`iw_wire::SegmentDiff`] headers). `iw-server`
//! owns the wiring (what to persist, when to checkpoint, how to rebuild
//! a segment from an image).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod records;
mod store;

use std::sync::Arc;

use iw_telemetry::{Counter, Gauge, Histogram, Registry};

pub use records::{LogRecord, KIND_CHECKPOINT, KIND_DIFF};
pub use store::{DiffStore, Recovery, SegmentRecovery};

/// How much the server persists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DurabilityMode {
    /// Nothing is persisted (the seed behaviour).
    Off,
    /// Committed diffs are logged and fsynced at release time; the log
    /// grows until compacted externally, and recovery replays it from
    /// the beginning (plus any full images forced by replication
    /// catch-up).
    Wal,
    /// The log plus periodic per-segment checkpoint images and
    /// threshold-triggered compaction — bounded log, bounded recovery
    /// time. The default for `--data-dir`.
    #[default]
    WalCheckpoint,
}

impl DurabilityMode {
    /// Parses the CLI spelling (`off` / `wal` / `wal+checkpoint`).
    pub fn parse(s: &str) -> Option<DurabilityMode> {
        match s {
            "off" => Some(DurabilityMode::Off),
            "wal" => Some(DurabilityMode::Wal),
            "wal+checkpoint" | "wal-checkpoint" | "full" => Some(DurabilityMode::WalCheckpoint),
            _ => None,
        }
    }
}

impl std::fmt::Display for DurabilityMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurabilityMode::Off => write!(f, "off"),
            DurabilityMode::Wal => write!(f, "wal"),
            DurabilityMode::WalCheckpoint => write!(f, "wal+checkpoint"),
        }
    }
}

/// Tuning knobs for a [`DiffStore`].
#[derive(Debug, Clone)]
pub struct DurableOptions {
    /// What to persist (see [`DurabilityMode`]).
    pub mode: DurabilityMode,
    /// Versions between per-segment checkpoint images (ignored in
    /// [`DurabilityMode::Wal`]).
    pub checkpoint_interval: u64,
    /// Live log bytes (active file plus not-yet-deleted rotations) above
    /// which the server triggers compaction (ignored in
    /// [`DurabilityMode::Wal`]).
    pub compact_threshold_bytes: u64,
    /// When `false`, appends skip the fsync barrier. Only for tests and
    /// benchmarks that measure the non-sync cost — an acked release is
    /// then NOT guaranteed durable.
    pub fsync: bool,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions {
            mode: DurabilityMode::WalCheckpoint,
            checkpoint_interval: 64,
            compact_threshold_bytes: 8 << 20,
            fsync: true,
        }
    }
}

/// `durable.*` metric handles, registered in the owning server's
/// registry so one `iwstat` scrape shows durability next to everything
/// else.
pub(crate) struct Metrics {
    /// `durable.wal_appends_total` — records appended to the log.
    pub wal_appends: Arc<Counter>,
    /// `durable.wal_bytes_total` — cumulative framed bytes appended.
    pub wal_bytes: Arc<Counter>,
    /// `durable.fsyncs_total` — group-commit syncs issued (appends per
    /// sync is the batching ratio).
    pub fsyncs: Arc<Counter>,
    /// `durable.fsync_us` — wall time of one group-commit sync.
    pub fsync_us: Arc<Histogram>,
    /// `durable.checkpoints_written_total` — checkpoint images written.
    pub checkpoints_written: Arc<Counter>,
    /// `durable.compactions_total` — completed log compactions.
    pub compactions: Arc<Counter>,
    /// `durable.recovery_replayed_records` — diff records replayed by
    /// the last recovery.
    pub recovery_replayed: Arc<Counter>,
    /// `durable.errors_total` — append/checkpoint I/O failures (the
    /// store keeps serving; an error here means the durability window
    /// is open).
    pub errors: Arc<Counter>,
    /// `durable.log_bytes` — current live log size.
    pub log_bytes: Arc<Gauge>,
}

impl Metrics {
    pub(crate) fn new(registry: &Arc<Registry>) -> Self {
        Metrics {
            wal_appends: registry.counter("durable.wal_appends_total"),
            wal_bytes: registry.counter("durable.wal_bytes_total"),
            fsyncs: registry.counter("durable.fsyncs_total"),
            fsync_us: registry.histogram_us("durable.fsync_us"),
            checkpoints_written: registry.counter("durable.checkpoints_written_total"),
            compactions: registry.counter("durable.compactions_total"),
            recovery_replayed: registry.counter("durable.recovery_replayed_records"),
            errors: registry.counter("durable.errors_total"),
            log_bytes: registry.gauge("durable.log_bytes"),
        }
    }
}
