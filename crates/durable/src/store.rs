//! The diff store: group-commit WAL, checkpoint files, compaction,
//! recovery.
//!
//! On-disk layout under the data directory:
//!
//! ```text
//! <dir>/wal-<seq>.iwlog   append-only log files, 16-byte header
//!                          ("IWAL", format, file sequence number),
//!                          then CRC-framed records
//! <dir>/ck/<segment>.iwck  newest checkpoint image per segment
//!                          (records.rs envelope; tmp+rename writes)
//! ```
//!
//! Exactly one log file is *active*; the rest exist only between a
//! compaction's rotate step and its delete step (or across restarts in
//! plain-WAL mode, where nothing ever deletes them). Recovery reads
//! every log file in sequence order, so a crash at **any** point of the
//! compaction protocol — rotate, checkpoint each segment, delete old
//! files — leaves a recoverable store: the rotate happens first, so a
//! checkpoint image never describes state newer than a deleted record.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use bytes::Bytes;
use iw_telemetry::Registry;
use iw_wire::wal::{FrameDefect, FrameReader};
use iw_wire::SegmentDiff;

use crate::records::{decode_checkpoint_file, encode_checkpoint_file, LogRecord};
use crate::{DurabilityMode, DurableOptions, Metrics};

/// Magic prefixing every log file.
const LOG_MAGIC: &[u8; 4] = b"IWAL";
/// Log-file header format version.
const LOG_FORMAT: u32 = 1;
/// Log-file header length: magic + format + file sequence number.
const LOG_HEADER_LEN: usize = 16;

fn log_file_name(seq: u64) -> String {
    format!("wal-{seq:016x}.iwlog")
}

/// Same escaping scheme as the server's checkpoint codec. Write-only:
/// recovery reads the segment name from inside the file, never from the
/// file name.
fn ck_file_name(segment: &str) -> String {
    let mut out = String::with_capacity(segment.len() + 5);
    for c in segment.chars() {
        match c {
            '/' => out.push_str("%2F"),
            '%' => out.push_str("%25"),
            c => out.push(c),
        }
    }
    out.push_str(".iwck");
    out
}

/// Best-effort directory fsync so renames and creations survive power
/// loss. Opening a directory read-only works on unix; elsewhere (and on
/// exotic filesystems) failure is ignored — the data-file fsyncs still
/// hold.
fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

/// State of the recovered store: per-segment images and log tails, plus
/// what the scan saw along the way.
#[derive(Debug, Default)]
pub struct Recovery {
    /// One entry per segment with any durable state, sorted by name.
    pub segments: Vec<SegmentRecovery>,
    /// Diff records accepted for replay (survive the version filter).
    pub replayed_records: u64,
    /// All records scanned across all log files.
    pub scanned_records: u64,
    /// Human-readable anomalies: torn tails truncated, corrupt frames,
    /// undecodable checkpoint files, version gaps. Empty after a clean
    /// shutdown *and* after a plain `kill -9` (a torn tail in the
    /// *final* log file is normal and reported here, not fatal).
    pub warnings: Vec<String>,
}

/// Durable state for one segment: the newest checkpoint image (if any)
/// and the committed diffs to replay on top of it, in version order.
#[derive(Debug)]
pub struct SegmentRecovery {
    /// Segment name.
    pub name: String,
    /// `(captured version, opaque image bytes)` from the newest readable
    /// checkpoint file.
    pub checkpoint: Option<(u64, Bytes)>,
    /// Log tail: contiguous diff chain starting at the checkpoint
    /// version (or 0).
    pub tail: Vec<SegmentDiff>,
}

impl SegmentRecovery {
    /// The version this segment recovers to after image + tail.
    pub fn recovered_version(&self) -> u64 {
        self.tail
            .last()
            .map(|d| d.to_version)
            .or(self.checkpoint.as_ref().map(|&(v, _)| v))
            .unwrap_or(0)
    }
}

struct ActiveLog {
    file: File,
    /// Sequence number baked into the active file's header/name.
    file_seq: u64,
    /// Bytes in the active file (header included).
    bytes: u64,
    /// Bytes across rotated-but-not-yet-deleted files.
    old_bytes: u64,
    /// Rotated files awaiting a successful compaction's delete step.
    old_files: Vec<PathBuf>,
    /// Group commit: records appended so far / highest record known
    /// durable / whether a sync leader is currently running.
    append_seq: u64,
    durable_seq: u64,
    syncing: bool,
}

/// The durable diff store. One per server data directory; all methods
/// take `&self` and are safe to call from concurrent segment shards.
pub struct DiffStore {
    dir: PathBuf,
    ck_dir: PathBuf,
    opts: DurableOptions,
    log: Mutex<ActiveLog>,
    sync_cv: Condvar,
    compacting: AtomicBool,
    metrics: Metrics,
}

impl std::fmt::Debug for DiffStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiffStore")
            .field("dir", &self.dir)
            .field("mode", &self.opts.mode)
            .finish_non_exhaustive()
    }
}

impl DiffStore {
    /// Opens (creating if necessary) the store at `dir`, performing
    /// recovery: newest checkpoint per segment, then the log tail in
    /// file-sequence order, CRC-checked record by record. A torn tail in
    /// the final log file is truncated in place. A fresh active log file
    /// is created, so recovery itself never appends after garbage.
    ///
    /// Metrics are registered under `durable.*` in `registry`.
    ///
    /// # Errors
    ///
    /// Only on I/O failures that prevent the store from operating
    /// (cannot create the directories or the active file). Damaged
    /// *contents* are never fatal — they surface as
    /// [`Recovery::warnings`].
    pub fn open(
        dir: impl Into<PathBuf>,
        opts: DurableOptions,
        registry: &Arc<Registry>,
    ) -> io::Result<(DiffStore, Recovery)> {
        let dir = dir.into();
        let ck_dir = dir.join("ck");
        fs::create_dir_all(&ck_dir)?;
        let metrics = Metrics::new(registry);

        let mut recovery = Recovery::default();
        let checkpoints = read_checkpoints(&ck_dir, &mut recovery.warnings);
        let logs = list_logs(&dir)?;
        let mut chains: HashMap<String, SegmentRecovery> = HashMap::new();
        for (name, (version, image)) in checkpoints {
            chains.insert(
                name.clone(),
                SegmentRecovery {
                    name,
                    checkpoint: Some((version, image)),
                    tail: Vec::new(),
                },
            );
        }

        let mut old_bytes = 0u64;
        let mut old_files = Vec::new();
        for (i, (seq, path)) in logs.iter().enumerate() {
            let last = i + 1 == logs.len();
            match scan_log(path, *seq, last, &mut chains, &mut recovery) {
                Ok(bytes) => old_bytes += bytes,
                Err(e) => recovery
                    .warnings
                    .push(format!("{}: unreadable log file: {e}", path.display())),
            }
            old_files.push(path.clone());
        }

        recovery.segments = chains.into_values().collect();
        recovery.segments.sort_by(|a, b| a.name.cmp(&b.name));
        metrics.recovery_replayed.add(recovery.replayed_records);

        // Fresh active file: one past the highest sequence seen. The
        // recovered files become "old" immediately — plain-WAL mode
        // keeps them forever (recovery re-reads the whole set), while
        // wal+checkpoint mode reclaims them at the next compaction.
        let file_seq = logs.last().map(|&(s, _)| s + 1).unwrap_or(1);
        let path = dir.join(log_file_name(file_seq));
        let mut file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(&path)?;
        let mut header = Vec::with_capacity(LOG_HEADER_LEN);
        header.extend_from_slice(LOG_MAGIC);
        header.extend_from_slice(&LOG_FORMAT.to_be_bytes());
        header.extend_from_slice(&file_seq.to_be_bytes());
        file.write_all(&header)?;
        file.sync_data()?;
        sync_dir(&dir);

        let store = DiffStore {
            dir,
            ck_dir,
            opts,
            log: Mutex::new(ActiveLog {
                file,
                file_seq,
                bytes: LOG_HEADER_LEN as u64,
                old_bytes,
                old_files,
                append_seq: 0,
                durable_seq: 0,
                syncing: false,
            }),
            sync_cv: Condvar::new(),
            compacting: AtomicBool::new(false),
            metrics,
        };
        store
            .metrics
            .log_bytes
            .set((old_bytes + LOG_HEADER_LEN as u64) as i64);
        Ok((store, recovery))
    }

    /// The store's tuning knobs.
    pub fn options(&self) -> &DurableOptions {
        &self.opts
    }

    /// Appends one committed diff and, unless fsync is disabled, blocks
    /// until it is durable. Concurrent callers share fsyncs: whoever
    /// finds no sync in flight becomes the leader, syncs *everything
    /// appended so far* outside the lock, and wakes the rest.
    ///
    /// # Errors
    ///
    /// The append's own write error, or — for the leader — the fsync
    /// error. A follower whose leader fails retries the sync itself.
    pub fn append_diff(&self, segment: &str, diff: &SegmentDiff) -> io::Result<()> {
        let frame = LogRecord::Diff {
            segment: segment.to_string(),
            diff: diff.clone(),
        }
        .encode_frame();
        self.append_frame(&frame)
    }

    fn append_frame(&self, frame: &[u8]) -> io::Result<()> {
        let r = self.append_frame_inner(frame);
        if r.is_err() {
            self.metrics.errors.inc();
        }
        r
    }

    fn append_frame_inner(&self, frame: &[u8]) -> io::Result<()> {
        let mut g = self.log.lock().expect("wal lock");
        g.file.write_all(frame)?;
        g.bytes += frame.len() as u64;
        let my_seq = g.append_seq;
        g.append_seq += 1;
        self.metrics.wal_appends.inc();
        self.metrics.wal_bytes.add(frame.len() as u64);
        self.metrics.log_bytes.set((g.bytes + g.old_bytes) as i64);
        if !self.opts.fsync {
            return Ok(());
        }
        loop {
            if g.durable_seq > my_seq {
                return Ok(());
            }
            if !g.syncing {
                // Become the leader: everything appended up to here
                // rides this sync. The file handle is cloned so the
                // fsync runs outside the lock — appends arriving
                // meanwhile form the next batch.
                g.syncing = true;
                let sync_to = g.append_seq;
                let file = g.file.try_clone();
                drop(g);
                let res = match file {
                    Ok(f) => {
                        let t = Instant::now();
                        let r = f.sync_data();
                        self.metrics.fsync_us.record_duration(t.elapsed());
                        self.metrics.fsyncs.inc();
                        r
                    }
                    Err(e) => Err(e),
                };
                let mut g2 = self.log.lock().expect("wal lock");
                g2.syncing = false;
                if res.is_ok() && sync_to > g2.durable_seq {
                    g2.durable_seq = sync_to;
                }
                drop(g2);
                self.sync_cv.notify_all();
                return res;
            }
            g = self.sync_cv.wait(g).expect("wal lock");
        }
    }

    /// Writes segment `segment`'s image at `version` as the newest
    /// checkpoint file (tmp + rename, fsynced), then logs an
    /// informational marker record.
    ///
    /// # Errors
    ///
    /// Any I/O failure along the way; the previous checkpoint file (if
    /// any) is still intact in that case.
    pub fn write_checkpoint(&self, segment: &str, version: u64, image: &[u8]) -> io::Result<()> {
        let r = self.write_checkpoint_inner(segment, version, image);
        if r.is_err() {
            self.metrics.errors.inc();
        }
        r
    }

    fn write_checkpoint_inner(&self, segment: &str, version: u64, image: &[u8]) -> io::Result<()> {
        let name = ck_file_name(segment);
        let path = self.ck_dir.join(&name);
        let tmp = self.ck_dir.join(format!("{name}.tmp"));
        let bytes = encode_checkpoint_file(segment, version, image);
        let mut f = File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_data()?;
        drop(f);
        fs::rename(&tmp, &path)?;
        sync_dir(&self.ck_dir);
        self.metrics.checkpoints_written.inc();
        self.append_frame(
            &LogRecord::Checkpoint {
                segment: segment.to_string(),
                version,
            }
            .encode_frame(),
        )
    }

    /// Live log bytes: active file plus rotated-but-undeleted files.
    pub fn log_bytes(&self) -> u64 {
        let g = self.log.lock().expect("wal lock");
        g.bytes + g.old_bytes
    }

    /// `true` when the server should run a compaction pass: checkpoint
    /// mode, above the byte threshold, and no pass already running.
    pub fn needs_compaction(&self) -> bool {
        self.opts.mode == DurabilityMode::WalCheckpoint
            && !self.compacting.load(Ordering::Acquire)
            && self.log_bytes() > self.opts.compact_threshold_bytes
    }

    /// Starts a compaction pass by rotating the log: all further appends
    /// go to a fresh file, so any checkpoint image the caller writes
    /// *after* this call covers every record in the rotated files.
    /// Returns `false` if another pass is already running.
    ///
    /// # Errors
    ///
    /// If the fresh log file cannot be created; the pass is aborted and
    /// the store keeps appending to the current file.
    pub fn begin_compaction(&self) -> io::Result<bool> {
        if self.compacting.swap(true, Ordering::AcqRel) {
            return Ok(false);
        }
        if let Err(e) = self.rotate() {
            self.compacting.store(false, Ordering::Release);
            self.metrics.errors.inc();
            return Err(e);
        }
        Ok(true)
    }

    fn rotate(&self) -> io::Result<()> {
        // Create and header the new file before taking the lock, so the
        // append path is blocked only for the swap itself.
        let next_seq = {
            let g = self.log.lock().expect("wal lock");
            g.file_seq + 1
        };
        let path = self.dir.join(log_file_name(next_seq));
        let mut file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(&path)?;
        let mut header = Vec::with_capacity(LOG_HEADER_LEN);
        header.extend_from_slice(LOG_MAGIC);
        header.extend_from_slice(&LOG_FORMAT.to_be_bytes());
        header.extend_from_slice(&next_seq.to_be_bytes());
        file.write_all(&header)?;
        file.sync_data()?;
        sync_dir(&self.dir);

        let mut g = self.log.lock().expect("wal lock");
        let old_path = self.dir.join(log_file_name(g.file_seq));
        let old = std::mem::replace(&mut g.file, file);
        // The old file's tail may still be unsynced; seal it so rotated
        // records are durable even though no future append syncs it.
        // In-flight leaders hold their own clone, so this is safe.
        let _ = old.sync_data();
        g.old_bytes += g.bytes;
        g.bytes = LOG_HEADER_LEN as u64;
        g.old_files.push(old_path);
        g.file_seq = next_seq;
        // Records in the sealed file are durable by construction.
        g.durable_seq = g.durable_seq.max(g.append_seq);
        drop(g);
        self.sync_cv.notify_all();
        Ok(())
    }

    /// Ends a compaction pass. With `success: true` (every segment's
    /// image was written), the rotated log files are deleted; otherwise
    /// they are kept — recovery reads all files in order, so an aborted
    /// pass costs disk space, never correctness.
    pub fn finish_compaction(&self, success: bool) {
        if success {
            let (files, freed) = {
                let mut g = self.log.lock().expect("wal lock");
                let files = std::mem::take(&mut g.old_files);
                let freed = std::mem::take(&mut g.old_bytes);
                self.metrics.log_bytes.set(g.bytes as i64);
                (files, freed)
            };
            let _ = freed;
            for f in files {
                let _ = fs::remove_file(f);
            }
            sync_dir(&self.dir);
            self.metrics.compactions.inc();
        }
        self.compacting.store(false, Ordering::Release);
    }
}

/// Reads every `.iwck` file, keeping the newest image per segment (the
/// file name is deterministic so duplicates only arise from manual
/// copies; higher version wins).
fn read_checkpoints(ck_dir: &Path, warnings: &mut Vec<String>) -> HashMap<String, (u64, Bytes)> {
    let mut out: HashMap<String, (u64, Bytes)> = HashMap::new();
    let entries = match fs::read_dir(ck_dir) {
        Ok(e) => e,
        Err(_) => return out,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let is_ck = path
            .extension()
            .is_some_and(|e| e.eq_ignore_ascii_case("iwck"));
        if !is_ck {
            continue;
        }
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) => {
                warnings.push(format!("{}: unreadable checkpoint: {e}", path.display()));
                continue;
            }
        };
        match decode_checkpoint_file(&bytes) {
            Ok((segment, version, image)) => {
                let slot = out.entry(segment).or_insert((0, Bytes::new()));
                if version >= slot.0 {
                    *slot = (version, image);
                }
            }
            Err(e) => warnings.push(format!("{}: bad checkpoint: {e}", path.display())),
        }
    }
    out
}

/// Log files in the data dir, sorted by their sequence number (parsed
/// from the file name; the header is cross-checked during the scan).
fn list_logs(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)?.flatten() {
        let path = entry.path();
        let name = match path.file_name().and_then(|n| n.to_str()) {
            Some(n) => n,
            None => continue,
        };
        if let Some(hex) = name
            .strip_prefix("wal-")
            .and_then(|r| r.strip_suffix(".iwlog"))
        {
            if let Ok(seq) = u64::from_str_radix(hex, 16) {
                out.push((seq, path));
            }
        }
    }
    out.sort_by_key(|&(seq, _)| seq);
    Ok(out)
}

/// Scans one log file, folding accepted diff records into `chains`.
/// Returns the file's valid byte length (post-truncation for a torn
/// final file).
fn scan_log(
    path: &Path,
    expect_seq: u64,
    is_last: bool,
    chains: &mut HashMap<String, SegmentRecovery>,
    recovery: &mut Recovery,
) -> io::Result<u64> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < LOG_HEADER_LEN {
        // A crash can tear even the 16-byte header write of a brand-new
        // file; on the final file that is a torn tail, not corruption.
        if is_last {
            recovery
                .warnings
                .push(format!("{}: torn log header, file empty", path.display()));
        } else {
            recovery
                .warnings
                .push(format!("{}: log header truncated", path.display()));
        }
        return Ok(bytes.len() as u64);
    }
    if &bytes[0..4] != LOG_MAGIC {
        recovery
            .warnings
            .push(format!("{}: bad log magic, file skipped", path.display()));
        return Ok(bytes.len() as u64);
    }
    let format = u32::from_be_bytes(bytes[4..8].try_into().expect("4 bytes"));
    let seq = u64::from_be_bytes(bytes[8..16].try_into().expect("8 bytes"));
    if format != LOG_FORMAT || seq != expect_seq {
        recovery.warnings.push(format!(
            "{}: log header mismatch (format {format}, seq {seq}), file skipped",
            path.display()
        ));
        return Ok(bytes.len() as u64);
    }

    let mut reader = FrameReader::new(&bytes[LOG_HEADER_LEN..]);
    while let Some(frame) = reader.next() {
        recovery.scanned_records += 1;
        let record = match LogRecord::decode(frame.kind, frame.body) {
            Ok(r) => r,
            Err(e) => {
                recovery.warnings.push(format!(
                    "{}: undecodable record at offset {} ({e}); rest of file skipped",
                    path.display(),
                    LOG_HEADER_LEN + frame.end
                ));
                break;
            }
        };
        let LogRecord::Diff { segment, diff } = record else {
            continue; // checkpoint markers are informational
        };
        let chain = chains
            .entry(segment.clone())
            .or_insert_with(|| SegmentRecovery {
                name: segment,
                checkpoint: None,
                tail: Vec::new(),
            });
        let current = chain.recovered_version();
        if diff.to_version <= current {
            continue; // superseded by a checkpoint image or already replayed
        }
        if diff.from_version != current {
            recovery.warnings.push(format!(
                "{}: version gap for segment `{}` (have {current}, record is {}→{}); record skipped",
                path.display(),
                chain.name,
                diff.from_version,
                diff.to_version
            ));
            continue;
        }
        chain.tail.push(diff);
        recovery.replayed_records += 1;
    }

    let valid_len = (LOG_HEADER_LEN + reader.offset()) as u64;
    match reader.defect() {
        None => Ok(bytes.len() as u64),
        Some(FrameDefect::TornTail) if is_last => {
            // The expected shape of a crash mid-append: truncate the
            // file to its last whole record so the garbage is not
            // re-scanned (or mistaken for corruption) on the next start.
            recovery.warnings.push(format!(
                "{}: torn tail truncated at byte {valid_len} (was {})",
                path.display(),
                bytes.len()
            ));
            let f = OpenOptions::new().write(true).open(path)?;
            f.set_len(valid_len)?;
            f.sync_data()?;
            Ok(valid_len)
        }
        Some(defect) => {
            // Corruption, or a torn tail in a non-final file (records
            // after it were lost): scanning this file stopped; later
            // files are still read, and the per-segment version filter
            // refuses any record that no longer chains.
            recovery.warnings.push(format!(
                "{}: {defect} at byte {valid_len}; rest of file skipped",
                path.display()
            ));
            Ok(bytes.len() as u64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let d = std::env::temp_dir().join(format!("iw-durable-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn registry() -> Arc<Registry> {
        Arc::new(Registry::new())
    }

    fn diff(from: u64, freed: Vec<u32>) -> SegmentDiff {
        SegmentDiff {
            from_version: from,
            to_version: from + 1,
            new_types: Vec::new(),
            new_blocks: Vec::new(),
            block_diffs: Vec::new(),
            freed,
            ..Default::default()
        }
    }

    fn opts() -> DurableOptions {
        DurableOptions {
            fsync: false, // keep unit tests fast; fsync is exercised by chaos
            ..DurableOptions::default()
        }
    }

    #[test]
    fn fresh_store_recovers_empty() {
        let dir = temp_dir("fresh");
        let (_store, rec) = DiffStore::open(&dir, opts(), &registry()).unwrap();
        assert!(rec.segments.is_empty());
        assert!(rec.warnings.is_empty());
        assert_eq!(rec.replayed_records, 0);
    }

    #[test]
    fn appended_diffs_replay_in_order() {
        let dir = temp_dir("replay");
        {
            let (store, _) = DiffStore::open(&dir, opts(), &registry()).unwrap();
            for v in 0..5 {
                store
                    .append_diff("a/seg", &diff(v, vec![v as u32]))
                    .unwrap();
            }
            store.append_diff("b/seg", &diff(0, vec![])).unwrap();
        }
        let (_store, rec) = DiffStore::open(&dir, opts(), &registry()).unwrap();
        assert!(rec.warnings.is_empty(), "{:?}", rec.warnings);
        assert_eq!(rec.segments.len(), 2);
        assert_eq!(rec.replayed_records, 6);
        let a = &rec.segments[0];
        assert_eq!(a.name, "a/seg");
        assert!(a.checkpoint.is_none());
        assert_eq!(a.tail.len(), 5);
        assert_eq!(a.recovered_version(), 5);
        for (i, d) in a.tail.iter().enumerate() {
            assert_eq!(d.from_version, i as u64);
        }
    }

    #[test]
    fn checkpoint_supersedes_older_records() {
        let dir = temp_dir("ck");
        {
            let (store, _) = DiffStore::open(&dir, opts(), &registry()).unwrap();
            for v in 0..4 {
                store.append_diff("s", &diff(v, vec![])).unwrap();
            }
            store.write_checkpoint("s", 3, b"image@3").unwrap();
            store.append_diff("s", &diff(4, vec![])).unwrap();
        }
        let (_store, rec) = DiffStore::open(&dir, opts(), &registry()).unwrap();
        assert!(rec.warnings.is_empty(), "{:?}", rec.warnings);
        let s = &rec.segments[0];
        assert_eq!(s.checkpoint.as_ref().unwrap().0, 3);
        assert_eq!(&s.checkpoint.as_ref().unwrap().1[..], b"image@3");
        // Records at versions ≤ 3 are dead; only 3→4 and 4→5 replay.
        assert_eq!(s.tail.len(), 2);
        assert_eq!(s.tail[0].from_version, 3);
        assert_eq!(s.recovered_version(), 5);
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = temp_dir("torn");
        {
            let (store, _) = DiffStore::open(&dir, opts(), &registry()).unwrap();
            store.append_diff("s", &diff(0, vec![1, 2, 3])).unwrap();
            store.append_diff("s", &diff(1, vec![4, 5, 6])).unwrap();
        }
        // Tear the last append mid-record.
        let log = list_logs(&dir).unwrap().pop().unwrap().1;
        let len = fs::metadata(&log).unwrap().len();
        let f = OpenOptions::new().write(true).open(&log).unwrap();
        f.set_len(len - 7).unwrap();
        drop(f);
        let (_store, rec) = DiffStore::open(&dir, opts(), &registry()).unwrap();
        assert_eq!(rec.replayed_records, 1);
        assert_eq!(rec.segments[0].recovered_version(), 1);
        assert!(rec.warnings.iter().any(|w| w.contains("torn tail")));
        // Truncation happened on disk: a third open sees a clean store.
        let (_store, rec2) = DiffStore::open(&dir, opts(), &registry()).unwrap();
        assert!(rec2.warnings.is_empty(), "{:?}", rec2.warnings);
        assert_eq!(rec2.segments[0].recovered_version(), 1);
    }

    #[test]
    fn corrupt_record_stops_scan_loudly() {
        let dir = temp_dir("corrupt");
        {
            let (store, _) = DiffStore::open(&dir, opts(), &registry()).unwrap();
            store.append_diff("s", &diff(0, vec![])).unwrap();
            store.append_diff("s", &diff(1, vec![])).unwrap();
            store.append_diff("s", &diff(2, vec![])).unwrap();
        }
        let log = list_logs(&dir).unwrap().pop().unwrap().1;
        let mut bytes = fs::read(&log).unwrap();
        // Flip a bit in the middle record's body.
        let frame_len = LogRecord::Diff {
            segment: "s".into(),
            diff: diff(0, vec![]),
        }
        .encode_frame()
        .len();
        bytes[LOG_HEADER_LEN + frame_len + 12] ^= 0x10;
        fs::write(&log, &bytes).unwrap();
        let (_store, rec) = DiffStore::open(&dir, opts(), &registry()).unwrap();
        // Only the first record survives; the corrupt one and everything
        // after it are dropped, with a warning.
        assert_eq!(rec.replayed_records, 1);
        assert_eq!(rec.segments[0].recovered_version(), 1);
        assert!(rec.warnings.iter().any(|w| w.contains("corrupt")));
    }

    #[test]
    fn duplicated_record_is_skipped_silently() {
        let dir = temp_dir("dup");
        {
            let (store, _) = DiffStore::open(&dir, opts(), &registry()).unwrap();
            store.append_diff("s", &diff(0, vec![])).unwrap();
            // Replay the same committed diff twice (e.g. a retried
            // append after a lost ack): idempotent.
            store.append_diff("s", &diff(0, vec![])).unwrap();
            store.append_diff("s", &diff(1, vec![])).unwrap();
        }
        let (_store, rec) = DiffStore::open(&dir, opts(), &registry()).unwrap();
        assert!(rec.warnings.is_empty(), "{:?}", rec.warnings);
        assert_eq!(rec.replayed_records, 2);
        assert_eq!(rec.segments[0].recovered_version(), 2);
    }

    #[test]
    fn compaction_bounds_replay_to_newest_checkpoint_plus_tail() {
        let dir = temp_dir("compact");
        {
            let (store, _) = DiffStore::open(&dir, opts(), &registry()).unwrap();
            for v in 0..10 {
                store.append_diff("s", &diff(v, vec![v as u32])).unwrap();
            }
            assert!(store.begin_compaction().unwrap());
            // Mid-compaction appends land in the rotated-to file.
            store.append_diff("s", &diff(10, vec![])).unwrap();
            store.write_checkpoint("s", 11, b"image@11").unwrap();
            store.finish_compaction(true);
            store.append_diff("s", &diff(11, vec![])).unwrap();
        }
        // Old log is gone; only the post-rotation file(s) remain.
        let logs = list_logs(&dir).unwrap();
        assert_eq!(logs.len(), 1, "compaction must delete rotated files");
        let (_store, rec) = DiffStore::open(&dir, opts(), &registry()).unwrap();
        assert!(rec.warnings.is_empty(), "{:?}", rec.warnings);
        let s = &rec.segments[0];
        assert_eq!(s.checkpoint.as_ref().unwrap().0, 11);
        assert_eq!(s.tail.len(), 1);
        assert_eq!(s.recovered_version(), 12);
        // Replay read strictly fewer records than were ever appended.
        assert!(rec.scanned_records < 12);
    }

    #[test]
    fn aborted_compaction_keeps_old_files_and_recovers() {
        let dir = temp_dir("abort");
        {
            let (store, _) = DiffStore::open(&dir, opts(), &registry()).unwrap();
            for v in 0..6 {
                store.append_diff("s", &diff(v, vec![])).unwrap();
            }
            assert!(store.begin_compaction().unwrap());
            // Crash/failure before any checkpoint was written.
            store.finish_compaction(false);
            store.append_diff("s", &diff(6, vec![])).unwrap();
        }
        assert!(list_logs(&dir).unwrap().len() >= 2);
        let (_store, rec) = DiffStore::open(&dir, opts(), &registry()).unwrap();
        assert!(rec.warnings.is_empty(), "{:?}", rec.warnings);
        assert_eq!(rec.segments[0].recovered_version(), 7);
    }

    #[test]
    fn concurrent_begin_compaction_is_exclusive() {
        let dir = temp_dir("excl");
        let (store, _) = DiffStore::open(&dir, opts(), &registry()).unwrap();
        assert!(store.begin_compaction().unwrap());
        assert!(!store.begin_compaction().unwrap());
        store.finish_compaction(true);
        assert!(store.begin_compaction().unwrap());
        store.finish_compaction(false);
    }

    #[test]
    fn needs_compaction_tracks_threshold_and_mode() {
        let dir = temp_dir("thresh");
        let mut o = opts();
        o.compact_threshold_bytes = 64;
        let (store, _) = DiffStore::open(&dir, o, &registry()).unwrap();
        assert!(!store.needs_compaction());
        for v in 0..8 {
            store.append_diff("s", &diff(v, vec![])).unwrap();
        }
        assert!(store.needs_compaction());
        let dir2 = temp_dir("thresh-wal");
        let mut o2 = opts();
        o2.mode = DurabilityMode::Wal;
        o2.compact_threshold_bytes = 1;
        let (store2, _) = DiffStore::open(&dir2, o2, &registry()).unwrap();
        store2.append_diff("s", &diff(0, vec![])).unwrap();
        assert!(!store2.needs_compaction(), "plain WAL mode never compacts");
    }

    #[test]
    fn group_commit_from_many_threads_shares_fsyncs() {
        let dir = temp_dir("group");
        let mut o = opts();
        o.fsync = true;
        let reg = registry();
        let (store, _) = DiffStore::open(&dir, o, &reg).unwrap();
        let store = Arc::new(store);
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    let seg = format!("seg-{t}");
                    for v in 0..16 {
                        store.append_diff(&seg, &diff(v, vec![])).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = reg.snapshot();
        let appends = snap.counter("durable.wal_appends_total").unwrap();
        let fsyncs = snap.counter("durable.fsyncs_total").unwrap();
        assert_eq!(appends, 128);
        assert!(fsyncs >= 1 && fsyncs <= appends);
        drop(store);
        let (_s, rec) = DiffStore::open(&dir, opts(), &registry()).unwrap();
        assert_eq!(rec.segments.len(), 8);
        for s in &rec.segments {
            assert_eq!(s.recovered_version(), 16, "{}", s.name);
        }
    }

    #[test]
    fn segment_names_with_slashes_checkpoint_cleanly() {
        let dir = temp_dir("names");
        {
            let (store, _) = DiffStore::open(&dir, opts(), &registry()).unwrap();
            store.write_checkpoint("org/app%2/seg", 9, b"img").unwrap();
        }
        let (_store, rec) = DiffStore::open(&dir, opts(), &registry()).unwrap();
        assert!(rec.warnings.is_empty(), "{:?}", rec.warnings);
        assert_eq!(rec.segments[0].name, "org/app%2/seg");
        assert_eq!(rec.segments[0].checkpoint.as_ref().unwrap().0, 9);
    }
}
