//! End-to-end metrics test: spawn `iwsrv`, drive a writer/reader workload
//! through the client library over TCP, then scrape the server with
//! `iwstat` and check the diff, lock, and diff-cache metrics are live.

use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use iw_core::Session;
use iw_proto::{Coherence, TcpTransport};
use iw_types::{idl, MachineArch};

struct Srv(Child);

impl Drop for Srv {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

#[allow(clippy::zombie_processes)] // killed + waited in Srv::drop
fn spawn_srv(port: u16) -> Srv {
    let child = Command::new(env!("CARGO_BIN_EXE_iwsrv"))
        .arg("--listen")
        .arg(format!("127.0.0.1:{port}"))
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn iwsrv");
    for _ in 0..100 {
        if TcpStream::connect(("127.0.0.1", port)).is_ok() {
            return Srv(child);
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("iwsrv did not come up on port {port}");
}

fn iwstat(port: u16, extra: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_iwstat"))
        .arg("--server")
        .arg(format!("127.0.0.1:{port}"))
        .args(extra)
        .stderr(Stdio::inherit())
        .output()
        .expect("run iwstat");
    assert!(out.status.success(), "iwstat exited with {:?}", out.status);
    String::from_utf8(out.stdout).expect("utf8")
}

/// Pulls `"name":value` out of the iwstat JSON dump.
fn json_counter(json: &str, name: &str) -> u64 {
    let key = format!("\"{name}\":");
    let at = json
        .find(&key)
        .unwrap_or_else(|| panic!("{name} not in {json}"));
    json[at + key.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("{name} has no numeric value"))
}

fn connect(port: u16) -> Session {
    Session::new(
        MachineArch::x86(),
        Box::new(TcpTransport::connect(format!("127.0.0.1:{port}").parse().unwrap()).unwrap()),
    )
    .unwrap()
}

#[test]
fn workload_metrics_visible_through_iwstat() {
    let port = 17493;
    let _srv = spawn_srv(port);

    let ty = idl::compile("struct pt { int x; int y; };")
        .unwrap()
        .get("pt")
        .unwrap()
        .clone();

    // Writer: create blocks, then publish several versions.
    let mut w = connect(port);
    let hw = w.open_segment("stats/demo").unwrap();
    w.wl_acquire(&hw).unwrap();
    let blk = w.malloc(&hw, &ty, 64, Some("pts")).unwrap();
    w.wl_release(&hw).unwrap();
    for round in 0..4 {
        w.wl_acquire(&hw).unwrap();
        let f = w.index(&blk, round as u32).unwrap();
        w.write_i32(&w.field(&f, "x").unwrap(), round + 1).unwrap();
        w.wl_release(&hw).unwrap();
    }

    // Reader: lag behind, then catch up twice — the second catch-up from
    // an intermediate version exercises the diff cache.
    let mut r = connect(port);
    let hr = r.open_segment("stats/demo").unwrap();
    r.set_coherence(&hr, Coherence::Full).unwrap();
    r.rl_acquire(&hr).unwrap();
    r.rl_release(&hr).unwrap();
    for round in 4..8 {
        w.wl_acquire(&hw).unwrap();
        let f = w.index(&blk, round as u32).unwrap();
        w.write_i32(&w.field(&f, "x").unwrap(), round + 1).unwrap();
        w.wl_release(&hw).unwrap();
    }
    r.rl_acquire(&hr).unwrap();
    r.rl_release(&hr).unwrap();
    // A second reader from scratch re-requests an update the cache may
    // now serve.
    let mut r2 = connect(port);
    let hr2 = r2.open_segment("stats/demo").unwrap();
    r2.rl_acquire(&hr2).unwrap();
    r2.rl_release(&hr2).unwrap();

    // Client-side registry saw the same workload.
    let client_snap = w.metrics_snapshot();
    assert!(client_snap.counter("client.diff.collected_total").unwrap() >= 9);
    assert!(client_snap.counter("client.lock.acquires_total").unwrap() >= 9);
    assert!(client_snap.counter("proto.requests_total").unwrap() > 0);

    // Scrape over TCP with the real binary.
    let json = iwstat(port, &["--json"]);
    assert!(json_counter(&json, "server.req.acquire_total") >= 12);
    assert!(json_counter(&json, "server.req.release_total") >= 12);
    assert!(json_counter(&json, "server.lock.granted_total") >= 12);
    assert!(
        json_counter(&json, "server.diff_cache.misses_total") > 0,
        "updates were built: {json}"
    );
    assert!(
        json_counter(&json, "server.diff_cache.hits_total")
            + json_counter(&json, "server.diff_cache.misses_total")
            >= 3,
        "three stale readers requested updates: {json}"
    );
    assert!(
        json_counter(&json, "server.segment.stats/demo.version") >= 9,
        "version: {json}"
    );

    // Text rendering carries the same numbers.
    let text = iwstat(port, &[]);
    assert!(text.contains("server.requests_total"), "{text}");
    // Prometheus rendering sanitizes names.
    let prom = iwstat(port, &["--prom"]);
    assert!(
        prom.contains("# TYPE server_requests_total counter"),
        "{prom}"
    );
    // Filtering keeps only the requested prefix.
    let filtered = iwstat(port, &["--json", "--filter", "server.lock."]);
    assert!(filtered.contains("server.lock.granted_total"), "{filtered}");
    assert!(!filtered.contains("server.req.acquire_total"), "{filtered}");
}

#[test]
fn probe_mode_surfaces_client_iso_counters() {
    let port = 17494;
    let _srv = spawn_srv(port);

    // The probe runs as a big-endian machine over a packed int array, so
    // both translation directions must take the isomorphic fast path.
    let json = iwstat(port, &["--probe", "--json"]);
    assert!(
        json_counter(&json, "client.translate.iso_collects_total") > 0,
        "probe writer skipped the fast path: {json}"
    );
    assert!(
        json_counter(&json, "client.translate.iso_applies_total") > 0,
        "probe reader skipped the fast path: {json}"
    );
    // 4096 ints travel by memcpy at least once in each direction.
    assert!(
        json_counter(&json, "client.translate.iso_memcpy_bytes_total") >= 2 * 4096 * 4,
        "iso memcpy volume too low: {json}"
    );
    // The merged scrape still carries the server's own sections.
    assert!(json_counter(&json, "server.req.acquire_total") > 0);

    // A second probe against the same server reuses the probe segment.
    let again = iwstat(port, &["--probe", "--json"]);
    assert!(json_counter(&again, "client.translate.iso_collects_total") > 0);

    // Probe counters compose with --filter and --prom like any metric.
    let filtered = iwstat(
        port,
        &["--probe", "--json", "--filter", "client.translate.iso"],
    );
    assert!(
        filtered.contains("client.translate.iso_applies_total"),
        "{filtered}"
    );
    assert!(!filtered.contains("server.req.acquire_total"), "{filtered}");
    let prom = iwstat(port, &["--probe", "--prom"]);
    assert!(
        prom.contains("# TYPE client_translate_iso_collects_total counter"),
        "{prom}"
    );
}
