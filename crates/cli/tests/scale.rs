//! In-process scale smoke: `iwload`'s session engine against the
//! event-driven front end serving a real `iw-server` — the fast CI
//! version of the `ci.sh` scale stage (which drives thousands of
//! sessions through the release binaries).

use std::sync::Arc;
use std::time::Duration;

use iw_cli::load::{admission_check, run, LoadConfig};
use iw_net::{NetOptions, NetServer};
use iw_proto::Handler;
use iw_server::Server;
use iw_telemetry::Registry;

fn spawn_server(opts: NetOptions) -> (NetServer, Arc<Registry>) {
    let server = Server::new();
    let registry = server.registry().clone();
    let handler: Arc<dyn Handler> = Arc::new(server);
    let net =
        NetServer::spawn_with("127.0.0.1:0".parse().unwrap(), handler, opts, &registry).unwrap();
    (net, registry)
}

#[test]
fn load_sessions_commit_and_verify() {
    let (net, registry) = spawn_server(NetOptions::default());
    let report = run(&LoadConfig {
        addr: net.addr(),
        sessions: 48,
        rounds: 6,
        drivers: 8,
        reconnect_every: 0,
        io_timeout: Duration::from_secs(10),
        chaos: false,
        segment_prefix: "scale-basic".into(),
    });
    assert!(report.passed(), "errors: {:?}", report.errors);
    assert_eq!(report.completed_sessions, 48);
    assert_eq!(report.committed_rounds, 48 * 6);
    assert!(report.throughput > 0.0);
    let snap = registry.snapshot();
    assert_eq!(snap.counter("tcp.accepted_total"), Some(48));
    assert_eq!(snap.counter("tcp.rejected_total"), Some(0));
}

#[test]
fn load_with_reconnect_churn() {
    let (net, _registry) = spawn_server(NetOptions::default());
    let report = run(&LoadConfig {
        addr: net.addr(),
        sessions: 24,
        rounds: 8,
        drivers: 6,
        reconnect_every: 3,
        io_timeout: Duration::from_secs(10),
        chaos: false,
        segment_prefix: "scale-churn".into(),
    });
    assert!(report.passed(), "errors: {:?}", report.errors);
    assert_eq!(report.completed_sessions, 24);
    assert_eq!(report.committed_rounds, 24 * 8);
    assert!(
        report.reconnects >= 24,
        "got {} reconnects",
        report.reconnects
    );
}

#[test]
fn admission_contract_under_cap_pressure() {
    let (net, registry) = spawn_server(NetOptions {
        max_connections: 16,
        ..NetOptions::default()
    });
    let report = admission_check(net.addr(), 40, Duration::from_secs(5));
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    assert_eq!(report.welcomed, 16, "cap admits exactly max_connections");
    assert_eq!(report.overloaded, 24, "everyone else gets the typed reply");
    let snap = registry.snapshot();
    assert_eq!(snap.counter("tcp.rejected_total"), Some(24));
}
