//! `iwchaos` end-to-end: the binary is deterministic per seed and its
//! exit status reflects convergence. Plus `iwsrv --chaos`: a degraded
//! server ingress whose injections are scrapeable through `iwstat`.

use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use iw_proto::{Coherence, Reply, Request, TcpTransport, Transport};

fn run_iwchaos(extra: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_iwchaos"))
        .args(extra)
        .output()
        .expect("spawn iwchaos")
}

/// The acceptance bar: `iwchaos --seed S` injects the same fault
/// schedule every time. A single client keeps the trace free of thread
/// interleaving, so the two runs must match byte for byte.
#[test]
fn same_seed_yields_identical_injection_trace() {
    let args = ["--seed", "1234", "--clients", "1", "--ops", "8", "--trace"];
    let a = run_iwchaos(&args);
    let b = run_iwchaos(&args);
    assert!(
        a.status.success(),
        "first run failed: {}",
        String::from_utf8_lossy(&a.stderr)
    );
    assert!(
        b.status.success(),
        "second run failed: {}",
        String::from_utf8_lossy(&b.stderr)
    );

    let traces = |out: &std::process::Output| -> Vec<String> {
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .filter(|l| l.contains("trace:"))
            .map(str::to_string)
            .collect()
    };
    let (ta, tb) = (traces(&a), traces(&b));
    assert_eq!(ta.len(), 2, "expected client + ship trace lines: {ta:?}");
    assert_eq!(ta, tb, "same seed must inject the same fault schedule");
    // The run must actually have injected something, or determinism is
    // vacuous.
    assert!(
        ta.iter()
            .any(|l| l.contains(':') && l.len() > "client trace: ".len() + 1),
        "no injections recorded: {ta:?}"
    );
}

struct Srv(Child);

impl Drop for Srv {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

const CHAOS_PORT: u16 = 17661;

/// `iwsrv --chaos SEED` drops/delays a seeded fraction of requests at
/// the ingress, clients see clean per-call server errors, and the
/// injection counters land in the registry `iwstat` scrapes.
#[test]
#[allow(clippy::zombie_processes)] // killed + waited in Srv::drop
fn iwsrv_chaos_ingress_counts_injections_in_iwstat() {
    let child = Command::new(env!("CARGO_BIN_EXE_iwsrv"))
        .args([
            "--listen",
            &format!("127.0.0.1:{CHAOS_PORT}"),
            "--chaos",
            "1",
            "--chaos-rate",
            "2000",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn iwsrv");
    let _srv = Srv(child);
    for _ in 0..100 {
        if TcpStream::connect(("127.0.0.1", CHAOS_PORT)).is_ok() {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }

    // Drive raw requests through the degraded ingress; injected drops
    // surface as `Reply::Error` on that call only, never a dead link.
    let mut t =
        TcpTransport::connect(format!("127.0.0.1:{CHAOS_PORT}").parse().unwrap()).expect("connect");
    let client = loop {
        match t.request(&Request::Hello { info: "c".into() }) {
            Ok(Reply::Welcome { client, .. }) => break client,
            Ok(_) | Err(_) => continue,
        }
    };
    loop {
        match t.request(&Request::Open {
            client,
            segment: "x/chaos".into(),
        }) {
            Ok(Reply::Opened { .. }) => break,
            Ok(_) | Err(_) => continue,
        }
    }
    let mut errors = 0u64;
    for _ in 0..100 {
        match t.request(&Request::Poll {
            client,
            segment: "x/chaos".into(),
            have_version: 0,
            coherence: Coherence::Full,
            floor: 0,
        }) {
            Ok(Reply::UpToDate) => {}
            _ => errors += 1,
        }
    }
    assert!(errors > 0, "a 20% chaos rate injected nothing in 100 polls");

    // The Stats request rides the same degraded ingress, so the scrape
    // itself can be hit — retry until one gets through.
    let text = (0..20)
        .find_map(|_| {
            let out = Command::new(env!("CARGO_BIN_EXE_iwstat"))
                .args([
                    "--server",
                    &format!("127.0.0.1:{CHAOS_PORT}"),
                    "--filter",
                    "faults.",
                ])
                .output()
                .expect("run iwstat");
            out.status
                .success()
                .then(|| String::from_utf8(out.stdout).unwrap())
        })
        .expect("no iwstat scrape survived 20 tries at a 20% fault rate");
    let total: u64 = text
        .lines()
        .find(|l| l.contains("faults.injected_total"))
        .and_then(|l| l.split_whitespace().last())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("faults.injected_total not scraped: {text}"));
    assert!(
        total >= errors,
        "iwstat saw {total} injections, client saw {errors} errors"
    );
}

/// Different seeds take different fault schedules (overwhelmingly
/// likely; pinned here so a broken PRNG wiring shows up).
#[test]
fn different_seed_changes_the_trace() {
    let a = run_iwchaos(&["--seed", "1", "--clients", "1", "--ops", "8", "--trace"]);
    let b = run_iwchaos(&["--seed", "2", "--clients", "1", "--ops", "8", "--trace"]);
    assert!(a.status.success() && b.status.success());
    let trace = |out: &std::process::Output| {
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .filter(|l| l.contains("trace:"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_ne!(trace(&a), trace(&b));
}
