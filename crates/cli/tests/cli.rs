//! End-to-end CLI test: spawn `iwsrv`, populate a segment through the
//! client library over TCP, inspect it with `iwdump`, then restart the
//! server with `--recover` and check the data survived.

use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use iw_core::Session;
use iw_proto::TcpTransport;
use iw_types::{idl, MachineArch};

struct Srv(Child);

impl Drop for Srv {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

#[allow(clippy::zombie_processes)] // killed + waited in Srv::drop
fn spawn_srv(port: u16, dir: &str, recover: bool) -> Srv {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_iwsrv"));
    cmd.arg("--listen")
        .arg(format!("127.0.0.1:{port}"))
        .arg("--checkpoint-dir")
        .arg(dir)
        .arg("--checkpoint-every")
        .arg("1")
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if recover {
        cmd.arg("--recover");
    }
    let child = cmd.spawn().expect("spawn iwsrv");
    // Wait for the port to accept connections.
    for _ in 0..100 {
        if TcpStream::connect(("127.0.0.1", port)).is_ok() {
            return Srv(child);
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("iwsrv did not come up on port {port}");
}

fn iwdump(port: u16, segment: &str) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_iwdump"))
        .arg("--server")
        .arg(format!("127.0.0.1:{port}"))
        .arg(segment)
        .stderr(Stdio::null())
        .output()
        .expect("run iwdump");
    String::from_utf8(out.stdout).expect("utf8")
}

#[test]
fn serve_populate_dump_recover() {
    let port = 17481;
    let dir = std::env::temp_dir().join(format!("iwsrv-test-{}", std::process::id()));
    let dir_s = dir.to_str().unwrap().to_string();
    let _ = std::fs::remove_dir_all(&dir);

    {
        let _srv = spawn_srv(port, &dir_s, false);
        let mut s = Session::new(
            MachineArch::x86(),
            Box::new(TcpTransport::connect(format!("127.0.0.1:{port}").parse().unwrap()).unwrap()),
        )
        .unwrap();
        let ty = idl::compile("struct rec { int id; string tag<16>; struct rec *peer; };")
            .unwrap()
            .get("rec")
            .unwrap()
            .clone();
        let h = s.open_segment("cli/demo").unwrap();
        s.wl_acquire(&h).unwrap();
        let a = s.malloc(&h, &ty, 1, Some("alpha")).unwrap();
        let b = s.malloc(&h, &ty, 1, Some("beta")).unwrap();
        s.write_i32(&s.field(&a, "id").unwrap(), 7).unwrap();
        s.write_str(&s.field(&a, "tag").unwrap(), "hello").unwrap();
        s.write_ptr(&s.field(&a, "peer").unwrap(), Some(&b))
            .unwrap();
        s.write_i32(&s.field(&b, "id").unwrap(), 8).unwrap();
        s.wl_release(&h).unwrap();

        let dump = iwdump(port, "cli/demo");
        assert!(dump.contains("2 blocks"), "{dump}");
        assert!(dump.contains("alpha"), "{dump}");
        assert!(dump.contains("\"hello\""), "{dump}");
        assert!(dump.contains("-> cli/demo#beta"), "{dump}");
    } // server killed

    // Recovery: a new server process restores the checkpoint.
    let _srv = spawn_srv(port + 1, &dir_s, true);
    let dump = iwdump(port + 1, "cli/demo");
    assert!(dump.contains("2 blocks"), "post-recovery: {dump}");
    assert!(dump.contains("\"hello\""), "post-recovery: {dump}");
    let _ = std::fs::remove_dir_all(&dir);
}
