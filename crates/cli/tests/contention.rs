//! End-to-end contention: two clients on *different* segments over real
//! TCP sockets against one `iwsrv`. With the sharded segment table the
//! server works on both connections at once, so its cumulative
//! in-handler time (`server.busy_us_total`) exceeds the wall-clock
//! elapsed time of the workload — impossible under the old global
//! handler mutex, which pinned busy ≤ elapsed by construction.
//!
//! The measured overlap ratio is printed for EXPERIMENTS.md.

use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::thread;
use std::time::{Duration, Instant};

use bytes::Bytes;
use iw_proto::msg::{LockMode, Reply, Request};
use iw_proto::{Coherence, TcpTransport, Transport};
use iw_types::desc::TypeDesc;
use iw_wire::diff::{BlockDiff, DiffRun, NewBlock, SegmentDiff};

const PORT: u16 = 17571;
/// Primitives per segment block: 1 MiB of int32 per diff, so each
/// handler span is long enough for the scheduler to interleave the two
/// workers inside it.
const PRIMS: u32 = 256 * 1024;
/// Write cycles per client per attempt.
const OPS: u64 = 25;

struct Srv(Child, std::path::PathBuf);

impl Drop for Srv {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
        let _ = std::fs::remove_dir_all(&self.1);
    }
}

#[allow(clippy::zombie_processes)] // killed + waited in Srv::drop
fn spawn_srv(port: u16) -> Srv {
    // Checkpoint every version: each release then encodes and writes the
    // whole segment inside the handler — substantial server-side work
    // with no client-side counterpart, which widens the measurable
    // overlap window.
    let ckpt = std::env::temp_dir().join(format!("iw-contention-{}", std::process::id()));
    std::fs::create_dir_all(&ckpt).expect("checkpoint dir");
    let child = Command::new(env!("CARGO_BIN_EXE_iwsrv"))
        .arg("--listen")
        .arg(format!("127.0.0.1:{port}"))
        .arg("--checkpoint-dir")
        .arg(&ckpt)
        .arg("--checkpoint-every")
        .arg("1")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn iwsrv");
    for _ in 0..100 {
        if TcpStream::connect(("127.0.0.1", port)).is_ok() {
            return Srv(child, ckpt);
        }
        thread::sleep(Duration::from_millis(50));
    }
    panic!("iwsrv did not come up on port {port}");
}

fn iwstat_json(port: u16) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_iwstat"))
        .arg("--server")
        .arg(format!("127.0.0.1:{port}"))
        .arg("--json")
        .stderr(Stdio::inherit())
        .output()
        .expect("run iwstat");
    assert!(out.status.success(), "iwstat exited with {:?}", out.status);
    String::from_utf8(out.stdout).expect("utf8")
}

/// Pulls `"name":value` out of the iwstat JSON dump, if present.
fn json_value(json: &str, name: &str) -> Option<u64> {
    let key = format!("\"{name}\":");
    let at = json.find(&key)?;
    json[at + key.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .ok()
}

/// One client over a real socket: `OPS` write cycles on its own
/// segment, each shipping a full-block 256 KiB diff.
fn hammer(segment: String, fill: i32) {
    let addr = format!("127.0.0.1:{PORT}").parse().unwrap();
    let mut t = TcpTransport::connect(addr).expect("connect");
    let Reply::Welcome { client, .. } = t
        .request(&Request::Hello {
            info: format!("contender-{segment}"),
        })
        .expect("hello")
    else {
        panic!("no welcome")
    };
    t.request(&Request::Open {
        client,
        segment: segment.clone(),
    })
    .expect("open");
    // Build the payload once; `Bytes` clones are O(1), keeping the
    // client's per-op cost low so the measurement is server-bound.
    let mut raw = Vec::with_capacity(PRIMS as usize * 4);
    for _ in 0..PRIMS {
        raw.extend_from_slice(&fill.to_be_bytes());
    }
    let payload = Bytes::from(raw);
    for op in 0..OPS {
        // Deliberately stale `have_version` (stuck at the first write):
        // every acquire makes the server compose the cached diff chain
        // into one update — server-side work with no client-side
        // counterpart, which is exactly what the overlap measurement
        // wants to observe.
        let have = u64::from(op > 0);
        let granted = loop {
            match t
                .request(&Request::Acquire {
                    client,
                    segment: segment.clone(),
                    mode: LockMode::Write,
                    have_version: have,
                    coherence: Coherence::Full,
                })
                .expect("acquire")
            {
                Reply::Granted { version, .. } => break version,
                Reply::Busy => thread::yield_now(),
                other => panic!("unexpected acquire reply: {other:?}"),
            }
        };
        let diff = if granted == 0 {
            SegmentDiff {
                from_version: 0,
                to_version: 1,
                new_types: vec![(0, TypeDesc::int32())],
                new_blocks: vec![NewBlock {
                    serial: 0,
                    name: None,
                    type_serial: 0,
                    count: PRIMS,
                    data: payload.clone(),
                }],
                ..Default::default()
            }
        } else {
            SegmentDiff {
                from_version: granted,
                to_version: granted + 1,
                block_diffs: vec![BlockDiff {
                    serial: 0,
                    runs: vec![DiffRun {
                        start: 0,
                        count: PRIMS as u64,
                        data: payload.clone(),
                    }],
                }],
                ..Default::default()
            }
        };
        let r = t
            .request(&Request::Release {
                client,
                segment: segment.clone(),
                diff: Some(diff),
            })
            .expect("release");
        assert!(matches!(r, Reply::Released { .. }), "{r:?}");
    }
}

#[test]
fn disjoint_segment_clients_overlap_on_the_wire() {
    let _srv = spawn_srv(PORT);

    // Scheduling noise can thin out the overlap on a loaded machine;
    // the busy counter is cumulative, so simply re-running the workload
    // gives it another chance. Three attempts bound the worst case.
    let mut measured = None;
    for attempt in 0..3 {
        let busy_before =
            json_value(&iwstat_json(PORT), "server.busy_us_total").expect("busy metric");
        let t0 = Instant::now();
        let a = thread::spawn(move || hammer(format!("c/a{attempt}"), 0x1111));
        let b = thread::spawn(move || hammer(format!("c/b{attempt}"), 0x2222));
        a.join().expect("client a");
        b.join().expect("client b");
        let elapsed_us = t0.elapsed().as_micros() as u64;
        let busy_us = json_value(&iwstat_json(PORT), "server.busy_us_total")
            .expect("busy metric")
            .saturating_sub(busy_before);
        let ratio = busy_us as f64 / elapsed_us as f64;
        println!(
            "contention attempt {attempt}: elapsed={elapsed_us}us \
             server_busy={busy_us}us overlap_ratio={ratio:.2}"
        );
        if busy_us as f64 > elapsed_us as f64 * 1.05 {
            measured = Some((elapsed_us, busy_us, ratio));
            break;
        }
    }
    let (elapsed_us, busy_us, ratio) = measured.expect(
        "server in-handler time never exceeded wall-clock: requests on \
         disjoint segments are being serialized",
    );
    println!(
        "contention result: elapsed={elapsed_us}us server_busy={busy_us}us \
         overlap_ratio={ratio:.2}"
    );

    // And the server itself observed ≥2 requests in flight at once.
    let peak =
        json_value(&iwstat_json(PORT), "server.concurrent_requests_peak").expect("peak metric");
    assert!(peak >= 2, "concurrent_requests_peak = {peak}");
}
